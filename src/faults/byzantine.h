// Byzantine replica modes, modeled at the wire: a Byzantine replica runs
// the honest state machine but a ByzantineBox intercepts every outgoing
// envelope and mutates, replaces, or suppresses it per destination. This
// matches the simulation's crypto model (signer.h): FastSuite tags cannot
// be forged, so Byzantine behaviour is expressed as protocol-level
// misbehaviour — equivocation, silence, replay, and corrupted
// authenticators — exactly the adversary the paper's two-phase safety
// argument must survive.
//
// The box is shared by the simulation runtime (ReplicaProcess pipes its
// sends through it) and the unit-test harness (ProtocolHarness's bus),
// replacing the ad-hoc per-test fault hacks.
#pragma once

#include <optional>

#include "common/ids.h"
#include "types/messages.h"

namespace marlin::faults {

enum class ByzantineMode : std::uint8_t {
  kHonest = 0,
  /// A leader that sends conflicting PREPARE proposals: odd-id peers
  /// receive a block with a tampered batch (different hash, same height
  /// and justify) — the paper's equivocating-leader attack.
  kEquivocate,
  /// Never sends votes (view-change messages still flow, so the replica
  /// stalls quorums without stalling view synchronization).
  kSilentVoter,
  /// Sends its first vote honestly, then replays that stale vote in place
  /// of every later one — a liveness drag that exercises the leader's
  /// handling of outdated vote digests.
  kStaleVoteReplayer,
  /// Votes carry a corrupted partial signature; correct leaders must
  /// reject them without counting.
  kInvalidSigSender,
};

/// Stable snake_case name ("equivocate", ...), used by plan JSON.
const char* byzantine_mode_name(ByzantineMode m);
/// Inverse of byzantine_mode_name; nullopt for unknown names.
std::optional<ByzantineMode> byzantine_mode_from_name(std::string_view name);

/// Per-replica outbound interceptor. Stateless for most modes; the stale
/// replayer keeps the first vote it saw.
class ByzantineBox {
 public:
  void set_mode(ByzantineMode m) { mode_ = m; }
  ByzantineMode mode() const { return mode_; }
  bool active() const { return mode_ != ByzantineMode::kHonest; }

  /// Result of intercepting one outgoing envelope. `out` is what goes on
  /// the wire (nullopt = suppress the send); `mutated` is true iff `out`
  /// differs from the input — the copy-on-write signal that lets a
  /// broadcast keep sharing one serialized buffer for every destination the
  /// box left alone.
  struct WireEffect {
    std::optional<types::Envelope> out;
    bool mutated = false;
  };

  /// Applies the mode to one outgoing envelope addressed to `to` (`self` is
  /// the Byzantine replica's own id).
  WireEffect transform_wire(const types::Envelope& env, ReplicaId self,
                            ReplicaId to);

  /// Convenience wrapper: just the wire envelope (or nullopt to suppress).
  std::optional<types::Envelope> transform(const types::Envelope& env,
                                           ReplicaId self, ReplicaId to) {
    return transform_wire(env, self, to).out;
  }

  /// Envelopes mutated or suppressed so far (observability).
  std::uint64_t interventions() const { return interventions_; }

 private:
  ByzantineMode mode_ = ByzantineMode::kHonest;
  std::optional<types::Envelope> stale_vote_;
  std::uint64_t interventions_ = 0;
};

}  // namespace marlin::faults
