// Executes a FaultPlan against a simulated deployment. The controller
// schedules every action on the deterministic simulator at arm() time, so
// a run with a plan is exactly as replayable as a run without one; each
// executed action is recorded both in an in-memory log (with its resolved
// target and the view it fired in) and as a kFaultInjected trace event.
//
// The controller owns the network's fault surface: it composes partitions
// and silences into the single reachability filter, drives the extra
// drop/delay windows, and sets GST. Replica-level effects (crash/recover,
// Byzantine modes, leader resolution) go through FaultHooks so this layer
// depends only on simnet — the runtime's Cluster provides the hooks.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "faults/fault_plan.h"
#include "obs/trace.h"
#include "simnet/network.h"

namespace marlin::faults {

struct FaultHooks {
  /// Resolves kCrashLeader when it fires.
  std::function<ReplicaId()> current_leader;
  /// Highest view any live replica is in (log/trace annotation).
  std::function<ViewNumber()> max_view;
  /// Installs a ByzantineMode on a replica's outbound box.
  std::function<void(ReplicaId, ByzantineMode)> set_byzantine;
  /// Revives a replica from its persisted state (kRestart) or from a
  /// wiped DB (kWipeDisk) and reconnects it to the network on success.
  std::function<void(ReplicaId, bool wipe)> restart_replica;
};

/// One plan action that actually fired, with its runtime resolution.
struct ExecutedAction {
  std::size_t index = 0;       // position in plan.actions
  FaultKind kind = FaultKind::kCrash;
  ReplicaId target = kNoReplica;  // resolved replica (kCrashLeader included)
  TimePoint at;
  ViewNumber view = 0;  // max view when the action fired
};

class FaultController {
 public:
  /// `num_replicas` bounds the node ids the plan may touch; the filter
  /// composed from partitions/silences constrains only replica↔replica
  /// edges (clients always reach every live replica).
  ///
  /// `sched` is the run's control lane: the shared simulator on the
  /// single-queue engine, the barrier-synchronized control queue on the
  /// partitioned one (fault actions mutate network state every shard
  /// reads, so they must run while shards are quiescent).
  FaultController(marlin::Scheduler& sched, sim::Network& net, FaultPlan plan,
                  FaultHooks hooks, std::uint32_t num_replicas,
                  obs::TraceSink* trace = nullptr);

  /// Schedules every plan action; call exactly once, before the sim runs.
  void arm();

  const FaultPlan& plan() const { return plan_; }
  const std::vector<ExecutedAction>& log() const { return log_; }
  /// First executed crash (kCrash or kCrashLeader), if any — the anchor
  /// for view-change latency measurements.
  const ExecutedAction* first_crash() const;
  TimePoint quiesce_time() const {
    return TimePoint::origin() + plan_.quiesce_time();
  }

 private:
  void execute(std::size_t index);
  void install_filter();
  void record(std::size_t index, FaultKind kind, ReplicaId target);

  marlin::Scheduler& sim_;
  sim::Network& net_;
  FaultPlan plan_;
  FaultHooks hooks_;
  std::uint32_t n_;
  obs::TraceSink* trace_;
  bool armed_ = false;

  // Composite network-fault state.
  std::map<ReplicaId, std::uint32_t> group_of_;  // partition membership
  std::map<ReplicaId, std::set<ReplicaId>> silenced_;  // node -> allowed
  std::vector<ExecutedAction> log_;
};

}  // namespace marlin::faults
