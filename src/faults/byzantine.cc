#include "faults/byzantine.h"

namespace marlin::faults {

namespace {
constexpr std::string_view kModeNames[] = {
    "honest", "equivocate", "silent_voter", "stale_vote_replayer",
    "invalid_sig_sender",
};
constexpr std::size_t kModeCount = sizeof kModeNames / sizeof kModeNames[0];
}  // namespace

const char* byzantine_mode_name(ByzantineMode m) {
  const auto i = static_cast<std::size_t>(m);
  return i < kModeCount ? kModeNames[i].data() : "unknown";
}

std::optional<ByzantineMode> byzantine_mode_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kModeCount; ++i) {
    if (name == kModeNames[i]) return static_cast<ByzantineMode>(i);
  }
  return std::nullopt;
}

ByzantineBox::WireEffect ByzantineBox::transform_wire(
    const types::Envelope& env, ReplicaId self, ReplicaId to) {
  // `mutated=false` paths return the input untouched — the caller may keep
  // sharing an already-serialized buffer for those destinations.
  const auto pass = [&env]() { return WireEffect{env, false}; };
  switch (mode_) {
    case ByzantineMode::kHonest:
      return pass();

    case ByzantineMode::kEquivocate: {
      // Equivocate only on single-entry PREPARE proposals, and only toward
      // odd-id peers (self keeps the honest variant so the local state
      // machine stays consistent). Tampering with the batch changes the
      // block hash: two valid-looking blocks at one (view, height).
      if (env.kind != types::MsgKind::kProposal || to == self || to % 2 == 0) {
        return pass();
      }
      auto msg = types::open_envelope<types::ProposalMsg>(env);
      if (!msg.is_ok()) return pass();
      types::ProposalMsg m = std::move(msg).take();
      if (m.entries.size() != 1) return pass();  // leave shadow pairs alone
      types::Block& b = m.entries[0].block;
      if (b.ops.empty()) {
        b.ops.push_back(types::Operation{~0u, ~0ull, Bytes{0xeb}});
      } else {
        b.ops[0].payload.push_back(0xeb);
      }
      ++interventions_;
      return {types::make_envelope(types::MsgKind::kProposal, m), true};
    }

    case ByzantineMode::kSilentVoter:
      if (env.kind != types::MsgKind::kVote) return pass();
      ++interventions_;
      return {std::nullopt, true};

    case ByzantineMode::kStaleVoteReplayer: {
      if (env.kind != types::MsgKind::kVote) return pass();
      if (!stale_vote_) {
        stale_vote_ = env;  // first vote flows honestly (and is remembered)
        return pass();
      }
      ++interventions_;
      return {*stale_vote_, true};
    }

    case ByzantineMode::kInvalidSigSender: {
      if (env.kind != types::MsgKind::kVote) return pass();
      auto msg = types::open_envelope<types::VoteMsg>(env);
      if (!msg.is_ok()) return pass();
      types::VoteMsg m = std::move(msg).take();
      if (m.parsig.sig.empty()) return pass();
      m.parsig.sig[0] ^= 0xff;
      ++interventions_;
      return {types::make_envelope(types::MsgKind::kVote, m), true};
    }
  }
  return pass();
}

}  // namespace marlin::faults
