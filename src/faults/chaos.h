// Seeded random fault-plan generation for chaos sweeps. Plans are drawn so
// that the two protocol invariants remain *checkable*:
//
//  * safety must always hold — at most f replicas are ever faulty (crashed
//    or Byzantine), so any violation a run exhibits is a protocol bug, not
//    an over-budget adversary;
//  * liveness must resume — every transient disruption (partition,
//    silence, loss/delay window, pre-GST chaos) ends by `horizon`, so
//    commits are required to advance in the fault-free tail after
//    FaultPlan::quiesce_time().
//
// Generation is a pure function of the Rng stream: the same seed yields
// the same plan, which is what makes every chaos verdict replayable.
#pragma once

#include "common/rng.h"
#include "faults/fault_plan.h"

namespace marlin::faults {

struct ChaosOptions {
  std::uint32_t f = 1;  // n = 3f + 1
  /// Disruptive actions fire within [earliest, horizon]; everything
  /// transient has quiesced by `horizon`.
  Duration earliest = Duration::millis(500);
  Duration horizon = Duration::seconds(8);
  // Fault classes to draw from (all on by default).
  bool allow_crashes = true;
  /// Crash draws may become restart (revive from disk) or wipe_disk
  /// (amnesia — revive with an empty DB, catch up via state transfer).
  bool allow_restarts = true;
  bool allow_byzantine = true;
  bool allow_partitions = true;
  bool allow_silence = true;
  bool allow_link_faults = true;
  bool allow_gst = true;
};

/// Draws one plan from the rng stream. Crash + Byzantine targets together
/// never exceed f distinct replicas; partitions/silences always heal.
FaultPlan random_plan(Rng& rng, const ChaosOptions& opt);

}  // namespace marlin::faults
