#include "faults/chaos.h"

#include <algorithm>
#include <numeric>

namespace marlin::faults {

namespace {

/// Uniform whole-millisecond instant in [lo, hi] — plans stay in human
/// units and round-trip exactly through JSON.
Duration ms_between(Rng& rng, Duration lo, Duration hi) {
  const std::int64_t lo_ms = lo.as_nanos() / 1000000;
  const std::int64_t hi_ms = std::max(lo_ms, hi.as_nanos() / 1000000);
  return Duration::millis(static_cast<std::int64_t>(
      rng.next_in(static_cast<std::uint64_t>(lo_ms),
                  static_cast<std::uint64_t>(hi_ms))));
}

/// Probability quantized to percent (JSON-friendly, exact round trip).
double pct_between(Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  return static_cast<double>(rng.next_in(lo, hi)) / 100.0;
}

}  // namespace

FaultPlan random_plan(Rng& rng, const ChaosOptions& opt) {
  const std::uint32_t n = 3 * opt.f + 1;
  FaultPlan plan;

  // Pick the faulty set up front: a shuffled prefix of the replicas, at
  // most f strong, shared by crash and Byzantine draws.
  std::vector<ReplicaId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  for (std::size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.next_below(i)]);
  }
  const std::uint32_t faulty =
      opt.f == 0 ? 0 : static_cast<std::uint32_t>(rng.next_in(0, opt.f));

  bool any_cut = false;  // partitions/silences needing a heal
  for (std::uint32_t i = 0; i < faulty; ++i) {
    const ReplicaId r = ids[i];
    const bool crash = opt.allow_crashes &&
                       (!opt.allow_byzantine || rng.next_bool(0.5));
    if (crash) {
      const Duration at = ms_between(rng, opt.earliest, opt.horizon);
      if (opt.allow_restarts && rng.next_bool(0.5)) {
        // True crash-recovery: down for a bounded window, then revive
        // from the persisted state (restart) or from an empty DB that
        // must catch up via state transfer (wipe_disk).
        const Duration down =
            ms_between(rng, Duration::millis(300),
                       std::max(Duration::millis(300), opt.horizon - at));
        plan.actions.push_back(rng.next_bool(0.35)
                                   ? FaultAction::wipe_disk(at, r, down)
                                   : FaultAction::restart(at, r, down));
      } else {
        plan.actions.push_back(FaultAction::crash(at, r));
        if (rng.next_bool(0.4)) {
          plan.actions.push_back(
              FaultAction::recover(ms_between(rng, at, opt.horizon), r));
        }
      }
    } else if (opt.allow_byzantine) {
      const ByzantineMode modes[] = {
          ByzantineMode::kEquivocate,
          ByzantineMode::kSilentVoter,
          ByzantineMode::kStaleVoteReplayer,
          ByzantineMode::kInvalidSigSender,
      };
      plan.actions.push_back(FaultAction::byzantine(
          ms_between(rng, opt.earliest, opt.horizon), r,
          modes[rng.next_below(4)]));
    }
  }

  if (opt.allow_partitions && n >= 2 && rng.next_bool(0.6)) {
    // Random two-way split: a shuffled prefix of size [1, n-1] secedes.
    std::vector<ReplicaId> split(ids);
    for (std::size_t i = split.size(); i > 1; --i) {
      std::swap(split[i - 1], split[rng.next_below(i)]);
    }
    const auto cut = static_cast<std::size_t>(rng.next_in(1, n - 1));
    std::vector<std::vector<ReplicaId>> groups(2);
    groups[0].assign(split.begin(), split.begin() + cut);
    groups[1].assign(split.begin() + cut, split.end());
    std::sort(groups[0].begin(), groups[0].end());
    std::sort(groups[1].begin(), groups[1].end());
    plan.actions.push_back(FaultAction::partition(
        ms_between(rng, opt.earliest, opt.horizon), std::move(groups)));
    any_cut = true;
  }

  if (opt.allow_silence && faulty > 0 && rng.next_bool(0.4)) {
    // A QC-hiding replica: its messages reach only one allowed peer.
    const ReplicaId victim = ids[rng.next_below(faulty)];
    const ReplicaId confidant = ids[faulty % n] == victim
                                    ? ids[(faulty + 1) % n]
                                    : ids[faulty % n];
    plan.actions.push_back(
        FaultAction::silence(ms_between(rng, opt.earliest, opt.horizon),
                             victim, {confidant}));
    any_cut = true;
  }

  if (opt.allow_link_faults && rng.next_bool(0.5)) {
    const Duration at = ms_between(rng, opt.earliest, opt.horizon);
    const Duration dur = ms_between(rng, Duration::millis(200),
                                    std::max(Duration::millis(200),
                                             opt.horizon - at));
    if (rng.next_bool(0.5)) {
      plan.actions.push_back(
          FaultAction::drop_burst(at, pct_between(rng, 5, 40), dur));
    } else {
      plan.actions.push_back(FaultAction::slow_links(
          at, Duration::millis(static_cast<std::int64_t>(rng.next_in(20, 150))),
          dur));
    }
  }

  if (opt.allow_gst && rng.next_bool(0.3)) {
    plan.actions.push_back(FaultAction::gst(
        ms_between(rng, opt.earliest, opt.horizon),
        Duration::millis(static_cast<std::int64_t>(rng.next_in(50, 300))),
        pct_between(rng, 0, 15)));
  }

  if (any_cut) {
    // One final heal guarantees the fault-free tail liveness checks need.
    plan.actions.push_back(FaultAction::heal(opt.horizon));
  }

  std::stable_sort(plan.actions.begin(), plan.actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace marlin::faults
