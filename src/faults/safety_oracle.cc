#include "faults/safety_oracle.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>

namespace marlin::faults {

namespace {

// types::Phase wire values (obs deliberately doesn't depend on types; the
// oracle keeps the same private mirror trace_phase_name uses).
constexpr std::uint8_t kPhasePrePrepare = 0;

}  // namespace

std::string SafetyViolation::describe() const {
  char buf[192];
  if (kind == Kind::kDoubleVote) {
    std::snprintf(buf, sizeof buf,
                  "replica %u double vote: phase %s view %llu height %llu "
                  "blocks %016llx vs %016llx",
                  node, obs::trace_phase_name(phase),
                  static_cast<unsigned long long>(view),
                  static_cast<unsigned long long>(height),
                  static_cast<unsigned long long>(block_a),
                  static_cast<unsigned long long>(block_b));
  } else {
    std::snprintf(buf, sizeof buf,
                  "conflicting commit at height %llu: replica %u delivered "
                  "%016llx, replica %u delivered %016llx",
                  static_cast<unsigned long long>(height), other_node,
                  static_cast<unsigned long long>(block_a), node,
                  static_cast<unsigned long long>(block_b));
  }
  return buf;
}

std::vector<SafetyViolation> check_cross_restart_safety(
    const std::vector<obs::TraceEvent>& events,
    const std::vector<std::uint32_t>& byzantine) {
  auto excluded = [&](std::uint32_t node) {
    return std::find(byzantine.begin(), byzantine.end(), node) !=
           byzantine.end();
  };

  std::vector<SafetyViolation> out;
  // (node, phase, view, height) -> block id of the first binding vote.
  std::map<std::tuple<std::uint32_t, std::uint8_t, ViewNumber, Height>,
           std::uint64_t>
      votes;
  // height -> (block id, first committing node).
  std::map<Height, std::pair<std::uint64_t, std::uint32_t>> commits;
  // Report each offending slot once even if the replica keeps re-voting.
  std::map<std::tuple<std::uint32_t, std::uint8_t, ViewNumber, Height>, bool>
      flagged;

  for (const obs::TraceEvent& e : events) {
    if (excluded(e.node)) continue;
    switch (e.type) {
      case obs::EventType::kVoteSent: {
        if (e.phase == kPhasePrePrepare || e.block == 0) break;
        const auto key = std::make_tuple(e.node, e.phase, e.view, e.height);
        auto [it, inserted] = votes.emplace(key, e.block);
        if (!inserted && it->second != e.block && !flagged[key]) {
          flagged[key] = true;
          SafetyViolation v;
          v.kind = SafetyViolation::Kind::kDoubleVote;
          v.node = e.node;
          v.phase = e.phase;
          v.view = e.view;
          v.height = e.height;
          v.block_a = it->second;
          v.block_b = e.block;
          out.push_back(std::move(v));
        }
        break;
      }
      case obs::EventType::kCommit: {
        if (e.block == 0) break;
        auto [it, inserted] =
            commits.emplace(e.height, std::make_pair(e.block, e.node));
        if (!inserted && it->second.first != e.block) {
          SafetyViolation v;
          v.kind = SafetyViolation::Kind::kConflictingCommit;
          v.node = e.node;
          v.other_node = it->second.second;
          v.height = e.height;
          v.block_a = it->second.first;
          v.block_b = e.block;
          out.push_back(std::move(v));
          it->second = {e.block, e.node};  // report each flip once
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

}  // namespace marlin::faults
