#include "faults/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <variant>

#include "common/json.h"

namespace marlin::faults {

namespace {
constexpr std::string_view kKindNames[] = {
    "crash",      "crash_leader", "recover",    "partition", "heal",
    "silence",    "drop_burst",   "slow_links", "gst",       "byzantine",
    "restart",    "wipe_disk",
};
constexpr std::size_t kKindCount = sizeof kKindNames / sizeof kKindNames[0];

std::optional<FaultKind> kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kKindCount; ++i) {
    if (name == kKindNames[i]) return static_cast<FaultKind>(i);
  }
  return std::nullopt;
}
}  // namespace

const char* fault_kind_name(FaultKind k) {
  const auto i = static_cast<std::size_t>(k);
  return i < kKindCount ? kKindNames[i].data() : "unknown";
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

FaultAction FaultAction::crash(Duration at, ReplicaId r) {
  FaultAction a;
  a.kind = FaultKind::kCrash;
  a.at = at;
  a.replica = r;
  return a;
}

FaultAction FaultAction::crash_leader(Duration at) {
  FaultAction a;
  a.kind = FaultKind::kCrashLeader;
  a.at = at;
  return a;
}

FaultAction FaultAction::recover(Duration at, ReplicaId r) {
  FaultAction a;
  a.kind = FaultKind::kRecover;
  a.at = at;
  a.replica = r;
  return a;
}

FaultAction FaultAction::partition(Duration at,
                                   std::vector<std::vector<ReplicaId>> groups) {
  FaultAction a;
  a.kind = FaultKind::kPartition;
  a.at = at;
  a.groups = std::move(groups);
  return a;
}

FaultAction FaultAction::heal(Duration at) {
  FaultAction a;
  a.kind = FaultKind::kHeal;
  a.at = at;
  return a;
}

FaultAction FaultAction::silence(Duration at, ReplicaId r,
                                 std::vector<ReplicaId> allowed) {
  FaultAction a;
  a.kind = FaultKind::kSilence;
  a.at = at;
  a.replica = r;
  a.allowed = std::move(allowed);
  return a;
}

FaultAction FaultAction::drop_burst(Duration at, double probability,
                                    Duration duration) {
  FaultAction a;
  a.kind = FaultKind::kDropBurst;
  a.at = at;
  a.probability = probability;
  a.duration = duration;
  return a;
}

FaultAction FaultAction::slow_links(Duration at, Duration extra_delay,
                                    Duration duration) {
  FaultAction a;
  a.kind = FaultKind::kSlowLinks;
  a.at = at;
  a.extra_delay = extra_delay;
  a.duration = duration;
  return a;
}

FaultAction FaultAction::gst(Duration at, Duration extra_delay_max,
                             double probability) {
  FaultAction a;
  a.kind = FaultKind::kGst;
  a.at = at;
  a.extra_delay = extra_delay_max;
  a.probability = probability;
  return a;
}

FaultAction FaultAction::byzantine(Duration at, ReplicaId r,
                                   ByzantineMode mode) {
  FaultAction a;
  a.kind = FaultKind::kByzantine;
  a.at = at;
  a.replica = r;
  a.mode = mode;
  return a;
}

FaultAction FaultAction::restart(Duration at, ReplicaId r, Duration down_for) {
  FaultAction a;
  a.kind = FaultKind::kRestart;
  a.at = at;
  a.replica = r;
  a.duration = down_for;
  return a;
}

FaultAction FaultAction::wipe_disk(Duration at, ReplicaId r,
                                   Duration down_for) {
  FaultAction a;
  a.kind = FaultKind::kWipeDisk;
  a.at = at;
  a.replica = r;
  a.duration = down_for;
  return a;
}

// ---------------------------------------------------------------------------
// Plan analysis
// ---------------------------------------------------------------------------

Duration FaultPlan::quiesce_time() const {
  Duration q = Duration::zero();
  for (const FaultAction& a : actions) {
    Duration end = a.at;
    if (a.kind == FaultKind::kDropBurst || a.kind == FaultKind::kSlowLinks ||
        a.kind == FaultKind::kRestart || a.kind == FaultKind::kWipeDisk) {
      // Restart/wipe quiesce when the replica is back up; the recovery
      // itself (WAL replay, state transfer) runs after that instant.
      end = a.at + a.duration;
    }
    q = std::max(q, end);
  }
  return q;
}

std::vector<ReplicaId> FaultPlan::crashed_at_end() const {
  std::map<ReplicaId, bool> down;  // ordered for a stable result
  for (const FaultAction& a : actions) {
    if (a.kind == FaultKind::kCrash) down[a.replica] = true;
    if (a.kind == FaultKind::kRecover || a.kind == FaultKind::kRestart ||
        a.kind == FaultKind::kWipeDisk) {
      down[a.replica] = false;  // restart/wipe targets come back up
    }
  }
  std::vector<ReplicaId> out;
  for (const auto& [r, d] : down) {
    if (d) out.push_back(r);
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Durations are written as whole milliseconds when exact, nanoseconds
/// otherwise, so any plan round-trips losslessly while hand-written plans
/// stay in human units.
void append_duration(std::string& out, const char* ms_key, Duration d) {
  char buf[64];
  const std::int64_t ns = d.as_nanos();
  if (ns % 1000000 == 0) {
    std::snprintf(buf, sizeof buf, "\"%s_ms\":%" PRId64, ms_key,
                  ns / 1000000);
  } else {
    std::snprintf(buf, sizeof buf, "\"%s_ns\":%" PRId64, ms_key, ns);
  }
  out += buf;
}

void append_number(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that parses back exactly.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[48];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

void append_id_list(std::string& out, const std::vector<ReplicaId>& ids) {
  out += '[';
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(ids[i]);
  }
  out += ']';
}

}  // namespace

std::string FaultPlan::to_json() const {
  std::string out = "{\n  \"name\": \"";
  append_escaped(out, name);
  out += "\",\n  \"actions\": [";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const FaultAction& a = actions[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"kind\":\"";
    out += fault_kind_name(a.kind);
    out += "\",";
    append_duration(out, "at", a.at);
    switch (a.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        out += ",\"replica\":" + std::to_string(a.replica);
        break;
      case FaultKind::kCrashLeader:
      case FaultKind::kHeal:
        break;
      case FaultKind::kPartition:
        out += ",\"groups\":[";
        for (std::size_t g = 0; g < a.groups.size(); ++g) {
          if (g) out += ',';
          append_id_list(out, a.groups[g]);
        }
        out += ']';
        break;
      case FaultKind::kSilence:
        out += ",\"replica\":" + std::to_string(a.replica) + ",\"allowed\":";
        append_id_list(out, a.allowed);
        break;
      case FaultKind::kDropBurst:
        out += ",\"probability\":";
        append_number(out, a.probability);
        out += ',';
        append_duration(out, "duration", a.duration);
        break;
      case FaultKind::kSlowLinks:
        out += ',';
        append_duration(out, "extra_delay", a.extra_delay);
        out += ',';
        append_duration(out, "duration", a.duration);
        break;
      case FaultKind::kGst:
        out += ',';
        append_duration(out, "extra_delay", a.extra_delay);
        out += ",\"probability\":";
        append_number(out, a.probability);
        break;
      case FaultKind::kByzantine:
        out += ",\"replica\":" + std::to_string(a.replica);
        out += ",\"mode\":\"";
        out += byzantine_mode_name(a.mode);
        out += '"';
        break;
      case FaultKind::kRestart:
      case FaultKind::kWipeDisk:
        out += ",\"replica\":" + std::to_string(a.replica) + ',';
        append_duration(out, "duration", a.duration);
        break;
    }
    out += '}';
  }
  out += actions.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// JSON plan decoding — the document parser moved to common/json (it is
// shared with cluster configs and bench baselines); only the plan-schema
// readers stay here.
// ---------------------------------------------------------------------------

namespace {

using JsonValue = json::Value;
using JsonArray = json::Array;
using JsonObject = json::Object;

Status plan_error(std::size_t index, const std::string& what) {
  return error(ErrorCode::kInvalidArgument,
               "action " + std::to_string(index) + ": " + what);
}

/// Reads "<key>_ms" (number) or "<key>_ns" (number) from an action object.
std::optional<Duration> read_duration(const JsonObject& o,
                                      const std::string& key) {
  if (auto it = o.find(key + "_ms"); it != o.end()) {
    if (const double* n = it->second.num()) {
      return Duration::nanos(static_cast<std::int64_t>(*n * 1e6));
    }
    return std::nullopt;
  }
  if (auto it = o.find(key + "_ns"); it != o.end()) {
    if (const double* n = it->second.num()) {
      return Duration::nanos(static_cast<std::int64_t>(*n));
    }
  }
  return std::nullopt;
}

std::optional<ReplicaId> read_replica(const JsonObject& o, const char* key) {
  auto it = o.find(key);
  if (it == o.end()) return std::nullopt;
  const double* n = it->second.num();
  if (!n || *n < 0) return std::nullopt;
  return static_cast<ReplicaId>(*n);
}

std::optional<std::vector<ReplicaId>> read_id_list(const JsonValue& v) {
  const JsonArray* arr = v.array();
  if (!arr) return std::nullopt;
  std::vector<ReplicaId> out;
  for (const JsonValue& e : *arr) {
    const double* n = e.num();
    if (!n || *n < 0) return std::nullopt;
    out.push_back(static_cast<ReplicaId>(*n));
  }
  return out;
}

}  // namespace

Result<FaultPlan> FaultPlan::from_json(std::string_view text) {
  auto doc = ::marlin::json::parse(text);
  if (!doc.is_ok()) return doc.status();
  const JsonObject* root = doc.value().object();
  if (!root) {
    return error(ErrorCode::kInvalidArgument, "plan must be a JSON object");
  }

  FaultPlan plan;
  if (auto it = root->find("name"); it != root->end()) {
    if (const std::string* s = it->second.str()) plan.name = *s;
  }
  auto actions_it = root->find("actions");
  if (actions_it == root->end()) return plan;  // an empty plan is valid
  const JsonArray* actions = actions_it->second.array();
  if (!actions) {
    return error(ErrorCode::kInvalidArgument, "\"actions\" must be an array");
  }

  for (std::size_t i = 0; i < actions->size(); ++i) {
    const JsonObject* o = (*actions)[i].object();
    if (!o) return plan_error(i, "must be an object");
    auto kind_it = o->find("kind");
    const std::string* kind_name =
        kind_it != o->end() ? kind_it->second.str() : nullptr;
    if (!kind_name) return plan_error(i, "missing \"kind\"");
    auto kind = kind_from_name(*kind_name);
    if (!kind) return plan_error(i, "unknown kind \"" + *kind_name + "\"");

    FaultAction a;
    a.kind = *kind;
    auto at = read_duration(*o, "at");
    if (!at) return plan_error(i, "missing \"at_ms\"/\"at_ns\"");
    a.at = *at;

    switch (a.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover: {
        auto r = read_replica(*o, "replica");
        if (!r) return plan_error(i, "missing \"replica\"");
        a.replica = *r;
        break;
      }
      case FaultKind::kCrashLeader:
      case FaultKind::kHeal:
        break;
      case FaultKind::kPartition: {
        auto it = o->find("groups");
        const JsonArray* groups = it != o->end() ? it->second.array() : nullptr;
        if (!groups || groups->empty()) {
          return plan_error(i, "partition needs non-empty \"groups\"");
        }
        for (const JsonValue& g : *groups) {
          auto ids = read_id_list(g);
          if (!ids) return plan_error(i, "groups must be arrays of ids");
          a.groups.push_back(std::move(*ids));
        }
        break;
      }
      case FaultKind::kSilence: {
        auto r = read_replica(*o, "replica");
        if (!r) return plan_error(i, "missing \"replica\"");
        a.replica = *r;
        if (auto it = o->find("allowed"); it != o->end()) {
          auto ids = read_id_list(it->second);
          if (!ids) return plan_error(i, "\"allowed\" must be an id array");
          a.allowed = std::move(*ids);
        }
        break;
      }
      case FaultKind::kDropBurst: {
        auto it = o->find("probability");
        const double* p = it != o->end() ? it->second.num() : nullptr;
        if (!p || *p < 0 || *p > 1) {
          return plan_error(i, "needs \"probability\" in [0,1]");
        }
        a.probability = *p;
        auto dur = read_duration(*o, "duration");
        if (!dur) return plan_error(i, "missing \"duration_ms\"");
        a.duration = *dur;
        break;
      }
      case FaultKind::kSlowLinks: {
        auto delay = read_duration(*o, "extra_delay");
        if (!delay) return plan_error(i, "missing \"extra_delay_ms\"");
        a.extra_delay = *delay;
        auto dur = read_duration(*o, "duration");
        if (!dur) return plan_error(i, "missing \"duration_ms\"");
        a.duration = *dur;
        break;
      }
      case FaultKind::kGst: {
        if (auto delay = read_duration(*o, "extra_delay")) {
          a.extra_delay = *delay;
        }
        if (auto it = o->find("probability"); it != o->end()) {
          const double* p = it->second.num();
          if (!p || *p < 0 || *p > 1) {
            return plan_error(i, "\"probability\" must be in [0,1]");
          }
          a.probability = *p;
        }
        break;
      }
      case FaultKind::kByzantine: {
        auto r = read_replica(*o, "replica");
        if (!r) return plan_error(i, "missing \"replica\"");
        a.replica = *r;
        auto it = o->find("mode");
        const std::string* mode = it != o->end() ? it->second.str() : nullptr;
        if (!mode) return plan_error(i, "missing \"mode\"");
        auto m = byzantine_mode_from_name(*mode);
        if (!m) return plan_error(i, "unknown mode \"" + *mode + "\"");
        a.mode = *m;
        break;
      }
      case FaultKind::kRestart:
      case FaultKind::kWipeDisk: {
        auto r = read_replica(*o, "replica");
        if (!r) return plan_error(i, "missing \"replica\"");
        a.replica = *r;
        if (auto dur = read_duration(*o, "duration")) a.duration = *dur;
        break;
      }
    }
    plan.actions.push_back(std::move(a));
  }
  return plan;
}

}  // namespace marlin::faults
