#include "faults/fault_controller.h"

#include <cassert>

namespace marlin::faults {

FaultController::FaultController(marlin::Scheduler& sim, sim::Network& net,
                                 FaultPlan plan, FaultHooks hooks,
                                 std::uint32_t num_replicas,
                                 obs::TraceSink* trace)
    : sim_(sim),
      net_(net),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      n_(num_replicas),
      trace_(trace) {}

void FaultController::arm() {
  assert(!armed_ && "a FaultController arms exactly once");
  armed_ = true;
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    const FaultAction& a = plan_.actions[i];
    if (a.kind == FaultKind::kGst) {
      // Pre-GST chaos must hold from t=0; the action's `at` is the GST.
      net_.set_pre_gst(a.extra_delay, a.probability);
      net_.set_gst(TimePoint::origin() + a.at);
      record(i, a.kind, kNoReplica);
      continue;
    }
    sim_.post_at(TimePoint::origin() + a.at, [this, i] { execute(i); });
  }
}

const ExecutedAction* FaultController::first_crash() const {
  for (const ExecutedAction& e : log_) {
    if (e.kind == FaultKind::kCrash || e.kind == FaultKind::kCrashLeader) {
      return &e;
    }
  }
  return nullptr;
}

void FaultController::record(std::size_t index, FaultKind kind,
                             ReplicaId target) {
  ExecutedAction e;
  e.index = index;
  e.kind = kind;
  e.target = target;
  e.at = sim_.now();
  e.view = hooks_.max_view ? hooks_.max_view() : 0;
  if (trace_) {
    trace_->record({.node = target,
                    .type = obs::EventType::kFaultInjected,
                    .view = e.view,
                    .a = static_cast<std::uint64_t>(kind),
                    .b = index});
  }
  log_.push_back(std::move(e));
}

void FaultController::execute(std::size_t index) {
  const FaultAction& a = plan_.actions[index];
  ReplicaId target = kNoReplica;
  switch (a.kind) {
    case FaultKind::kCrash:
      target = a.replica;
      if (target < n_) net_.set_node_down(target, true);
      break;
    case FaultKind::kCrashLeader:
      target = hooks_.current_leader ? hooks_.current_leader() : 0;
      if (target < n_) net_.set_node_down(target, true);
      break;
    case FaultKind::kRecover:
      target = a.replica;
      if (target < n_) net_.set_node_down(target, false);
      break;
    case FaultKind::kPartition:
      group_of_.clear();
      for (std::uint32_t g = 0; g < a.groups.size(); ++g) {
        for (ReplicaId r : a.groups[g]) group_of_[r] = g;
      }
      install_filter();
      break;
    case FaultKind::kHeal:
      group_of_.clear();
      silenced_.clear();
      install_filter();
      break;
    case FaultKind::kSilence:
      target = a.replica;
      silenced_[a.replica] =
          std::set<ReplicaId>(a.allowed.begin(), a.allowed.end());
      install_filter();
      break;
    case FaultKind::kDropBurst:
      net_.set_extra_drop(a.probability);
      sim_.post(a.duration, [this] { net_.set_extra_drop(0.0); });
      break;
    case FaultKind::kSlowLinks:
      net_.set_extra_delay(a.extra_delay);
      sim_.post(a.duration,
                [this] { net_.set_extra_delay(Duration::zero()); });
      break;
    case FaultKind::kGst:
      break;  // handled at arm() time
    case FaultKind::kByzantine:
      target = a.replica;
      if (hooks_.set_byzantine && a.replica < n_) {
        hooks_.set_byzantine(a.replica, a.mode);
      }
      break;
    case FaultKind::kRestart:
    case FaultKind::kWipeDisk:
      target = a.replica;
      if (target < n_) {
        // Crash now; revive from disk after the down window. The hook
        // reconnects the node itself (and leaves it down on a recovery
        // error), so no set_node_down(false) here.
        net_.set_node_down(target, true);
        const bool wipe = a.kind == FaultKind::kWipeDisk;
        sim_.post(a.duration, [this, target, wipe] {
          if (hooks_.restart_replica) hooks_.restart_replica(target, wipe);
        });
      }
      break;
  }
  record(index, a.kind, target);
}

void FaultController::install_filter() {
  if (group_of_.empty() && silenced_.empty()) {
    net_.set_filter(nullptr);
    return;
  }
  // Copy the state so a later action can rebuild without invalidating the
  // closure the network currently holds.
  auto groups = group_of_;
  auto silenced = silenced_;
  const std::uint32_t n = n_;
  net_.set_filter([groups = std::move(groups), silenced = std::move(silenced),
                   n](sim::NodeId from, sim::NodeId to) {
    if (from >= n || to >= n || from == to) return true;  // client edges pass
    if (!groups.empty()) {
      // Unlisted replicas ride with group 0.
      auto g = [&](sim::NodeId x) {
        auto it = groups.find(x);
        return it == groups.end() ? 0u : it->second;
      };
      if (g(from) != g(to)) return false;
    }
    if (auto it = silenced.find(from); it != silenced.end()) {
      if (!it->second.count(to)) return false;
    }
    return true;
  });
}

}  // namespace marlin::faults
