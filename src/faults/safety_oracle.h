// Cross-restart safety oracle: scans a protocol event trace for the two
// safety violations a broken crash-recovery path produces.
//
//  * Double vote — one replica sends two binding votes for different
//    blocks at the same (phase, view, height). Because restarted replicas
//    keep their node id, the check spans incarnations: a replica that
//    forgets its voted state across a restart (write-ahead voting broken,
//    or an amnesia restart without state transfer) re-votes and trips
//    this. Marlin's pre-prepare votes are exempt — the protocol
//    legitimately lets a replica pre-prepare-vote for up to two blocks at
//    one (view, height) (paper rule R1); only PREPARE / PRE-COMMIT /
//    COMMIT votes bind.
//  * Conflicting commit — two replicas (or two incarnations of one)
//    deliver different blocks at the same height.
//
// Byzantine-marked nodes are excluded: an equivocator double-votes by
// design, and the point of the oracle is to catch *honest* replicas made
// unsafe by recovery bugs.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace marlin::faults {

struct SafetyViolation {
  enum class Kind : std::uint8_t { kDoubleVote, kConflictingCommit };
  Kind kind = Kind::kDoubleVote;
  /// Offending replica (double vote), or the second committer (conflict).
  std::uint32_t node = obs::kNoNode;
  /// Second node involved (conflicting commit only; kNoNode otherwise).
  std::uint32_t other_node = obs::kNoNode;
  std::uint8_t phase = obs::kNoPhase;  // double vote only
  ViewNumber view = 0;                 // double vote only
  Height height = 0;
  std::uint64_t block_a = 0;  // trace block ids of the two blocks
  std::uint64_t block_b = 0;

  /// One-line human description ("replica 2 double vote ...").
  std::string describe() const;
};

/// Scans `events` (any order; typically TraceSink::events()). Nodes listed
/// in `byzantine` are skipped entirely.
std::vector<SafetyViolation> check_cross_restart_safety(
    const std::vector<obs::TraceEvent>& events,
    const std::vector<std::uint32_t>& byzantine = {});

}  // namespace marlin::faults
