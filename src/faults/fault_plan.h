// Declarative fault plans: a timeline of fault actions executed against a
// simulated cluster by a FaultController. A plan is plain data — it can be
// written by hand as JSON (`marlin_sim --faults plan.json`), generated
// randomly from a seed (chaos.h), round-tripped losslessly, and replayed
// deterministically: the same (seed, plan) pair always produces the same
// run, byte for byte.
//
// Action vocabulary (docs/FAULTS.md documents the JSON schema):
//   crash / crash_leader / recover   — crash-stop faults, id or "whoever
//                                      leads when the action fires"
//   partition / heal                 — bidirectional replica group splits
//   silence                          — directional: a replica's messages
//                                      reach only an allow-listed set (the
//                                      paper's QC-hiding leader)
//   drop_burst / slow_links          — windows of random loss / added
//                                      one-way delay on every link
//   gst                              — delayed global stabilization time:
//                                      the network is asynchronous (extra
//                                      delay + loss) until `at`
//   byzantine                        — switch a replica's outbound wire
//                                      behaviour to a ByzantineMode
//   restart / wipe_disk              — true crash-recovery: the replica
//                                      goes down at `at` and revives after
//                                      `duration` from its persisted state
//                                      (restart) or from an empty DB that
//                                      must catch up via state transfer
//                                      (wipe_disk / amnesia)
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "faults/byzantine.h"

namespace marlin::faults {

enum class FaultKind : std::uint8_t {
  kCrash = 0,
  kCrashLeader,  // resolves the current leader when the action fires
  kRecover,
  kPartition,
  kHeal,       // clears partitions and silences
  kSilence,    // replica's sends reach only `allowed` (directional)
  kDropBurst,  // window of extra random loss on all links
  kSlowLinks,  // window of extra one-way delay on all links
  kGst,        // asynchronous (pre-GST chaos) until `at`
  kByzantine,  // switch a replica's ByzantineMode
  kRestart,    // crash, then revive from disk after `duration`
  kWipeDisk,   // crash, wipe the DB, revive amnesiac after `duration`
};

/// Stable snake_case name ("crash_leader", ...), used by the JSON schema
/// and the fault_injected trace event.
const char* fault_kind_name(FaultKind k);

struct FaultAction {
  FaultKind kind = FaultKind::kCrash;
  /// When the action fires, relative to simulation origin. For kGst this
  /// *is* the GST: chaos applies before it, bounds hold after.
  Duration at = Duration::zero();
  /// Target replica (kCrash / kRecover / kSilence / kByzantine).
  ReplicaId replica = 0;
  /// kPartition: replica groups; members of different groups cannot
  /// exchange messages. Replicas not listed join the first group.
  std::vector<std::vector<ReplicaId>> groups;
  /// kSilence: destinations the silenced replica may still reach.
  std::vector<ReplicaId> allowed;
  /// kDropBurst: loss probability; kGst: pre-GST loss probability.
  double probability = 0.0;
  /// kSlowLinks: added one-way delay; kGst: max pre-GST extra delay.
  Duration extra_delay = Duration::zero();
  /// kDropBurst / kSlowLinks: window length (the fault clears at
  /// `at + duration`). kRestart / kWipeDisk: down time before the replica
  /// revives from disk.
  Duration duration = Duration::zero();
  /// kByzantine: the mode to install (kHonest reverts the replica).
  ByzantineMode mode = ByzantineMode::kHonest;

  bool operator==(const FaultAction&) const = default;

  // -- factories (keep call sites declarative) ------------------------------
  static FaultAction crash(Duration at, ReplicaId r);
  static FaultAction crash_leader(Duration at);
  static FaultAction recover(Duration at, ReplicaId r);
  static FaultAction partition(Duration at,
                               std::vector<std::vector<ReplicaId>> groups);
  static FaultAction heal(Duration at);
  static FaultAction silence(Duration at, ReplicaId r,
                             std::vector<ReplicaId> allowed);
  static FaultAction drop_burst(Duration at, double probability,
                                Duration duration);
  static FaultAction slow_links(Duration at, Duration extra_delay,
                                Duration duration);
  static FaultAction gst(Duration at, Duration extra_delay_max,
                         double probability);
  static FaultAction byzantine(Duration at, ReplicaId r, ByzantineMode mode);
  static FaultAction restart(Duration at, ReplicaId r, Duration down_for);
  static FaultAction wipe_disk(Duration at, ReplicaId r, Duration down_for);
};

struct FaultPlan {
  std::string name;
  std::vector<FaultAction> actions;

  bool empty() const { return actions.empty(); }

  /// Earliest instant after which no transient disruption remains active:
  /// every partition/silence healed, every drop/slow window over, GST
  /// passed, and every one-shot action fired. Persistent faults (≤ f
  /// crashes, Byzantine modes) do not block liveness and therefore do not
  /// extend quiesce. Liveness checks start here.
  Duration quiesce_time() const;

  /// Replicas that are down at the end of the plan (crashed, never
  /// recovered). kCrashLeader resolves at run time and is NOT counted —
  /// plans mixing crash_leader with liveness checks should budget for it.
  std::vector<ReplicaId> crashed_at_end() const;

  /// Pretty-printed JSON document (the schema in docs/FAULTS.md).
  std::string to_json() const;
  /// Parses a JSON plan; rejects unknown kinds/fields' types but ignores
  /// unknown keys (forward compatibility).
  static Result<FaultPlan> from_json(std::string_view json);

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace marlin::faults
