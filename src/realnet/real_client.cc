#include "realnet/real_client.h"

#include <algorithm>

namespace marlin::realnet {

void RealClient::start() {
  for (std::uint32_t i = 0; i < config_.window; ++i) issue_next();
  flush_burst();
}

void RealClient::quiesce() {
  quiesced_ = true;
  for (auto& [id, p] : pending_) p.retransmit.cancel();
}

void RealClient::issue_next() {
  if (quiesced_) return;
  if (config_.max_requests != 0 && next_request_ > config_.max_requests) {
    return;
  }
  const RequestId id = next_request_++;
  const Bytes payload = rng_.next_bytes(config_.payload_size);
  payloads_[id] = payload;
  Pending& p = pending_[id];
  p.first_sent = mono_now();
  burst_.push_back(types::Operation{config_.id, id, payload});
  if (config_.trace) {
    config_.trace->record({.node = transport_.node_id(),
                           .type = obs::EventType::kClientSubmit,
                           .a = id,
                           .b = config_.id});
  }
  arm_retransmit(id);
}

void RealClient::arm_retransmit(RequestId id) {
  if (quiesced_) return;
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  it->second.retransmit.cancel();
  it->second.retransmit = loop_.schedule(config_.retransmit_timeout, [this, id] {
    auto pit = pending_.find(id);
    if (pit == pending_.end()) return;
    ++retransmissions_;
    burst_.push_back(types::Operation{config_.id, id, payloads_[id]});
    flush_burst();
    arm_retransmit(id);
  });
}

void RealClient::flush_burst() {
  if (burst_.empty()) return;
  types::ClientRequestMsg msg;
  msg.ops = std::move(burst_);
  burst_.clear();
  // Serialize once; every replica's egress queue shares the same buffer.
  const Payload wire(
      types::make_envelope(types::MsgKind::kClientRequest, msg).serialize());
  for (ReplicaId r = 0; r < config_.quorum.n; ++r) {
    transport_.send(r, wire);
  }
}

void RealClient::on_message(std::uint32_t from, Payload payload) {
  (void)from;
  auto env = types::Envelope::parse(payload.view());
  if (!env.is_ok() || env.value().kind != types::MsgKind::kClientReply) return;
  auto reply = types::open_envelope<types::ClientReplyMsg>(env.value());
  if (!reply.is_ok()) return;
  const types::ClientReplyMsg& m = reply.value();
  if (m.client != config_.id) return;

  for (RequestId id : m.requests) {
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    auto& acks = it->second.acks_by_result[m.result];
    acks.insert(m.replica);
    if (acks.size() < config_.quorum.reply_quorum()) continue;

    latency_.record(mono_now() - it->second.first_sent);
    completed_.record(mono_now());
    if (config_.trace) {
      std::uint64_t block_id = 0;
      const std::size_t n = std::min<std::size_t>(m.result.size(), 8);
      for (std::size_t i = 0; i < n; ++i) {
        block_id = (block_id << 8) | m.result[i];
      }
      config_.trace->record({.node = transport_.node_id(),
                             .type = obs::EventType::kReplyAccepted,
                             .view = m.view,
                             .height = m.height,
                             .block = block_id,
                             .a = id,
                             .b = config_.id});
    }
    it->second.retransmit.cancel();
    pending_.erase(it);
    payloads_.erase(id);
    issue_next();
  }
  flush_burst();
}

}  // namespace marlin::realnet
