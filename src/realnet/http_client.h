// Minimal blocking HTTP/1.0 GET client for scraping the telemetry plane
// (tools/marlin_top, tests, CI probes). Deliberately tiny: one request per
// connection, close-delimited bodies, no TLS, no redirects — exactly the
// subset obs::TelemetryServer speaks. Lives in marlin_netcore so tools and
// tests can link it without the full realnet runtime.
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.h"
#include "common/status.h"

namespace marlin::realnet {

struct HttpResponse {
  int status_code = 0;   // e.g. 200, 404, 503
  std::string body;      // payload after the header block
};

/// Blocking GET http://host:port/path with an overall wall-clock budget
/// covering connect + request + full response. `host` is a dotted-quad
/// IPv4 address (no DNS). Errors: kUnavailable (connect/refused/timeout),
/// kIoError (socket errors mid-exchange), kCorruption (malformed response).
Result<HttpResponse> http_get(const std::string& host, std::uint16_t port,
                              const std::string& path, Duration timeout);

}  // namespace marlin::realnet
