#include "realnet/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "realnet/clock.h"

namespace marlin::realnet {

namespace {

// Milliseconds left before `deadline`, clamped to >= 0.
int ms_left(TimePoint deadline) {
  const std::int64_t ns = (deadline - mono_now()).as_nanos();
  if (ns <= 0) return 0;
  return static_cast<int>((ns + 999'999) / 1'000'000);
}

// Waits for `events` on `fd` until `deadline`; false on timeout/error.
bool wait_fd(int fd, short events, TimePoint deadline) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int rc = poll(&p, 1, ms_left(deadline));
    if (rc > 0) return true;
    if (rc == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

}  // namespace

Result<HttpResponse> http_get(const std::string& host, std::uint16_t port,
                              const std::string& path, Duration timeout) {
  const TimePoint deadline = mono_now() + timeout;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return error(ErrorCode::kInvalidArgument, "bad IPv4 address: " + host);
  }

  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return error(ErrorCode::kIoError, "socket: failed");
  struct FdGuard {
    int fd;
    ~FdGuard() { close(fd); }
  } guard{fd};

  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      return error(ErrorCode::kUnavailable, "connect: refused");
    }
    if (!wait_fd(fd, POLLOUT, deadline)) {
      return error(ErrorCode::kUnavailable, "connect: timed out");
    }
    int err = 0;
    socklen_t len = sizeof err;
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      return error(ErrorCode::kUnavailable,
                   std::string("connect: ") + std::strerror(err));
    }
  }

  const std::string req = "GET " + path +
                          " HTTP/1.0\r\n"
                          "Host: " +
                          host + "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = send(fd, req.data() + sent, req.size() - sent,
                           MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(fd, POLLOUT, deadline)) {
        return error(ErrorCode::kUnavailable, "send: timed out");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return error(ErrorCode::kIoError, "send: connection lost");
  }

  // HTTP/1.0 close-delimited: read until EOF (bounded by the deadline).
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      raw.append(buf, static_cast<std::size_t>(n));
      if (raw.size() > (64u << 20)) {
        return error(ErrorCode::kCorruption, "response exceeds 64 MiB");
      }
      continue;
    }
    if (n == 0) break;  // EOF: response complete
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_fd(fd, POLLIN, deadline)) {
        return error(ErrorCode::kUnavailable, "recv: timed out");
      }
      continue;
    }
    if (errno == EINTR) continue;
    return error(ErrorCode::kIoError, "recv: connection lost");
  }

  // Parse "HTTP/1.x NNN ..." status line + skip headers.
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return error(ErrorCode::kCorruption, "malformed status line");
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    return error(ErrorCode::kCorruption, "malformed status line");
  }
  HttpResponse resp;
  resp.status_code = std::atoi(raw.c_str() + sp + 1);
  if (resp.status_code < 100 || resp.status_code > 599) {
    return error(ErrorCode::kCorruption, "bad status code");
  }
  const std::size_t body_at = raw.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    return error(ErrorCode::kCorruption, "missing header terminator");
  }
  resp.body = raw.substr(body_at + 4);
  return resp;
}

}  // namespace marlin::realnet
