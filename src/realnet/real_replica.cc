#include "realnet/real_replica.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/serialize.h"
#include "obs/telemetry.h"

namespace marlin::realnet {

using types::Envelope;
using types::MsgKind;

namespace {
// Same key the simulated host uses (runtime/replica_process.cc): a data dir
// written under simulation could in principle be relaunched here.
constexpr const char* kPStateKey = "meta/pstate";
}  // namespace

RealReplica::RealReplica(EventLoop& loop, TcpTransport& transport,
                         const crypto::SignatureSuite& suite,
                         RealReplicaConfig config)
    : loop_(loop),
      transport_(transport),
      suite_(suite),
      config_(std::move(config)),
      pacemaker_(config_.pacemaker.scaled_for(config_.replica.quorum.n)) {
  last_activity_ = mono_now();
  // Loop/wheel health histograms live in this replica's registry (std::map
  // nodes are reference-stable); the loop records into them from its own
  // thread, the same thread that serves /metrics.
  loop_.set_iteration_histogram(&metrics_.latency("loop.iteration"));
  loop_.set_wake_histogram(&metrics_.latency("loop.wake_delay"));
  loop_.set_timer_drift_histogram(&metrics_.latency("timer.fire_drift"));
  if (config_.data_dir.empty()) {
    db_env_ = storage::make_mem_env();
  } else {
    auto env = storage::make_posix_env(config_.data_dir);
    if (!env.is_ok()) {
      init_status_ = env.status();
      return;
    }
    db_env_ = std::move(env).take();
  }
  storage::KVStoreOptions db_options;
  db_options.sync_writes = config_.sync_writes;
  db_options.trace = config_.trace;
  db_options.trace_node = config_.replica.id;
  auto db = storage::KVStore::open(*db_env_, db_options);
  if (!db.is_ok()) {
    init_status_ = db.status();
    return;
  }
  db_ = std::move(db).take();

  // Relaunch-from-disk: restore the persisted consensus state if this data
  // dir has one (write-ahead voting makes it the safety-critical record of
  // every vote the previous incarnation cast).
  consensus::PersistentState ps;
  if (auto rec = db_->get(kPStateKey); rec.is_ok()) {
    Reader r(rec.value());
    auto decoded = consensus::PersistentState::decode(r);
    if (decoded.is_ok() && r.expect_exhausted().is_ok()) {
      ps = std::move(decoded).take();
      recovered_ = true;
    }
  }
  make_protocol();
  if (recovered_) {
    protocol_->restore(ps);
    metrics_.counter("recovery.restarts") += 1;
    trace({.type = obs::EventType::kReplicaRestart,
           .view = protocol_->current_view(),
           .height = ps.committed_height,
           .b = db_->wal_records_replayed()});
  }
}

void RealReplica::make_protocol() {
  if (config_.protocol == runtime::ProtocolKind::kMarlin) {
    protocol_ = std::make_unique<consensus::MarlinReplica>(config_.replica,
                                                           suite_, *this);
  } else {
    protocol_ = std::make_unique<consensus::HotStuffReplica>(config_.replica,
                                                             suite_, *this);
  }
}

void RealReplica::start() {
  last_activity_ = mono_now();
  protocol_->start();
}

void RealReplica::on_message(std::uint32_t from, Payload payload) {
  auto env = Envelope::parse(payload.view());
  if (!env.is_ok()) return;
  if (env.value().kind == MsgKind::kSnapshotResponse) {
    metrics_.counter("state_transfer.bytes") += payload.size();
  }
  common::VerifyExecutor& exec =
      config_.verify_pool != nullptr
          ? static_cast<common::VerifyExecutor&>(*config_.verify_pool)
          : common::InlineVerifyExecutor::instance();
  protocol_->ingress(static_cast<ReplicaId>(from), std::move(env).take(), exec);
}

// ---------------------------------------------------------------------------
// ProtocolEnv
// ---------------------------------------------------------------------------

void RealReplica::send(ReplicaId to, const Envelope& env) {
  send_wire(to, env);
}

void RealReplica::send_wire(ReplicaId to, const Envelope& env,
                            const Payload* pre) {
  Payload wire = pre != nullptr ? *pre : Payload(env.serialize());
  trace({.type = obs::EventType::kMsgSent,
         .kind = static_cast<std::uint8_t>(env.kind),
         .view = protocol_ ? protocol_->current_view() : 0,
         .a = wire.size()});
  transport_.send(to, std::move(wire));
}

void RealReplica::broadcast(const Envelope& env) {
  // Serialize once; all n destinations (including the loopback self-send)
  // share the refcounted buffer — same zero-copy shape as the simulator.
  const Payload shared(env.serialize());
  const std::uint32_t n = config_.replica.quorum.n;
  for (ReplicaId r = 0; r < n; ++r) send_wire(r, env, &shared);
}

void RealReplica::deliver(const types::Block& block,
                          const std::vector<types::Operation>& executable) {
  if (!commit_seen_in_view_) commit_seen_in_view_ = true;

  char key[32];
  std::snprintf(key, sizeof key, "blk/%012llu",
                static_cast<unsigned long long>(block.height));
  Writer rec;
  rec.u64(block.view);
  rec.u64(block.height);
  rec.varint(executable.size());
  rec.raw(block.hash().view());
  (void)db_->put(key, rec.buffer());

  if (++blocks_since_checkpoint_ >= config_.checkpoint_interval) {
    (void)db_->checkpoint();
    blocks_since_checkpoint_ = 0;
    metrics_.counter("storage.checkpoints") += 1;
  }

  // One batched reply per client, padded so wire bytes equal
  // |requests| × reply_size (identical accounting to the simulated host).
  std::map<ClientId, std::vector<RequestId>> by_client;
  for (const types::Operation& op : executable) {
    by_client[op.client].push_back(op.request);
  }
  const types::Hash256 block_hash = block.hash();
  for (auto& [client, requests] : by_client) {
    types::ClientReplyMsg reply;
    reply.client = client;
    reply.replica = config_.replica.id;
    reply.view = block.view;
    reply.height = block.height;
    reply.result.assign(block_hash.data.begin(), block_hash.data.begin() + 8);
    const std::size_t body_overhead = 45 + 8 * requests.size();
    const std::size_t target = config_.reply_size * requests.size();
    if (target > body_overhead) {
      reply.padding.assign(target - body_overhead, 0xcd);
    }
    reply.requests = std::move(requests);
    Payload wire(
        types::make_envelope(MsgKind::kClientReply, reply).serialize());
    trace({.type = obs::EventType::kMsgSent,
           .kind = static_cast<std::uint8_t>(MsgKind::kClientReply),
           .view = block.view,
           .height = block.height,
           .a = wire.size()});
    transport_.send(config_.client_base + client, std::move(wire));
  }

  last_activity_ = mono_now();
  committed_ops_.record(mono_now(), executable.size());
  metrics_.counter("replica.committed_blocks") += 1;
  metrics_.counter("replica.committed_ops") += executable.size();
  metrics_.gauge("replica.committed_height") =
      static_cast<double>(block.height);
  metrics_.sizes("replica.block_ops").record(executable.size());
}

void RealReplica::entered_view(ViewNumber v) {
  last_activity_ = mono_now();
  trace({.type = obs::EventType::kViewEntered, .view = v});
  metrics_.gauge("replica.view") = static_cast<double>(v);
  commit_seen_in_view_ = false;
  pacemaker_.on_view_entered();
  arm_view_timer();
}

void RealReplica::progressed() { pacemaker_.on_progress(); }

void RealReplica::persist_state(const consensus::PersistentState& state) {
  // Write-ahead voting: this put returns before the protocol resumes and
  // emits the dependent vote, so the vote is durable first. (With
  // sync_writes the WAL is also fsynced; without it, durability is
  // process-crash-level, which is what the kill+relaunch tests exercise.)
  Writer w;
  state.encode(w);
  (void)db_->put(kPStateKey, w.buffer());
  metrics_.counter("storage.pstate_writes") += 1;
}

void RealReplica::arm_view_timer() {
  view_timer_.cancel();
  view_timer_ = loop_.schedule(
      pacemaker_.view_timeout(config_.replica.id, protocol_->current_view()),
      [this] {
        // The timer firing at all proves the loop is turning; healthz
        // freshness rides on it even across idle views.
        last_activity_ = mono_now();
        // Same policy as the simulated host: recovery ticks retransmit the
        // snapshot request; idle views don't churn; the advance is
        // quorum-gated inside the protocol.
        if (protocol_->recovering()) {
          protocol_->recovery_tick();
          arm_view_timer();
          return;
        }
        const bool idle = !config_.pacemaker.rotate_on_timer &&
                          protocol_->pool().empty();
        if (!idle && pacemaker_.should_advance_on_fire()) {
          protocol_->on_view_timeout();
        }
        arm_view_timer();
      });
}

void RealReplica::charge_signs(std::uint32_t count) {
  metrics_.counter("crypto.signs") += count;
}
void RealReplica::charge_verifies(std::uint32_t count) {
  metrics_.counter("crypto.verifies") += count;
}
void RealReplica::charge_hash_bytes(std::size_t bytes) {
  metrics_.counter("crypto.hash_bytes") += bytes;
}
void RealReplica::charge_pairings(std::uint32_t count) {
  metrics_.counter("crypto.pairings") += count;
}
void RealReplica::charge_threshold_signs(std::uint32_t count) {
  metrics_.counter("crypto.threshold_signs") += count;
}
void RealReplica::charge_combine_shares(std::uint32_t count) {
  metrics_.counter("crypto.combine_shares") += count;
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

bool RealReplica::healthy() const {
  // Three missed view timers (at the current backoff) or 5 s, whichever is
  // longer: tolerant of view-change grind, still sharp on a wedged loop.
  const Duration window =
      std::max(Duration::seconds(5), pacemaker_.view_timeout() * 3);
  return mono_now() - last_activity_ <= window;
}

std::string RealReplica::status_json() {
  std::string out = "{";
  out += "\"node\":" + std::to_string(config_.replica.id);
  out += ",\"protocol\":\"";
  out += config_.protocol == runtime::ProtocolKind::kMarlin ? "marlin"
                                                            : "hotstuff";
  out += "\"";
  out += ",\"view\":" + std::to_string(protocol_->current_view());
  out += ",\"committed_height\":" +
         std::to_string(static_cast<std::uint64_t>(
             metrics_.gauge_value("replica.committed_height")));
  out += ",\"committed_ops\":" + std::to_string(committed_ops_.total());
  out += ",\"txpool\":" + std::to_string(protocol_->pool().pending());
  out += std::string(",\"recovered\":") + (recovered_ ? "true" : "false");
  out += std::string(",\"recovering\":") +
         (protocol_->recovering() ? "true" : "false");
  out += std::string(",\"healthy\":") + (healthy() ? "true" : "false");
  out += ",\"queued_bytes\":" + std::to_string(transport_.queued_bytes());
  out += ",\"peers\":[";
  bool first = true;
  for (const TcpTransport::PeerStatus& p : transport_.peer_statuses()) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(p.id);
    out += std::string(",\"connected\":") + (p.connected ? "true" : "false");
    out += std::string(",\"connecting\":") +
           (p.connecting ? "true" : "false");
    out += ",\"queued_bytes\":" + std::to_string(p.queued_bytes);
    out += ",\"high_water_bytes\":" + std::to_string(p.high_water_bytes);
    out += ",\"backoff_ms\":" + std::to_string(p.backoff_ms);
    out += "}";
  }
  out += "]}";
  return out;
}

obs::MetricsRegistry RealReplica::snapshot_metrics() const {
  obs::MetricsRegistry snap = metrics_;
  transport_.export_metrics(snap);
  // Same labeling as sim::Network::export_metrics — per-node totals under
  // node=<id>, per-kind totals under kind=<name> — so a merged realnet
  // series is key-compatible with a sim series.
  obs::net_stats_to_metrics(transport_.stats(), snap,
                            "node=" + std::to_string(config_.replica.id));
  snap.counter("loop.iterations") += loop_.iterations();
  snap.counter("loop.posted_tasks") += loop_.posted_tasks_run();
  snap.counter("loop.timers_fired") += loop_.timers_fired();
  if (config_.verify_pool != nullptr) {
    config_.verify_pool->export_metrics(snap);
  }
  return snap;
}

}  // namespace marlin::realnet
