// Hashed timing wheel driving the pacemaker and reconnect backoff on the
// real runtime. Mirrors the simulator's timer semantics (schedule_at +
// generation-counted cancellation handles, see simnet/simulator.h) so the
// replica/client hosts can be written against one timer idiom on either
// transport. Single-threaded: owned and advanced by one EventLoop.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "common/sim_time.h"

namespace marlin::realnet {

class TimerWheel;

/// Cancellation handle. Default-constructed handles are inert; cancelling
/// an already-fired or stale handle is a no-op (generation check).
class TimerHandle {
 public:
  TimerHandle() = default;
  void cancel();
  bool active() const;

 private:
  friend class TimerWheel;
  TimerHandle(TimerWheel* wheel, std::uint32_t slot, std::uint32_t gen)
      : wheel_(wheel), slot_(slot), gen_(gen) {}

  TimerWheel* wheel_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class TimerWheel {
 public:
  /// 1 ms ticks, 1024 buckets (~1 s per rotation): pacemaker timeouts are
  /// hundreds of ms, reconnect backoff seconds — both a handful of
  /// rotations at most.
  static constexpr std::int64_t kTickNanos = 1'000'000;
  static constexpr std::size_t kBuckets = 1024;

  /// Schedules `fn` at absolute time `when` (clamped to now for past
  /// deadlines: they fire on the next advance, never synchronously).
  TimerHandle schedule_at(TimePoint when, std::function<void()> fn);

  /// Fires every pending timer with deadline <= now, in deadline order
  /// within a bucket. Callbacks may schedule/cancel freely.
  void advance(TimePoint now);

  /// Nanoseconds until the earliest pending deadline, clamped to >= 0;
  /// -1 when no timers are pending (epoll_wait's "block forever").
  std::int64_t next_timeout_ns(TimePoint now) const;

  std::size_t pending() const { return pending_; }

  // -- instrumentation -------------------------------------------------------
  /// Total timers fired (cancelled entries excluded).
  std::uint64_t fired() const { return fired_; }

  /// When set, every fired timer records `advance_now - deadline` (how late
  /// the wheel ran it). Non-owning; the histogram must outlive the wheel or
  /// be detached with nullptr. Wheel and histogram live on the loop thread.
  void set_fire_drift_histogram(LatencyHistogram* h) { drift_hist_ = h; }

 private:
  friend class TimerHandle;

  struct Entry {
    TimePoint deadline;
    std::uint32_t slot;  // slab index for cancellation
    std::function<void()> fn;
  };

  struct Slot {
    std::uint32_t gen = 0;
    bool pending = false;
    bool cancelled = false;
  };

  static std::size_t bucket_of(TimePoint t) {
    return static_cast<std::size_t>(
               static_cast<std::uint64_t>(t.as_nanos()) /
               static_cast<std::uint64_t>(kTickNanos)) %
           kBuckets;
  }

  std::uint32_t alloc_slot();

  std::vector<Entry> buckets_[kBuckets];
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t pending_ = 0;
  TimePoint last_advance_;
  std::uint64_t fired_ = 0;
  LatencyHistogram* drift_hist_ = nullptr;
};

}  // namespace marlin::realnet
