// Hashed timing wheel driving the pacemaker and reconnect backoff on the
// real runtime. It is the realnet implementation of marlin::Scheduler
// (common/scheduler.h): same schedule_at + generation-counted cancellation
// protocol as the simulated engines, so host code written against
// Scheduler& runs on either transport. Single-threaded: owned and advanced
// by one EventLoop; now() is the time of the last advance (the loop
// advances every iteration, so it trails the monotonic clock by at most
// one epoll wait).
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/scheduler.h"
#include "common/sim_time.h"

namespace marlin::realnet {

/// Cancellation handles are the shared generation-counted kind; the alias
/// keeps the historical realnet::TimerHandle spelling working.
using TimerHandle = marlin::TimerHandle;

class TimerWheel final : public marlin::Scheduler {
 public:
  /// 1 ms ticks, 1024 buckets (~1 s per rotation): pacemaker timeouts are
  /// hundreds of ms, reconnect backoff seconds — both a handful of
  /// rotations at most.
  static constexpr std::int64_t kTickNanos = 1'000'000;
  static constexpr std::size_t kBuckets = 1024;

  /// Time of the last advance() — the loop iteration's timestamp.
  TimePoint now() const override { return last_advance_; }

  /// Schedules `fn` at absolute time `when` (clamped to now for past
  /// deadlines: they fire on the next advance, never synchronously).
  TimerHandle schedule_at(TimePoint when, EventFn fn) override;

  /// Fire-and-forget (still consumes a wheel slot; the wheel has no
  /// handle-free fast path, timers here are rare and coarse).
  void post_at(TimePoint when, EventFn fn) override { schedule_at(when, std::move(fn)); }

  /// Fires every pending timer with deadline <= now, in deadline order
  /// within a bucket. Callbacks may schedule/cancel freely.
  void advance(TimePoint now);

  /// Nanoseconds until the earliest pending deadline, clamped to >= 0;
  /// -1 when no timers are pending (epoll_wait's "block forever").
  std::int64_t next_timeout_ns(TimePoint now) const;

  std::size_t pending() const { return pending_; }

  // -- instrumentation -------------------------------------------------------
  /// Total timers fired (cancelled entries excluded).
  std::uint64_t fired() const { return fired_; }

  /// When set, every fired timer records `advance_now - deadline` (how late
  /// the wheel ran it). Non-owning; the histogram must outlive the wheel or
  /// be detached with nullptr. Wheel and histogram live on the loop thread.
  void set_fire_drift_histogram(LatencyHistogram* h) { drift_hist_ = h; }

 protected:
  void cancel_timer(std::uint32_t slot, std::uint32_t gen) override {
    if (slot >= slots_.size()) return;
    Slot& s = slots_[slot];
    if (s.gen == gen && s.pending) s.cancelled = true;
  }
  bool timer_active(std::uint32_t slot, std::uint32_t gen) const override {
    if (slot >= slots_.size()) return false;
    const Slot& s = slots_[slot];
    return s.gen == gen && s.pending && !s.cancelled;
  }

 private:
  struct Entry {
    TimePoint deadline;
    std::uint32_t slot;  // slab index for cancellation
    EventFn fn;
  };

  struct Slot {
    std::uint32_t gen = 0;
    bool pending = false;
    bool cancelled = false;
  };

  static std::size_t bucket_of(TimePoint t) {
    return static_cast<std::size_t>(
               static_cast<std::uint64_t>(t.as_nanos()) /
               static_cast<std::uint64_t>(kTickNanos)) %
           kBuckets;
  }

  std::uint32_t alloc_slot();

  std::vector<Entry> buckets_[kBuckets];
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t pending_ = 0;
  TimePoint last_advance_;
  std::uint64_t fired_ = 0;
  LatencyHistogram* drift_hist_ = nullptr;
};

}  // namespace marlin::realnet
