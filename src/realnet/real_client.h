// Closed-loop BFT client on the real runtime: same protocol behaviour as
// runtime::ClientProcess (broadcast each request to all replicas, accept on
// f+1 matching replies, retransmit on timeout), with wheel timers and TCP
// sends in place of simulator events. Runs on its node's EventLoop thread.
#pragma once

#include <map>
#include <set>

#include "common/histogram.h"
#include "common/ids.h"
#include "common/rng.h"
#include "obs/trace.h"
#include "realnet/tcp_transport.h"
#include "types/messages.h"

namespace marlin::realnet {

struct RealClientConfig {
  ClientId id = 0;
  QuorumParams quorum;
  std::uint32_t window = 1;
  std::size_t payload_size = 150;
  Duration retransmit_timeout = Duration::seconds(4);
  /// Stop issuing new requests after this many (0 = unlimited).
  std::uint64_t max_requests = 0;
  /// Payload entropy seed (cluster seed + client id keeps runs repeatable).
  std::uint64_t rng_seed = 1;
  obs::TraceSink* trace = nullptr;
};

class RealClient {
 public:
  RealClient(EventLoop& loop, TcpTransport& transport, RealClientConfig config)
      : loop_(loop),
        transport_(transport),
        config_(config),
        rng_(config.rng_seed) {}

  /// Issues the first window of requests. Loop thread only.
  void start();

  /// Transport ingress (wired by the cluster). Loop thread only.
  void on_message(std::uint32_t from, Payload payload);

  /// Stops issuing and retransmitting (shutdown sequencing: quiesced
  /// clients keep accepting replies while replicas drain). Loop thread.
  void quiesce();

  WindowedCounter& completed() { return completed_; }
  LatencyHistogram& latency() { return latency_; }
  std::uint64_t issued() const { return next_request_ - 1; }
  std::uint64_t in_flight() const { return pending_.size(); }
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct Pending {
    TimePoint first_sent;
    std::map<Bytes, std::set<ReplicaId>> acks_by_result;
    TimerHandle retransmit;
  };

  void issue_next();
  void arm_retransmit(RequestId id);
  void flush_burst();

  EventLoop& loop_;
  TcpTransport& transport_;
  RealClientConfig config_;
  RequestId next_request_ = 1;
  std::map<RequestId, Pending> pending_;
  std::map<RequestId, Bytes> payloads_;  // for retransmission
  std::vector<types::Operation> burst_;  // requests awaiting one flush
  WindowedCounter completed_;
  LatencyHistogram latency_;
  std::uint64_t retransmissions_ = 0;
  bool quiesced_ = false;
  Rng rng_;
};

}  // namespace marlin::realnet
