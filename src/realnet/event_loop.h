// Single-threaded epoll reactor: fd readiness, a monotonic timer wheel,
// and a thread-safe post() queue (eventfd wakeup). Each replica/client
// host owns one EventLoop on its own thread; everything that host does —
// consensus callbacks, timers, socket I/O — runs on that loop thread, so
// hosts need no internal locking (the same single-threaded discipline the
// simulator enforces globally, applied per node).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "common/histogram.h"
#include "common/sim_time.h"
#include "realnet/clock.h"
#include "realnet/timer_wheel.h"

namespace marlin::realnet {

/// Receiver of fd readiness events (a socket, a listener). Non-owning
/// registration: the handler must outlive its registration.
class FdHandler {
 public:
  virtual ~FdHandler() = default;
  /// `events` is the epoll bitmask (EPOLLIN | EPOLLOUT | ...).
  virtual void on_fd_event(int fd, std::uint32_t events) = 0;
};

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // -- fd registration (loop thread only) ------------------------------------
  void add_fd(int fd, std::uint32_t events, FdHandler* handler);
  void mod_fd(int fd, std::uint32_t events);
  void del_fd(int fd);

  // -- timers (loop thread only) ---------------------------------------------
  TimerHandle schedule_at(TimePoint when, EventFn fn) {
    return wheel_.schedule_at(when, std::move(fn));
  }
  TimerHandle schedule(Duration delay, EventFn fn) {
    return wheel_.schedule_at(mono_now() + delay, std::move(fn));
  }
  /// Fire-and-forget (drops the handle; mirrors Simulator::post).
  void post_after(Duration delay, EventFn fn) {
    wheel_.schedule_at(mono_now() + delay, std::move(fn));
  }

  /// The loop's timers as a backend-neutral Scheduler (the wheel): lets
  /// hosts written against marlin::Scheduler& run on the real transport.
  marlin::Scheduler& scheduler() { return wheel_; }

  // -- cross-thread ----------------------------------------------------------
  /// Enqueues `fn` to run on the loop thread; safe from any thread and
  /// from within loop callbacks. The loop is woken if blocked in epoll.
  void post(std::function<void()> fn);

  /// Requests run() to return after the current iteration (any thread).
  void stop();

  // -- driving ---------------------------------------------------------------
  /// Runs until stop(). Must be called from the thread that owns the loop.
  void run();

  /// Single iteration with bounded wait; exposed for tests and for drain
  /// loops ("run until this condition or deadline").
  void run_once(Duration max_wait);

  /// True when called from the thread currently inside run()/run_once().
  bool on_loop_thread() const;

  /// Installed once per loop (loop thread only, or before it starts):
  /// invoked at the end of every run_once iteration, after fd handlers,
  /// timers, and posted tasks — the egress-coalescing point where the
  /// transport flushes everything the iteration queued, just before the
  /// loop blocks again. Pass nullptr to uninstall.
  void set_tick_handler(std::function<void()> fn) { tick_ = std::move(fn); }

  // -- instrumentation -------------------------------------------------------
  // Non-owning histogram hooks (loop-thread writes only): the caller wires
  // them to registry-owned histograms before the loop thread starts and
  // must keep them alive until the loop stops. Left unset, recording is
  // skipped entirely.
  /// Active time per run_once iteration (epoll return → iteration end),
  /// decimated 1-in-8 so long runs don't grow an unbounded sample vector.
  void set_iteration_histogram(LatencyHistogram* h) { iter_hist_ = h; }
  /// post() enqueue → callback run latency (eventfd wake-to-run).
  void set_wake_histogram(LatencyHistogram* h) { wake_hist_ = h; }
  /// Forwards to the timer wheel's fire-drift histogram.
  void set_timer_drift_histogram(LatencyHistogram* h) {
    wheel_.set_fire_drift_histogram(h);
  }

  std::uint64_t iterations() const { return iterations_; }
  std::uint64_t posted_tasks_run() const { return posted_run_; }
  std::uint64_t timers_fired() const { return wheel_.fired(); }

 private:
  struct PostedTask {
    TimePoint enqueued;
    std::function<void()> fn;
  };

  void drain_posted();
  void wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  TimerWheel wheel_;
  std::unordered_map<int, FdHandler*> handlers_;

  std::mutex posted_mu_;
  std::deque<PostedTask> posted_;
  std::function<void()> tick_;

  std::atomic<bool> stop_{false};
  std::atomic<const void*> loop_thread_{nullptr};

  LatencyHistogram* iter_hist_ = nullptr;
  LatencyHistogram* wake_hist_ = nullptr;
  std::uint64_t iterations_ = 0;
  std::uint64_t posted_run_ = 0;
};

}  // namespace marlin::realnet
