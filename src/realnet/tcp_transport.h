// Real TCP transport for one node, driven by that node's EventLoop. The
// contract mirrors sim::Network from a single node's perspective: send a
// refcounted Payload to a node id, receive (from, Payload) callbacks, and
// fill the same wire-level NodeNetStats the simulator fills — so traffic
// analysis, per-kind accounting, and trace tooling work on either backend.
//
// Connection model (simplex): a connection is used in one direction only —
// the dialer sends, the acceptor receives. Every node runs a listener, and
// node A's frames to node B always travel on the A→B dialed connection.
// This avoids duplex tie-breaking entirely: start order does not matter,
// and a crashed peer is re-reached by the dialer's backoff loop alone.
// A dialed connection opens with a hello frame ([kHelloKind][u32 LE node
// id]) so the acceptor learns who is talking.
//
// Egress queues live on the *peer*, not the connection: frames queued
// while a peer is down (or mid-reconnect) survive the reconnect and flush
// in order once the new connection is writable. Queue overflow past
// max_queue_bytes drops the newest frame (counted + traced, like a
// simulator drop) — consensus tolerates loss by design, so backpressure
// converts to the same fault model the protocol already handles.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/net_stats.h"
#include "common/payload.h"
#include "common/status.h"
#include "common/wire_codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "realnet/event_loop.h"

namespace marlin::realnet {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TransportConfig {
  Duration reconnect_min = Duration::millis(20);
  Duration reconnect_max = Duration::seconds(1);
  /// Per-peer egress cap; beyond it the newest frame is dropped (counted
  /// in stats.messages_dropped, traced as kMsgDropped/kDropBackpressure).
  std::size_t max_queue_bytes = 64u << 20;
  /// Egress coalescing: send() marks the peer dirty and all dirty peers
  /// flush once at the end of the loop iteration (on_loop_tick), so a
  /// broadcast plus pipelined votes/replies to the same peer share one
  /// scatter-gather sendmsg. Max-defer bound: a peer whose unflushed
  /// backlog reaches this many bytes flushes immediately instead of
  /// waiting for the tick. 0 disables coalescing (flush on every send).
  std::size_t coalesce_max_defer_bytes = 256u << 10;
  /// Ingress batching: per-epoll-wake budget on bytes read from one
  /// connection. A connection with more pending data than this resumes on
  /// the next wake (level-triggered re-arm), so one hot peer cannot
  /// monopolize an iteration.
  std::size_t ingress_budget_bytes = 1u << 20;
  /// Per-wake budget on frames delivered from one connection (checked
  /// between read chunks; a single chunk's decoded frames always deliver
  /// whole, so the cutoff is approximate by up to one chunk).
  std::size_t ingress_budget_frames = 4096;
};

class TcpTransport final : public FdHandler {
 public:
  /// `node_id` is this node's global id (replicas 0..n-1, then clients).
  TcpTransport(EventLoop& loop, std::uint32_t node_id,
               TransportConfig config = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds + listens on 127.0.0.1:`port` (0 = ephemeral) and registers
  /// with the loop. Returns the bound port.
  Result<std::uint16_t> listen(std::uint16_t port = 0);

  /// Adopts an already-listening socket (the cluster pre-binds every
  /// node's listener on the main thread so the full endpoint table exists
  /// before any node thread starts). Must be non-blocking.
  void adopt_listener(int fd);

  /// Declares where `id` can be dialed. Connections are opened lazily on
  /// first send. Loop thread only (or before the loop starts).
  void set_peer(std::uint32_t id, Endpoint ep);

  /// Ingress callback: a complete consensus frame from `from`.
  void set_handler(std::function<void(std::uint32_t, Payload)> handler) {
    handler_ = std::move(handler);
  }

  /// Optional event trace (kMsgDelivered / kMsgDropped, same schema as the
  /// simulated network). The sink's clock should be mono_now.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Queues `payload` to `to`. Loop thread only. Self-sends deliver via a
  /// posted callback (the local hop, like the simulator's loopback path).
  /// With coalescing on, the frame reaches the kernel at the end of the
  /// current loop iteration (or sooner past the max-defer bound).
  void send(std::uint32_t to, Payload payload);

  /// Escape hatch: flushes every dirty peer immediately instead of
  /// waiting for the end-of-iteration tick. Loop thread only.
  void flush_now();

  /// End-of-iteration hook (registered with the loop at construction):
  /// flushes all peers send() marked dirty this iteration.
  void on_loop_tick();

  /// Bytes queued but not yet handed to the kernel, across all peers.
  /// Clean shutdown drains this to zero before closing sockets.
  std::size_t pending_egress_bytes() const;

  /// Closes every socket and cancels reconnect timers. Loop thread only.
  /// The transport stays constructed (stats readable) but inert.
  void shutdown();

  const net::NodeNetStats& stats() const { return stats_; }
  std::uint32_t node_id() const { return node_id_; }

  // -- health instrumentation (loop thread only) -----------------------------
  /// Current egress backlog across all peers (alias of
  /// pending_egress_bytes, named for the telemetry plane).
  std::size_t queued_bytes() const { return pending_egress_bytes(); }
  /// Largest per-peer egress backlog ever observed (bytes).
  std::size_t egress_high_water_bytes() const;
  /// connect() attempts (first dials and re-dials alike).
  std::uint64_t dials() const { return dials_; }
  /// Dials that completed the TCP handshake.
  std::uint64_t connects_ok() const { return connects_ok_; }
  /// Dials that failed before becoming writable.
  std::uint64_t connect_failures() const { return connect_failures_; }
  /// Established connections lost mid-stream (reset, EPIPE, HUP).
  std::uint64_t connections_lost() const { return connections_lost_; }
  /// Backoff timers armed by the reconnect loop.
  std::uint64_t redials_scheduled() const { return redials_scheduled_; }
  /// Frames dropped because a peer's queue exceeded max_queue_bytes.
  std::uint64_t frames_dropped_backpressure() const {
    return frames_dropped_backpressure_;
  }
  /// Frames dropped because the destination id has no endpoint.
  std::uint64_t frames_dropped_no_peer() const {
    return frames_dropped_no_peer_;
  }
  /// Inbound connections torn down on FrameDecoder errors (oversize or
  /// corrupt framing).
  std::uint64_t decode_errors() const { return decode_errors_; }
  /// sendmsg calls that handed ≥1 byte to the kernel (the syscalls the
  /// coalescing tick exists to minimize).
  std::uint64_t flushes() const { return flushes_; }
  /// Epoll wakes that delivered ≥1 ingress frame.
  std::uint64_t ingress_wakes() const { return ingress_wakes_; }

  /// Point-in-time view of one outbound peer link, for /status.
  struct PeerStatus {
    std::uint32_t id = 0;
    bool connected = false;   // dialed socket established
    bool connecting = false;  // connect() in flight
    std::size_t queued_bytes = 0;
    std::size_t high_water_bytes = 0;
    std::int64_t backoff_ms = 0;  // current reconnect backoff (0 = healthy)
  };
  /// All known peers, ascending id order.
  std::vector<PeerStatus> peer_statuses() const;

  /// Writes transport health series (transport.dials, transport.decode_
  /// errors, transport.egress_queued_bytes, ...) into `reg`. Counters add:
  /// pass a fresh snapshot registry.
  void export_metrics(obs::MetricsRegistry& reg) const;

  // -- FdHandler ------------------------------------------------------------
  void on_fd_event(int fd, std::uint32_t events) override;

 private:
  struct EgressFrame {
    std::array<std::uint8_t, wire::kHeaderSize> header;
    Payload payload;  // refcounted: broadcasts share one buffer n ways
  };

  /// Outbound state for a peer this node sends to.
  struct Peer {
    Endpoint ep;
    int fd = -1;             // dialed socket, -1 while disconnected
    bool connecting = false; // connect() in flight (await EPOLLOUT)
    bool want_write = false; // EPOLLOUT currently registered
    bool dirty = false;      // queued frames awaiting the tick flush
    std::deque<EgressFrame> queue;
    std::size_t queue_bytes = 0;   // header+payload bytes still unflushed
    std::size_t high_water = 0;    // max queue_bytes ever reached
    std::size_t front_offset = 0;  // bytes of queue.front() already written
    Duration backoff = Duration::zero();
    TimerHandle reconnect;
  };

  /// Inbound state for an accepted connection.
  struct Ingress {
    wire::FrameDecoder decoder;
    std::uint32_t peer = kUnknownPeer;  // set by the hello frame
  };

  static constexpr std::uint32_t kUnknownPeer = 0xffffffffu;

  void dial(std::uint32_t id);
  void schedule_redial(std::uint32_t id);
  void on_dial_writable(std::uint32_t id);
  void flush_peer(std::uint32_t id);
  void mark_dirty(std::uint32_t id, Peer& peer);
  void close_peer_conn(std::uint32_t id, bool redial);
  void accept_ready();
  void ingress_readable(int fd);
  void close_ingress(int fd);
  void record_drop(const Payload& payload, std::uint32_t to);
  void deliver_local(std::uint32_t from, Payload payload);

  EventLoop& loop_;
  std::uint32_t node_id_;
  TransportConfig config_;
  int listen_fd_ = -1;
  bool shut_down_ = false;

  std::unordered_map<std::uint32_t, Peer> peers_;
  std::unordered_map<int, std::uint32_t> fd_to_peer_;  // dialed fds
  std::unordered_map<int, Ingress> ingress_;           // accepted fds
  std::vector<std::uint32_t> dirty_;        // peers awaiting the tick flush
  std::vector<std::uint32_t> dirty_scratch_;  // swap target during the tick
  /// Decoded (from, frame) pairs of the current ingress wake; member so
  /// the hot path reuses its capacity instead of reallocating per wake.
  std::vector<std::pair<std::uint32_t, Payload>> ingress_batch_;

  std::function<void(std::uint32_t, Payload)> handler_;
  obs::TraceSink* trace_ = nullptr;
  net::NodeNetStats stats_;

  // Health counters (see the accessors above for semantics).
  std::uint64_t dials_ = 0;
  std::uint64_t connects_ok_ = 0;
  std::uint64_t connect_failures_ = 0;
  std::uint64_t connections_lost_ = 0;
  std::uint64_t redials_scheduled_ = 0;
  std::uint64_t frames_dropped_backpressure_ = 0;
  std::uint64_t frames_dropped_no_peer_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t ingress_wakes_ = 0;
  // Hot-path shape histograms, decimated 1-in-8 (sample vectors; same
  // policy as the loop's iteration histogram).
  obs::ValueHistogram frames_per_flush_;
  obs::ValueHistogram frames_per_wake_;
};

}  // namespace marlin::realnet
