#include "realnet/verify_pool.h"

#include "realnet/clock.h"

namespace marlin::realnet {

VerifyPool::VerifyPool(EventLoop& loop, std::size_t workers) : loop_(loop) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

VerifyPool::~VerifyPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void VerifyPool::submit(std::function<void()> work,
                        std::function<void()> done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    if (work || !jobs_.empty()) {
      Job job;
      job.state = work ? JobState::kPending : JobState::kReady;
      job.work = std::move(work);
      job.done = std::move(done);
      jobs_.push_back(std::move(job));
      const bool pending = jobs_.back().state == JobState::kPending;
      // A null-work job landing at the head (everything ahead already
      // drained between our empty-check and now cannot happen — we hold
      // the lock — but everything ahead may already be kReady): make sure
      // a drain is scheduled so ready heads are not stranded.
      if (jobs_.front().state == JobState::kReady && !drain_posted_) {
        drain_posted_ = true;
        loop_.post([this] { drain_completions(); });
      }
      if (pending) cv_.notify_one();
      return;
    }
    // Nothing in flight to order behind and nothing to compute: run the
    // completion in place (the common case for client traffic). Unlock
    // first — done may re-enter submit.
  }
  if (done) done();
}

void VerifyPool::worker_main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] {
      if (stop_) return true;
      for (std::size_t i = next_pending_; i < jobs_.size(); ++i) {
        if (jobs_[i].state == JobState::kPending) return true;
      }
      return false;
    });
    if (stop_) return;
    // Claim the oldest pending job (skipping already-ready placeholders).
    while (next_pending_ < jobs_.size() &&
           jobs_[next_pending_].state != JobState::kPending) {
      ++next_pending_;
    }
    if (next_pending_ >= jobs_.size()) continue;  // raced with another worker
    Job& job = jobs_[next_pending_];
    job.state = JobState::kClaimed;
    ++next_pending_;
    std::function<void()> work = std::move(job.work);
    job.work = nullptr;
    lock.unlock();

    const TimePoint t0 = mono_now();
    work();
    const Duration dt = mono_now() - t0;

    lock.lock();
    job.state = JobState::kReady;
    ++claims_;
    if ((claims_ & 7) == 0) verify_ns_.record(dt);
    if (!jobs_.empty() && jobs_.front().state == JobState::kReady &&
        !drain_posted_) {
      drain_posted_ = true;
      loop_.post([this] { drain_completions(); });
    }
  }
}

void VerifyPool::drain_completions() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_posted_ = false;
  while (!jobs_.empty() && jobs_.front().state == JobState::kReady) {
    std::function<void()> done = std::move(jobs_.front().done);
    jobs_.pop_front();
    if (next_pending_ > 0) --next_pending_;
    lock.unlock();
    if (done) done();  // may re-enter submit()
    lock.lock();
  }
}

std::uint64_t VerifyPool::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

std::size_t VerifyPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

void VerifyPool::export_metrics(obs::MetricsRegistry& reg) const {
  std::lock_guard<std::mutex> lock(mu_);
  reg.counter("verify_pool.jobs") += submitted_;
  reg.gauge("verify_pool.queue_depth") = static_cast<double>(jobs_.size());
  reg.gauge("verify_pool.workers") = static_cast<double>(workers_.size());
  reg.latency("verify_pool.verify_ns").merge_from(verify_ns_);
}

}  // namespace marlin::realnet
