// Hosts one untouched consensus protocol instance (Marlin or HotStuff) on
// the real runtime: TCP transport for the wire, the node's EventLoop timer
// wheel for the pacemaker, a real KVStore (mem or posix) for write-ahead
// voting and block records. The consensus core sees the exact same
// ProtocolEnv it sees in simulation — this class and runtime::ReplicaProcess
// are the only two implementations, and the protocol cannot tell them
// apart. Differences from the simulated host, by design:
//
//  * no CPU cost model: wall time is real, so charge_* hooks only feed
//    metrics counters;
//  * no outbox staged on virtual task completion: persist_state() completes
//    synchronously (the KVStore write returns before the protocol resumes),
//    so every vote is durable before its frame reaches the transport —
//    write-ahead voting holds without the simulator's flush barrier;
//  * restart-from-disk happens in the constructor: if the store already
//    holds a persisted consensus state (a relaunch over the same data dir),
//    the protocol is restored from it before start().
//
// Threading: everything runs on the owning EventLoop's thread. The replica
// holds its own SignatureSuite instance (crypto caches are not thread-safe
// to share across nodes; suites built from the same seed are identical).
#pragma once

#include <memory>

#include "common/histogram.h"
#include "consensus/hotstuff.h"
#include "consensus/marlin.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "realnet/tcp_transport.h"
#include "realnet/verify_pool.h"
#include "runtime/pacemaker.h"
#include "runtime/replica_process.h"  // runtime::ProtocolKind
#include "storage/kvstore.h"

namespace marlin::realnet {

struct RealReplicaConfig {
  consensus::ReplicaConfig replica;
  runtime::ProtocolKind protocol = runtime::ProtocolKind::kMarlin;
  runtime::PacemakerConfig pacemaker;
  std::uint64_t checkpoint_interval = 5000;
  std::size_t reply_size = 150;
  /// Node id of client #0; client c lives at node client_base + c.
  std::uint32_t client_base = 0;
  /// Durable data directory; empty = in-memory store (no relaunch).
  std::string data_dir;
  /// fsync the WAL on every write (crash-consistent at real-crash cost).
  bool sync_writes = false;
  /// Per-node event trace (clock should be mono_now). Optional.
  obs::TraceSink* trace = nullptr;
  /// Off-loop crypto pre-verification pool. Null (the default) verifies
  /// inline on the loop thread via InlineVerifyExecutor — byte-identical
  /// behavior to the pre-pool runtime.
  VerifyPool* verify_pool = nullptr;
};

class RealReplica final : public consensus::ProtocolEnv {
 public:
  /// Opens (or reopens) the store; when a persisted consensus state exists
  /// the protocol is restored from it (relaunch path). Check ok() before
  /// start(). `suite` must outlive the replica and must not be shared with
  /// another thread.
  RealReplica(EventLoop& loop, TcpTransport& transport,
              const crypto::SignatureSuite& suite, RealReplicaConfig config);

  Status ok() const { return init_status_; }
  /// True when the constructor restored state persisted by a previous
  /// incarnation (the kill+relaunch path).
  bool recovered() const { return recovered_; }

  /// Enters the protocol (arming the pacemaker). Loop thread only.
  void start();

  /// Transport ingress (wired by the cluster). Loop thread only.
  void on_message(std::uint32_t from, Payload payload);

  // -- ProtocolEnv -----------------------------------------------------------
  void send(ReplicaId to, const types::Envelope& env) override;
  void broadcast(const types::Envelope& env) override;
  void deliver(const types::Block& block,
               const std::vector<types::Operation>& executable) override;
  void entered_view(ViewNumber v) override;
  void progressed() override;
  void persist_state(const consensus::PersistentState& state) override;
  obs::TraceSink* trace_sink() override { return config_.trace; }
  TimePoint now() const override { return mono_now(); }
  void charge_signs(std::uint32_t count) override;
  void charge_verifies(std::uint32_t count) override;
  void charge_hash_bytes(std::size_t bytes) override;
  void charge_pairings(std::uint32_t count) override;
  void charge_threshold_signs(std::uint32_t count) override;
  void charge_combine_shares(std::uint32_t count) override;

  // -- accessors -------------------------------------------------------------
  consensus::ReplicaBase& protocol() { return *protocol_; }
  const consensus::ReplicaBase& protocol() const { return *protocol_; }
  WindowedCounter& committed_ops() { return committed_ops_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  ViewNumber current_view() const { return protocol_->current_view(); }

  // -- telemetry (loop thread only) ------------------------------------------
  /// Liveness: true while the host shows recent activity (view timer
  /// firing, commits, view entries). The window adapts to the pacemaker's
  /// current backoff so a cluster grinding through view changes is not
  /// misreported as stalled. Backs GET /healthz.
  bool healthy() const;

  /// JSON body for GET /status: node id, protocol, view, committed height,
  /// tx-pool depth, recovery flags, and per-peer connection state.
  std::string status_json();

  /// Self-contained metrics snapshot for /metrics and the series sampler:
  /// a copy of the registry plus the transport health series, the wire
  /// NodeNetStats (same names the simulated network exports), and event
  /// loop counters.
  obs::MetricsRegistry snapshot_metrics() const;

 private:
  void make_protocol();
  void arm_view_timer();
  void send_wire(ReplicaId to, const types::Envelope& env,
                 const Payload* pre = nullptr);
  void trace(obs::TraceEvent e) {
    if (config_.trace) {
      e.node = config_.replica.id;
      config_.trace->record(e);
    }
  }

  EventLoop& loop_;
  TcpTransport& transport_;
  const crypto::SignatureSuite& suite_;
  RealReplicaConfig config_;
  Status init_status_ = Status::ok();
  bool recovered_ = false;

  std::unique_ptr<consensus::ReplicaBase> protocol_;
  std::unique_ptr<storage::Env> db_env_;
  std::unique_ptr<storage::KVStore> db_;

  runtime::Pacemaker pacemaker_;
  TimerHandle view_timer_;

  std::uint64_t blocks_since_checkpoint_ = 0;
  WindowedCounter committed_ops_;
  obs::MetricsRegistry metrics_;
  bool commit_seen_in_view_ = false;
  TimePoint last_activity_;  // freshness signal behind healthy()
};

}  // namespace marlin::realnet
