#include "realnet/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cassert>
#include <cstring>
#include <vector>

namespace marlin::realnet {

namespace {
thread_local const void* tls_thread_token = nullptr;

const void* thread_token() {
  // Address of a thread_local: unique per live thread, no TID syscall.
  return &tls_thread_token;
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  assert(epoll_fd_ >= 0);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  assert(wake_fd_ >= 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler* handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
    handlers_[fd] = handler;
  }
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::del_fd(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(PostedTask{mono_now(), std::move(fn)});
  }
  // Posts from the loop thread itself (loopback sends, rescheduling
  // closures) need no eventfd syscall: the loop is not blocked in
  // epoll_wait right now, and run_once checks posted_ before choosing the
  // next timeout, so the task runs this iteration or immediately after.
  if (!on_loop_thread()) wake();
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = write(wake_fd_, &one, sizeof one);
}

void EventLoop::drain_posted() {
  // Swap under the lock, run outside it: posted callbacks may post again.
  std::deque<PostedTask> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  if (batch.empty()) return;
  // One clock read covers the whole batch: wake-to-run latency is dominated
  // by the epoll wakeup, not intra-batch ordering.
  const TimePoint now = wake_hist_ != nullptr ? mono_now() : TimePoint();
  for (auto& task : batch) {
    if (wake_hist_ != nullptr) wake_hist_->record(now - task.enqueued);
    ++posted_run_;
    task.fn();
  }
}

bool EventLoop::on_loop_thread() const {
  return loop_thread_.load(std::memory_order_acquire) == thread_token();
}

void EventLoop::run_once(Duration max_wait) {
  loop_thread_.store(thread_token(), std::memory_order_release);

  const TimePoint now = mono_now();
  std::int64_t timeout_ns = wheel_.next_timeout_ns(now);
  const std::int64_t cap = max_wait.as_nanos();
  if (timeout_ns < 0 || timeout_ns > cap) timeout_ns = cap;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    if (!posted_.empty()) timeout_ns = 0;
  }
  const int timeout_ms =
      static_cast<int>((timeout_ns + 999'999) / 1'000'000);  // round up

  epoll_event events[64];
  const int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);

  // Active-time measurement starts after the (intentional) epoll block;
  // decimated 1-in-8 so the per-iteration clock reads and sample growth
  // stay negligible on hot loops.
  ++iterations_;
  const bool time_this = iter_hist_ != nullptr && (iterations_ & 7) == 0;
  const TimePoint iter_start = time_this ? mono_now() : TimePoint();

  drain_posted();
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t drain = 0;
      [[maybe_unused]] const auto r = read(wake_fd_, &drain, sizeof drain);
      continue;
    }
    // Re-look-up per event: an earlier handler may have closed this fd.
    auto it = handlers_.find(fd);
    if (it != handlers_.end()) it->second->on_fd_event(fd, events[i].events);
  }
  wheel_.advance(mono_now());
  drain_posted();
  if (tick_) tick_();
  if (time_this) iter_hist_->record(mono_now() - iter_start);
}

void EventLoop::run() {
  stop_.store(false, std::memory_order_release);
  while (!stop_.load(std::memory_order_acquire)) {
    run_once(Duration::millis(100));
  }
  loop_thread_.store(nullptr, std::memory_order_release);
}

}  // namespace marlin::realnet
