// Monotonic wall-clock time expressed as the repo's TimePoint. The real
// runtime reuses every simulator-facing type (Duration, TimePoint,
// obs::TraceSink timestamps) so the consensus core and the observability
// stack cannot tell the transports apart; this header is the bridge from
// CLOCK_MONOTONIC to that shared time axis.
#pragma once

#include <ctime>

#include "common/sim_time.h"

namespace marlin::realnet {

/// Raw CLOCK_MONOTONIC nanoseconds.
inline std::int64_t mono_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

/// A process-wide epoch captured on first use, so TimePoints start near
/// origin (small, log-friendly values — same shape as simulated traces).
inline std::int64_t mono_epoch() {
  static const std::int64_t epoch = mono_ns();
  return epoch;
}

/// Current monotonic time relative to the process epoch.
inline TimePoint mono_now() {
  return TimePoint::from_nanos(mono_ns() - mono_epoch());
}

}  // namespace marlin::realnet
