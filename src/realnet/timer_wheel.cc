#include "realnet/timer_wheel.h"

#include <algorithm>

namespace marlin::realnet {

std::uint32_t TimerWheel::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.push_back(Slot{});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

TimerHandle TimerWheel::schedule_at(TimePoint when, EventFn fn) {
  if (when < last_advance_) when = last_advance_;
  const std::uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  ++s.gen;  // invalidate any stale handle still pointing at this slot
  s.pending = true;
  s.cancelled = false;
  buckets_[bucket_of(when)].push_back(Entry{when, slot, std::move(fn)});
  ++pending_;
  return make_handle(slot, s.gen);
}

void TimerWheel::advance(TimePoint now) {
  if (now < last_advance_) now = last_advance_;
  // Walk every tick between the previous advance and now so a bucket is
  // never skipped over a whole rotation; cap the walk at one full rotation
  // (beyond that every bucket has been visited once anyway).
  const std::int64_t from_tick = last_advance_.as_nanos() / kTickNanos;
  const std::int64_t to_tick = now.as_nanos() / kTickNanos;
  const std::int64_t span = std::min<std::int64_t>(
      to_tick - from_tick, static_cast<std::int64_t>(kBuckets) - 1);
  last_advance_ = now;

  for (std::int64_t t = 0; t <= span; ++t) {
    auto& bucket =
        buckets_[static_cast<std::size_t>(from_tick + t) % kBuckets];
    if (bucket.empty()) continue;
    // Collect due entries first: callbacks may add timers into this very
    // bucket, and those must not fire in the same pass.
    std::vector<Entry> due;
    for (std::size_t i = 0; i < bucket.size();) {
      if (bucket[i].deadline <= now) {
        due.push_back(std::move(bucket[i]));
        bucket[i] = std::move(bucket.back());
        bucket.pop_back();
      } else {
        ++i;
      }
    }
    std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
      return a.deadline < b.deadline;
    });
    for (Entry& e : due) {
      Slot& s = slots_[e.slot];
      const bool run = s.pending && !s.cancelled;
      s.pending = false;
      s.cancelled = false;
      free_slots_.push_back(e.slot);
      --pending_;
      if (run) {
        ++fired_;
        if (drift_hist_ != nullptr) drift_hist_->record(now - e.deadline);
        e.fn();
      }
    }
  }
}

std::int64_t TimerWheel::next_timeout_ns(TimePoint now) const {
  if (pending_ == 0) return -1;
  std::int64_t best = -1;
  for (const auto& bucket : buckets_) {
    for (const Entry& e : bucket) {
      if (slots_[e.slot].cancelled) continue;
      const std::int64_t d = (e.deadline - now).as_nanos();
      if (best < 0 || d < best) best = d;
    }
  }
  return best < 0 ? -1 : std::max<std::int64_t>(best, 0);
}

}  // namespace marlin::realnet
