#include "realnet/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <vector>

namespace marlin::realnet {

namespace {

constexpr std::size_t kReadChunk = 64u << 10;
constexpr int kListenBacklog = 64;

int make_nonblocking_socket() {
  return socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

sockaddr_in make_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr);
  return addr;
}

void set_nodelay(int fd) {
  // Consensus frames are small and latency-bound; never batch them behind
  // Nagle. Sub-MTU writev batches do the coalescing explicitly instead.
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

TcpTransport::TcpTransport(EventLoop& loop, std::uint32_t node_id,
                           TransportConfig config)
    : loop_(loop), node_id_(node_id), config_(config) {
  // One transport per loop: the end-of-iteration tick is where every frame
  // queued during the iteration reaches the kernel.
  loop_.set_tick_handler([this] { on_loop_tick(); });
}

TcpTransport::~TcpTransport() {
  if (!shut_down_) shutdown();
  loop_.set_tick_handler(nullptr);
}

Result<std::uint16_t> TcpTransport::listen(std::uint16_t port) {
  const int fd = make_nonblocking_socket();
  if (fd < 0) return error(ErrorCode::kIoError, "socket: " + std::string(strerror(errno)));
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(Endpoint{"127.0.0.1", port});
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string msg = strerror(errno);
    close(fd);
    return error(ErrorCode::kIoError, "bind: " + msg);
  }
  if (::listen(fd, kListenBacklog) != 0) {
    const std::string msg = strerror(errno);
    close(fd);
    return error(ErrorCode::kIoError, "listen: " + msg);
  }
  socklen_t len = sizeof addr;
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  adopt_listener(fd);
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

void TcpTransport::adopt_listener(int fd) {
  assert(listen_fd_ < 0);
  listen_fd_ = fd;
  loop_.add_fd(listen_fd_, EPOLLIN, this);
}

void TcpTransport::set_peer(std::uint32_t id, Endpoint ep) {
  peers_[id].ep = std::move(ep);
}

void TcpTransport::send(std::uint32_t to, Payload payload) {
  if (shut_down_) return;
  const std::size_t size = payload.size();
  const std::size_t kind = wire::kind_slot(payload.view());

  if (to == node_id_) {
    // Loopback: skip the kernel entirely, deliver on a fresh loop
    // iteration (mirrors the simulator's minimal local hop).
    ++stats_.messages_sent;
    stats_.bytes_sent += size;
    ++stats_.msgs_sent_by_kind[kind];
    stats_.bytes_sent_by_kind[kind] += size;
    loop_.post([this, p = std::move(payload)]() mutable {
      deliver_local(node_id_, std::move(p));
    });
    return;
  }

  auto it = peers_.find(to);
  if (it == peers_.end()) {
    // No endpoint for this id (e.g. a replica set smaller than the
    // destination table) — indistinguishable from a dead link.
    ++stats_.messages_dropped;
    ++frames_dropped_no_peer_;
    record_drop(payload, to);
    return;
  }
  Peer& peer = it->second;
  const std::size_t framed = wire::kHeaderSize + size;
  if (peer.queue_bytes + framed > config_.max_queue_bytes) {
    ++stats_.messages_dropped;
    ++frames_dropped_backpressure_;
    record_drop(payload, to);
    return;
  }

  ++stats_.messages_sent;
  stats_.bytes_sent += size;
  ++stats_.msgs_sent_by_kind[kind];
  stats_.bytes_sent_by_kind[kind] += size;

  peer.queue.push_back(EgressFrame{
      wire::encode_header(static_cast<std::uint32_t>(size)),
      std::move(payload)});
  peer.queue_bytes += framed;
  peer.high_water = std::max(peer.high_water, peer.queue_bytes);

  if (peer.fd < 0 && !peer.connecting) {
    dial(to);
  } else if (peer.fd >= 0 && !peer.connecting) {
    // Coalesce: defer the sendmsg to the end of this loop iteration so
    // every frame queued to this peer meanwhile shares it. The max-defer
    // bound keeps a bulk burst (state transfer, catch-up batches) from
    // sitting in user space a whole iteration.
    if (config_.coalesce_max_defer_bytes == 0 ||
        peer.queue_bytes >= config_.coalesce_max_defer_bytes) {
      flush_peer(to);
    } else {
      mark_dirty(to, peer);
    }
  }
}

void TcpTransport::mark_dirty(std::uint32_t id, Peer& peer) {
  if (peer.dirty) return;
  peer.dirty = true;
  dirty_.push_back(id);
}

void TcpTransport::on_loop_tick() {
  if (dirty_.empty()) return;
  flush_now();
}

void TcpTransport::flush_now() {
  // Swap to scratch: flush_peer may re-dirty (it never does today — a
  // partial write arms EPOLLOUT instead — but the swap keeps the loop safe
  // against any future re-marking).
  while (!dirty_.empty()) {
    dirty_scratch_.clear();
    dirty_scratch_.swap(dirty_);
    for (std::uint32_t id : dirty_scratch_) {
      auto it = peers_.find(id);
      if (it == peers_.end() || !it->second.dirty) continue;
      flush_peer(id);
    }
  }
}

std::size_t TcpTransport::pending_egress_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, peer] : peers_) total += peer.queue_bytes;
  return total;
}

std::size_t TcpTransport::egress_high_water_bytes() const {
  std::size_t hw = 0;
  for (const auto& [id, peer] : peers_) hw = std::max(hw, peer.high_water);
  return hw;
}

std::vector<TcpTransport::PeerStatus> TcpTransport::peer_statuses() const {
  std::vector<PeerStatus> out;
  out.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) {
    out.push_back(PeerStatus{id, peer.fd >= 0 && !peer.connecting,
                             peer.connecting, peer.queue_bytes,
                             peer.high_water,
                             peer.backoff.as_nanos() / 1'000'000});
  }
  std::sort(out.begin(), out.end(),
            [](const PeerStatus& a, const PeerStatus& b) {
              return a.id < b.id;
            });
  return out;
}

void TcpTransport::export_metrics(obs::MetricsRegistry& reg) const {
  reg.counter("transport.dials") += dials_;
  reg.counter("transport.connects_ok") += connects_ok_;
  reg.counter("transport.connect_failures") += connect_failures_;
  reg.counter("transport.connections_lost") += connections_lost_;
  reg.counter("transport.redials_scheduled") += redials_scheduled_;
  reg.counter("transport.frames_dropped", "reason=backpressure") +=
      frames_dropped_backpressure_;
  reg.counter("transport.frames_dropped", "reason=no_peer") +=
      frames_dropped_no_peer_;
  reg.counter("transport.decode_errors") += decode_errors_;
  reg.counter("transport.flushes") += flushes_;
  reg.counter("transport.ingress_wakes") += ingress_wakes_;
  reg.sizes("transport.frames_per_flush").merge_from(frames_per_flush_);
  // Loop-facing name (the wake is the loop's unit of work) for the
  // per-epoll-wake ingress batch size.
  reg.sizes("loop.frames_per_wake").merge_from(frames_per_wake_);
  reg.gauge("transport.egress_queued_bytes") =
      static_cast<double>(queued_bytes());
  reg.gauge("transport.egress_high_water_bytes") =
      static_cast<double>(egress_high_water_bytes());
  std::size_t connected = 0;
  for (const auto& [id, peer] : peers_) {
    if (peer.fd >= 0 && !peer.connecting) ++connected;
  }
  reg.gauge("transport.peers_connected") = static_cast<double>(connected);
  reg.gauge("transport.ingress_connections") =
      static_cast<double>(ingress_.size());
}

void TcpTransport::record_drop(const Payload& payload, std::uint32_t to) {
  if (!trace_) return;
  trace_->record({.node = node_id_,
                  .type = obs::EventType::kMsgDropped,
                  .kind = static_cast<std::uint8_t>(
                      wire::kind_slot(payload.view())),
                  .a = to,
                  .b = obs::kDropBackpressure});
}

void TcpTransport::deliver_local(std::uint32_t from, Payload payload) {
  if (shut_down_) return;
  const std::size_t size = payload.size();
  const std::size_t kind = wire::kind_slot(payload.view());
  ++stats_.messages_delivered;
  stats_.bytes_delivered += size;
  ++stats_.msgs_delivered_by_kind[kind];
  stats_.bytes_delivered_by_kind[kind] += size;
  if (trace_) {
    trace_->record({.node = node_id_,
                    .type = obs::EventType::kMsgDelivered,
                    .kind = static_cast<std::uint8_t>(kind),
                    .a = from});
  }
  if (handler_) handler_(from, std::move(payload));
}

// -- dialing ----------------------------------------------------------------

void TcpTransport::dial(std::uint32_t id) {
  Peer& peer = peers_[id];
  assert(peer.fd < 0);
  ++dials_;
  const int fd = make_nonblocking_socket();
  if (fd < 0) {
    ++connect_failures_;
    schedule_redial(id);
    return;
  }
  set_nodelay(fd);
  sockaddr_in addr = make_addr(peer.ep);
  const int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    ++connect_failures_;
    schedule_redial(id);
    return;
  }
  peer.fd = fd;
  peer.connecting = true;
  peer.want_write = true;
  fd_to_peer_[fd] = id;
  loop_.add_fd(fd, EPOLLOUT, this);
}

void TcpTransport::schedule_redial(std::uint32_t id) {
  Peer& peer = peers_[id];
  peer.backoff = peer.backoff == Duration::zero()
                     ? config_.reconnect_min
                     : std::min(peer.backoff * 2, config_.reconnect_max);
  ++redials_scheduled_;
  peer.reconnect = loop_.schedule(peer.backoff, [this, id] {
    auto it = peers_.find(id);
    if (it == peers_.end() || shut_down_) return;
    if (it->second.fd < 0 && !it->second.queue.empty()) dial(id);
  });
}

void TcpTransport::on_dial_writable(std::uint32_t id) {
  Peer& peer = peers_[id];
  if (peer.connecting) {
    int err = 0;
    socklen_t len = sizeof err;
    getsockopt(peer.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close_peer_conn(id, /*redial=*/true);
      return;
    }
    peer.connecting = false;
    peer.backoff = Duration::zero();
    ++connects_ok_;
    // Identify ourselves before any consensus frame. The hello rides the
    // same queue (front) so ordering is inherent. Hello bytes are not
    // consensus traffic: excluded from stats, included in queue_bytes.
    const Bytes hello = wire::hello_payload(node_id_);
    peer.queue.push_front(EgressFrame{
        wire::encode_header(static_cast<std::uint32_t>(hello.size())),
        Payload(hello)});
    peer.queue_bytes += wire::kHeaderSize + hello.size();
    peer.high_water = std::max(peer.high_water, peer.queue_bytes);
    assert(peer.front_offset == 0);
  }
  flush_peer(id);
}

void TcpTransport::flush_peer(std::uint32_t id) {
  Peer& peer = peers_[id];
  peer.dirty = false;  // everything queued so far is handled right here
  if (peer.fd < 0 || peer.connecting) return;

  while (!peer.queue.empty()) {
    // Scatter-gather egress: up to 16 frames per writev, header and
    // refcounted payload gathered without copying either.
    iovec iov[32];
    int iovcnt = 0;
    std::size_t first_skip = peer.front_offset;
    for (const EgressFrame& f : peer.queue) {
      if (iovcnt + 2 > 32) break;
      const std::uint8_t* hdr = f.header.data();
      std::size_t hdr_len = f.header.size();
      const std::uint8_t* body = f.payload.data();
      std::size_t body_len = f.payload.size();
      if (first_skip > 0) {  // only the front frame is partially written
        const std::size_t skip_hdr = std::min(first_skip, hdr_len);
        hdr += skip_hdr;
        hdr_len -= skip_hdr;
        first_skip -= skip_hdr;
        body += first_skip;
        body_len -= first_skip;
        first_skip = 0;
      }
      if (hdr_len > 0) {
        iov[iovcnt++] = {const_cast<std::uint8_t*>(hdr), hdr_len};
      }
      if (body_len > 0) {
        iov[iovcnt++] = {const_cast<std::uint8_t*>(body), body_len};
      }
    }
    if (iovcnt == 0) {
      // Front frame fully skipped (empty payload edge case): retire it.
      peer.queue.pop_front();
      peer.front_offset = 0;
      continue;
    }
    // sendmsg, not writev: MSG_NOSIGNAL turns a write to a peer that died
    // mid-flight into an EPIPE (handled below) instead of a process-fatal
    // SIGPIPE.
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = sendmsg(peer.fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_peer_conn(id, /*redial=*/true);
      return;
    }
    peer.queue_bytes -= static_cast<std::size_t>(n);
    std::size_t written = static_cast<std::size_t>(n) + peer.front_offset;
    std::uint64_t retired = 0;
    while (!peer.queue.empty()) {
      const std::size_t frame_size =
          wire::kHeaderSize + peer.queue.front().payload.size();
      if (written < frame_size) break;
      written -= frame_size;
      peer.queue.pop_front();
      ++retired;
    }
    peer.front_offset = written;
    ++flushes_;
    if ((flushes_ & 7) == 0) frames_per_flush_.record(retired);
  }

  const bool need_write = !peer.queue.empty();
  if (need_write != peer.want_write) {
    peer.want_write = need_write;
    loop_.mod_fd(peer.fd, need_write ? static_cast<std::uint32_t>(EPOLLOUT)
                                     : 0u);
  }
}

void TcpTransport::close_peer_conn(std::uint32_t id, bool redial) {
  Peer& peer = peers_[id];
  if (peer.fd < 0) return;
  if (peer.connecting) {
    ++connect_failures_;  // dial never became writable
  } else if (redial) {
    ++connections_lost_;  // established stream reset under us
  }
  loop_.del_fd(peer.fd);
  fd_to_peer_.erase(peer.fd);
  close(peer.fd);
  peer.fd = -1;
  peer.connecting = false;
  peer.want_write = false;
  // Unflushed frames stay queued and ride the next connection; a partially
  // written front frame cannot be resumed mid-stream, so drop it whole.
  if (peer.front_offset > 0 && !peer.queue.empty()) {
    peer.queue_bytes -=
        wire::kHeaderSize + peer.queue.front().payload.size() -
        peer.front_offset;
    peer.queue.pop_front();
    peer.front_offset = 0;
  }
  if (redial && !shut_down_ && !peer.queue.empty()) schedule_redial(id);
}

// -- ingress ----------------------------------------------------------------

void TcpTransport::accept_ready() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for next EPOLLIN
    set_nodelay(fd);
    ingress_.emplace(fd, Ingress{wire::FrameDecoder(), kUnknownPeer});
    loop_.add_fd(fd, EPOLLIN, this);
  }
}

void TcpTransport::ingress_readable(int fd) {
  auto it = ingress_.find(fd);
  if (it == ingress_.end()) return;
  // Batch decode: drain the socket under the per-wake budget, decode every
  // complete frame, then deliver the whole batch — per-frame epoll wakeups
  // collapse into one wake per burst. Past the budget the connection is
  // simply left readable; level-triggered epoll re-fires on the next
  // iteration and decoding resumes where it stopped.
  std::uint8_t buf[kReadChunk];
  std::size_t bytes_read = 0;
  bool close_after = false;
  ingress_batch_.clear();
  while (bytes_read < config_.ingress_budget_bytes &&
         ingress_batch_.size() < config_.ingress_budget_frames) {
    // Cap the read at the remaining byte budget so the budget binds even
    // when one kernel buffer holds the whole burst. The decoder is still
    // fully drained after every chunk — only partial-frame bytes carry
    // over — so a budget cutoff never strands complete frames (the socket
    // stays readable and level-triggered epoll re-fires next iteration).
    const std::size_t want = std::min(
        sizeof buf, config_.ingress_budget_bytes - bytes_read);
    const ssize_t n = recv(fd, buf, want, 0);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) close_after = true;
      break;
    }
    if (n == 0) {  // peer closed (crash or clean shutdown)
      close_after = true;
      break;
    }
    bytes_read += static_cast<std::size_t>(n);
    Ingress& in = it->second;
    if (!in.decoder.feed(BytesView(buf, static_cast<std::size_t>(n)))
             .is_ok()) {
      ++decode_errors_;  // oversize/corrupt stream: drop the connection
      close_after = true;
      break;
    }
    Bytes frame;
    while (in.decoder.next(frame)) {
      std::uint32_t hello_id = 0;
      if (wire::parse_hello(BytesView(frame.data(), frame.size()),
                            &hello_id)) {
        in.peer = hello_id;
        continue;
      }
      if (in.peer == kUnknownPeer) {
        close_after = true;  // consensus frame before hello: protocol error
        break;
      }
      ingress_batch_.emplace_back(in.peer, Payload(std::move(frame)));
      frame = Bytes{};
    }
    if (close_after) break;
  }

  if (!ingress_batch_.empty()) {
    ++ingress_wakes_;
    if ((ingress_wakes_ & 7) == 0) {
      frames_per_wake_.record(ingress_batch_.size());
    }
    for (auto& [from, payload] : ingress_batch_) {
      deliver_local(from, std::move(payload));
      // The handler may have shut the transport down (test teardown).
      if (shut_down_) {
        ingress_batch_.clear();
        return;
      }
    }
    ingress_batch_.clear();
  }
  if (close_after && ingress_.count(fd) > 0) close_ingress(fd);
}

void TcpTransport::close_ingress(int fd) {
  loop_.del_fd(fd);
  close(fd);
  ingress_.erase(fd);
}

// -- events -----------------------------------------------------------------

void TcpTransport::on_fd_event(int fd, std::uint32_t events) {
  if (fd == listen_fd_) {
    accept_ready();
    return;
  }
  if (auto it = fd_to_peer_.find(fd); it != fd_to_peer_.end()) {
    const std::uint32_t id = it->second;
    if (events & (EPOLLERR | EPOLLHUP)) {
      close_peer_conn(id, /*redial=*/true);
      return;
    }
    if (events & EPOLLOUT) on_dial_writable(id);
    return;
  }
  if (ingress_.count(fd)) {
    if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) ingress_readable(fd);
  }
}

void TcpTransport::shutdown() {
  shut_down_ = true;
  dirty_.clear();
  for (auto& [id, peer] : peers_) {
    peer.dirty = false;
    peer.reconnect.cancel();
    if (peer.fd >= 0) {
      loop_.del_fd(peer.fd);
      close(peer.fd);
      peer.fd = -1;
    }
    peer.queue.clear();
    peer.queue_bytes = 0;
    peer.front_offset = 0;
  }
  fd_to_peer_.clear();
  std::vector<int> ingress_fds;
  for (const auto& [fd, in] : ingress_) ingress_fds.push_back(fd);
  for (int fd : ingress_fds) close_ingress(fd);
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace marlin::realnet
