// Full real-socket deployment on localhost: n replicas + m closed-loop
// clients, each a TcpTransport + EventLoop on its own thread, speaking
// length-prefixed frames over 127.0.0.1 TCP. Reuses runtime::ClusterConfig
// so a sim experiment and a metal run share one description (the simnet
// fields — NetConfig latency model, fault plan — simply don't apply here;
// real crashes are injected with kill_replica/relaunch_replica).
//
// Construction happens entirely on the calling thread: every node's
// listener is pre-bound (ephemeral ports) so the full endpoint table
// exists before any node thread spawns. start() launches the threads;
// stop() drains egress queues, stops the loops, and joins. Metrology
// accessors are safe only while the cluster is stopped (construction→start
// or after stop()) — node state belongs to node threads in between.
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "crypto/signer.h"
#include "obs/telemetry_server.h"
#include "realnet/real_client.h"
#include "realnet/real_replica.h"
#include "runtime/cluster.h"

namespace marlin::realnet {

struct RealClusterOptions {
  /// Base directory for replica stores ("<dir>/r<i>"); empty = in-memory
  /// (no kill+relaunch durability).
  std::string data_dir;
  /// fsync WAL writes (real crash-consistency at real fsync cost).
  bool sync_writes = false;
  /// Per-node event tracing into private sinks (merged_trace_events()).
  bool trace = false;
  std::size_t trace_capacity = obs::TraceSink::kDefaultCapacity;
  TransportConfig transport;
  /// Patience for egress drain during stop().
  Duration drain_timeout = Duration::seconds(2);
  /// Serve live GET /metrics, /status, /healthz per replica (127.0.0.1,
  /// on the replica's own loop thread — no extra threads).
  bool telemetry = false;
  /// Fixed telemetry ports: replica i listens on telemetry_base_port + i.
  /// 0 = ephemeral ports (read them back via telemetry_port(i)).
  std::uint16_t telemetry_base_port = 0;
  /// Crypto pre-verification workers per replica. 0 (default) verifies
  /// inline on the loop thread; >0 spawns a VerifyPool per replica and
  /// turns on crypto::set_parallel_crypto for the process.
  std::size_t verify_workers = 0;
};

class RealCluster {
 public:
  explicit RealCluster(runtime::ClusterConfig config,
                       RealClusterOptions options = {});
  ~RealCluster();

  RealCluster(const RealCluster&) = delete;
  RealCluster& operator=(const RealCluster&) = delete;

  /// Construction result (listener binds, store opens). Do not start() a
  /// cluster whose ok() failed.
  Status ok() const { return init_status_; }

  std::uint32_t n() const { return 3 * config_.f + 1; }
  std::uint32_t f() const { return config_.f; }
  std::uint32_t client_count() const { return config_.clients.count; }
  const runtime::ClusterConfig& config() const { return config_; }

  /// Spawns every node thread, starts replicas, then staggered clients.
  void start();
  /// Drains egress, stops loops, joins threads. Idempotent.
  void stop();
  bool running() const { return running_; }

  // -- crash faults ----------------------------------------------------------
  /// Hard-stops replica i: its loop halts, every socket closes (peers see
  /// resets). With a data_dir, the store survives for relaunch.
  void kill_replica(ReplicaId i);
  /// Rebuilds replica i over its surviving data dir (restore-from-disk) on
  /// the same port and rejoins it to the cluster (peers redial lazily).
  Status relaunch_replica(ReplicaId i);
  bool replica_alive(ReplicaId i) const;

  // -- metrology (stopped cluster only, unless noted) ------------------------
  RealReplica& replica(ReplicaId i) { return *nodes_[i].replica; }
  RealClient& client(ClientId i) { return *nodes_[n() + i].client; }
  /// Wire stats for node id (replicas then clients) — safe after stop().
  const net::NodeNetStats& node_stats(std::uint32_t id) const;
  /// Node id's transport (drain/shutdown assertions) — safe after stop().
  TcpTransport& transport(std::uint32_t id) { return *nodes_[id].transport; }

  /// Sets the throughput measurement window on every counter; call before
  /// start() (times on the mono_now() axis).
  void set_measurement_window(TimePoint start, TimePoint end);
  double client_throughput() const;
  double latency_ms(double percentile) const;
  double mean_latency_ms() const;
  std::uint64_t total_completed() const;
  bool any_safety_violation() const;
  bool committed_heights_consistent() const;
  Height min_committed_height() const;

  /// All nodes' trace events merged and time-sorted.
  ///
  /// Contract: tracing is opt-in at construction. When options.trace is
  /// false no sink exists anywhere, and this returns an EMPTY vector — it
  /// cannot distinguish "tracing off" from "nothing happened". Callers that
  /// need events must check tracing() first (marlin_run warns on
  /// --trace-out without it).
  std::vector<obs::TraceEvent> merged_trace_events() const;
  /// True when the cluster was built with options.trace (sinks exist and
  /// merged_trace_events() is meaningful).
  bool tracing() const { return options_.trace; }

  // -- live telemetry --------------------------------------------------------
  /// Replica i's telemetry port (0 when options.telemetry is off). Valid
  /// after construction; stable across relaunch. A killed replica keeps
  /// its port number but stops answering until relaunched.
  std::uint16_t telemetry_port(ReplicaId i) const {
    return nodes_[i].telemetry_port;
  }

  /// Live cluster-wide metrics snapshot, safe WHILE RUNNING: posts a copy
  /// task onto every live node's loop and merges the results exactly like
  /// runtime::Cluster::export_metrics (counters add, gauges re-exported
  /// per-replica, client latency pooled) so sim and realnet series share a
  /// schema. Replicas that fail to respond within `patience` (wedged loop)
  /// are skipped. Also callable on a stopped cluster (reads directly).
  obs::MetricsRegistry sample_metrics(
      Duration patience = Duration::seconds(1));

 private:
  struct Node {
    std::unique_ptr<EventLoop> loop;
    std::unique_ptr<TcpTransport> transport;
    std::unique_ptr<obs::TraceSink> trace;
    std::unique_ptr<crypto::SignatureSuite> suite;  // replicas only
    // Between suite and replica on purpose: destroying the node joins the
    // pool's workers (which reference the suite) before the suite dies,
    // after the replica (which holds the pool pointer) is gone, and while
    // the loop (declared first) is still alive for completion posts.
    std::unique_ptr<VerifyPool> verify;    // replicas only, opt-in
    std::unique_ptr<RealReplica> replica;  // replicas only
    std::unique_ptr<RealClient> client;             // clients only
    // Declared after the hosts it reads from: destroyed first, while the
    // loop (declared first) is still alive for del_fd calls.
    std::unique_ptr<obs::TelemetryServer> telemetry;  // replicas only
    std::thread thread;
    std::uint16_t port = 0;
    std::uint16_t telemetry_port = 0;  // kept across relaunch
    int pending_listen_fd = -1;  // bound, not yet adopted by a transport
    bool alive = false;
  };

  Status bind_listener(Node& node);
  Status build_node(std::uint32_t id);
  void start_node(std::uint32_t id);
  void begin_stop(std::uint32_t id, bool drain);
  void join_node(std::uint32_t id);

  runtime::ClusterConfig config_;
  RealClusterOptions options_;
  Status init_status_ = Status::ok();
  std::vector<Node> nodes_;
  std::vector<Endpoint> endpoints_;
  bool running_ = false;
};

}  // namespace marlin::realnet
