// Off-loop crypto: a small fixed-size worker pool implementing the
// common::VerifyExecutor seam for one replica. The event-loop thread
// submits (work, done) pairs; workers run the work closures (signature /
// MAC pre-verification — self-contained, read-only, safe off-thread under
// crypto::set_parallel_crypto), and completions are posted back to the
// owning EventLoop in deterministic submission order, regardless of which
// worker finishes first. The loop thread therefore observes exactly the
// message order it submitted — the pool changes *where* HMAC work burns
// CPU, never the order anything is applied.
//
// Shutdown: the destructor joins the workers. Jobs already claimed finish
// their work; completions that never got drained are dropped (their
// closures are destroyed unrun) — the owner only destroys the pool after
// its loop has stopped, so nothing is waiting on them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/verify_executor.h"
#include "obs/metrics.h"
#include "realnet/event_loop.h"

namespace marlin::realnet {

class VerifyPool final : public common::VerifyExecutor {
 public:
  /// Spawns `workers` threads (≥1) that post completions to `loop`.
  VerifyPool(EventLoop& loop, std::size_t workers);
  ~VerifyPool() override;

  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  // -- VerifyExecutor --------------------------------------------------------
  bool deferred() const override { return true; }
  /// Loop thread only. Null work completes without touching a worker; a
  /// null-work job submitted to an empty pool short-circuits and runs
  /// `done` inline (no reordering is possible then).
  void submit(std::function<void()> work, std::function<void()> done) override;

  // -- metrics (any thread; locked) ------------------------------------------
  std::uint64_t jobs_submitted() const;
  /// Jobs currently queued or running (the /metrics queue-depth gauge).
  std::size_t queue_depth() const;
  /// Writes verify_pool.* series (jobs, queue_depth, verify_ns) into `reg`.
  void export_metrics(obs::MetricsRegistry& reg) const;

 private:
  enum class JobState : std::uint8_t { kPending, kClaimed, kReady };

  struct Job {
    std::function<void()> work;  // null = ordering placeholder
    std::function<void()> done;
    JobState state = JobState::kPending;
  };

  void worker_main();
  /// Runs ready completions from the queue head, in order (loop thread).
  void drain_completions();

  EventLoop& loop_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> jobs_;      // FIFO; head = oldest submission
  std::size_t next_pending_ = 0;  // index into jobs_ of the claim frontier
  bool drain_posted_ = false;
  bool stop_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t claims_ = 0;  // worker claims, for 1-in-8 decimation
  /// Worker-side work-closure runtime, decimated 1-in-8 (guarded by mu_).
  LatencyHistogram verify_ns_;
  std::vector<std::thread> workers_;
};

}  // namespace marlin::realnet
