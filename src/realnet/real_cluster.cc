#include "realnet/real_cluster.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "obs/telemetry.h"

namespace marlin::realnet {

namespace {
/// Client start stagger (see runtime::Cluster::start): synchronized
/// closed-loop clients refill in lockstep generations otherwise.
Duration client_stagger(std::size_t c) {
  return Duration::millis(5) +
         Duration::millis(41) * static_cast<std::int64_t>(c);
}
}  // namespace

RealCluster::RealCluster(runtime::ClusterConfig config,
                         RealClusterOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  // Worker threads verify through per-replica suites concurrently with the
  // owning loop's signing; switch the tag caches to their locked mode
  // before any suite exists. Never unset: other clusters in the process
  // may still rely on it, and the locked path is correct (just slower).
  if (options_.verify_workers > 0) crypto::set_parallel_crypto(true);
  const std::uint32_t total = n() + config_.clients.count;
  nodes_.resize(total);
  endpoints_.resize(total);

  // Phase 1: bind every listener on the construction thread so the full
  // endpoint table exists before any node (or its peers) can dial.
  for (std::uint32_t id = 0; id < total; ++id) {
    if (Status s = bind_listener(nodes_[id]); !s.is_ok()) {
      init_status_ = s;
      return;
    }
    endpoints_[id] = Endpoint{"127.0.0.1", nodes_[id].port};
  }

  // Phase 2: construct loops, transports, and hosts (still this thread;
  // loops are not running yet, so no synchronization is needed).
  for (std::uint32_t id = 0; id < total; ++id) {
    if (Status s = build_node(id); !s.is_ok()) {
      init_status_ = s;
      return;
    }
  }
}

RealCluster::~RealCluster() { stop(); }

Status RealCluster::bind_listener(Node& node) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return error(ErrorCode::kIoError,
                 "socket: " + std::string(strerror(errno)));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(node.port);  // 0 first time; fixed port on relaunch
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      listen(fd, 64) != 0) {
    const std::string msg = strerror(errno);
    close(fd);
    return error(ErrorCode::kIoError, "bind/listen: " + msg);
  }
  socklen_t len = sizeof addr;
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  node.port = ntohs(addr.sin_port);
  node.pending_listen_fd = fd;
  return Status::ok();
}

Status RealCluster::build_node(std::uint32_t id) {
  Node& node = nodes_[id];
  node.loop = std::make_unique<EventLoop>();
  node.transport =
      std::make_unique<TcpTransport>(*node.loop, id, options_.transport);
  node.transport->adopt_listener(node.pending_listen_fd);
  node.pending_listen_fd = -1;
  for (std::uint32_t peer = 0; peer < endpoints_.size(); ++peer) {
    if (peer != id) node.transport->set_peer(peer, endpoints_[peer]);
  }
  if (options_.trace) {
    node.trace = std::make_unique<obs::TraceSink>(options_.trace_capacity);
    node.trace->set_clock([] { return mono_now(); });
    node.transport->set_trace(node.trace.get());
  }

  if (id < n()) {
    // Suites built from the same seed are identical; a private instance per
    // replica keeps the (non-thread-safe) verification caches unshared.
    Bytes seed_bytes(8);
    for (int i = 0; i < 8; ++i) {
      seed_bytes[i] = static_cast<std::uint8_t>(config_.seed >> (8 * i));
    }
    node.suite = crypto::make_fast_suite(n(), seed_bytes);

    const runtime::ConsensusConfig& cons = config_.consensus;
    RealReplicaConfig rc;
    rc.replica.id = id;
    rc.replica.quorum = QuorumParams::for_f(config_.f);
    rc.replica.max_batch_ops = cons.max_batch_ops;
    rc.replica.pipelined = cons.pipelined;
    rc.replica.allow_empty_blocks = cons.allow_empty_blocks;
    rc.replica.disable_happy_path = cons.disable_happy_path;
    rc.replica.use_threshold_sigs = cons.use_threshold_sigs;
    rc.protocol = cons.protocol;
    rc.pacemaker = cons.pacemaker;
    rc.checkpoint_interval = cons.checkpoint_interval;
    rc.reply_size = cons.reply_size;
    rc.client_base = n();
    rc.sync_writes = options_.sync_writes;
    rc.trace = node.trace.get();
    if (!options_.data_dir.empty()) {
      rc.data_dir = options_.data_dir + "/r" + std::to_string(id);
    }
    if (options_.verify_workers > 0) {
      node.verify =
          std::make_unique<VerifyPool>(*node.loop, options_.verify_workers);
      rc.verify_pool = node.verify.get();
    }
    node.replica = std::make_unique<RealReplica>(*node.loop, *node.transport,
                                                 *node.suite, rc);
    if (!node.replica->ok().is_ok()) return node.replica->ok();
    RealReplica* host = node.replica.get();
    node.transport->set_handler([host](std::uint32_t from, Payload p) {
      host->on_message(from, std::move(p));
    });
    if (options_.telemetry) {
      obs::TelemetryHandlers th;
      th.metrics = [host] {
        return obs::metrics_to_prometheus(host->snapshot_metrics());
      };
      th.status = [host] { return host->status_json(); };
      th.healthy = [host] { return host->healthy(); };
      node.telemetry =
          std::make_unique<obs::TelemetryServer>(*node.loop, std::move(th));
      std::uint16_t want = node.telemetry_port;  // relaunch: same port
      if (want == 0 && options_.telemetry_base_port != 0) {
        want = static_cast<std::uint16_t>(options_.telemetry_base_port + id);
      }
      auto port = node.telemetry->listen(want);
      if (!port.is_ok() && node.telemetry_port != 0) {
        // Relaunch with the old ephemeral port stolen meanwhile: any port
        // beats no telemetry.
        port = node.telemetry->listen(0);
      }
      if (!port.is_ok()) return port.status();
      node.telemetry_port = port.value();
    }
  } else {
    RealClientConfig cc;
    cc.id = id - n();
    cc.quorum = QuorumParams::for_f(config_.f);
    cc.window = config_.clients.window;
    cc.payload_size = config_.clients.payload_size;
    cc.retransmit_timeout = config_.clients.retransmit_timeout;
    cc.max_requests = config_.clients.max_requests;
    cc.rng_seed = config_.seed * 0x9e3779b97f4a7c15ull + id;
    cc.trace = node.trace.get();
    node.client =
        std::make_unique<RealClient>(*node.loop, *node.transport, cc);
    RealClient* host = node.client.get();
    node.transport->set_handler([host](std::uint32_t from, Payload p) {
      host->on_message(from, std::move(p));
    });
  }
  return Status::ok();
}

void RealCluster::start_node(std::uint32_t id) {
  Node& node = nodes_[id];
  EventLoop* loop = node.loop.get();
  node.thread = std::thread([loop] { loop->run(); });
  node.alive = true;
  if (node.replica) {
    RealReplica* host = node.replica.get();
    loop->post([host] { host->start(); });
  } else {
    RealClient* host = node.client.get();
    loop->post([loop, host, delay = client_stagger(id - n())] {
      loop->post_after(delay, [host] { host->start(); });
    });
  }
}

void RealCluster::start() {
  if (running_ || !init_status_.is_ok()) return;
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) start_node(id);
  running_ = true;
}

void RealCluster::begin_stop(std::uint32_t id, bool drain) {
  Node& node = nodes_[id];
  if (!node.alive) return;
  EventLoop* loop = node.loop.get();
  TcpTransport* transport = node.transport.get();
  obs::TelemetryServer* telemetry = node.telemetry.get();

  // Clean shutdown drains in-flight sends: poll the egress queues on the
  // loop thread until empty (or patience runs out), then close everything
  // and stop the loop. The polling closure reschedules itself, so it must
  // live on the heap until the final round.
  const TimePoint deadline = mono_now() + (drain ? options_.drain_timeout
                                                 : Duration::zero());
  // The closure holds only a weak self-reference; each rescheduled task
  // carries the strong one. A strong capture here would be a
  // shared_ptr cycle (the function owning itself) and leak every stop.
  auto step = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = step;
  *step = [loop, transport, telemetry, deadline, weak] {
    if (transport->pending_egress_bytes() > 0 && mono_now() < deadline) {
      if (auto self = weak.lock()) {
        loop->post_after(Duration::millis(1), [self] { (*self)(); });
      }
      return;
    }
    if (telemetry != nullptr) telemetry->shutdown();
    transport->shutdown();
    loop->stop();
  };
  loop->post([step] { (*step)(); });
}

void RealCluster::join_node(std::uint32_t id) {
  Node& node = nodes_[id];
  if (!node.alive) return;
  node.thread.join();
  node.alive = false;
}

void RealCluster::stop() {
  if (!running_) return;
  // 1. Quiesce clients: stop issuing, keep the loops alive so replies and
  //    replica drains still land somewhere.
  for (std::uint32_t id = n(); id < nodes_.size(); ++id) {
    if (!nodes_[id].alive) continue;
    RealClient* host = nodes_[id].client.get();
    nodes_[id].loop->post([host] { host->quiesce(); });
  }
  // 2. Drain and stop every replica concurrently (while all are live their
  //    mutual egress flushes; serial stops would strand frames addressed
  //    to already-stopped peers until the drain deadline).
  for (std::uint32_t id = 0; id < n(); ++id) begin_stop(id, /*drain=*/true);
  for (std::uint32_t id = 0; id < n(); ++id) join_node(id);
  // 3. Stop the clients.
  for (std::uint32_t id = n(); id < nodes_.size(); ++id) {
    begin_stop(id, /*drain=*/false);
  }
  for (std::uint32_t id = n(); id < nodes_.size(); ++id) join_node(id);
  running_ = false;
}

void RealCluster::kill_replica(ReplicaId i) {
  begin_stop(i, /*drain=*/false);
  join_node(i);
}

bool RealCluster::replica_alive(ReplicaId i) const {
  return nodes_[i].alive;
}

Status RealCluster::relaunch_replica(ReplicaId i) {
  Node& node = nodes_[i];
  if (node.alive) return Status::ok();
  // Tear down the dead incarnation (its data dir survives), rebind the
  // same port, rebuild, rejoin. Peers redial lazily via backoff.
  node.telemetry.reset();  // before the loop it registered with
  node.replica.reset();
  node.verify.reset();  // joins workers before suite/loop go away
  node.transport.reset();
  node.loop.reset();
  node.suite.reset();
  node.trace.reset();
  if (Status s = bind_listener(node); !s.is_ok()) return s;
  if (Status s = build_node(i); !s.is_ok()) return s;
  start_node(i);
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Metrology
// ---------------------------------------------------------------------------

const net::NodeNetStats& RealCluster::node_stats(std::uint32_t id) const {
  return nodes_[id].transport->stats();
}

void RealCluster::set_measurement_window(TimePoint start, TimePoint end) {
  for (auto& node : nodes_) {
    if (node.client) node.client->completed().set_window(start, end);
    if (node.replica) node.replica->committed_ops().set_window(start, end);
  }
}

double RealCluster::client_throughput() const {
  double total = 0;
  for (const auto& node : nodes_) {
    if (node.client) total += node.client->completed().rate_per_second();
  }
  return total;
}

double RealCluster::latency_ms(double percentile) const {
  LatencyHistogram merged;
  for (const auto& node : nodes_) {
    if (node.client) merged.merge_from(node.client->latency());
  }
  return merged.percentile(percentile).as_millis_f();
}

double RealCluster::mean_latency_ms() const {
  LatencyHistogram merged;
  for (const auto& node : nodes_) {
    if (node.client) merged.merge_from(node.client->latency());
  }
  return merged.mean().as_millis_f();
}

std::uint64_t RealCluster::total_completed() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node.client) total += node.client->completed().total();
  }
  return total;
}

bool RealCluster::any_safety_violation() const {
  for (std::uint32_t i = 0; i < n(); ++i) {
    if (!nodes_[i].replica) continue;
    if (nodes_[i].replica->protocol().safety_violated()) return true;
  }
  return false;
}

bool RealCluster::committed_heights_consistent() const {
  // A stopped (or killed-and-joined) replica's final state is still
  // readable through its host object; no liveness filter here.
  for (std::uint32_t i = 0; i < n(); ++i) {
    if (!nodes_[i].replica) continue;
    for (std::uint32_t j = i + 1; j < n(); ++j) {
      if (!nodes_[j].replica) continue;
      const auto& a = nodes_[i].replica->protocol();
      const auto& b = nodes_[j].replica->protocol();
      const auto& lo = a.committed_height() <= b.committed_height() ? a : b;
      const auto& hi = a.committed_height() <= b.committed_height() ? b : a;
      if (lo.committed_height() == 0) continue;
      if (!hi.store().extends(hi.committed_hash(), lo.committed_hash())) {
        return false;
      }
    }
  }
  return true;
}

Height RealCluster::min_committed_height() const {
  Height min = 0;
  bool first = true;
  for (std::uint32_t i = 0; i < n(); ++i) {
    if (!nodes_[i].replica) continue;
    const Height h = nodes_[i].replica->protocol().committed_height();
    min = first ? h : std::min(min, h);
    first = false;
  }
  return min;
}

obs::MetricsRegistry RealCluster::sample_metrics(Duration patience) {
  // Per-node snapshots are taken on each node's own loop thread (host
  // state has no locks); this thread merges them. A killed node is read
  // directly — its loop is joined, so this thread owns its state.
  struct Sample {
    std::uint32_t id;
    obs::MetricsRegistry registry;
    LatencyHistogram client_latency;
    bool is_replica;
  };
  // Shared-ownership state: every posted closure keeps it alive, so a task
  // that runs after the patience deadline (or is dropped with a stopping
  // loop) appends into — or releases — heap state, never this stack frame.
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Sample> samples;
    std::size_t outstanding = 0;
  };
  auto shared = std::make_shared<Shared>();

  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    Node& node = nodes_[id];
    const bool is_replica = node.replica != nullptr;
    if (!is_replica && node.client == nullptr) continue;
    if (!node.alive) {
      // Joined node: this thread owns its state, read directly.
      Sample s{id, {}, {}, is_replica};
      if (is_replica) {
        s.registry = node.replica->snapshot_metrics();
      } else {
        s.client_latency = node.client->latency();
      }
      std::lock_guard<std::mutex> lock(shared->mu);
      shared->samples.push_back(std::move(s));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(shared->mu);
      ++shared->outstanding;
    }
    RealReplica* replica = node.replica.get();
    RealClient* client = node.client.get();
    node.loop->post([shared, id, is_replica, replica, client] {
      Sample s{id, {}, {}, is_replica};
      if (is_replica) {
        s.registry = replica->snapshot_metrics();
      } else {
        s.client_latency = client->latency();
      }
      std::lock_guard<std::mutex> lock(shared->mu);
      shared->samples.push_back(std::move(s));
      --shared->outstanding;
      shared->cv.notify_all();
    });
  }

  std::vector<Sample> samples;
  {
    std::unique_lock<std::mutex> lock(shared->mu);
    shared->cv.wait_for(lock, std::chrono::nanoseconds(patience.as_nanos()),
                        [&shared] { return shared->outstanding == 0; });
    samples = std::move(shared->samples);  // late arrivals are skipped
  }

  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.id < b.id; });

  obs::MetricsRegistry out;
  char label[32];
  for (const Sample& s : samples) {
    if (s.is_replica) {
      out.merge_from(s.registry);
      // Gauges are meaningless summed across replicas; keep the distinct
      // values under per-replica labels (same shape as the sim cluster).
      std::snprintf(label, sizeof label, "replica=%u", s.id);
      for (const auto& [key, value] : s.registry.gauges()) {
        out.gauge(key.name, label) = value;
      }
    } else {
      out.latency("client.latency").merge_from(s.client_latency);
    }
  }
  return out;
}

std::vector<obs::TraceEvent> RealCluster::merged_trace_events() const {
  std::vector<obs::TraceEvent> all;
  for (const auto& node : nodes_) {
    if (!node.trace) continue;
    auto events = node.trace->events();
    all.insert(all.end(), events.begin(), events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                     return a.at < b.at;
                   });
  return all;
}

}  // namespace marlin::realnet
