// Write-ahead log: length-prefixed, CRC-guarded records. Every mutation of
// the KV store is appended here before touching the memtable, so an open
// after a crash replays the tail that never made it into an SSTable.
//
// Record framing: [u32 masked-crc][u32 len][payload]. Replay stops cleanly
// at the first torn/corrupt record (partial final write is not an error).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "obs/trace.h"
#include "storage/env.h"

namespace marlin::storage {

class WalWriter {
 public:
  /// Creates (truncates) the segment `name` in `env`.
  static Result<WalWriter> create(Env& env, const std::string& name);

  Status append(BytesView record);
  Status sync() { return file_->sync(); }
  std::uint64_t size() const { return file_->size(); }

  /// Records a kWalWrite event (a = record payload bytes) per append,
  /// attributed to `node`. nullptr disables tracing.
  void set_trace(obs::TraceSink* sink, std::uint32_t node) {
    trace_ = sink;
    trace_node_ = node;
  }

 private:
  explicit WalWriter(std::unique_ptr<AppendFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<AppendFile> file_;
  obs::TraceSink* trace_ = nullptr;
  std::uint32_t trace_node_ = obs::kNoNode;
};

/// Reads all intact records from a segment. A trailing torn record is
/// silently dropped; a CRC mismatch mid-file reports kCorruption.
Result<std::vector<Bytes>> wal_read_all(const Env& env,
                                        const std::string& name);

}  // namespace marlin::storage
