#include "storage/wal.h"

#include "common/crc32c.h"
#include "common/serialize.h"

namespace marlin::storage {

Result<WalWriter> WalWriter::create(Env& env, const std::string& name) {
  auto file = env.create_append(name);
  if (!file.is_ok()) return file.status();
  return WalWriter(std::move(file).take());
}

Status WalWriter::append(BytesView record) {
  Writer w(record.size() + 8);
  w.u32(crc32c_masked(record));
  w.u32(static_cast<std::uint32_t>(record.size()));
  w.raw(record);
  if (trace_) {
    trace_->record({.node = trace_node_,
                    .type = obs::EventType::kWalWrite,
                    .a = record.size()});
  }
  return file_->append(w.buffer());
}

Result<std::vector<Bytes>> wal_read_all(const Env& env,
                                        const std::string& name) {
  auto content = env.read_file(name);
  if (!content.is_ok()) return content.status();
  const Bytes& data = content.value();

  std::vector<Bytes> records;
  std::size_t pos = 0;
  while (pos + 8 <= data.size()) {
    Reader header(BytesView(data.data() + pos, 8));
    std::uint32_t crc = 0, len = 0;
    (void)header.u32(crc);
    (void)header.u32(len);
    if (pos + 8 + len > data.size()) break;  // torn final record
    BytesView payload(data.data() + pos + 8, len);
    if (crc32c_masked(payload) != crc) {
      // A bad CRC mid-file (with full length present) is real corruption,
      // not a torn tail.
      return error(ErrorCode::kCorruption, "wal crc mismatch in " + name);
    }
    records.emplace_back(payload.begin(), payload.end());
    pos += 8 + len;
  }
  return records;
}

}  // namespace marlin::storage
