// Immutable sorted table. Layout:
//
//   data section:   repeated [varint klen][key][u8 kind][varint vlen][value]
//   index section:  repeated [varint klen][key][varint offset]
//   footer (20 B):  [u64 index_offset][u64 entry_count][u32 masked-crc of
//                    data+index]
//
// The reader keeps the whole index in memory (these tables are flush-sized,
// not TB-sized) and binary-searches it per lookup.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/memtable.h"

namespace marlin::storage {

/// Writes a memtable snapshot (already sorted) as an SSTable file. When
/// `bytes_written` is non-null it receives the file's total size.
Status write_sstable(Env& env, const std::string& name,
                     const std::map<std::string, ValueOrTombstone>& entries,
                     std::size_t* bytes_written = nullptr);

class SSTable {
 public:
  /// Opens and validates (footer CRC) a table file.
  static Result<std::shared_ptr<SSTable>> open(const Env& env,
                                               const std::string& name);

  /// nullopt = not in this table; tombstones are returned explicitly.
  std::optional<ValueOrTombstone> get(const std::string& key) const;

  std::size_t entry_count() const { return index_.size(); }
  const std::string& file_name() const { return name_; }

  /// Sorted iteration support for merged scans.
  struct Entry {
    std::string key;
    ValueOrTombstone value;
  };
  /// Decodes every entry in order (used by compaction and scans).
  std::vector<Entry> read_all() const;

 private:
  struct IndexEntry {
    std::string key;
    std::uint64_t offset;
  };

  SSTable(std::string name, Bytes data, std::vector<IndexEntry> index)
      : name_(std::move(name)), data_(std::move(data)), index_(std::move(index)) {}

  std::optional<ValueOrTombstone> decode_at(std::uint64_t offset) const;

  std::string name_;
  Bytes data_;  // data section only
  std::vector<IndexEntry> index_;
};

}  // namespace marlin::storage
