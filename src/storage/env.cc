#include "storage/env.h"

#include <cstdio>
#include <filesystem>
#include <map>

namespace marlin::storage {

namespace {

// ---------------------------------------------------------------------------
// In-memory environment
// ---------------------------------------------------------------------------

class MemEnv;

class MemAppendFile final : public AppendFile {
 public:
  explicit MemAppendFile(Bytes* target) : target_(target) {}

  Status append(BytesView data) override {
    marlin::append(*target_, data);
    return Status::ok();
  }
  Status sync() override { return Status::ok(); }
  std::uint64_t size() const override { return target_->size(); }

 private:
  Bytes* target_;  // owned by the MemEnv's file map
};

class MemEnv final : public Env {
 public:
  Result<std::unique_ptr<AppendFile>> create_append(
      const std::string& name) override {
    auto& content = files_[name];
    content.clear();
    return std::unique_ptr<AppendFile>(std::make_unique<MemAppendFile>(&content));
  }

  Result<Bytes> read_file(const std::string& name) const override {
    auto it = files_.find(name);
    if (it == files_.end()) {
      return error(ErrorCode::kNotFound, "no such file: " + name);
    }
    return it->second;
  }

  Status write_file_atomic(const std::string& name, BytesView data) override {
    files_[name] = Bytes(data.begin(), data.end());
    return Status::ok();
  }

  Status remove_file(const std::string& name) override {
    files_.erase(name);
    return Status::ok();
  }

  bool file_exists(const std::string& name) const override {
    return files_.count(name) > 0;
  }

  std::vector<std::string> list_files() const override {
    std::vector<std::string> out;
    out.reserve(files_.size());
    for (const auto& [name, _] : files_) out.push_back(name);
    return out;
  }

 private:
  // std::map guarantees pointer stability for MemAppendFile targets.
  std::map<std::string, Bytes> files_;
};

// ---------------------------------------------------------------------------
// POSIX environment
// ---------------------------------------------------------------------------

class PosixAppendFile final : public AppendFile {
 public:
  PosixAppendFile(std::FILE* f, std::uint64_t size) : f_(f), size_(size) {}
  ~PosixAppendFile() override {
    if (f_) std::fclose(f_);
  }

  Status append(BytesView data) override {
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return error(ErrorCode::kIoError, "short write");
    }
    size_ += data.size();
    return Status::ok();
  }

  Status sync() override {
    if (std::fflush(f_) != 0) return error(ErrorCode::kIoError, "fflush failed");
    return Status::ok();
  }

  std::uint64_t size() const override { return size_; }

 private:
  std::FILE* f_;
  std::uint64_t size_;
};

class PosixEnv final : public Env {
 public:
  explicit PosixEnv(std::filesystem::path root) : root_(std::move(root)) {}

  Result<std::unique_ptr<AppendFile>> create_append(
      const std::string& name) override {
    std::FILE* f = std::fopen(path(name).c_str(), "wb");
    if (!f) return error(ErrorCode::kIoError, "cannot create " + name);
    return std::unique_ptr<AppendFile>(std::make_unique<PosixAppendFile>(f, 0));
  }

  Result<Bytes> read_file(const std::string& name) const override {
    std::FILE* f = std::fopen(path(name).c_str(), "rb");
    if (!f) return error(ErrorCode::kNotFound, "no such file: " + name);
    std::fseek(f, 0, SEEK_END);
    const long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    Bytes out(static_cast<std::size_t>(len));
    const std::size_t got = len > 0 ? std::fread(out.data(), 1, out.size(), f) : 0;
    std::fclose(f);
    if (got != out.size()) return error(ErrorCode::kIoError, "short read");
    return out;
  }

  Status write_file_atomic(const std::string& name, BytesView data) override {
    const std::string tmp = path(name) + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) return error(ErrorCode::kIoError, "cannot create temp for " + name);
    const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
    std::fclose(f);
    if (!ok) return error(ErrorCode::kIoError, "short write");
    std::error_code ec;
    std::filesystem::rename(tmp, path(name), ec);
    if (ec) return error(ErrorCode::kIoError, "rename failed: " + ec.message());
    return Status::ok();
  }

  Status remove_file(const std::string& name) override {
    std::error_code ec;
    std::filesystem::remove(path(name), ec);
    if (ec) return error(ErrorCode::kIoError, "remove failed: " + ec.message());
    return Status::ok();
  }

  bool file_exists(const std::string& name) const override {
    return std::filesystem::exists(path(name));
  }

  std::vector<std::string> list_files() const override {
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(root_, ec)) {
      if (entry.is_regular_file()) out.push_back(entry.path().filename());
    }
    return out;
  }

 private:
  std::string path(const std::string& name) const { return root_ / name; }

  std::filesystem::path root_;
};

}  // namespace

std::unique_ptr<Env> make_mem_env() {
  return std::make_unique<MemEnv>();
}

Result<std::unique_ptr<Env>> make_posix_env(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return error(ErrorCode::kIoError, "cannot create dir: " + ec.message());
  }
  return std::unique_ptr<Env>(std::make_unique<PosixEnv>(dir));
}

}  // namespace marlin::storage
