// Sorted in-memory write buffer. Holds the newest version of each key
// (including tombstones) until a flush turns it into an SSTable.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace marlin::storage {

/// A value or a deletion marker.
struct ValueOrTombstone {
  Bytes value;
  bool tombstone = false;
};

class MemTable {
 public:
  void put(const std::string& key, Bytes value) {
    adjust_size(key, value.size());
    entries_[key] = ValueOrTombstone{std::move(value), false};
  }

  void del(const std::string& key) {
    adjust_size(key, 0);
    entries_[key] = ValueOrTombstone{{}, true};
  }

  /// nullopt = key unknown here (check older tables); a tombstone result
  /// means "definitely deleted".
  std::optional<ValueOrTombstone> get(const std::string& key) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t entry_count() const { return entries_.size(); }
  /// Approximate resident bytes — drives the flush threshold.
  std::size_t approximate_bytes() const { return approx_bytes_; }

  const std::map<std::string, ValueOrTombstone>& entries() const {
    return entries_;
  }

  void clear() {
    entries_.clear();
    approx_bytes_ = 0;
  }

 private:
  void adjust_size(const std::string& key, std::size_t value_size) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      approx_bytes_ -= it->first.size() + it->second.value.size() + 16;
    }
    approx_bytes_ += key.size() + value_size + 16;
  }

  std::map<std::string, ValueOrTombstone> entries_;
  std::size_t approx_bytes_ = 0;
};

}  // namespace marlin::storage
