#include "storage/sstable.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/serialize.h"

namespace marlin::storage {

namespace {
constexpr std::uint8_t kKindValue = 0;
constexpr std::uint8_t kKindTombstone = 1;
constexpr std::size_t kFooterSize = 20;
}  // namespace

Status write_sstable(Env& env, const std::string& name,
                     const std::map<std::string, ValueOrTombstone>& entries,
                     std::size_t* bytes_written) {
  Writer data;
  Writer index;
  for (const auto& [key, vot] : entries) {
    index.str(key);
    index.varint(data.size());
    data.str(key);
    data.u8(vot.tombstone ? kKindTombstone : kKindValue);
    if (vot.tombstone) {
      data.varint(0);
    } else {
      data.bytes(vot.value);
    }
  }

  Writer file(data.size() + index.size() + kFooterSize);
  file.raw(data.buffer());
  const std::uint64_t index_offset = file.size();
  file.raw(index.buffer());
  const std::uint32_t crc = crc32c_masked(file.buffer());
  file.u64(index_offset);
  file.u64(entries.size());
  file.u32(crc);

  if (bytes_written != nullptr) *bytes_written = file.size();
  return env.write_file_atomic(name, file.buffer());
}

Result<std::shared_ptr<SSTable>> SSTable::open(const Env& env,
                                               const std::string& name) {
  auto content = env.read_file(name);
  if (!content.is_ok()) return content.status();
  Bytes file = std::move(content).take();
  if (file.size() < kFooterSize) {
    return error(ErrorCode::kCorruption, "sstable too small: " + name);
  }

  Reader footer(BytesView(file.data() + file.size() - kFooterSize, kFooterSize));
  std::uint64_t index_offset = 0, count = 0;
  std::uint32_t crc = 0;
  (void)footer.u64(index_offset);
  (void)footer.u64(count);
  (void)footer.u32(crc);

  const std::size_t body_size = file.size() - kFooterSize;
  if (index_offset > body_size) {
    return error(ErrorCode::kCorruption, "bad index offset: " + name);
  }
  if (crc32c_masked(BytesView(file.data(), body_size)) != crc) {
    return error(ErrorCode::kCorruption, "sstable crc mismatch: " + name);
  }

  Reader index_reader(
      BytesView(file.data() + index_offset, body_size - index_offset));
  std::vector<IndexEntry> index;
  index.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    IndexEntry e;
    if (Status s = index_reader.str(e.key); !s.is_ok()) return s;
    if (Status s = index_reader.varint(e.offset); !s.is_ok()) return s;
    index.push_back(std::move(e));
  }
  if (Status s = index_reader.expect_exhausted(); !s.is_ok()) return s;

  Bytes data(file.begin(), file.begin() + static_cast<std::ptrdiff_t>(index_offset));
  return std::shared_ptr<SSTable>(
      new SSTable(name, std::move(data), std::move(index)));
}

std::optional<ValueOrTombstone> SSTable::get(const std::string& key) const {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const IndexEntry& e, const std::string& k) { return e.key < k; });
  if (it == index_.end() || it->key != key) return std::nullopt;
  return decode_at(it->offset);
}

std::optional<ValueOrTombstone> SSTable::decode_at(std::uint64_t offset) const {
  if (offset >= data_.size()) return std::nullopt;
  Reader r(BytesView(data_.data() + offset, data_.size() - offset));
  std::string key;
  std::uint8_t kind = 0;
  ValueOrTombstone out;
  if (!r.str(key).is_ok()) return std::nullopt;
  if (!r.u8(kind).is_ok()) return std::nullopt;
  if (kind == kKindTombstone) {
    std::uint64_t zero = 0;
    if (!r.varint(zero).is_ok()) return std::nullopt;
    out.tombstone = true;
    return out;
  }
  if (!r.bytes(out.value).is_ok()) return std::nullopt;
  return out;
}

std::vector<SSTable::Entry> SSTable::read_all() const {
  std::vector<Entry> out;
  out.reserve(index_.size());
  Reader r(BytesView(data_.data(), data_.size()));
  while (!r.exhausted()) {
    Entry e;
    std::uint8_t kind = 0;
    if (!r.str(e.key).is_ok()) break;
    if (!r.u8(kind).is_ok()) break;
    if (kind == kKindTombstone) {
      std::uint64_t zero = 0;
      if (!r.varint(zero).is_ok()) break;
      e.value.tombstone = true;
    } else if (!r.bytes(e.value.value).is_ok()) {
      break;
    }
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace marlin::storage
