// Filesystem abstraction under the storage engine. Two implementations:
// MemEnv (deterministic, used inside the simulation and by most tests) and
// PosixEnv (real files, used by examples and durability tests).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace marlin::storage {

/// Append-only file handle (WAL segments, SSTable builders).
class AppendFile {
 public:
  virtual ~AppendFile() = default;
  virtual Status append(BytesView data) = 0;
  virtual Status sync() = 0;
  virtual std::uint64_t size() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<AppendFile>> create_append(
      const std::string& name) = 0;
  /// Reads the whole file.
  virtual Result<Bytes> read_file(const std::string& name) const = 0;
  /// Atomically replaces `name` with `data` (manifest updates).
  virtual Status write_file_atomic(const std::string& name,
                                   BytesView data) = 0;
  virtual Status remove_file(const std::string& name) = 0;
  virtual bool file_exists(const std::string& name) const = 0;
  virtual std::vector<std::string> list_files() const = 0;
};

/// In-memory filesystem; deterministic, cheap, crash-free.
std::unique_ptr<Env> make_mem_env();

/// Real filesystem rooted at `dir` (created if missing).
Result<std::unique_ptr<Env>> make_posix_env(const std::string& dir);

}  // namespace marlin::storage
