// Virtual-time cost model for the storage write path, charged by the
// replica runtime per committed block. Calibrated to LevelDB-class numbers
// on commodity SSD servers: a WAL append + memtable insert is a few
// microseconds per operation plus a per-byte copy cost; the periodic
// checkpoint (compaction) stalls the replica for a burst, which is exactly
// the "garbage collection every 5000 blocks" hiccup the paper describes.
#pragma once

#include "common/sim_time.h"

namespace marlin::storage {

struct CostModel {
  Duration write_base = Duration::micros(4);   // per KV record
  Duration write_per_byte = Duration::nanos(8);
  Duration read_base = Duration::micros(2);
  Duration checkpoint_base = Duration::millis(12);
  Duration checkpoint_per_block = Duration::micros(3);

  Duration write_cost(std::size_t bytes) const {
    return write_base + write_per_byte * static_cast<std::int64_t>(bytes);
  }
  Duration checkpoint_cost(std::uint64_t blocks_since_last) const {
    return checkpoint_base +
           checkpoint_per_block * static_cast<std::int64_t>(blocks_since_last);
  }
};

}  // namespace marlin::storage
