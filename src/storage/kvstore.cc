#include "storage/kvstore.h"

#include <algorithm>
#include <map>

#include "common/serialize.h"

namespace marlin::storage {

namespace {
constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpDel = 2;
constexpr const char* kManifestName = "MANIFEST";
}  // namespace

std::string KVStore::wal_name(std::uint64_t number) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "wal-%06llu.log",
                static_cast<unsigned long long>(number));
  return buf;
}

std::string KVStore::table_name(std::uint64_t number) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "sst-%06llu.tbl",
                static_cast<unsigned long long>(number));
  return buf;
}

Result<std::unique_ptr<KVStore>> KVStore::open(Env& env,
                                               KVStoreOptions options) {
  auto store = std::unique_ptr<KVStore>(new KVStore(env, options));
  if (Status s = store->recover(); !s.is_ok()) return s;
  return store;
}

Status KVStore::recover() {
  if (env_.file_exists(kManifestName)) {
    auto manifest = env_.read_file(kManifestName);
    if (!manifest.is_ok()) return manifest.status();
    Reader r(manifest.value());
    std::uint64_t table_count = 0;
    if (Status s = r.u64(next_file_number_); !s.is_ok()) return s;
    if (Status s = r.u64(current_wal_number_); !s.is_ok()) return s;
    if (Status s = r.varint(table_count); !s.is_ok()) return s;
    for (std::uint64_t i = 0; i < table_count; ++i) {
      std::string name;
      if (Status s = r.str(name); !s.is_ok()) return s;
      auto table = SSTable::open(env_, name);
      if (!table.is_ok()) return table.status();
      tables_.push_back(std::move(table).take());
    }
    if (Status s = r.expect_exhausted(); !s.is_ok()) return s;

    // Replay the WAL tail into the memtable.
    const std::string wal = wal_name(current_wal_number_);
    if (env_.file_exists(wal)) {
      auto records = wal_read_all(env_, wal);
      if (!records.is_ok()) return records.status();
      for (const Bytes& rec : records.value()) {
        Reader rr(rec);
        std::uint8_t op = 0;
        std::string key;
        Bytes value;
        if (Status s = rr.u8(op); !s.is_ok()) return s;
        if (Status s = rr.str(key); !s.is_ok()) return s;
        if (op == kOpPut) {
          if (Status s = rr.bytes(value); !s.is_ok()) return s;
          mem_.put(key, std::move(value));
        } else if (op == kOpDel) {
          mem_.del(key);
        } else {
          return error(ErrorCode::kCorruption, "unknown wal op");
        }
        ++wal_records_replayed_;
      }
    }
  } else {
    current_wal_number_ = next_file_number_++;
    if (Status s = persist_manifest(); !s.is_ok()) return s;
  }

  // Recovery must not truncate an existing WAL: continue appends in a new
  // segment... but a fresh segment per open would leak the old tail. We
  // instead flush the replayed memtable immediately (if any) and then start
  // a clean WAL — simple and safe.
  if (!mem_.empty()) {
    if (Status s = flush(); !s.is_ok()) return s;
  } else {
    auto w = WalWriter::create(env_, wal_name(current_wal_number_));
    if (!w.is_ok()) return w.status();
    wal_ = std::make_unique<WalWriter>(std::move(w).take());
    wal_->set_trace(options_.trace, options_.trace_node);
  }
  return Status::ok();
}

Status KVStore::persist_manifest() {
  Writer w;
  w.u64(next_file_number_);
  w.u64(current_wal_number_);
  w.varint(tables_.size());
  for (const auto& t : tables_) w.str(t->file_name());
  return env_.write_file_atomic(kManifestName, w.buffer());
}

Status KVStore::append_wal(std::uint8_t op, const std::string& key,
                           BytesView value) {
  Writer w(key.size() + value.size() + 8);
  w.u8(op);
  w.str(key);
  if (op == kOpPut) w.bytes(value);
  if (Status s = wal_->append(w.buffer()); !s.is_ok()) return s;
  if (options_.sync_writes) return wal_->sync();
  return Status::ok();
}

Status KVStore::put(const std::string& key, BytesView value) {
  if (Status s = append_wal(kOpPut, key, value); !s.is_ok()) return s;
  mem_.put(key, Bytes(value.begin(), value.end()));
  return maybe_flush();
}

Status KVStore::del(const std::string& key) {
  if (Status s = append_wal(kOpDel, key, {}); !s.is_ok()) return s;
  mem_.del(key);
  return maybe_flush();
}

Result<Bytes> KVStore::get(const std::string& key) const {
  if (auto hit = mem_.get(key)) {
    if (hit->tombstone) return error(ErrorCode::kNotFound, key);
    return hit->value;
  }
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    if (auto hit = (*it)->get(key)) {
      if (hit->tombstone) return error(ErrorCode::kNotFound, key);
      return hit->value;
    }
  }
  return error(ErrorCode::kNotFound, key);
}

Status KVStore::maybe_flush() {
  if (mem_.approximate_bytes() < options_.memtable_flush_bytes) {
    return Status::ok();
  }
  return flush();
}

Status KVStore::flush() {
  if (!mem_.empty()) {
    const std::uint64_t table_number = next_file_number_++;
    const std::string name = table_name(table_number);
    const std::size_t entry_count = mem_.entries().size();
    std::size_t table_bytes = 0;
    if (Status s = write_sstable(env_, name, mem_.entries(), &table_bytes);
        !s.is_ok()) {
      return s;
    }
    if (options_.trace) {
      options_.trace->record({.node = options_.trace_node,
                              .type = obs::EventType::kSstableWrite,
                              .a = table_bytes,
                              .b = entry_count});
    }
    auto table = SSTable::open(env_, name);
    if (!table.is_ok()) return table.status();
    tables_.push_back(std::move(table).take());
    mem_.clear();
  }

  // Rotate to a fresh WAL: everything in the old one is now in tables.
  const std::uint64_t old_wal = current_wal_number_;
  current_wal_number_ = next_file_number_++;
  auto w = WalWriter::create(env_, wal_name(current_wal_number_));
  if (!w.is_ok()) return w.status();
  wal_ = std::make_unique<WalWriter>(std::move(w).take());
  wal_->set_trace(options_.trace, options_.trace_node);
  if (Status s = persist_manifest(); !s.is_ok()) return s;
  (void)env_.remove_file(wal_name(old_wal));
  return Status::ok();
}

Status KVStore::checkpoint() {
  if (Status s = flush(); !s.is_ok()) return s;
  const std::size_t tables_before = tables_.size();
  if (options_.trace) {
    options_.trace->record({.node = options_.trace_node,
                            .type = obs::EventType::kCheckpoint,
                            .a = tables_before});
  }
  if (tables_.size() <= 1) return Status::ok();

  // Merge newest-wins: later tables shadow earlier ones.
  std::map<std::string, ValueOrTombstone> merged;
  for (const auto& table : tables_) {
    for (auto& entry : table->read_all()) {
      merged[entry.key] = std::move(entry.value);
    }
  }
  // Tombstones have no older versions left to shadow — drop them.
  for (auto it = merged.begin(); it != merged.end();) {
    it = it->second.tombstone ? merged.erase(it) : std::next(it);
  }

  const std::uint64_t table_number = next_file_number_++;
  const std::string name = table_name(table_number);
  std::size_t table_bytes = 0;
  if (Status s = write_sstable(env_, name, merged, &table_bytes); !s.is_ok()) {
    return s;
  }
  if (options_.trace) {
    options_.trace->record({.node = options_.trace_node,
                            .type = obs::EventType::kSstableWrite,
                            .a = table_bytes,
                            .b = merged.size()});
  }
  auto table = SSTable::open(env_, name);
  if (!table.is_ok()) return table.status();

  std::vector<std::string> olds;
  olds.reserve(tables_.size());
  for (const auto& t : tables_) olds.push_back(t->file_name());
  tables_.clear();
  tables_.push_back(std::move(table).take());
  if (Status s = persist_manifest(); !s.is_ok()) return s;
  for (const std::string& old : olds) (void)env_.remove_file(old);
  return Status::ok();
}

std::vector<std::pair<std::string, Bytes>> KVStore::scan(
    const std::string& start, const std::string& end) const {
  std::map<std::string, ValueOrTombstone> merged;
  for (const auto& table : tables_) {
    for (auto& entry : table->read_all()) {
      if (entry.key >= start && entry.key < end) {
        merged[entry.key] = std::move(entry.value);
      }
    }
  }
  for (const auto& [key, vot] : mem_.entries()) {
    if (key >= start && key < end) merged[key] = vot;
  }
  std::vector<std::pair<std::string, Bytes>> out;
  for (auto& [key, vot] : merged) {
    if (!vot.tombstone) out.emplace_back(key, std::move(vot.value));
  }
  return out;
}

}  // namespace marlin::storage
