// Mini log-structured KV store — the repo's LevelDB substitute (DESIGN.md
// §1). Write path: WAL append → memtable; memtable flushes to an SSTable
// past a size threshold; `checkpoint()` (the paper's every-5000-blocks
// garbage collection) compacts all tables into one and truncates the WAL.
// Reads consult memtable, then SSTables newest-first. Open() recovers from
// MANIFEST + WAL replay.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace marlin::storage {

struct KVStoreOptions {
  /// Memtable flush threshold in approximate resident bytes.
  std::size_t memtable_flush_bytes = 4 << 20;
  /// fsync the WAL on every write (real-disk durability; MemEnv ignores).
  bool sync_writes = false;
  /// When set, storage events (kWalWrite / kSstableWrite / kCheckpoint)
  /// are recorded here, attributed to `trace_node`.
  obs::TraceSink* trace = nullptr;
  std::uint32_t trace_node = obs::kNoNode;
};

class KVStore {
 public:
  /// Opens (or creates) the store in `env`, replaying any WAL tail.
  static Result<std::unique_ptr<KVStore>> open(Env& env,
                                               KVStoreOptions options = {});

  Status put(const std::string& key, BytesView value);
  Status del(const std::string& key);
  /// kNotFound when absent or deleted.
  Result<Bytes> get(const std::string& key) const;

  /// Forces the memtable to an SSTable and starts a fresh WAL.
  Status flush();

  /// Full compaction: flush, merge every SSTable into one (dropping
  /// tombstones and shadowed versions), delete the olds. This is the
  /// "checkpoint / garbage collection" the paper runs every 5000 blocks.
  Status checkpoint();

  /// Ordered scan of live keys in [start, end).
  std::vector<std::pair<std::string, Bytes>> scan(const std::string& start,
                                                  const std::string& end) const;

  std::size_t sstable_count() const { return tables_.size(); }
  std::size_t memtable_bytes() const { return mem_.approximate_bytes(); }
  std::uint64_t wal_bytes() const { return wal_ ? wal_->size() : 0; }
  /// WAL records replayed into the memtable by open() (recovery metrology).
  std::uint64_t wal_records_replayed() const { return wal_records_replayed_; }

 private:
  KVStore(Env& env, KVStoreOptions options) : env_(env), options_(options) {}

  Status recover();
  Status persist_manifest();
  Status append_wal(std::uint8_t op, const std::string& key, BytesView value);
  Status maybe_flush();

  std::string wal_name(std::uint64_t number) const;
  std::string table_name(std::uint64_t number) const;

  Env& env_;
  KVStoreOptions options_;
  MemTable mem_;
  std::vector<std::shared_ptr<SSTable>> tables_;  // oldest first
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t next_file_number_ = 1;
  std::uint64_t current_wal_number_ = 0;
  std::uint64_t wal_records_replayed_ = 0;
};

}  // namespace marlin::storage
