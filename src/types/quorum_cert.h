// Quorum certificates and the paper's *rank* partial order (Fig. 4).
//
// A QC is an aggregate of n−f vote signatures over a fixed digest. The QC
// carries enough block metadata (hash, block view, height, parent view,
// virtual flag) that rank comparisons and child-block construction need no
// access to the block body; all of that metadata is covered by the signed
// digest, so it cannot be forged independently of the votes.
//
// qc.view is the view the QC was *formed* in. It usually equals the block's
// view, except for happy-path view-change QCs, where n−f VIEW-CHANGE
// partial signatures over an old block combine into a prepareQC formed in
// the new view (paper §V-C "Happy path in view change").
#pragma once

#include <optional>
#include <string>

#include "common/ids.h"
#include "common/serialize.h"
#include "crypto/aggregate.h"
#include "crypto/sha256.h"

namespace marlin::types {

using crypto::Hash256;

/// Vote/QC type. Marlin uses {PrePrepare, Prepare, Commit}; the HotStuff
/// baseline uses {Prepare, PreCommit, Commit}.
enum class QcType : std::uint8_t {
  kPrePrepare = 0,
  kPrepare = 1,
  kPreCommit = 2,  // HotStuff only
  kCommit = 3,
};

const char* qc_type_name(QcType t);

struct QuorumCert {
  QcType type = QcType::kPrepare;
  ViewNumber view = 0;        // view in which this QC was formed
  Hash256 block_hash;         // block(qc)
  ViewNumber block_view = 0;  // view of block(qc)
  Height height = 0;          // qc.height — height of block(qc)
  ViewNumber pview = 0;       // qc.pview — view of block(qc)'s parent
  bool virtual_block = false; // block(qc) is a virtual block
  /// Signature-group instantiation: n−f individual signatures (the
  /// paper's "most efficient implementation"). Empty in threshold form.
  crypto::SigGroup sigs;
  /// Threshold-signature instantiation: one constant-size combined
  /// signature (paper §III). Empty in signature-group form.
  Bytes threshold_sig;

  bool is_threshold_form() const { return !threshold_sig.empty(); }

  /// The digest every vote in this QC signs. Computed from the metadata
  /// fields (protocol-domain-separated so HotStuff and Marlin votes can
  /// never cross-validate).
  Hash256 signed_digest(std::string_view domain) const;

  /// Genesis certificate: rank-lowest prepareQC, valid by convention
  /// (empty signature set, view 0).
  static QuorumCert genesis(const Hash256& genesis_hash);
  bool is_genesis() const { return view == 0; }

  void encode(Writer& w) const;
  static Result<QuorumCert> decode(Reader& r);
  bool operator==(const QuorumCert&) const = default;

  std::string to_string() const;
};

/// Builds the digest a voter signs for (type, view, block metadata) — used
/// both when casting votes and when verifying QCs.
Hash256 vote_digest(std::string_view domain, QcType type, ViewNumber view,
                    const Hash256& block_hash, ViewNumber block_view,
                    Height height, ViewNumber pview, bool virtual_block);

/// Rank comparison per Fig. 4. Returns <0, 0, >0 like a three-way compare.
///   (a) higher view wins;
///   (b) same view: {PREPARE, COMMIT} beats PRE-PREPARE;
///   (c) same view, both in {PREPARE, COMMIT}: higher height wins.
/// (PreCommit is grouped with Prepare/Commit; it only appears in HotStuff,
/// which never mixes it with PrePrepare.)
int compare_rank(const QuorumCert& a, const QuorumCert& b);

inline bool rank_greater(const QuorumCert& a, const QuorumCert& b) {
  return compare_rank(a, b) > 0;
}
inline bool rank_geq(const QuorumCert& a, const QuorumCert& b) {
  return compare_rank(a, b) >= 0;
}
inline bool rank_equal(const QuorumCert& a, const QuorumCert& b) {
  return compare_rank(a, b) == 0;
}

/// The justify field of a block/message: one primary QC, plus — only when
/// the primary is a pre-prepareQC for a *virtual* block — the prepareQC
/// `vc` for that virtual block's parent (paper: justify of the form
/// (qc, vc)). Rank of a Justify is the rank of its primary QC.
struct Justify {
  std::optional<QuorumCert> qc;
  std::optional<QuorumCert> vc;

  bool empty() const { return !qc.has_value(); }
  bool has_vc() const { return vc.has_value(); }

  void encode(Writer& w) const;
  static Result<Justify> decode(Reader& r);
  bool operator==(const Justify&) const = default;
};

}  // namespace marlin::types
