#include "types/quorum_cert.h"

#include <cstdio>

namespace marlin::types {

const char* qc_type_name(QcType t) {
  switch (t) {
    case QcType::kPrePrepare: return "PRE-PREPARE";
    case QcType::kPrepare: return "PREPARE";
    case QcType::kPreCommit: return "PRE-COMMIT";
    case QcType::kCommit: return "COMMIT";
  }
  return "?";
}

Hash256 vote_digest(std::string_view domain, QcType type, ViewNumber view,
                    const Hash256& block_hash, ViewNumber block_view,
                    Height height, ViewNumber pview, bool virtual_block) {
  Writer w(80);
  w.str("marlin.vote");
  w.str(domain);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(view);
  w.raw(block_hash.view());
  w.u64(block_view);
  w.u64(height);
  w.u64(pview);
  w.boolean(virtual_block);
  return crypto::Sha256::digest(w.buffer());
}

Hash256 QuorumCert::signed_digest(std::string_view domain) const {
  return vote_digest(domain, type, view, block_hash, block_view, height,
                     pview, virtual_block);
}

QuorumCert QuorumCert::genesis(const Hash256& genesis_hash) {
  QuorumCert qc;
  qc.type = QcType::kPrepare;
  qc.view = 0;
  qc.block_hash = genesis_hash;
  qc.block_view = 0;
  qc.height = 0;
  qc.pview = 0;
  qc.virtual_block = false;
  return qc;
}

void QuorumCert::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(view);
  w.raw(block_hash.view());
  w.u64(block_view);
  w.u64(height);
  w.u64(pview);
  w.boolean(virtual_block);
  sigs.encode(w);
  w.bytes(threshold_sig);
}

Result<QuorumCert> QuorumCert::decode(Reader& r) {
  QuorumCert qc;
  std::uint8_t type = 0;
  if (Status s = r.u8(type); !s.is_ok()) return s;
  if (type > static_cast<std::uint8_t>(QcType::kCommit)) {
    return error(ErrorCode::kCorruption, "bad qc type");
  }
  qc.type = static_cast<QcType>(type);
  if (Status s = r.u64(qc.view); !s.is_ok()) return s;
  Bytes hash;
  if (Status s = r.raw(crypto::kHashSize, hash); !s.is_ok()) return s;
  qc.block_hash = Hash256::from_bytes(hash);
  if (Status s = r.u64(qc.block_view); !s.is_ok()) return s;
  if (Status s = r.u64(qc.height); !s.is_ok()) return s;
  if (Status s = r.u64(qc.pview); !s.is_ok()) return s;
  if (Status s = r.boolean(qc.virtual_block); !s.is_ok()) return s;
  Result<crypto::SigGroup> sigs = crypto::SigGroup::decode(r);
  if (!sigs.is_ok()) return sigs.status();
  qc.sigs = std::move(sigs).take();
  if (Status s = r.bytes(qc.threshold_sig); !s.is_ok()) return s;
  if (!qc.threshold_sig.empty() &&
      qc.threshold_sig.size() != crypto::kSignatureSize) {
    return error(ErrorCode::kCorruption, "bad threshold signature length");
  }
  if (!qc.threshold_sig.empty() && !qc.sigs.parts.empty()) {
    return error(ErrorCode::kCorruption, "qc carries both signature forms");
  }
  return qc;
}

std::string QuorumCert::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "QC{%s v=%llu h=%llu blk=%s%s}",
                qc_type_name(type), static_cast<unsigned long long>(view),
                static_cast<unsigned long long>(height),
                block_hash.short_hex().c_str(), virtual_block ? " virt" : "");
  return buf;
}

namespace {
/// Rank class used by rules (b)/(c): PRE-PREPARE is the low class.
int type_class(QcType t) {
  return t == QcType::kPrePrepare ? 0 : 1;
}
}  // namespace

int compare_rank(const QuorumCert& a, const QuorumCert& b) {
  // Rule (a).
  if (a.view != b.view) return a.view < b.view ? -1 : 1;
  // Rule (b).
  const int ca = type_class(a.type);
  const int cb = type_class(b.type);
  if (ca != cb) return ca < cb ? -1 : 1;
  // Rule (c) — only for the {PREPARE, COMMIT} class. Two pre-prepareQCs of
  // the same view always have equal rank regardless of height (paper
  // Fig. 5: qc3 and qc3' have the same rank although heights differ).
  if (ca == 1 && a.height != b.height) return a.height < b.height ? -1 : 1;
  return 0;
}

void Justify::encode(Writer& w) const {
  std::uint8_t tag = 0;
  if (qc) tag |= 1;
  if (vc) tag |= 2;
  w.u8(tag);
  if (qc) qc->encode(w);
  if (vc) vc->encode(w);
}

Result<Justify> Justify::decode(Reader& r) {
  std::uint8_t tag = 0;
  if (Status s = r.u8(tag); !s.is_ok()) return s;
  if (tag > 3) return error(ErrorCode::kCorruption, "bad justify tag");
  if ((tag & 2) && !(tag & 1)) {
    return error(ErrorCode::kCorruption, "vc without primary qc");
  }
  Justify out;
  if (tag & 1) {
    Result<QuorumCert> qc = QuorumCert::decode(r);
    if (!qc.is_ok()) return qc.status();
    out.qc = std::move(qc).take();
  }
  if (tag & 2) {
    Result<QuorumCert> vc = QuorumCert::decode(r);
    if (!vc.is_ok()) return vc.status();
    out.vc = std::move(vc).take();
  }
  return out;
}

}  // namespace marlin::types
