#include "types/block_store.h"

#include <algorithm>

namespace marlin::types {

BlockStore::BlockStore() {
  Block genesis = Block::genesis();
  genesis_hash_ = genesis.hash();
  blocks_.emplace(genesis_hash_, std::move(genesis));
}

void BlockStore::insert(Block block) {
  // A block whose justify carries a (qc, vc) pair certifies its parent as a
  // virtual block whose own parent is block(vc). The live protocol registers
  // that mapping when it validates the pair, but a block arriving via state
  // transfer (fetch / snapshot) bypasses those paths — without registering
  // here, parent_of() on the transferred virtual block returns ⊥ forever and
  // every chain walk through it fails, wedging catch-up. The justify is
  // covered by the block hash, so the mapping is as authentic as the block.
  // First write wins: a protocol-verified registration is never clobbered.
  const Justify& j = block.justify;
  if (j.qc && j.vc && !virtual_parents_.count(j.qc->block_hash)) {
    virtual_parents_.emplace(j.qc->block_hash, j.vc->block_hash);
  }
  blocks_.emplace(block.hash(), std::move(block));
}

bool BlockStore::contains(const Hash256& hash) const {
  return blocks_.count(hash) > 0;
}

const Block* BlockStore::get(const Hash256& hash) const {
  auto it = blocks_.find(hash);
  return it == blocks_.end() ? nullptr : &it->second;
}

void BlockStore::set_virtual_parent(const Hash256& virtual_hash,
                                    const Hash256& parent_hash) {
  virtual_parents_[virtual_hash] = parent_hash;
}

Hash256 BlockStore::parent_of(const Hash256& hash) const {
  const Block* b = get(hash);
  if (!b) return Hash256{};
  if (b->virtual_block) {
    auto it = virtual_parents_.find(hash);
    return it == virtual_parents_.end() ? Hash256{} : it->second;
  }
  return b->parent_link;
}

bool BlockStore::extends(const Hash256& descendant,
                         const Hash256& ancestor) const {
  const Block* anc = get(ancestor);
  if (!anc) return false;
  Hash256 cursor = descendant;
  while (true) {
    if (cursor == ancestor) return true;
    const Block* b = get(cursor);
    if (!b) return false;
    if (b->height <= anc->height) return false;
    cursor = parent_of(cursor);
    if (cursor.is_zero()) return false;
  }
}

std::vector<Hash256> BlockStore::chain(const Hash256& descendant,
                                       const Hash256& ancestor) const {
  std::vector<Hash256> out;
  Hash256 cursor = descendant;
  while (cursor != ancestor) {
    const Block* b = get(cursor);
    if (!b) return {};
    out.push_back(cursor);
    if (b->is_genesis()) return {};  // walked past the root without a hit
    cursor = parent_of(cursor);
    if (cursor.is_zero()) return {};
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void BlockStore::release_ops(const Hash256& hash) {
  auto it = blocks_.find(hash);
  if (it != blocks_.end() && !it->second.ops.empty()) {
    it->second.ops.clear();
    it->second.ops.shrink_to_fit();
    released_.insert(hash);
  }
}

bool block_rank_greater(const Block& b1, const Block& b2) {
  if (b1.view != b2.view) return b1.view > b2.view;
  if (b1.height <= b2.height) return false;
  // Same view, higher height: dominates only when justified by a
  // prepareQC formed in b1's own view (the anti-forking clause).
  return b1.justify.qc.has_value() &&
         b1.justify.qc->type == QcType::kPrepare &&
         b1.justify.qc->view == b1.view;
}

void BlockRef::encode(Writer& w) const {
  w.raw(hash.view());
  w.u64(view);
  w.u64(height);
  w.u64(pview);
  w.boolean(virtual_block);
}

Result<BlockRef> BlockRef::decode(Reader& r) {
  BlockRef ref;
  Bytes h;
  if (Status s = r.raw(crypto::kHashSize, h); !s.is_ok()) return s;
  ref.hash = Hash256::from_bytes(h);
  if (Status s = r.u64(ref.view); !s.is_ok()) return s;
  if (Status s = r.u64(ref.height); !s.is_ok()) return s;
  if (Status s = r.u64(ref.pview); !s.is_ok()) return s;
  if (Status s = r.boolean(ref.virtual_block); !s.is_ok()) return s;
  return ref;
}

}  // namespace marlin::types
