#include "types/messages.h"

namespace marlin::types {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kPrePrepare: return "PRE-PREPARE";
    case Phase::kPrepare: return "PREPARE";
    case Phase::kPreCommit: return "PRE-COMMIT";
    case Phase::kCommit: return "COMMIT";
    case Phase::kDecide: return "DECIDE";
  }
  return "?";
}

void ClientRequestMsg::encode(Writer& w) const {
  w.varint(ops.size());
  for (const Operation& op : ops) op.encode(w);
}

Result<ClientRequestMsg> ClientRequestMsg::decode(Reader& r) {
  ClientRequestMsg m;
  std::uint64_t count = 0;
  if (Status s = r.varint(count); !s.is_ok()) return s;
  if (count > (1u << 22)) {
    return error(ErrorCode::kCorruption, "oversized request batch");
  }
  m.ops.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Result<Operation> op = Operation::decode(r);
    if (!op.is_ok()) return op.status();
    m.ops.push_back(std::move(op).take());
  }
  return m;
}

void ClientReplyMsg::encode(Writer& w) const {
  w.u32(client);
  w.u32(replica);
  w.u64(view);
  w.u64(height);
  w.varint(requests.size());
  for (RequestId id : requests) w.u64(id);
  w.bytes(result);
  w.bytes(padding);
}

Result<ClientReplyMsg> ClientReplyMsg::decode(Reader& r) {
  ClientReplyMsg m;
  if (Status s = r.u32(m.client); !s.is_ok()) return s;
  if (Status s = r.u32(m.replica); !s.is_ok()) return s;
  if (Status s = r.u64(m.view); !s.is_ok()) return s;
  if (Status s = r.u64(m.height); !s.is_ok()) return s;
  std::uint64_t count = 0;
  if (Status s = r.varint(count); !s.is_ok()) return s;
  if (count > (1u << 22)) {
    return error(ErrorCode::kCorruption, "oversized reply batch");
  }
  m.requests.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RequestId id = 0;
    if (Status s = r.u64(id); !s.is_ok()) return s;
    m.requests.push_back(id);
  }
  if (Status s = r.bytes(m.result); !s.is_ok()) return s;
  if (Status s = r.bytes(m.padding); !s.is_ok()) return s;
  return m;
}

void ProposalMsg::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(view);
  w.varint(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ProposalEntry& e = entries[i];
    // Shadow-block optimisation: if this block's ops batch is identical to
    // the first entry's, send the metadata only.
    const bool shadow = i > 0 && e.block.ops == entries[0].block.ops;
    w.boolean(shadow);
    if (shadow) {
      Block stripped = e.block;
      stripped.ops.clear();
      stripped.encode(w);
    } else {
      e.block.encode(w);
    }
    e.justify.encode(w);
  }
}

Result<ProposalMsg> ProposalMsg::decode(Reader& r) {
  ProposalMsg m;
  std::uint8_t phase = 0;
  if (Status s = r.u8(phase); !s.is_ok()) return s;
  if (phase > static_cast<std::uint8_t>(Phase::kDecide)) {
    return error(ErrorCode::kCorruption, "bad phase");
  }
  m.phase = static_cast<Phase>(phase);
  if (Status s = r.u64(m.view); !s.is_ok()) return s;
  std::uint64_t count = 0;
  if (Status s = r.varint(count); !s.is_ok()) return s;
  if (count == 0 || count > 2) {
    return error(ErrorCode::kCorruption, "bad proposal entry count");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    bool shadow = false;
    if (Status s = r.boolean(shadow); !s.is_ok()) return s;
    if (shadow && i == 0) {
      return error(ErrorCode::kCorruption, "first entry cannot be shadow");
    }
    Result<Block> b = Block::decode(r);
    if (!b.is_ok()) return b.status();
    ProposalEntry entry;
    entry.block = std::move(b).take();
    if (shadow) entry.block.ops = m.entries[0].block.ops;
    Result<Justify> j = Justify::decode(r);
    if (!j.is_ok()) return j.status();
    entry.justify = std::move(j).take();
    m.entries.push_back(std::move(entry));
  }
  return m;
}

std::size_t ProposalMsg::wire_size() const {
  Writer w;
  encode(w);
  return w.size();
}

void VoteMsg::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(view);
  w.raw(block_hash.view());
  parsig.encode(w);
  w.boolean(locked_qc.has_value());
  if (locked_qc) locked_qc->encode(w);
}

Result<VoteMsg> VoteMsg::decode(Reader& r) {
  VoteMsg m;
  std::uint8_t phase = 0;
  if (Status s = r.u8(phase); !s.is_ok()) return s;
  if (phase > static_cast<std::uint8_t>(Phase::kDecide)) {
    return error(ErrorCode::kCorruption, "bad phase");
  }
  m.phase = static_cast<Phase>(phase);
  if (Status s = r.u64(m.view); !s.is_ok()) return s;
  Bytes h;
  if (Status s = r.raw(crypto::kHashSize, h); !s.is_ok()) return s;
  m.block_hash = Hash256::from_bytes(h);
  Result<crypto::PartialSig> sig = crypto::PartialSig::decode(r);
  if (!sig.is_ok()) return sig.status();
  m.parsig = std::move(sig).take();
  bool has_locked = false;
  if (Status s = r.boolean(has_locked); !s.is_ok()) return s;
  if (has_locked) {
    Result<QuorumCert> qc = QuorumCert::decode(r);
    if (!qc.is_ok()) return qc.status();
    m.locked_qc = std::move(qc).take();
  }
  return m;
}

void QcNoticeMsg::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(view);
  qc.encode(w);
  w.boolean(aux.has_value());
  if (aux) aux->encode(w);
}

Result<QcNoticeMsg> QcNoticeMsg::decode(Reader& r) {
  QcNoticeMsg m;
  std::uint8_t phase = 0;
  if (Status s = r.u8(phase); !s.is_ok()) return s;
  if (phase > static_cast<std::uint8_t>(Phase::kDecide)) {
    return error(ErrorCode::kCorruption, "bad phase");
  }
  m.phase = static_cast<Phase>(phase);
  if (Status s = r.u64(m.view); !s.is_ok()) return s;
  Result<QuorumCert> qc = QuorumCert::decode(r);
  if (!qc.is_ok()) return qc.status();
  m.qc = std::move(qc).take();
  bool has_aux = false;
  if (Status s = r.boolean(has_aux); !s.is_ok()) return s;
  if (has_aux) {
    Result<QuorumCert> aux = QuorumCert::decode(r);
    if (!aux.is_ok()) return aux.status();
    m.aux = std::move(aux).take();
  }
  return m;
}

void ViewChangeMsg::encode(Writer& w) const {
  w.u64(view);
  last_voted.encode(w);
  high_qc.encode(w);
  parsig.encode(w);
}

Result<ViewChangeMsg> ViewChangeMsg::decode(Reader& r) {
  ViewChangeMsg m;
  if (Status s = r.u64(m.view); !s.is_ok()) return s;
  Result<BlockRef> lb = BlockRef::decode(r);
  if (!lb.is_ok()) return lb.status();
  m.last_voted = std::move(lb).take();
  Result<Justify> j = Justify::decode(r);
  if (!j.is_ok()) return j.status();
  m.high_qc = std::move(j).take();
  Result<crypto::PartialSig> sig = crypto::PartialSig::decode(r);
  if (!sig.is_ok()) return sig.status();
  m.parsig = std::move(sig).take();
  return m;
}

void FetchRequestMsg::encode(Writer& w) const {
  w.raw(block_hash.view());
  w.u64(since);
}

Result<FetchRequestMsg> FetchRequestMsg::decode(Reader& r) {
  FetchRequestMsg m;
  Bytes h;
  if (Status s = r.raw(crypto::kHashSize, h); !s.is_ok()) return s;
  m.block_hash = Hash256::from_bytes(h);
  if (Status s = r.u64(m.since); !s.is_ok()) return s;
  return m;
}

void FetchResponseMsg::encode(Writer& w) const { block.encode(w); }

Result<FetchResponseMsg> FetchResponseMsg::decode(Reader& r) {
  Result<Block> b = Block::decode(r);
  if (!b.is_ok()) return b.status();
  return FetchResponseMsg{std::move(b).take()};
}

void SnapshotRequestMsg::encode(Writer& w) const { w.u64(since); }

Result<SnapshotRequestMsg> SnapshotRequestMsg::decode(Reader& r) {
  SnapshotRequestMsg m;
  if (Status s = r.u64(m.since); !s.is_ok()) return s;
  return m;
}

void SnapshotResponseMsg::encode(Writer& w) const {
  w.u64(height);
  w.raw(head.view());
  w.varint(suffix.size());
  for (const Block& b : suffix) b.encode(w);
}

Result<SnapshotResponseMsg> SnapshotResponseMsg::decode(Reader& r) {
  SnapshotResponseMsg m;
  if (Status s = r.u64(m.height); !s.is_ok()) return s;
  Bytes h;
  if (Status s = r.raw(crypto::kHashSize, h); !s.is_ok()) return s;
  m.head = Hash256::from_bytes(h);
  std::uint64_t count = 0;
  if (Status s = r.varint(count); !s.is_ok()) return s;
  if (count > kSuffixLimit) {
    return error(ErrorCode::kCorruption, "oversized snapshot suffix");
  }
  m.suffix.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Result<Block> b = Block::decode(r);
    if (!b.is_ok()) return b.status();
    m.suffix.push_back(std::move(b).take());
  }
  return m;
}

void TimeoutNoticeMsg::encode(Writer& w) const { w.u64(view); }

Result<TimeoutNoticeMsg> TimeoutNoticeMsg::decode(Reader& r) {
  TimeoutNoticeMsg m;
  if (Status s = r.u64(m.view); !s.is_ok()) return s;
  return m;
}

Bytes Envelope::serialize() const {
  Bytes out;
  out.reserve(1 + body.size());
  out.push_back(static_cast<std::uint8_t>(kind));
  append(out, body);
  return out;
}

Result<Envelope> Envelope::parse(BytesView wire) {
  if (wire.empty()) return error(ErrorCode::kCorruption, "empty envelope");
  const std::uint8_t kind = wire[0];
  if (kind < static_cast<std::uint8_t>(MsgKind::kClientRequest) ||
      kind > static_cast<std::uint8_t>(MsgKind::kTimeoutNotice)) {
    return error(ErrorCode::kCorruption, "bad message kind");
  }
  Envelope env;
  env.kind = static_cast<MsgKind>(kind);
  env.body.assign(wire.begin() + 1, wire.end());
  return env;
}

}  // namespace marlin::types
