// Block model from the paper (§V-A): a block is
//   b = [pl, pview, view, height, op, justify]
// where `pl` is the hash of the parent block, `pview` the parent's view,
// and `justify` carries the QC(s) for the parent. A *virtual* block is the
// view-change special: its pl is ⊥ (zero hash) and it may acquire a "real"
// parent only after the fact (Case 2 of the pre-prepare phase). *Shadow*
// blocks are a bandwidth trick, not a distinct type: two blocks proposed in
// one PRE-PREPARE share the same `op` payload, and the wire format sends
// the payload once (see messages.h).
#pragma once

#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/serialize.h"
#include "crypto/sha256.h"
#include "types/quorum_cert.h"

namespace marlin::types {

using crypto::Hash256;

/// One client operation (opaque payload plus routing metadata for replies).
struct Operation {
  ClientId client = 0;
  RequestId request = 0;
  Bytes payload;

  void encode(Writer& w) const;
  static Result<Operation> decode(Reader& r);
  bool operator==(const Operation&) const = default;
};

struct Block {
  Hash256 parent_link;    // pl: hash of parent; zero for genesis / virtual
  ViewNumber parent_view = 0;  // pview
  ViewNumber view = 0;
  Height height = 0;
  bool virtual_block = false;  // pl = ⊥ (paper's virtual block)
  std::vector<Operation> ops;
  Justify justify;  // QC(s) for the parent block (see quorum_cert.h)

  /// Deterministic content hash — the identity used by parent links, votes
  /// and QCs. Includes every field (the paper's shadow blocks share ops but
  /// differ in metadata, so they hash differently, as required).
  ///
  /// Memoized: every code path builds (or decodes) a block and only then
  /// hashes it, so the first call pins the identity. The one post-hash
  /// mutation in the tree — BlockStore::release_ops dropping committed op
  /// payloads — must NOT change identity, which the memo guarantees.
  Hash256 hash() const;

  bool is_genesis() const { return view == 0 && height == 0; }

  void encode(Writer& w) const;
  static Result<Block> decode(Reader& r);
  bool operator==(const Block& o) const {
    return parent_link == o.parent_link && parent_view == o.parent_view &&
           view == o.view && height == o.height &&
           virtual_block == o.virtual_block && ops == o.ops &&
           justify == o.justify;
  }

  /// The genesis block every replica starts from.
  static Block genesis();

 private:
  // The memo must not survive a copy: `Block b = a; b.view = 3;` is a legal
  // way to derive a new block, and a copied memo would pin the old identity.
  // Moves keep it — a moved block is the same block.
  struct HashMemo {
    mutable std::optional<Hash256> value;
    HashMemo() = default;
    HashMemo(const HashMemo&) {}
    HashMemo& operator=(const HashMemo&) {
      value.reset();
      return *this;
    }
    HashMemo(HashMemo&&) = default;
    HashMemo& operator=(HashMemo&&) = default;
  };
  HashMemo hash_memo_;
};

/// Total payload bytes across ops (bandwidth accounting).
std::size_t ops_wire_size(const std::vector<Operation>& ops);

}  // namespace marlin::types
