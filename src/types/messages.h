// Wire messages for both protocols. Every network payload is an Envelope:
// a one-byte kind tag plus the message body. Proposal messages implement
// the paper's *shadow block* optimisation: when a PRE-PREPARE carries two
// blocks sharing one op batch (Cases V1/V3), the payload is serialized
// once and the second block is flagged as a shadow (§IV-D, §V-C).
#pragma once

#include <optional>
#include <vector>

#include "types/block_store.h"

namespace marlin::types {

enum class MsgKind : std::uint8_t {
  kClientRequest = 1,
  kClientReply = 2,
  kProposal = 3,     // leader → replicas (PREPARE / PRE-PREPARE / HotStuff)
  kVote = 4,         // replica → leader
  kQcNotice = 5,     // leader → replicas: a formed QC (COMMIT msg, DECIDE…)
  kViewChange = 6,   // replica → new leader (Marlin VC / HotStuff NEW-VIEW)
  kFetchRequest = 7, // ask a peer for a block body
  kFetchResponse = 8,
  kSnapshotRequest = 9,   // far-behind replica asks for a checkpoint
  kSnapshotResponse = 10, // manifest + chain suffix in one exchange
  kTimeoutNotice = 11,    // pacemaker: "my timer expired in view v"
};

/// Phase tag on proposals/votes/QC notices. Mapped per protocol:
/// Marlin uses {PrePrepare, Prepare, Commit, Decide};
/// HotStuff uses {Prepare, PreCommit, Commit, Decide}.
enum class Phase : std::uint8_t {
  kPrePrepare = 0,
  kPrepare = 1,
  kPreCommit = 2,
  kCommit = 3,
  kDecide = 4,
};

const char* phase_name(Phase p);

/// One or more operations submitted together. Clients coalesce requests
/// issued at the same instant into one frame (wire bytes are unchanged —
/// it is plain concatenation — but simulator event counts stay bounded).
struct ClientRequestMsg {
  std::vector<Operation> ops;

  void encode(Writer& w) const;
  static Result<ClientRequestMsg> decode(Reader& r);
};

/// Reply for all of one client's operations committed by one block. The
/// simulation batches per-(client, block) to bound event counts; `padding`
/// keeps the wire size equal to one reply-sized message per request (the
/// paper's replies are 150 B each), so the bandwidth model is unchanged.
struct ClientReplyMsg {
  ClientId client = 0;
  ReplicaId replica = 0;
  ViewNumber view = 0;
  Height height = 0;          // height of the committing block
  std::vector<RequestId> requests;
  Bytes result;               // execution result digest (same on all correct)
  Bytes padding;              // sizes the message as |requests| real replies

  void encode(Writer& w) const;
  static Result<ClientReplyMsg> decode(Reader& r);
};

/// One proposed block plus the message-level justify (which, unlike the
/// block's own justify, may be the (qc, vc) pair validating a virtual
/// block's pre-prepareQC).
struct ProposalEntry {
  Block block;
  Justify justify;
};

struct ProposalMsg {
  Phase phase = Phase::kPrepare;
  ViewNumber view = 0;
  std::vector<ProposalEntry> entries;  // 1 or 2 (two only in PRE-PREPARE)

  void encode(Writer& w) const;
  static Result<ProposalMsg> decode(Reader& r);

  /// Wire size (shadow sharing accounted).
  std::size_t wire_size() const;
};

struct VoteMsg {
  Phase phase = Phase::kPrepare;
  ViewNumber view = 0;
  Hash256 block_hash;
  crypto::PartialSig parsig;
  /// R2 votes attach the voter's lockedQC so the leader can learn the
  /// higher prepareQC `vc` (paper Fig. 9, Case R2).
  std::optional<QuorumCert> locked_qc;

  void encode(Writer& w) const;
  static Result<VoteMsg> decode(Reader& r);
};

struct QcNoticeMsg {
  Phase phase = Phase::kCommit;  // which step this QC drives
  ViewNumber view = 0;
  QuorumCert qc;
  /// For a PREPARE re-broadcast of a virtual block: the validating vc.
  std::optional<QuorumCert> aux;

  void encode(Writer& w) const;
  static Result<QcNoticeMsg> decode(Reader& r);
};

struct ViewChangeMsg {
  ViewNumber view = 0;  // the view being started
  BlockRef last_voted;  // lb
  Justify high_qc;      // highQC (one or two QCs)
  crypto::PartialSig parsig;  // partial sig over the happy-path digest

  void encode(Writer& w) const;
  static Result<ViewChangeMsg> decode(Reader& r);
};

/// Catch-up request: "send me the bodies on the path from `block_hash`
/// down to height `since` (exclusive)". The provider answers with up to
/// kFetchBatchLimit FetchResponse messages, newest first.
struct FetchRequestMsg {
  Hash256 block_hash;
  Height since = 0;

  static constexpr std::uint32_t kFetchBatchLimit = 64;

  void encode(Writer& w) const;
  static Result<FetchRequestMsg> decode(Reader& r);
};

struct FetchResponseMsg {
  Block block;

  void encode(Writer& w) const;
  static Result<FetchResponseMsg> decode(Reader& r);
};

/// State-transfer request from a recovering or far-behind replica:
/// "send me your checkpoint manifest and the chain suffix above height
/// `since`". One request yields one SnapshotResponse — O(1) rounds, not
/// O(gap / kFetchBatchLimit) fetch rounds.
struct SnapshotRequestMsg {
  Height since = 0;

  void encode(Writer& w) const;
  static Result<SnapshotRequestMsg> decode(Reader& r);
};

/// Checkpoint manifest (committed height + head digest) plus the block
/// bodies from the head down toward the requester's `since`, newest
/// first. The suffix stops early only at bodies the provider has already
/// released, and is capped at kSuffixLimit blocks per exchange.
struct SnapshotResponseMsg {
  Height height = 0;   // provider's committed height (manifest)
  Hash256 head;        // provider's committed hash (chain digest)
  std::vector<Block> suffix;  // newest first

  static constexpr std::uint32_t kSuffixLimit = 4096;

  void encode(Writer& w) const;
  static Result<SnapshotResponseMsg> decode(Reader& r);
};

/// Pacemaker view synchronization (broadcast): the sender's view timer
/// expired in `view`. A replica advances past a view only when f+1
/// distinct replicas are known to have timed out of it (or the protocol's
/// own view-change evidence arrives) — a lone fast clock can no longer run
/// ahead of the pack and strand the cluster one view apart. Quadratic in
/// the pacemaker, as in deployed HotStuff-family systems; the protocol's
/// view-change certificates stay linear.
struct TimeoutNoticeMsg {
  ViewNumber view = 0;

  void encode(Writer& w) const;
  static Result<TimeoutNoticeMsg> decode(Reader& r);
};

/// Top-level frame: [u8 kind][body].
struct Envelope {
  MsgKind kind;
  Bytes body;

  Bytes serialize() const;
  static Result<Envelope> parse(BytesView wire);
};

/// Helpers to build/open envelopes for any message type above.
template <typename M>
Envelope make_envelope(MsgKind kind, const M& msg) {
  Writer w;
  msg.encode(w);
  return Envelope{kind, std::move(w).take()};
}

template <typename M>
Result<M> open_envelope(const Envelope& env) {
  return decode_from_bytes<M>(env.body);
}

}  // namespace marlin::types
