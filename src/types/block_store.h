// In-memory tree of blocks keyed by hash (each replica's view of the block
// graph, rooted at genesis). Handles the paper's virtual blocks: a virtual
// block's wire parent link is ⊥; its *effective* parent is resolved later
// from the prepareQC `vc` carried beside its pre-prepareQC, and recorded
// here via set_virtual_parent().
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "types/block.h"

namespace marlin::types {

class BlockStore {
 public:
  BlockStore();

  const Hash256& genesis_hash() const { return genesis_hash_; }

  /// Inserts a block (idempotent). Orphans are allowed — consensus can
  /// validate proposals from QC metadata alone and fetch bodies later.
  void insert(Block block);

  bool contains(const Hash256& hash) const;
  /// nullptr when unknown.
  const Block* get(const Hash256& hash) const;

  /// Records the resolved parent of a virtual block (from its `vc`).
  void set_virtual_parent(const Hash256& virtual_hash,
                          const Hash256& parent_hash);

  /// Effective parent hash: the recorded virtual parent for virtual
  /// blocks, else the wire parent link. Zero hash when unresolved.
  Hash256 parent_of(const Hash256& hash) const;

  /// True if `descendant` is `ancestor` or an extension of it, following
  /// effective parents. False when the chain cannot be walked (missing
  /// bodies) — callers treat that as "unknown, fetch first".
  bool extends(const Hash256& descendant, const Hash256& ancestor) const;

  /// Blocks strictly after `ancestor` up to and including `descendant`,
  /// oldest first — the commit order. Empty when the walk fails.
  std::vector<Hash256> chain(const Hash256& descendant,
                             const Hash256& ancestor) const;

  /// Drops op payloads of a block already executed (memory hygiene for
  /// long runs); metadata stays for rank/ancestry queries. A released
  /// block's stored content no longer matches its hash, so it must never
  /// be served to fetchers — check ops_released() first.
  void release_ops(const Hash256& hash);
  bool ops_released(const Hash256& hash) const {
    return released_.count(hash) > 0;
  }

  std::size_t size() const { return blocks_.size(); }

 private:
  std::unordered_map<Hash256, Block, crypto::Hash256Hasher> blocks_;
  std::unordered_map<Hash256, Hash256, crypto::Hash256Hasher> virtual_parents_;
  std::unordered_set<Hash256, crypto::Hash256Hasher> released_;
  Hash256 genesis_hash_;
};

/// Block rank dominance (paper §V-A): rank(b1) > rank(b2) iff
/// b1.view > b2.view, or (same view, b1.height > b2.height, and b1.justify
/// is a prepareQC formed in b1's own view).
bool block_rank_greater(const Block& b1, const Block& b2);

/// Metadata-only reference to a block (what VIEW-CHANGE carries as lb).
struct BlockRef {
  Hash256 hash;
  ViewNumber view = 0;
  Height height = 0;
  ViewNumber pview = 0;
  bool virtual_block = false;

  static BlockRef of(const Block& b) {
    return BlockRef{b.hash(), b.view, b.height, b.parent_view,
                    b.virtual_block};
  }

  void encode(Writer& w) const;
  static Result<BlockRef> decode(Reader& r);
  bool operator==(const BlockRef&) const = default;
};

}  // namespace marlin::types
