#include "types/block.h"

#include <cstring>
#include <unordered_map>

namespace marlin::types {

namespace {

// Cross-instance digest memo: every replica of a simulated cluster decodes
// its own Block from the same proposal bytes, so the same encoding is
// hashed up to n times. Key the digest by the full encoding — first caller
// pays the SHA-256, the rest pay a hash-map probe. thread_local so parallel
// simulations (chaos sweeps with --jobs) never contend or mix.
struct EncodingHasher {
  std::size_t operator()(const Bytes& b) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    std::size_t i = 0;
    for (; i + 8 <= b.size(); i += 8) {
      std::uint64_t v;
      std::memcpy(&v, b.data() + i, 8);
      h = (h ^ v) * 0x100000001b3ULL;
      h ^= h >> 29;
    }
    for (; i < b.size(); ++i) h = (h ^ b[i]) * 0x100000001b3ULL;
    return h;
  }
};

Hash256 memoized_digest(Bytes encoding) {
  thread_local std::unordered_map<Bytes, Hash256, EncodingHasher> memo;
  auto it = memo.find(encoding);
  if (it != memo.end()) return it->second;
  const Hash256 d = crypto::Sha256::digest(encoding);
  if (memo.size() >= 4096) memo.clear();  // bound memory on long runs
  memo.emplace(std::move(encoding), d);
  return d;
}

}  // namespace

void Operation::encode(Writer& w) const {
  w.u32(client);
  w.u64(request);
  w.bytes(payload);
}

Result<Operation> Operation::decode(Reader& r) {
  Operation op;
  if (Status s = r.u32(op.client); !s.is_ok()) return s;
  if (Status s = r.u64(op.request); !s.is_ok()) return s;
  if (Status s = r.bytes(op.payload); !s.is_ok()) return s;
  return op;
}

std::size_t ops_wire_size(const std::vector<Operation>& ops) {
  std::size_t total = 0;
  for (const Operation& op : ops) total += 4 + 8 + 2 + op.payload.size();
  return total;
}

Hash256 Block::hash() const {
  if (!hash_memo_.value) {
    Writer w(128 + ops_wire_size(ops));
    w.str("marlin.block");
    encode(w);
    hash_memo_.value = memoized_digest(std::move(w).take());
  }
  return *hash_memo_.value;
}

void Block::encode(Writer& w) const {
  w.raw(parent_link.view());
  w.u64(parent_view);
  w.u64(view);
  w.u64(height);
  w.boolean(virtual_block);
  w.varint(ops.size());
  for (const Operation& op : ops) op.encode(w);
  justify.encode(w);
}

Result<Block> Block::decode(Reader& r) {
  Block b;
  Bytes hash;
  if (Status s = r.raw(crypto::kHashSize, hash); !s.is_ok()) return s;
  b.parent_link = Hash256::from_bytes(hash);
  if (Status s = r.u64(b.parent_view); !s.is_ok()) return s;
  if (Status s = r.u64(b.view); !s.is_ok()) return s;
  if (Status s = r.u64(b.height); !s.is_ok()) return s;
  if (Status s = r.boolean(b.virtual_block); !s.is_ok()) return s;
  std::uint64_t count = 0;
  if (Status s = r.varint(count); !s.is_ok()) return s;
  if (count > (1u << 22)) {
    return error(ErrorCode::kCorruption, "oversized op batch");
  }
  b.ops.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Result<Operation> op = Operation::decode(r);
    if (!op.is_ok()) return op.status();
    b.ops.push_back(std::move(op).take());
  }
  Result<Justify> j = Justify::decode(r);
  if (!j.is_ok()) return j.status();
  b.justify = std::move(j).take();
  return b;
}

Block Block::genesis() {
  return Block{};  // zero hash parent, view 0, height 0, no ops, no justify
}

}  // namespace marlin::types
