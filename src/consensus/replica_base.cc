#include "consensus/replica_base.h"

namespace marlin::consensus {

std::optional<crypto::SigGroup> VoteCollector::add(
    Phase phase, const Hash256& block, const crypto::PartialSig& sig) {
  Slot& slot = slots_[Key{static_cast<std::uint8_t>(phase), block}];
  if (slot.formed) return std::nullopt;
  if (!slot.signers.insert(sig.signer).second) return std::nullopt;
  slot.sigs.push_back(sig);
  if (slot.sigs.size() < threshold_) return std::nullopt;
  slot.formed = true;
  return crypto::SigGroup::combine(slot.sigs, threshold_);
}

std::uint32_t VoteCollector::count(Phase phase, const Hash256& block) const {
  auto it = slots_.find(Key{static_cast<std::uint8_t>(phase), block});
  return it == slots_.end()
             ? 0
             : static_cast<std::uint32_t>(it->second.signers.size());
}

ReplicaBase::ReplicaBase(ReplicaConfig config,
                         const crypto::SignatureSuite& suite,
                         ProtocolEnv& env, std::string domain)
    : config_(config),
      env_(env),
      domain_(std::move(domain)),
      suite_(suite),
      signer_(suite.signer(config.id)),
      verifier_(suite.verifier()) {
  committed_hash_ = store_.genesis_hash();
}

void ReplicaBase::start() {
  cview_ = 1;
  env_.entered_view(1);
}

void ReplicaBase::handle_message(ReplicaId from, const Envelope& envelope) {
  switch (envelope.kind) {
    case MsgKind::kClientRequest: {
      auto msg = types::open_envelope<types::ClientRequestMsg>(envelope);
      if (msg.is_ok()) {
        for (types::Operation& op : msg.value().ops) {
          pool_.add(std::move(op), env_.now());
        }
        maybe_propose();
      }
      return;
    }
    case MsgKind::kProposal: {
      auto msg = types::open_envelope<types::ProposalMsg>(envelope);
      if (msg.is_ok()) on_proposal(from, std::move(msg).take());
      return;
    }
    case MsgKind::kVote: {
      auto msg = types::open_envelope<types::VoteMsg>(envelope);
      if (msg.is_ok()) on_vote(from, std::move(msg).take());
      return;
    }
    case MsgKind::kQcNotice: {
      auto msg = types::open_envelope<types::QcNoticeMsg>(envelope);
      if (msg.is_ok()) on_qc_notice(from, std::move(msg).take());
      return;
    }
    case MsgKind::kViewChange: {
      auto msg = types::open_envelope<types::ViewChangeMsg>(envelope);
      if (msg.is_ok()) on_view_change(from, std::move(msg).take());
      return;
    }
    case MsgKind::kFetchRequest: {
      auto msg = types::open_envelope<types::FetchRequestMsg>(envelope);
      if (msg.is_ok()) on_fetch_request(from, msg.value());
      return;
    }
    case MsgKind::kFetchResponse: {
      auto msg = types::open_envelope<types::FetchResponseMsg>(envelope);
      if (msg.is_ok()) on_fetch_response(from, std::move(msg).take());
      return;
    }
    case MsgKind::kClientReply:
      return;  // replicas never receive replies
  }
}

void ReplicaBase::submit(types::Operation op) {
  pool_.add(std::move(op), env_.now());
  maybe_propose();
}

bool ReplicaBase::verify_qc(const QuorumCert& qc) {
  if (qc.is_genesis()) {
    // Valid by convention iff it names the actual genesis block.
    return qc.block_hash == store_.genesis_hash() && qc.sigs.parts.empty() &&
           !qc.is_threshold_form();
  }
  const Hash256 digest = qc.signed_digest(domain_);
  if (verified_qc_digests_.count(digest) > 0) return true;
  bool ok;
  if (qc.is_threshold_form()) {
    // BLS-class verification: two pairings, size-independent.
    env_.charge_pairings(2);
    ok = suite_.threshold_verify(digest.view(), qc.threshold_sig);
  } else {
    env_.charge_verifies(static_cast<std::uint32_t>(qc.sigs.parts.size()));
    ok = qc.sigs.verify(verifier_, digest.view(), quorum());
  }
  if (!ok) {
    MLOG_WARN("replica %u: invalid QC %s", config_.id, qc.to_string().c_str());
    return false;
  }
  verified_qc_digests_.insert(digest);
  return true;
}

void ReplicaBase::finalize_qc(QuorumCert& qc) {
  const Hash256 digest = qc.signed_digest(domain_);
  if (config_.use_threshold_sigs) {
    std::vector<std::pair<ReplicaId, Bytes>> parts;
    parts.reserve(qc.sigs.parts.size());
    for (const auto& p : qc.sigs.parts) parts.emplace_back(p.signer, p.sig);
    env_.charge_combine_shares(static_cast<std::uint32_t>(parts.size()));
    auto combined = suite_.threshold_combine(digest.view(), parts, quorum());
    if (combined) {
      qc.threshold_sig = std::move(*combined);
      qc.sigs = crypto::SigGroup{};
    }
  }
  // A locally formed certificate is valid by construction.
  verified_qc_digests_.insert(digest);
}

crypto::PartialSig ReplicaBase::sign_digest(const Hash256& digest) {
  if (config_.use_threshold_sigs) {
    env_.charge_threshold_signs(1);
  } else {
    env_.charge_signs(1);
  }
  return crypto::PartialSig{config_.id, signer_->sign(digest.view())};
}

bool ReplicaBase::verify_partial(const crypto::PartialSig& sig,
                                 const Hash256& digest) {
  if (config_.use_threshold_sigs) {
    env_.charge_pairings(2);  // BLS-class share verification
  } else {
    env_.charge_verifies(1);
  }
  return verifier_.verify(sig.signer, digest.view(), sig.sig);
}

std::vector<types::Operation> ReplicaBase::make_batch(bool force) {
  auto batch = pool_.next_batch(config_.max_batch_ops);
  if (batch.empty()) {
    last_batch_wait_ = Duration::zero();
    if (!force && !config_.allow_empty_blocks) return {};
    return batch;
  }
  last_batch_wait_ = env_.now() - pool_.last_batch_oldest_enqueue();
  return batch;
}

void ReplicaBase::commit_to(const Hash256& target, ReplicaId provider) {
  if (target == committed_hash_) return;
  const Block* tip = store_.get(target);
  if (tip && tip->height <= committed_height_) {
    // Already committed (an old DECIDE re-delivered) — or a conflicting
    // chain, which the chain() walk below would catch; cheap check first.
    if (!store_.extends(committed_hash_, target)) {
      safety_violated_ = true;
      MLOG_ERROR("replica %u: SAFETY VIOLATION: commit target %s conflicts",
                 config_.id, target.short_hex().c_str());
    }
    return;
  }

  std::vector<Hash256> path = store_.chain(target, committed_hash_);
  if (path.empty()) {
    // Bodies on the path are missing. Sanity-check for an actual conflict
    // (walked to the root without meeting the committed head), then issue
    // a batched catch-up fetch for the whole range.
    Hash256 cursor = target;
    while (true) {
      const Block* b = store_.get(cursor);
      if (!b) break;
      if (b->is_genesis()) {
        safety_violated_ = true;
        MLOG_ERROR("replica %u: SAFETY VIOLATION at %s", config_.id,
                   target.short_hex().c_str());
        return;
      }
      const Hash256 parent = store_.parent_of(cursor);
      if (parent.is_zero() || parent == committed_hash_) break;
      cursor = parent;
    }
    pending_commit_ = PendingCommit{target, provider};

    // Pick what to request next so successive batches converge: walk down
    // from the target — or, when the target's own body is still missing,
    // from the oldest block the previous batch delivered — to the deepest
    // known block, and request its (missing) parent's range. When the
    // bottom of the gap is already closed, the remainder is at the top:
    // request the target itself.
    Hash256 walk_start = target;
    if (!store_.get(target) && !last_fetched_.is_zero() &&
        store_.get(last_fetched_)) {
      walk_start = last_fetched_;
    }
    Hash256 request_hash = target;
    if (store_.get(walk_start)) {
      Hash256 down = walk_start;
      while (const Block* b = store_.get(down)) {
        if (b->is_genesis()) break;
        const Hash256 parent = store_.parent_of(down);
        if (parent.is_zero() || parent == committed_hash_) break;
        down = parent;
      }
      // When the walk stopped on a hash with no body, that hash is the
      // bottom of the gap: request it so successive batches extend the
      // known range downward. Re-requesting the target instead would chase
      // the advancing tip forever once the gap outgrows one fetch batch.
      if (!store_.get(down)) request_hash = down;
    }

    if (in_fetch_retry_) return;           // a batch is still streaming in
    if (fetch_inflight_ && ++fetch_stall_ < 8) return;  // one at a time
    fetch_inflight_ = true;
    fetch_stall_ = 0;
    send_to(provider,
            types::make_envelope(
                MsgKind::kFetchRequest,
                types::FetchRequestMsg{request_hash, committed_height_}));
    return;
  }
  fetch_inflight_ = false;  // progress: the next gap issues a fresh fetch
  fetch_stall_ = 0;
  last_fetched_ = Hash256{};

  for (const Hash256& h : path) {
    const Block* b = store_.get(h);
    std::vector<types::Operation> executable;
    executable.reserve(b->ops.size());
    for (const types::Operation& op : b->ops) {
      if (pool_.executed(op.client, op.request)) continue;  // duplicate
      pool_.mark_committed(op);
      executable.push_back(op);
    }
    env_.deliver(*b, executable);
    trace({.type = obs::EventType::kCommit,
           .height = b->height,
           .block = trace_block_id(h),
           .a = executable.size(),
           .b = b->ops.size()});
    committed_hash_ = h;
    committed_height_ = b->height;
    ++committed_blocks_;
    // Release executed payloads once the retained-bytes budget is
    // exceeded (a released body must never be served again — its content
    // no longer matches its hash — so keep a generous catch-up window).
    const std::size_t body_bytes = types::ops_wire_size(b->ops);
    recent_committed_.emplace_back(h, body_bytes);
    retained_bytes_ += body_bytes;
    while (recent_committed_.size() > kRetainMinBlocks &&
           retained_bytes_ > kRetainBudgetBytes) {
      store_.release_ops(recent_committed_.front().first);
      retained_bytes_ -= recent_committed_.front().second;
      recent_committed_.pop_front();
    }
  }
  env_.progressed();
  maybe_propose();
}

void ReplicaBase::on_fetch_request(ReplicaId from,
                                   const types::FetchRequestMsg& msg) {
  // Serve the chain from the requested block down to `since`, newest
  // first, capped per request. Stop at any released body (its content no
  // longer matches its hash) — the requester can re-request as it closes
  // the gap from the other side.
  Hash256 cursor = msg.block_hash;
  std::uint32_t sent = 0;
  while (sent < types::FetchRequestMsg::kFetchBatchLimit) {
    const Block* b = store_.get(cursor);
    if (!b || store_.ops_released(cursor)) break;
    if (b->height <= msg.since || b->is_genesis()) break;
    send_to(from, types::make_envelope(MsgKind::kFetchResponse,
                                       types::FetchResponseMsg{*b}));
    ++sent;
    cursor = store_.parent_of(cursor);
    if (cursor.is_zero()) break;
  }
}

void ReplicaBase::on_fetch_response(ReplicaId from,
                                    types::FetchResponseMsg msg) {
  (void)from;
  env_.charge_hash_bytes(types::ops_wire_size(msg.block.ops) + 128);
  last_fetched_ = msg.block.hash();
  store_.insert(std::move(msg.block));
  // Retry after each body, but suppress new fetch requests while the rest
  // of the batch is still streaming in (in_fetch_retry_); the last body of
  // the batch either completes the commit (clearing the inflight flag) or
  // the next DECIDE re-arms the fetch via the stall counter.
  in_fetch_retry_ = true;
  retry_pending_commit();
  in_fetch_retry_ = false;
}

std::uint64_t ReplicaBase::trace_block_id(const Hash256& h) {
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) id = (id << 8) | h.data[i];
  return id;
}

void ReplicaBase::retry_pending_commit() {
  if (!pending_commit_) return;
  const PendingCommit pc = *pending_commit_;
  pending_commit_.reset();
  commit_to(pc.target, pc.provider);
}

}  // namespace marlin::consensus
