#include "consensus/replica_base.h"

#include <algorithm>
#include <bit>
#include <functional>

namespace marlin::consensus {

std::optional<crypto::SigGroup> VoteCollector::add(
    Phase phase, const Hash256& block, const crypto::PartialSig& sig) {
  Slot& slot = slots_[Key{static_cast<std::uint8_t>(phase), block}];
  if (slot.formed) return std::nullopt;
  if (!slot.signers.insert(sig.signer).second) return std::nullopt;
  slot.sigs.push_back(sig);
  if (slot.sigs.size() < threshold_) return std::nullopt;
  slot.formed = true;
  return crypto::SigGroup::combine(slot.sigs, threshold_);
}

std::uint32_t VoteCollector::count(Phase phase, const Hash256& block) const {
  auto it = slots_.find(Key{static_cast<std::uint8_t>(phase), block});
  return it == slots_.end()
             ? 0
             : static_cast<std::uint32_t>(it->second.signers.size());
}

ReplicaBase::ReplicaBase(ReplicaConfig config,
                         const crypto::SignatureSuite& suite,
                         ProtocolEnv& env, std::string domain)
    : config_(config),
      env_(env),
      domain_(std::move(domain)),
      suite_(suite),
      signer_(suite.signer(config.id)),
      verifier_(suite.verifier()) {
  committed_hash_ = store_.genesis_hash();
  peer_timeout_view_.assign(config_.quorum.n, 0);
}

void ReplicaBase::start() {
  // Fresh replicas begin at view 1; a restored replica re-enters the view
  // it had durably reached (never below 1, never rewinding).
  cview_ = std::max<ViewNumber>(cview_, 1);
  env_.entered_view(cview_);
}

PersistentState ReplicaBase::base_persistent_state(PersistedProtocol p) const {
  PersistentState ps;
  ps.protocol = p;
  ps.view = cview_;
  ps.committed_height = committed_height_;
  ps.committed_hash = committed_hash_;
  return ps;
}

void ReplicaBase::restore(const PersistentState& ps) {
  cview_ = ps.view;
  committed_hash_ = ps.committed_hash;
  committed_height_ = ps.committed_height;
}

void ReplicaBase::handle_message(ReplicaId from, const Envelope& envelope) {
  // An amnesia-recovering replica must not act on protocol traffic: it
  // cannot know what it voted before the disk was lost, so voting (or
  // proposing) again could equivocate. Client ops still pool, and the
  // fetch/snapshot plane stays open — that's how recovery completes.
  if (recovering_) {
    switch (envelope.kind) {
      case MsgKind::kProposal:
      case MsgKind::kVote:
      case MsgKind::kQcNotice:
      case MsgKind::kViewChange:
      case MsgKind::kTimeoutNotice:
        return;
      default:
        break;
    }
  }
  switch (envelope.kind) {
    case MsgKind::kClientRequest: {
      auto msg = types::open_envelope<types::ClientRequestMsg>(envelope);
      if (msg.is_ok()) {
        for (types::Operation& op : msg.value().ops) {
          pool_.add(std::move(op), env_.now());
        }
        maybe_propose();
      }
      return;
    }
    case MsgKind::kProposal: {
      auto msg = types::open_envelope<types::ProposalMsg>(envelope);
      if (msg.is_ok()) on_proposal(from, std::move(msg).take());
      return;
    }
    case MsgKind::kVote: {
      auto msg = types::open_envelope<types::VoteMsg>(envelope);
      if (msg.is_ok()) on_vote(from, std::move(msg).take());
      return;
    }
    case MsgKind::kQcNotice: {
      auto msg = types::open_envelope<types::QcNoticeMsg>(envelope);
      if (msg.is_ok()) on_qc_notice(from, std::move(msg).take());
      return;
    }
    case MsgKind::kViewChange: {
      auto msg = types::open_envelope<types::ViewChangeMsg>(envelope);
      if (msg.is_ok()) on_view_change(from, std::move(msg).take());
      return;
    }
    case MsgKind::kFetchRequest: {
      auto msg = types::open_envelope<types::FetchRequestMsg>(envelope);
      if (msg.is_ok()) on_fetch_request(from, msg.value());
      return;
    }
    case MsgKind::kFetchResponse: {
      auto msg = types::open_envelope<types::FetchResponseMsg>(envelope);
      if (msg.is_ok()) on_fetch_response(from, std::move(msg).take());
      return;
    }
    case MsgKind::kSnapshotRequest: {
      auto msg = types::open_envelope<types::SnapshotRequestMsg>(envelope);
      if (msg.is_ok()) on_snapshot_request(from, msg.value());
      return;
    }
    case MsgKind::kSnapshotResponse: {
      auto msg = types::open_envelope<types::SnapshotResponseMsg>(envelope);
      if (msg.is_ok()) on_snapshot_response(from, std::move(msg).take());
      return;
    }
    case MsgKind::kTimeoutNotice: {
      auto msg = types::open_envelope<types::TimeoutNoticeMsg>(envelope);
      if (msg.is_ok()) on_timeout_notice(from, msg.value());
      return;
    }
    case MsgKind::kClientReply:
      return;  // replicas never receive replies
  }
}

namespace {
/// Signature checks lifted off one envelope for off-thread pre-warming
/// (see ReplicaBase::preverify_work).
struct PreverifyBatch {
  struct QcCheck {
    QuorumCert qc;
    Hash256 digest;
  };
  struct SigCheck {
    crypto::PartialSig sig;
    Hash256 digest;
  };
  std::vector<QcCheck> qcs;
  std::vector<SigCheck> sigs;
  bool empty() const { return qcs.empty() && sigs.empty(); }
};
}  // namespace

void ReplicaBase::ingress(ReplicaId from, Envelope envelope,
                          common::VerifyExecutor& exec) {
  if (!exec.deferred()) {
    // Inline executors add nothing: dispatch directly (no plan, no
    // allocation) so simulated behavior is bit-identical.
    handle_message(from, envelope);
    return;
  }
  std::function<void()> work = preverify_work(envelope);
  exec.submit(std::move(work),
              [this, from, env = std::move(envelope)] {
                handle_message(from, env);
              });
}

std::function<void()> ReplicaBase::preverify_work(
    const Envelope& envelope) const {
  PreverifyBatch batch;
  auto plan_qc = [this, &batch](const QuorumCert& qc) {
    if (qc.is_genesis()) return;
    Hash256 digest = qc.signed_digest(domain_);
    if (verified_qc_digests_.count(digest) > 0) return;
    batch.qcs.push_back(PreverifyBatch::QcCheck{qc, digest});
  };
  auto plan_justify = [&plan_qc](const types::Justify& j) {
    if (j.qc) plan_qc(*j.qc);
    if (j.vc) plan_qc(*j.vc);
  };

  switch (envelope.kind) {
    case MsgKind::kProposal: {
      auto msg = types::open_envelope<types::ProposalMsg>(envelope);
      if (!msg.is_ok()) return nullptr;
      for (const types::ProposalEntry& e : msg.value().entries) {
        plan_justify(e.block.justify);
        plan_justify(e.justify);
      }
      break;
    }
    case MsgKind::kQcNotice: {
      auto msg = types::open_envelope<types::QcNoticeMsg>(envelope);
      if (!msg.is_ok()) return nullptr;
      plan_qc(msg.value().qc);
      if (msg.value().aux) plan_qc(*msg.value().aux);
      break;
    }
    case MsgKind::kVote: {
      auto msg = types::open_envelope<types::VoteMsg>(envelope);
      if (!msg.is_ok()) return nullptr;
      const types::VoteMsg& v = msg.value();
      if (auto digest = preverify_vote_digest(v)) {
        batch.sigs.push_back(PreverifyBatch::SigCheck{v.parsig, *digest});
      }
      if (v.locked_qc) plan_qc(*v.locked_qc);
      break;
    }
    case MsgKind::kViewChange: {
      auto msg = types::open_envelope<types::ViewChangeMsg>(envelope);
      if (!msg.is_ok()) return nullptr;
      const types::ViewChangeMsg& vc = msg.value();
      if (auto digest = preverify_view_change_digest(vc)) {
        batch.sigs.push_back(PreverifyBatch::SigCheck{vc.parsig, *digest});
      }
      plan_justify(vc.high_qc);
      break;
    }
    default:
      return nullptr;  // nothing signature-bearing on this path
  }
  if (batch.empty()) return nullptr;

  // The closure reads only its own copies plus the const suite/verifier;
  // results are discarded — running a verification warms the tag caches,
  // and the handler's authoritative re-check is then a cache hit.
  return [batch = std::move(batch), &suite = suite_,
          &verifier = verifier_, q = quorum()] {
    for (const PreverifyBatch::QcCheck& c : batch.qcs) {
      if (c.qc.is_threshold_form()) {
        (void)suite.threshold_verify(c.digest.view(), c.qc.threshold_sig);
      } else {
        (void)c.qc.sigs.verify(verifier, c.digest.view(), q);
      }
    }
    for (const PreverifyBatch::SigCheck& s : batch.sigs) {
      (void)verifier.verify(s.sig.signer, s.digest.view(), s.sig.sig);
    }
  };
}

void ReplicaBase::on_view_timeout() {
  if (cview_ == 0) return;
  trace({.type = obs::EventType::kTimeoutFired});
  // Quorum-gated advance: announce the timeout (rebroadcast on every
  // subsequent fire, so lost notices heal) and advance only once f+1
  // replicas are known to have timed out of this view. The local entry is
  // set directly rather than waiting for the loopback delivery.
  peer_timeout_view_[config_.id] =
      std::max(peer_timeout_view_[config_.id], cview_);
  broadcast(types::make_envelope(MsgKind::kTimeoutNotice,
                                 types::TimeoutNoticeMsg{cview_}));
  check_timeout_quorum();
}

void ReplicaBase::on_timeout_notice(ReplicaId from,
                                    const types::TimeoutNoticeMsg& msg) {
  if (from >= config_.quorum.n) return;
  if (msg.view <= peer_timeout_view_[from]) return;
  peer_timeout_view_[from] = msg.view;
  check_timeout_quorum();
}

void ReplicaBase::check_timeout_quorum() {
  if (cview_ == 0) return;
  // v* = highest view that f+1 distinct replicas have timed out of (the
  // (f+1)-th largest entry). Advancing to v*+1 is justified: at least one
  // correct replica timed out at or above v*, so waiting in any view ≤ v*
  // cannot make progress. Jumps over multiple dead views in one step.
  std::vector<ViewNumber> sorted = peer_timeout_view_;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const ViewNumber vstar = sorted[config_.quorum.f];
  if (vstar >= cview_) advance_to_view(vstar + 1);
}

void ReplicaBase::submit(types::Operation op) {
  pool_.add(std::move(op), env_.now());
  maybe_propose();
}

bool ReplicaBase::verify_qc(const QuorumCert& qc) {
  if (qc.is_genesis()) {
    // Valid by convention iff it names the actual genesis block.
    return qc.block_hash == store_.genesis_hash() && qc.sigs.parts.empty() &&
           !qc.is_threshold_form();
  }
  const Hash256 digest = qc.signed_digest(domain_);
  if (verified_qc_digests_.count(digest) > 0) return true;
  bool ok;
  if (qc.is_threshold_form()) {
    // BLS-class verification: two pairings, size-independent.
    env_.charge_pairings(2);
    ok = suite_.threshold_verify(digest.view(), qc.threshold_sig);
  } else {
    env_.charge_verifies(static_cast<std::uint32_t>(qc.sigs.parts.size()));
    ok = qc.sigs.verify(verifier_, digest.view(), quorum());
  }
  if (!ok) {
    MLOG_WARN("replica %u: invalid QC %s", config_.id, qc.to_string().c_str());
    return false;
  }
  verified_qc_digests_.insert(digest);
  return true;
}

void ReplicaBase::finalize_qc(QuorumCert& qc) {
  const Hash256 digest = qc.signed_digest(domain_);
  if (config_.use_threshold_sigs) {
    std::vector<std::pair<ReplicaId, Bytes>> parts;
    parts.reserve(qc.sigs.parts.size());
    for (const auto& p : qc.sigs.parts) parts.emplace_back(p.signer, p.sig);
    env_.charge_combine_shares(static_cast<std::uint32_t>(parts.size()));
    auto combined = suite_.threshold_combine(digest.view(), parts, quorum());
    if (combined) {
      qc.threshold_sig = std::move(*combined);
      qc.sigs = crypto::SigGroup{};
    }
  }
  // A locally formed certificate is valid by construction.
  verified_qc_digests_.insert(digest);
}

crypto::PartialSig ReplicaBase::sign_digest(const Hash256& digest) {
  if (config_.use_threshold_sigs) {
    env_.charge_threshold_signs(1);
  } else {
    env_.charge_signs(1);
  }
  return crypto::PartialSig{config_.id, signer_->sign(digest.view())};
}

bool ReplicaBase::verify_partial(const crypto::PartialSig& sig,
                                 const Hash256& digest) {
  if (config_.use_threshold_sigs) {
    env_.charge_pairings(2);  // BLS-class share verification
  } else {
    env_.charge_verifies(1);
  }
  return verifier_.verify(sig.signer, digest.view(), sig.sig);
}

std::vector<types::Operation> ReplicaBase::make_batch(bool force) {
  auto batch = pool_.next_batch(config_.max_batch_ops);
  if (batch.empty()) {
    last_batch_wait_ = Duration::zero();
    if (!force && !config_.allow_empty_blocks) return {};
    return batch;
  }
  last_batch_wait_ = env_.now() - pool_.last_batch_oldest_enqueue();
  return batch;
}

void ReplicaBase::commit_to(const Hash256& target, ReplicaId provider) {
  if (target == committed_hash_) return;
  const Block* tip = store_.get(target);
  if (tip && tip->height <= committed_height_) {
    // Already committed (an old DECIDE re-delivered) — or a conflicting
    // chain, which the chain() walk below would catch; cheap check first.
    if (!store_.extends(committed_hash_, target)) {
      safety_violated_ = true;
      MLOG_ERROR("replica %u: SAFETY VIOLATION: commit target %s conflicts",
                 config_.id, target.short_hex().c_str());
    }
    return;
  }

  std::vector<Hash256> path = store_.chain(target, committed_hash_);
  if (path.empty()) {
    // Bodies on the path are missing. Sanity-check for an actual conflict
    // (walked to the root without meeting the committed head), then issue
    // a batched catch-up fetch for the whole range.
    Hash256 cursor = target;
    while (true) {
      const Block* b = store_.get(cursor);
      if (!b) break;
      if (b->is_genesis()) {
        safety_violated_ = true;
        MLOG_ERROR("replica %u: SAFETY VIOLATION at %s", config_.id,
                   target.short_hex().c_str());
        return;
      }
      const Hash256 parent = store_.parent_of(cursor);
      if (parent.is_zero() || parent == committed_hash_) break;
      cursor = parent;
    }
    // Keep the FIRST unresolved target as the catch-up anchor. Re-pointing
    // at every newer DECIDE moves the goalpost: a laggard whose
    // fetch/snapshot round-trip matches the cluster's commit cadence is
    // then perpetually one body short of the latest target and never
    // completes a path (livelock). The anchor stands still, resolves, and
    // the next DECIDE supplies a fresh (now nearby) target.
    if (!pending_commit_) pending_commit_ = PendingCommit{target, provider};
    const Hash256 anchor = pending_commit_->target;

    // Pick what to request next so successive batches converge: walk down
    // from the anchor — or, when the anchor's own body is still missing,
    // from the oldest block the previous batch delivered — to the deepest
    // known block, and request its (missing) parent's range. When the
    // bottom of the gap is already closed, the remainder is at the top:
    // request the anchor itself.
    Hash256 walk_start = anchor;
    if (!store_.get(anchor) && !last_fetched_.is_zero() &&
        store_.get(last_fetched_)) {
      walk_start = last_fetched_;
    }
    Hash256 request_hash = anchor;
    if (store_.get(walk_start)) {
      Hash256 down = walk_start;
      while (const Block* b = store_.get(down)) {
        if (b->is_genesis()) break;
        const Hash256 parent = store_.parent_of(down);
        if (parent.is_zero() || parent == committed_hash_) break;
        down = parent;
      }
      // When the walk stopped on a hash with no body, that hash is the
      // bottom of the gap: request it so successive batches extend the
      // known range downward. Re-requesting the target instead would chase
      // the advancing tip forever once the gap outgrows one fetch batch.
      if (!store_.get(down)) request_hash = down;
    }

    if (in_fetch_retry_) return;           // a batch is still streaming in
    if (fetch_inflight_ && ++fetch_stall_ < 8) return;  // one at a time
    // Re-issuing an unanswered request rotates the provider: the provider
    // hint comes from whoever sent the DECIDE, which via loopback can be
    // this very replica (a laggard leader), and may also be crashed.
    if (fetch_inflight_) ++fetch_retry_round_;
    fetch_inflight_ = true;
    fetch_stall_ = 0;
    ReplicaId source = static_cast<ReplicaId>(
        (provider + fetch_retry_round_) % config_.quorum.n);
    if (source == config_.id) {
      source = static_cast<ReplicaId>((source + 1) % config_.quorum.n);
    }
    // Far behind (gap wider than one fetch batch): request a snapshot —
    // manifest + chain suffix in ONE exchange — instead of walking
    // O(gap / kFetchBatchLimit) fetch rounds. When the anchor's body is
    // missing the gap is unknown here; the provider upgrades the fetch to
    // a snapshot on its side (see on_fetch_request).
    const Block* anchor_tip = store_.get(anchor);
    if (anchor_tip &&
        anchor_tip->height >
            committed_height_ + types::FetchRequestMsg::kFetchBatchLimit) {
      trace({.type = obs::EventType::kStateTransfer,
             .height = committed_height_,
             .block = trace_block_id(anchor),
             .a = 0});
      send_to(source,
              types::make_envelope(MsgKind::kSnapshotRequest,
                                   types::SnapshotRequestMsg{committed_height_}));
      return;
    }
    send_to(source,
            types::make_envelope(
                MsgKind::kFetchRequest,
                types::FetchRequestMsg{request_hash, committed_height_}));
    return;
  }
  fetch_inflight_ = false;  // progress: the next gap issues a fresh fetch
  fetch_stall_ = 0;
  fetch_retry_round_ = 0;
  last_fetched_ = Hash256{};

  for (const Hash256& h : path) {
    const Block* b = store_.get(h);
    std::vector<types::Operation> executable;
    executable.reserve(b->ops.size());
    for (const types::Operation& op : b->ops) {
      if (pool_.executed(op.client, op.request)) continue;  // duplicate
      pool_.mark_committed(op);
      executable.push_back(op);
    }
    env_.deliver(*b, executable);
    trace({.type = obs::EventType::kCommit,
           .height = b->height,
           .block = trace_block_id(h),
           .a = executable.size(),
           .b = b->ops.size()});
    committed_hash_ = h;
    committed_height_ = b->height;
    ++committed_blocks_;
    // Release executed payloads once the retained-bytes budget is
    // exceeded (a released body must never be served again — its content
    // no longer matches its hash — so keep a generous catch-up window).
    const std::size_t body_bytes = types::ops_wire_size(b->ops);
    recent_committed_.emplace_back(h, body_bytes);
    retained_bytes_ += body_bytes;
    while (recent_committed_.size() > kRetainMinBlocks &&
           retained_bytes_ > kRetainBudgetBytes) {
      store_.release_ops(recent_committed_.front().first);
      retained_bytes_ -= recent_committed_.front().second;
      recent_committed_.pop_front();
    }
  }
  // The commit frontier advanced: make it durable so a restart resumes
  // from here instead of re-fetching (and so restarted replicas never
  // re-deliver).
  persist();
  env_.progressed();
  maybe_propose();
}

void ReplicaBase::on_fetch_request(ReplicaId from,
                                   const types::FetchRequestMsg& msg) {
  // A requester more than one batch behind gets a snapshot instead: its
  // own request carried `since`, so one response closes the whole gap.
  if (committed_height_ >
      msg.since + types::FetchRequestMsg::kFetchBatchLimit) {
    serve_snapshot(from, msg.since);
    return;
  }
  // Serve the chain from the requested block down to `since`, newest
  // first, capped per request. Stop at any released body (its content no
  // longer matches its hash) — the requester can re-request as it closes
  // the gap from the other side.
  Hash256 cursor = msg.block_hash;
  std::uint32_t sent = 0;
  while (sent < types::FetchRequestMsg::kFetchBatchLimit) {
    const Block* b = store_.get(cursor);
    if (!b || store_.ops_released(cursor)) break;
    if (b->height <= msg.since || b->is_genesis()) break;
    send_to(from, types::make_envelope(MsgKind::kFetchResponse,
                                       types::FetchResponseMsg{*b}));
    ++sent;
    cursor = store_.parent_of(cursor);
    if (cursor.is_zero()) break;
  }
}

void ReplicaBase::on_fetch_response(ReplicaId from,
                                    types::FetchResponseMsg msg) {
  (void)from;
  env_.charge_hash_bytes(types::ops_wire_size(msg.block.ops) + 128);
  const Hash256 fetched = msg.block.hash();
  // Batches stream the chain newest first, so the previously delivered
  // body is this block's child. A virtual child's parent link lives outside
  // its body (the message-borne vc QC; see BlockStore::set_virtual_parent)
  // and does not survive transfer — rebind it here, checked against the
  // child's own justify, whose qc certifies the grandparent and therefore
  // must match this block's parent_link. Without the rebind, parent_of()
  // on the transferred virtual block stays ⊥ and catch-up wedges forever.
  if (!last_fetched_.is_zero() && !msg.block.virtual_block) {
    const Block* child = store_.get(last_fetched_);
    if (child && child->virtual_block && child->height == msg.block.height + 1 &&
        store_.parent_of(last_fetched_).is_zero() && child->justify.qc &&
        child->justify.qc->block_hash == msg.block.parent_link) {
      store_.set_virtual_parent(last_fetched_, fetched);
    }
  }
  last_fetched_ = fetched;
  store_.insert(std::move(msg.block));
  // Retry after each body, but suppress new fetch requests while the rest
  // of the batch is still streaming in (in_fetch_retry_); the last body of
  // the batch either completes the commit (clearing the inflight flag) or
  // the next DECIDE re-arms the fetch via the stall counter.
  in_fetch_retry_ = true;
  retry_pending_commit();
  in_fetch_retry_ = false;
}

void ReplicaBase::on_snapshot_request(ReplicaId from,
                                      const types::SnapshotRequestMsg& msg) {
  // Recovery requests are broadcast (loopback included) — never answer
  // our own.
  if (from == config_.id) return;
  serve_snapshot(from, msg.since);
}

void ReplicaBase::serve_snapshot(ReplicaId to, Height since) {
  types::SnapshotResponseMsg resp;
  resp.height = committed_height_;
  resp.head = committed_hash_;
  Hash256 cursor = committed_hash_;
  while (resp.suffix.size() < types::SnapshotResponseMsg::kSuffixLimit) {
    const Block* b = store_.get(cursor);
    if (!b || store_.ops_released(cursor)) break;
    if (b->is_genesis() || b->height <= since) break;
    resp.suffix.push_back(*b);
    cursor = store_.parent_of(cursor);
    if (cursor.is_zero()) break;
  }
  // An empty suffix is still sent: "nothing newer than `since`" is the
  // confirmation an amnesia-recovering requester counts toward its f+1
  // you-are-current quorum. Only actual transfers are traced as served.
  if (!resp.suffix.empty()) {
    trace({.type = obs::EventType::kStateTransfer,
           .height = committed_height_,
           .block = trace_block_id(committed_hash_),
           .a = 1,
           .b = resp.suffix.size()});
  }
  send_to(to, types::make_envelope(MsgKind::kSnapshotResponse, resp));
}

void ReplicaBase::on_snapshot_response(ReplicaId from,
                                       types::SnapshotResponseMsg msg) {
  if (msg.suffix.empty()) {
    // "Nothing newer than your frontier." While recovering, f+1 such
    // confirmations (at least one from a correct replica) mean the lost
    // disk held nothing the cluster moved past — safe to rejoin.
    if (recovering_ && from != config_.id && msg.height <= committed_height_) {
      recovery_ack_mask_ |= 1u << (from % 32u);
      if (static_cast<std::uint32_t>(std::popcount(recovery_ack_mask_)) >=
          config_.quorum.reply_quorum()) {
        finish_recovery();
      }
    }
    return;
  }
  std::size_t body_bytes = 0;
  for (const Block& b : msg.suffix) {
    body_bytes += types::ops_wire_size(b.ops) + 128;
  }
  env_.charge_hash_bytes(body_bytes);
  // Suffix streams newest first; insert oldest first so parent links
  // resolve as we go. A virtual block's parent link lives outside its body
  // (the message-borne vc QC; see BlockStore::set_virtual_parent) and does
  // not survive transfer — rebind it from stream order: in a contiguous
  // suffix the next-older block is the parent. The binding is checked
  // against the virtual block's own justify, whose qc certifies the
  // grandparent and therefore must match the parent's parent_link.
  const Hash256 oldest_hash = msg.suffix.back().hash();
  const Height oldest_height = msg.suffix.back().height;
  Hash256 below =
      (oldest_height == committed_height_ + 1) ? committed_hash_ : Hash256{};
  for (auto it = msg.suffix.rbegin(); it != msg.suffix.rend(); ++it) {
    const Hash256 h = it->hash();
    const bool rebind = it->virtual_block && store_.parent_of(h).is_zero();
    const Hash256 grand =
        it->justify.qc ? it->justify.qc->block_hash : Hash256{};
    store_.insert(std::move(*it));
    if (rebind && !below.is_zero()) {
      const Block* parent = store_.get(below);
      if (parent && !parent->virtual_block && parent->parent_link == grand) {
        store_.set_virtual_parent(h, below);
      }
    }
    below = h;
  }
  fetch_inflight_ = false;
  fetch_stall_ = 0;
  fetch_retry_round_ = 0;
  last_fetched_ = Hash256{};
  // If the suffix does not link down to our committed head (the provider
  // released the bodies below it), adopt the manifest: fast-forward the
  // frontier to the suffix base, skipping the unfetchable region. The
  // skipped blocks are never delivered locally; the walkable prefix of
  // this replica's chain now starts at the snapshot base.
  if (oldest_height > committed_height_ + 1 &&
      !store_.extends(msg.head, committed_hash_)) {
    const Hash256 base_parent = store_.parent_of(oldest_hash);
    if (!base_parent.is_zero()) {
      committed_hash_ = base_parent;
      committed_height_ = oldest_height - 1;
      // The catch-up anchor may now sit below the skipped region; drop it
      // rather than chase an uncommittable target.
      if (pending_commit_) {
        const Block* a = store_.get(pending_commit_->target);
        if (!a || a->height <= committed_height_) pending_commit_.reset();
      }
    }
  }
  trace({.type = obs::EventType::kStateTransfer,
         .height = msg.height,
         .block = trace_block_id(msg.head),
         .a = 2,
         .b = msg.suffix.size()});
  // A recovering replica re-anchors on the snapshot tip: the protocol
  // adopts its justify QC (verified there — a lying manifest cannot plant
  // state) and recovery completes.
  if (recovering_) {
    if (const Block* tip = store_.get(msg.head)) adopt_recovery_tip(*tip);
    finish_recovery();
  }
  // Commit toward the QC-verified pending target (NOT the provider's
  // claimed head — a lying manifest must not drive commits).
  retry_pending_commit();
}

void ReplicaBase::begin_recovery() {
  recovering_ = true;
  recovery_ack_mask_ = 0;
  send_recovery_request();
}

void ReplicaBase::recovery_tick() {
  if (recovering_) send_recovery_request();
}

void ReplicaBase::send_recovery_request() {
  trace({.type = obs::EventType::kStateTransfer,
         .height = committed_height_,
         .a = 0});
  broadcast(types::make_envelope(
      MsgKind::kSnapshotRequest, types::SnapshotRequestMsg{committed_height_}));
}

void ReplicaBase::finish_recovery() {
  if (!recovering_) return;
  recovering_ = false;
  recovery_ack_mask_ = 0;
  // The replica may have led (and proposed in) this very view before the
  // wipe; proposing in it again would equivocate. Any view advance clears
  // the hold.
  recovery_hold_view_ = cview_;
  trace({.type = obs::EventType::kStateTransfer,
         .height = committed_height_,
         .block = trace_block_id(committed_hash_),
         .a = 3});
  persist();
  maybe_propose();
}

std::uint64_t ReplicaBase::trace_block_id(const Hash256& h) {
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) id = (id << 8) | h.data[i];
  return id;
}

void ReplicaBase::retry_pending_commit() {
  if (!pending_commit_) return;
  const PendingCommit pc = *pending_commit_;
  pending_commit_.reset();
  commit_to(pc.target, pc.provider);
}

}  // namespace marlin::consensus
