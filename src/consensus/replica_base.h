// Infrastructure shared by the Marlin and HotStuff replicas: envelope
// dispatch, vote collection, QC verification (with caching and cost
// accounting), block fetching, chain commit, and view bookkeeping.
//
// Threading/timing model: a replica is a deterministic event handler. The
// environment calls handle_message / submit / on_view_timeout; the replica
// never blocks and reports all effects through ProtocolEnv.
//
// Broadcast semantics: ProtocolEnv::broadcast delivers to ALL n replicas
// including the sender (loopback), so a leader's own proposal flows through
// the same code path as everyone else's.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/log.h"
#include "common/verify_executor.h"
#include "consensus/env.h"
#include "consensus/txpool.h"
#include "crypto/signer.h"
#include "types/block_store.h"
#include "types/messages.h"

namespace marlin::consensus {

using types::Block;
using types::BlockRef;
using types::Envelope;
using types::Hash256;
using types::Justify;
using types::MsgKind;
using types::Phase;
using types::QcType;
using types::QuorumCert;

struct ReplicaConfig {
  ReplicaId id = 0;
  QuorumParams quorum = QuorumParams::for_f(1);
  /// Max client operations per proposed block.
  std::size_t max_batch_ops = 4000;
  /// Pipelined (chained) mode: the leader proposes the next block as soon
  /// as the previous block's prepareQC forms, instead of after commit.
  bool pipelined = true;
  /// Propose empty blocks when the pool is dry (usually off; view-change
  /// re-proposals may always be empty).
  bool allow_empty_blocks = false;
  /// Marlin only: skip the happy-path view change even when eligible
  /// (benchmarks force the unhappy path with this).
  bool disable_happy_path = false;
  /// Quorum-certificate instantiation: false = signature group (the
  /// paper's "most efficient implementation"; default), true = combined
  /// threshold signature (constant-size QCs, pairing-class CPU costs).
  bool use_threshold_sigs = false;
};

/// Collects votes per (phase, block); emits an aggregate exactly once when
/// the threshold is first reached.
class VoteCollector {
 public:
  explicit VoteCollector(std::uint32_t threshold) : threshold_(threshold) {}

  /// Returns the combined signature group when this vote completes the
  /// quorum (first time only); nullopt otherwise. Duplicate signers ignored.
  std::optional<crypto::SigGroup> add(Phase phase, const Hash256& block,
                                      const crypto::PartialSig& sig);

  std::uint32_t count(Phase phase, const Hash256& block) const;
  void clear() { slots_.clear(); }

 private:
  struct Key {
    std::uint8_t phase;
    Hash256 block;
    auto operator<=>(const Key&) const = default;
  };
  struct Slot {
    std::vector<crypto::PartialSig> sigs;
    std::set<ReplicaId> signers;
    bool formed = false;
  };

  std::uint32_t threshold_;
  std::map<Key, Slot> slots_;
};

class ReplicaBase {
 public:
  ReplicaBase(ReplicaConfig config, const crypto::SignatureSuite& suite,
              ProtocolEnv& env, std::string domain);
  virtual ~ReplicaBase() = default;

  /// Enters view 1 (or the restored view after restore()) and, if leader,
  /// becomes ready to propose.
  virtual void start();

  /// Snapshot of the durable consensus state (write-ahead-voting unit).
  /// Protocol subclasses fill their own fields on top of
  /// base_persistent_state().
  virtual PersistentState persistent_state() const = 0;

  /// Rebuilds this replica from a state previously captured by
  /// persistent_state() — the crash-recovery path. Call before start().
  /// Subclasses restore their protocol fields and then call this base,
  /// which restores the view and the commit frontier.
  virtual void restore(const PersistentState& ps);

  /// Entry point for every network payload addressed to this replica.
  void handle_message(ReplicaId from, const Envelope& envelope);

  /// Envelope entry point with a verification executor. With an inline
  /// executor (the simulator, tests) this is exactly handle_message — no
  /// planning, no allocation, bit-identical behavior and cost charging.
  /// With a deferred executor (realnet's VerifyPool) the envelope's
  /// signature work is pre-verified off-thread first: a self-contained
  /// closure warms the suite's verification caches, then the completion
  /// dispatches normally on the submitter's thread — the handler's own
  /// verify_qc / verify_partial calls stay authoritative (and do all the
  /// charging), they just hit warm caches. Wrong speculative work is only
  /// a cache miss, never a false accept.
  void ingress(ReplicaId from, Envelope envelope,
               common::VerifyExecutor& exec);

  /// The deferrable crypto for one inbound envelope: a closure verifying
  /// every QC aggregate and partial signature the dispatch path will
  /// check, touching no mutable replica state (safe on another thread
  /// under crypto::set_parallel_crypto). Null when the envelope carries
  /// nothing worth pre-verifying. Exposed for executor tests.
  std::function<void()> preverify_work(const Envelope& envelope) const;

  /// A client operation arrived (runtime decodes ClientRequest envelopes
  /// too, but tests may inject directly).
  void submit(types::Operation op);

  /// The pacemaker's view timer fired. Quorum-gated advance (after
  /// Jolteon-style pacemakers): the fire broadcasts a TimeoutNotice for the
  /// current view but the view only advances once f+1 distinct replicas are
  /// known to have timed out of it (see on_timeout_notice). A lone fast
  /// clock therefore keeps waiting — and voting — in its view instead of
  /// running ahead of the pack, which with exactly a quorum of correct
  /// replicas alive would otherwise strand the cluster one view apart in
  /// lockstep forever.
  void on_view_timeout();

  /// Amnesia-aware rejoin (call after start() on a wipe_disk revival): the
  /// replica cannot know what it voted before the disk was lost, so until
  /// the snapshot sync completes it serves fetches but neither votes nor
  /// proposes. Recovery ends when a peer's snapshot re-anchors the frontier
  /// or f+1 peers confirm there is nothing newer (see on_snapshot_response).
  void begin_recovery();
  bool recovering() const { return recovering_; }
  /// Retransmits the recovery snapshot request (the runtime calls this from
  /// the view timer while recovering, instead of churning views).
  void recovery_tick();

  // -- introspection -------------------------------------------------------
  ReplicaId id() const { return config_.id; }
  ViewNumber current_view() const { return cview_; }
  Height committed_height() const { return committed_height_; }
  const Hash256& committed_hash() const { return committed_hash_; }
  std::uint64_t committed_blocks() const { return committed_blocks_; }
  /// Set iff a commit ever contradicted the local committed chain — the
  /// safety tripwire property tests assert on.
  bool safety_violated() const { return safety_violated_; }
  const types::BlockStore& store() const { return store_; }
  TxPool& pool() { return pool_; }

 protected:
  // -- protocol-specific handlers ------------------------------------------
  virtual void on_proposal(ReplicaId from, types::ProposalMsg msg) = 0;
  virtual void on_vote(ReplicaId from, types::VoteMsg msg) = 0;
  virtual void on_qc_notice(ReplicaId from, types::QcNoticeMsg msg) = 0;
  virtual void on_view_change(ReplicaId from, types::ViewChangeMsg msg) = 0;
  /// Called when new ops arrive or the pipeline frees up; the leader
  /// decides whether to propose.
  virtual void maybe_propose() = 0;

  /// The timeout quorum formed (f+1 replicas timed out at or above
  /// cview_): enter view `v`, sending the protocol's view-change message
  /// (Marlin VC / HotStuff NEW-VIEW) to the new leader.
  virtual void advance_to_view(ViewNumber v) = 0;

  /// Digest a VoteMsg's partial signature covers, for speculative
  /// pre-verification (protocol-specific: the QC type of the phase and the
  /// block-metadata fields differ between Marlin and HotStuff). Read-only;
  /// nullopt when the digest cannot be derived yet (unknown block) or the
  /// vote would be discarded before verification anyway.
  virtual std::optional<Hash256> preverify_vote_digest(
      const types::VoteMsg& msg) const {
    (void)msg;
    return std::nullopt;
  }

  /// Digest a ViewChangeMsg's partial signature covers (see
  /// preverify_vote_digest).
  virtual std::optional<Hash256> preverify_view_change_digest(
      const types::ViewChangeMsg& msg) const {
    (void)msg;
    return std::nullopt;
  }

  /// Recovery completed with a non-empty snapshot whose newest block is
  /// `tip`: the protocol adopts tip's justify QC (its high-QC / lock) and
  /// jumps to the QC's view, so an amnesiac leader never re-proposes from
  /// genesis inside a view it already led. Default: no adoption.
  virtual void adopt_recovery_tip(const Block& tip) { (void)tip; }

  /// True while proposing is suppressed in the view recovery completed in:
  /// the replica may have led this very view before the wipe, and
  /// re-proposing in it would equivocate. Cleared by any view advance.
  bool propose_held() const {
    return recovery_hold_view_ != 0 && cview_ == recovery_hold_view_;
  }

  // -- helpers --------------------------------------------------------------
  ReplicaId leader_of(ViewNumber v) const {
    return static_cast<ReplicaId>(v % config_.quorum.n);
  }
  bool is_leader() const { return leader_of(cview_) == config_.id; }
  std::uint32_t quorum() const { return config_.quorum.quorum(); }

  /// Verifies a QC's aggregate signature over its signed digest (genesis
  /// QCs are valid by convention). Successful digests are cached so
  /// re-presentations are free — mirroring real implementations — and the
  /// env is charged for the work actually performed (signature checks, or
  /// pairings in threshold form).
  bool verify_qc(const QuorumCert& qc);

  /// Converts a freshly formed QC to the configured instantiation: in
  /// threshold mode, combines the collected partials into one constant-
  /// size signature (charging combine costs) and drops the group.
  void finalize_qc(QuorumCert& qc);

  /// Signs a vote digest (charges one sign / threshold share).
  crypto::PartialSig sign_digest(const Hash256& digest);

  /// Verifies one partial signature over a digest (charges one verify).
  bool verify_partial(const crypto::PartialSig& sig, const Hash256& digest);

  /// Commits everything from the committed head up to `target` (must
  /// extend it), delivering blocks in order. If a body on the path is
  /// missing, fetches it from `provider` and retries on arrival.
  void commit_to(const Hash256& target, ReplicaId provider);

  /// Builds a batch for a new proposal; empty when the pool is dry and
  /// `force` is false and empty blocks are disallowed.
  std::vector<types::Operation> make_batch(bool force);

  /// Sends an envelope to one replica / all replicas (including self).
  void send_to(ReplicaId to, const Envelope& env) { env_.send(to, env); }
  void broadcast(const Envelope& env) { env_.broadcast(env); }

  /// Common PersistentState fields (view + commit frontier); protocol
  /// subclasses add their own on top.
  PersistentState base_persistent_state(PersistedProtocol p) const;

  /// Write-ahead-voting flush: hands the current durable state to the
  /// environment. Protocols call this after updating voted/locked state
  /// and BEFORE sending the message that depends on it.
  void persist() { env_.persist_state(persistent_state()); }

  // -- tracing --------------------------------------------------------------
  /// First 8 bytes of a block hash as the trace's compact block id.
  static std::uint64_t trace_block_id(const Hash256& h);

  /// Records a protocol event when the env exposes a trace sink. The
  /// replica id is always stamped; `view` defaults to the current view
  /// when the caller leaves it zero. Call with designated initializers:
  ///   trace({.type = obs::EventType::kQcFormed, .phase = ..., ...});
  void trace(obs::TraceEvent e) {
    if (obs::TraceSink* sink = env_.trace_sink()) {
      e.node = config_.id;
      if (e.view == 0) e.view = cview_;
      sink->record(e);
    }
  }

  ReplicaConfig config_;
  ProtocolEnv& env_;
  std::string domain_;
  const crypto::SignatureSuite& suite_;
  std::unique_ptr<crypto::Signer> signer_;
  const crypto::Verifier& verifier_;

  types::BlockStore store_;
  TxPool pool_;

  /// Pool wait of the oldest op in the last non-empty make_batch() result
  /// (observability: kBatchDequeued's b operand).
  Duration last_batch_wait_ = Duration::zero();

  ViewNumber cview_ = 0;  // 0 until start(); views begin at 1
  Hash256 committed_hash_;
  Height committed_height_ = 0;
  std::uint64_t committed_blocks_ = 0;
  bool safety_violated_ = false;
  /// View in which recovery completed (proposing suppressed there; see
  /// propose_held()). 0 = no hold.
  ViewNumber recovery_hold_view_ = 0;

 private:
  void on_fetch_request(ReplicaId from, const types::FetchRequestMsg& msg);
  void on_fetch_response(ReplicaId from, types::FetchResponseMsg msg);
  void on_snapshot_request(ReplicaId from, const types::SnapshotRequestMsg& msg);
  void on_snapshot_response(ReplicaId from, types::SnapshotResponseMsg msg);
  /// Sends a manifest + chain-suffix SnapshotResponse covering
  /// (since, committed_height_] to `to`. An empty suffix is still sent:
  /// "nothing newer than `since`" is the confirmation an amnesia-recovering
  /// requester counts toward its f+1 you-are-current quorum.
  void serve_snapshot(ReplicaId to, Height since);
  void retry_pending_commit();
  void send_recovery_request();
  void finish_recovery();
  void on_timeout_notice(ReplicaId from, const types::TimeoutNoticeMsg& msg);
  /// Advances when f+1 distinct replicas (self included) have timed out at
  /// or above cview_ — to one past the highest view with f+1 timeouts.
  void check_timeout_quorum();

  std::set<Hash256> verified_qc_digests_;
  struct PendingCommit {
    Hash256 target;
    ReplicaId provider;
  };
  std::optional<PendingCommit> pending_commit_;
  /// Catch-up fetches are batched (FetchRequestMsg carries a height
  /// range): at most one request outstanding; `fetch_stall_` counts
  /// retries since it was issued so a dead provider doesn't wedge us, and
  /// `fetch_retry_round_` rotates the provider on every unanswered
  /// re-issue (a laggard leader's own loopback DECIDE names itself as
  /// provider — fetching from self would wedge forever).
  bool fetch_inflight_ = false;
  bool in_fetch_retry_ = false;
  std::uint32_t fetch_stall_ = 0;
  std::uint32_t fetch_retry_round_ = 0;
  /// Amnesia recovery state: see begin_recovery().
  bool recovering_ = false;
  std::uint32_t recovery_ack_mask_ = 0;
  /// Highest view each replica (self included) is known to have timed out
  /// in, fed by TimeoutNotice broadcasts; sized n. Soft liveness state —
  /// not persisted; peers rebroadcast on every timer fire.
  std::vector<ViewNumber> peer_timeout_view_;
  /// Oldest body delivered by the in-flight batch (batches stream newest
  /// first) — the resume point for the next request.
  Hash256 last_fetched_;
  /// Committed bodies stay fetchable until this many payload bytes are
  /// retained (plus a minimum block count); then the oldest are released.
  static constexpr std::size_t kRetainBudgetBytes = 64u << 20;
  static constexpr std::size_t kRetainMinBlocks = 16;
  std::deque<std::pair<Hash256, std::size_t>> recent_committed_;
  std::size_t retained_bytes_ = 0;
};

}  // namespace marlin::consensus
