// HotStuff baseline (Yin et al., PODC 2019), in the paper's event-driven
// formulation: a three-phase commit rule (PREPARE → PRE-COMMIT → COMMIT,
// then a DECIDE broadcast), linear view change via NEW-VIEW messages
// carrying the sender's highest prepareQC. Replicas lock on precommitQCs
// and accept a conflicting-branch proposal only with a higher-view justify
// (the safeNode rule). Supports the same stable-leader pipelining as our
// Marlin implementation: the leader proposes block k+1 as soon as the
// prepareQC for block k forms, which is the chained operating mode the
// paper's evaluation runs.
#pragma once

#include "consensus/replica_base.h"

namespace marlin::consensus {

class HotStuffReplica : public ReplicaBase {
 public:
  HotStuffReplica(ReplicaConfig config, const crypto::SignatureSuite& suite,
                  ProtocolEnv& env);

  void start() override;
  void advance_to_view(ViewNumber v) override;
  PersistentState persistent_state() const override;
  void restore(const PersistentState& ps) override;

  const QuorumCert& locked_qc() const { return locked_qc_; }
  const QuorumCert& prepare_qc_high() const { return prepare_qc_high_; }
  std::uint64_t view_changes_led() const { return vcs_led_; }

 protected:
  void on_proposal(ReplicaId from, types::ProposalMsg msg) override;
  void on_vote(ReplicaId from, types::VoteMsg msg) override;
  void on_qc_notice(ReplicaId from, types::QcNoticeMsg msg) override;
  void on_view_change(ReplicaId from, types::ViewChangeMsg msg) override;
  void maybe_propose() override;
  void adopt_recovery_tip(const Block& tip) override;

 private:
  void propose(bool force);
  void enter_view(ViewNumber v, bool send_new_view);
  void leader_check_new_view_quorum();

  std::optional<Hash256> preverify_vote_digest(
      const types::VoteMsg& msg) const override;
  std::optional<Hash256> preverify_view_change_digest(
      const types::ViewChangeMsg& msg) const override;

  Hash256 digest_for(QcType type, const Hash256& h, ViewNumber bview,
                     Height height, ViewNumber pview) const;

  QuorumCert prepare_qc_high_;  // highest prepareQC seen (genesis at start)
  QuorumCert locked_qc_;        // highest precommitQC seen (lock)
  ViewNumber lb_view_ = 0;      // last voted block (view, height)
  Height lb_height_ = 0;

  VoteCollector votes_;
  bool propose_ready_ = false;

  struct NewViewState {
    std::map<ReplicaId, types::ViewChangeMsg> msgs;
    bool acted = false;
  };
  std::map<ViewNumber, NewViewState> new_views_;
  std::set<ViewNumber> nv_sent_;
  std::uint64_t vcs_led_ = 0;
};

}  // namespace marlin::consensus
