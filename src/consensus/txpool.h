// Per-replica mempool. Clients broadcast requests to every replica; the
// current leader drains batches from here, and commits prune entries on
// all replicas. Deduplication is by (client, request id); a per-client
// executed watermark drops stale re-submissions.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/sim_time.h"
#include "types/block.h"

namespace marlin::consensus {

class TxPool {
 public:
  /// Adds an operation; ignored when already pooled or already executed.
  /// `at` is the enqueue time, kept only for pool-wait attribution.
  void add(types::Operation op, TimePoint at = TimePoint::origin()) {
    const std::uint64_t key = op_key(op);
    if (pooled_.count(key) > 0) return;
    auto it = executed_.find(op.client);
    if (it != executed_.end() && op.request <= it->second) return;
    pooled_.insert(key);
    queue_.push_back({std::move(op), at});
  }

  /// Pops up to `max_ops` operations for a new proposal, skipping any that
  /// committed since they were pooled.
  std::vector<types::Operation> next_batch(std::size_t max_ops) {
    std::vector<types::Operation> batch;
    batch.reserve(std::min(max_ops, queue_.size()));
    bool first = true;
    while (batch.size() < max_ops && !queue_.empty()) {
      Entry entry = std::move(queue_.front());
      queue_.pop_front();
      pooled_.erase(op_key(entry.op));
      auto it = executed_.find(entry.op.client);
      if (it != executed_.end() && entry.op.request <= it->second) continue;
      if (first) {
        // FIFO order: the first surviving op has waited the longest.
        last_batch_oldest_ = entry.at;
        first = false;
      }
      batch.push_back(std::move(entry.op));
    }
    return batch;
  }

  /// Enqueue time of the oldest op in the last non-empty next_batch()
  /// result (origin before any batch was drained).
  TimePoint last_batch_oldest_enqueue() const { return last_batch_oldest_; }

  /// Marks a committed operation: advances the executed watermark and
  /// drops the pooled copy lazily (skipped at pop time).
  void mark_committed(const types::Operation& op) {
    auto [it, inserted] = executed_.try_emplace(op.client, op.request);
    if (!inserted && op.request > it->second) it->second = op.request;
  }

  bool executed(ClientId client, RequestId request) const {
    auto it = executed_.find(client);
    return it != executed_.end() && request <= it->second;
  }

  /// Pending (not-yet-committed) work. Commits arrive roughly in pool
  /// order, so purging stale entries from the front keeps these accurate
  /// at O(1) amortized.
  std::size_t pending() {
    purge_front();
    return queue_.size();
  }
  bool empty() {
    purge_front();
    return queue_.empty();
  }

 private:
  struct Entry {
    types::Operation op;
    TimePoint at;  // enqueue time (observability only)
  };

  void purge_front() {
    while (!queue_.empty()) {
      const types::Operation& op = queue_.front().op;
      if (!executed(op.client, op.request)) break;
      pooled_.erase(op_key(op));
      queue_.pop_front();
    }
  }

  static std::uint64_t op_key(const types::Operation& op) {
    // Clients issue sequential ids; (client, request) packs into 64 bits
    // for the life of any experiment.
    return static_cast<std::uint64_t>(op.client) << 40 | op.request;
  }

  std::deque<Entry> queue_;
  std::unordered_set<std::uint64_t> pooled_;
  std::unordered_map<ClientId, RequestId> executed_;
  TimePoint last_batch_oldest_;
};

}  // namespace marlin::consensus
