// Per-replica mempool. Clients broadcast requests to every replica; the
// current leader drains batches from here, and commits prune entries on
// all replicas. Deduplication is by (client, request id); a per-client
// executed watermark drops stale re-submissions.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "types/block.h"

namespace marlin::consensus {

class TxPool {
 public:
  /// Adds an operation; ignored when already pooled or already executed.
  void add(types::Operation op) {
    const std::uint64_t key = op_key(op);
    if (pooled_.count(key) > 0) return;
    auto it = executed_.find(op.client);
    if (it != executed_.end() && op.request <= it->second) return;
    pooled_.insert(key);
    queue_.push_back(std::move(op));
  }

  /// Pops up to `max_ops` operations for a new proposal, skipping any that
  /// committed since they were pooled.
  std::vector<types::Operation> next_batch(std::size_t max_ops) {
    std::vector<types::Operation> batch;
    batch.reserve(std::min(max_ops, queue_.size()));
    while (batch.size() < max_ops && !queue_.empty()) {
      types::Operation op = std::move(queue_.front());
      queue_.pop_front();
      pooled_.erase(op_key(op));
      auto it = executed_.find(op.client);
      if (it != executed_.end() && op.request <= it->second) continue;
      batch.push_back(std::move(op));
    }
    return batch;
  }

  /// Marks a committed operation: advances the executed watermark and
  /// drops the pooled copy lazily (skipped at pop time).
  void mark_committed(const types::Operation& op) {
    auto [it, inserted] = executed_.try_emplace(op.client, op.request);
    if (!inserted && op.request > it->second) it->second = op.request;
  }

  bool executed(ClientId client, RequestId request) const {
    auto it = executed_.find(client);
    return it != executed_.end() && request <= it->second;
  }

  /// Pending (not-yet-committed) work. Commits arrive roughly in pool
  /// order, so purging stale entries from the front keeps these accurate
  /// at O(1) amortized.
  std::size_t pending() {
    purge_front();
    return queue_.size();
  }
  bool empty() {
    purge_front();
    return queue_.empty();
  }

 private:
  void purge_front() {
    while (!queue_.empty()) {
      const types::Operation& op = queue_.front();
      if (!executed(op.client, op.request)) break;
      pooled_.erase(op_key(op));
      queue_.pop_front();
    }
  }

  static std::uint64_t op_key(const types::Operation& op) {
    // Clients issue sequential ids; (client, request) packs into 64 bits
    // for the life of any experiment.
    return static_cast<std::uint64_t>(op.client) << 40 | op.request;
  }

  std::deque<types::Operation> queue_;
  std::unordered_set<std::uint64_t> pooled_;
  std::unordered_map<ClientId, RequestId> executed_;
};

}  // namespace marlin::consensus
