// Marlin (Sui, Duan, Zhang — DSN 2022): two-phase BFT with linearity.
//
// Normal case (paper Fig. 6/7): PREPARE → COMMIT, two vote rounds. Replicas
// lock on prepareQCs; COMMIT carries the prepareQC, commitQC delivery
// commits the chain.
//
// View change (paper Fig. 9): VIEW-CHANGE messages carry (lb, highQC, and a
// partial signature over lb re-signed for the new view).
//   Happy path: n−f identical lb → the leader combines the partial
//   signatures into a prepareQC and goes straight to PREPARE (2-phase VC).
//   Unhappy path: a PRE-PREPARE phase first. Leader cases:
//     V1 — highest QC is a prepareQC but someone voted beyond it: propose a
//          normal child AND a virtual grandchild as shadow blocks;
//     V2 — certainly-safe snapshot: one block;
//     V3 — two pre-prepareQCs survived: two shadow children.
//   Replica vote rules R1 (rank ≥ lock), R2 (virtual block exactly above
//   the lock → vote and attach lockedQC), R3 (pre-prepareQC of the locked
//   block itself).
// After the pre-prepare phase the leader re-announces the pre-prepared
// block via a PREPARE QC-notice (Case N2) — no new block, exactly as the
// paper's chained-mode note prescribes.
//
// Deviation (documented in DESIGN.md): a virtual block's pview is set to
// the justify QC's *formation* view rather than its block's view. The two
// coincide for every QC except happy-path view-change QCs, where the
// formation view is the one that makes the R2/vc equations consistent.
#pragma once

#include "consensus/replica_base.h"

namespace marlin::consensus {

class MarlinReplica : public ReplicaBase {
 public:
  MarlinReplica(ReplicaConfig config, const crypto::SignatureSuite& suite,
                ProtocolEnv& env);

  void start() override;
  void advance_to_view(ViewNumber v) override;
  PersistentState persistent_state() const override;
  void restore(const PersistentState& ps) override;

  // -- introspection (tests, metrology) ------------------------------------
  const QuorumCert& locked_qc() const { return locked_qc_; }
  const Justify& high_qc() const { return high_qc_; }
  const BlockRef& last_voted() const { return lb_; }
  /// Unhappy-path view changes resolved by this replica as leader.
  std::uint64_t unhappy_view_changes() const { return unhappy_vcs_; }
  std::uint64_t happy_view_changes() const { return happy_vcs_; }

 protected:
  void on_proposal(ReplicaId from, types::ProposalMsg msg) override;
  void on_vote(ReplicaId from, types::VoteMsg msg) override;
  void on_qc_notice(ReplicaId from, types::QcNoticeMsg msg) override;
  void on_view_change(ReplicaId from, types::ViewChangeMsg msg) override;
  void maybe_propose() override;
  void adopt_recovery_tip(const Block& tip) override;

 private:
  struct VcState {
    std::map<ReplicaId, types::ViewChangeMsg> msgs;
    bool acted = false;            // snapshot processed
    bool prepare_started = false;  // pre-prepare resolved (or happy path)
    // Pre-prepare proposals by hash; bool = virtual block.
    std::vector<std::pair<Hash256, bool>> proposed;
    // Formed pre-prepare sig groups awaiting the preference decision.
    std::map<Hash256, crypto::SigGroup> formed;
    // Highest R2-attached prepareQC seen (the future `vc`).
    std::optional<QuorumCert> vc_candidate;
  };

  // -- normal case ----------------------------------------------------------
  void propose_normal(bool force);
  void handle_prepare_proposal(ReplicaId from, const types::ProposalMsg& msg);
  void handle_commit_notice(ReplicaId from, const types::QcNoticeMsg& msg);
  void handle_decide_notice(ReplicaId from, const types::QcNoticeMsg& msg);

  // -- view change ----------------------------------------------------------
  void enter_view(ViewNumber v, bool send_vc);
  void handle_preprepare_proposal(ReplicaId from,
                                  const types::ProposalMsg& msg);
  void handle_prepare_notice(ReplicaId from, const types::QcNoticeMsg& msg);
  void leader_check_vc_quorum();
  void leader_act_on_snapshot(VcState& st);
  void leader_check_preprepare_progress();
  /// Validates the high_qc justify carried by a VIEW-CHANGE message.
  bool validate_justify(const Justify& j);

  // -- state updates ---------------------------------------------------------
  void update_high_qc(const Justify& j);
  void update_locked(const QuorumCert& qc);
  bool block_ref_rank_greater(ViewNumber bview, Height bheight,
                              const Justify& bjustify) const;

  std::optional<Hash256> preverify_vote_digest(
      const types::VoteMsg& msg) const override;
  std::optional<Hash256> preverify_view_change_digest(
      const types::ViewChangeMsg& msg) const override;

  Hash256 prepare_digest_for_block(const Block& b, const Hash256& h) const;
  Hash256 digest_for_qc_fields(QcType type, ViewNumber view,
                               const QuorumCert& qc) const;
  QuorumCert qc_from_block(QcType type, ViewNumber view, const Block& b,
                           const Hash256& h, crypto::SigGroup sigs);

  BlockRef lb_;             // last voted block (genesis at start)
  QuorumCert locked_qc_;    // genesis prepareQC at start
  Justify high_qc_;         // {genesis prepareQC} at start

  VoteCollector votes_;
  bool propose_ready_ = false;

  std::map<ViewNumber, VcState> vc_;
  std::set<ViewNumber> vc_sent_;

  std::uint64_t unhappy_vcs_ = 0;
  std::uint64_t happy_vcs_ = 0;
};

}  // namespace marlin::consensus
