#include "consensus/persistent_state.h"

namespace marlin::consensus {

void PersistentState::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u64(view);
  w.u64(committed_height);
  w.raw(committed_hash.view());
  last_voted.encode(w);
  locked_qc.encode(w);
  high_qc.encode(w);
}

Result<PersistentState> PersistentState::decode(Reader& r) {
  PersistentState ps;
  std::uint8_t protocol = 0;
  if (Status s = r.u8(protocol); !s.is_ok()) return s;
  if (protocol > static_cast<std::uint8_t>(PersistedProtocol::kHotStuff)) {
    return error(ErrorCode::kCorruption, "bad persisted protocol tag");
  }
  ps.protocol = static_cast<PersistedProtocol>(protocol);
  if (Status s = r.u64(ps.view); !s.is_ok()) return s;
  if (Status s = r.u64(ps.committed_height); !s.is_ok()) return s;
  Bytes hash;
  if (Status s = r.raw(crypto::kHashSize, hash); !s.is_ok()) return s;
  ps.committed_hash = Hash256::from_bytes(hash);
  Result<types::BlockRef> lb = types::BlockRef::decode(r);
  if (!lb.is_ok()) return lb.status();
  ps.last_voted = std::move(lb).take();
  Result<types::QuorumCert> locked = types::QuorumCert::decode(r);
  if (!locked.is_ok()) return locked.status();
  ps.locked_qc = std::move(locked).take();
  Result<types::Justify> high = types::Justify::decode(r);
  if (!high.is_ok()) return high.status();
  ps.high_qc = std::move(high).take();
  return ps;
}

}  // namespace marlin::consensus
