#include "consensus/marlin.h"

#include <algorithm>

namespace marlin::consensus {

namespace {
constexpr const char* kDomain = "marlin";

QcType qc_type_of(Phase phase) {
  switch (phase) {
    case Phase::kPrePrepare: return QcType::kPrePrepare;
    case Phase::kPrepare: return QcType::kPrepare;
    case Phase::kCommit: return QcType::kCommit;
    default: return QcType::kCommit;
  }
}
}  // namespace

MarlinReplica::MarlinReplica(ReplicaConfig config,
                             const crypto::SignatureSuite& suite,
                             ProtocolEnv& env)
    : ReplicaBase(config, suite, env, kDomain),
      votes_(config.quorum.quorum()) {
  locked_qc_ = QuorumCert::genesis(store_.genesis_hash());
  high_qc_.qc = locked_qc_;
  lb_ = BlockRef{store_.genesis_hash(), 0, 0, 0, false};
}

void MarlinReplica::start() {
  ReplicaBase::start();
  if (is_leader()) {
    propose_ready_ = true;
    maybe_propose();
  }
}

PersistentState MarlinReplica::persistent_state() const {
  PersistentState ps = base_persistent_state(PersistedProtocol::kMarlin);
  ps.last_voted = lb_;
  ps.locked_qc = locked_qc_;
  ps.high_qc = high_qc_;
  return ps;
}

void MarlinReplica::restore(const PersistentState& ps) {
  lb_ = ps.last_voted;
  locked_qc_ = ps.locked_qc;
  high_qc_ = ps.high_qc;
  ReplicaBase::restore(ps);
}

// ---------------------------------------------------------------------------
// Digest / QC helpers
// ---------------------------------------------------------------------------

Hash256 MarlinReplica::prepare_digest_for_block(const Block& b,
                                                const Hash256& h) const {
  return types::vote_digest(kDomain, QcType::kPrepare, cview_, h, b.view,
                            b.height, b.parent_view, b.virtual_block);
}

Hash256 MarlinReplica::digest_for_qc_fields(QcType type, ViewNumber view,
                                            const QuorumCert& qc) const {
  return types::vote_digest(kDomain, type, view, qc.block_hash, qc.block_view,
                            qc.height, qc.pview, qc.virtual_block);
}

QuorumCert MarlinReplica::qc_from_block(QcType type, ViewNumber view,
                                        const Block& b, const Hash256& h,
                                        crypto::SigGroup sigs) {
  QuorumCert qc;
  qc.type = type;
  qc.view = view;
  qc.block_hash = h;
  qc.block_view = b.view;
  qc.height = b.height;
  qc.pview = b.parent_view;
  qc.virtual_block = b.virtual_block;
  qc.sigs = std::move(sigs);
  return qc;
}

// ---------------------------------------------------------------------------
// State updates
// ---------------------------------------------------------------------------

void MarlinReplica::update_high_qc(const Justify& j) {
  if (!j.qc) return;
  if (!high_qc_.qc || types::rank_greater(*j.qc, *high_qc_.qc)) {
    high_qc_ = j;
  }
}

void MarlinReplica::update_locked(const QuorumCert& qc) {
  if (qc.type != QcType::kPrepare && qc.type != QcType::kCommit) return;
  // A commitQC locks exactly like the prepareQC it supersedes.
  QuorumCert as_lock = qc;
  as_lock.type = QcType::kPrepare;
  if (types::rank_greater(as_lock, locked_qc_)) locked_qc_ = as_lock;
}

bool MarlinReplica::block_ref_rank_greater(ViewNumber bview, Height bheight,
                                           const Justify& bjustify) const {
  // rank(b) > rank(lb): higher view, or same view + higher height +
  // justified by a prepareQC of b's own view (anti-forking clause).
  if (bview != lb_.view) return bview > lb_.view;
  if (bheight <= lb_.height) return false;
  return bjustify.qc && bjustify.qc->type == QcType::kPrepare &&
         bjustify.qc->view == bview;
}

// ---------------------------------------------------------------------------
// Normal case — leader side
// ---------------------------------------------------------------------------

void MarlinReplica::maybe_propose() {
  if (recovering() || propose_held()) return;
  if (cview_ == 0 || !is_leader() || !propose_ready_) return;
  if (pool_.empty() && !config_.allow_empty_blocks) return;
  propose_normal(false);
}

void MarlinReplica::adopt_recovery_tip(const Block& tip) {
  // Re-anchor an amnesiac on the snapshot tip: its justify certifies the
  // tip's (committed) parent, so after verification it is the freshest QC
  // a replica with no durable state can trust. Raising lb_ to the tip and
  // jumping to its view means we never vote again at a (view, height) our
  // forgotten pre-wipe self may have signed.
  if (!tip.justify.qc || !verify_qc(*tip.justify.qc)) return;
  const QuorumCert& qc = *tip.justify.qc;
  update_high_qc(tip.justify);
  update_locked(qc);
  if (tip.view > lb_.view ||
      (tip.view == lb_.view && tip.height > lb_.height)) {
    lb_ = BlockRef{tip.hash(), tip.view, tip.height, tip.parent_view,
                   tip.virtual_block};
  }
  enter_view(std::max(tip.view, qc.view), /*send_vc=*/false);
  persist();
}

void MarlinReplica::propose_normal(bool force) {
  if (!high_qc_.qc || high_qc_.qc->type != QcType::kPrepare) return;
  const QuorumCert& qc = *high_qc_.qc;
  // Case N1 on the replica side requires a justify formed in the current
  // view (genesis excepted), which holds for pipelined successors and
  // happy-path QCs alike.
  if (!(qc.view == cview_ || qc.is_genesis())) return;

  std::vector<types::Operation> batch = make_batch(force);
  if (batch.empty() && !force && !config_.allow_empty_blocks) return;

  Block b;
  b.parent_link = qc.block_hash;
  b.parent_view = qc.block_view;
  b.view = cview_;
  b.height = qc.height + 1;
  b.virtual_block = false;
  b.ops = std::move(batch);
  b.justify = Justify{qc, std::nullopt};

  env_.charge_hash_bytes(types::ops_wire_size(b.ops) + 128);
  store_.insert(b);

  const Height proposed_height = b.height;
  const std::size_t proposed_ops = b.ops.size();
  const Hash256 proposed_hash = b.hash();

  types::ProposalMsg msg;
  msg.phase = Phase::kPrepare;
  msg.view = cview_;
  msg.entries.push_back(types::ProposalEntry{std::move(b), Justify{qc, {}}});
  propose_ready_ = false;
  broadcast(types::make_envelope(MsgKind::kProposal, msg));
  if (proposed_ops > 0) {
    trace({.type = obs::EventType::kBatchDequeued,
           .height = proposed_height,
           .block = trace_block_id(proposed_hash),
           .a = proposed_ops,
           .b = static_cast<std::uint64_t>(last_batch_wait_.as_nanos())});
  }
  trace({.type = obs::EventType::kProposalSent,
         .phase = static_cast<std::uint8_t>(Phase::kPrepare),
         .height = proposed_height,
         .block = trace_block_id(proposed_hash),
         .a = proposed_ops});
}

// ---------------------------------------------------------------------------
// Normal case — replica side
// ---------------------------------------------------------------------------

void MarlinReplica::on_proposal(ReplicaId from, types::ProposalMsg msg) {
  if (msg.view < cview_ || msg.entries.empty()) return;
  if (from != leader_of(msg.view)) return;
  if (msg.view > cview_) {
    // View sync: adopt a higher view when its leader shows a valid QC.
    const Justify& j = msg.entries[0].justify;
    if (!j.qc || !verify_qc(*j.qc)) return;
    enter_view(msg.view, /*send_vc=*/false);
  }
  switch (msg.phase) {
    case Phase::kPrepare:
      handle_prepare_proposal(from, msg);
      return;
    case Phase::kPrePrepare:
      handle_preprepare_proposal(from, msg);
      return;
    default:
      return;
  }
}

void MarlinReplica::handle_prepare_proposal(ReplicaId from,
                                            const types::ProposalMsg& msg) {
  if (msg.entries.size() != 1) return;
  const Block& b = msg.entries[0].block;
  const Justify& j = msg.entries[0].justify;

  // Case N1: justify is a prepareQC formed in this view (genesis allowed
  // at bootstrap) and b extends its block.
  if (!j.qc || j.vc || j.qc->type != QcType::kPrepare) return;
  const QuorumCert& qc = *j.qc;
  if (b.view != cview_ || b.virtual_block) return;
  if (!(qc.view == cview_ || qc.is_genesis())) return;
  if (b.parent_link != qc.block_hash || b.height != qc.height + 1 ||
      b.parent_view != qc.block_view) {
    return;
  }
  if (b.justify.qc != j.qc) return;  // block's own justify must match
  if (!verify_qc(qc)) return;
  if (!types::rank_geq(qc, locked_qc_)) return;

  env_.charge_hash_bytes(types::ops_wire_size(b.ops) + 128);
  const Hash256 h = b.hash();
  if (!block_ref_rank_greater(b.view, b.height, b.justify)) return;

  store_.insert(b);
  trace({.type = obs::EventType::kProposalReceived,
         .phase = static_cast<std::uint8_t>(Phase::kPrepare),
         .height = b.height,
         .block = trace_block_id(h),
         .a = from});
  const Hash256 digest = prepare_digest_for_block(b, h);
  types::VoteMsg vote;
  vote.phase = Phase::kPrepare;
  vote.view = cview_;
  vote.block_hash = h;
  vote.parsig = sign_digest(digest);

  // Write-ahead voting: the voted/locked state must be durable before the
  // vote leaves this replica, or a crash+restart could vote again at the
  // same (view, height) for a different block.
  lb_ = BlockRef{h, b.view, b.height, b.parent_view, false};
  update_high_qc(j);
  update_locked(qc);
  persist();

  send_to(from, types::make_envelope(MsgKind::kVote, vote));
  trace({.type = obs::EventType::kVoteSent,
         .phase = static_cast<std::uint8_t>(Phase::kPrepare),
         .height = b.height,
         .block = trace_block_id(h),
         .a = from});
}

void MarlinReplica::on_qc_notice(ReplicaId from, types::QcNoticeMsg msg) {
  if (msg.view < cview_) {
    // Old DECIDEs still carry committable evidence.
    if (msg.phase == Phase::kDecide) handle_decide_notice(from, msg);
    return;
  }
  if (from != leader_of(msg.view)) return;
  if (msg.view > cview_) {
    if (!verify_qc(msg.qc)) return;
    enter_view(msg.view, /*send_vc=*/false);
  }
  switch (msg.phase) {
    case Phase::kPrepare:
      handle_prepare_notice(from, msg);
      return;
    case Phase::kCommit:
      handle_commit_notice(from, msg);
      return;
    case Phase::kDecide:
      handle_decide_notice(from, msg);
      return;
    default:
      return;
  }
}

void MarlinReplica::handle_commit_notice(ReplicaId from,
                                         const types::QcNoticeMsg& msg) {
  const QuorumCert& qc = msg.qc;
  if (qc.type != QcType::kPrepare || qc.view != cview_) return;
  if (!verify_qc(qc)) return;

  const Hash256 digest = digest_for_qc_fields(QcType::kCommit, cview_, qc);
  types::VoteMsg vote;
  vote.phase = Phase::kCommit;
  vote.view = cview_;
  vote.block_hash = qc.block_hash;
  vote.parsig = sign_digest(digest);

  // Write-ahead voting: lock on the prepareQC durably before the COMMIT
  // vote leaves.
  update_high_qc(Justify{qc, {}});
  update_locked(qc);
  persist();

  send_to(from, types::make_envelope(MsgKind::kVote, vote));
  trace({.type = obs::EventType::kVoteSent,
         .phase = static_cast<std::uint8_t>(Phase::kCommit),
         .height = qc.height,
         .block = trace_block_id(qc.block_hash),
         .a = from});
}

void MarlinReplica::handle_decide_notice(ReplicaId from,
                                         const types::QcNoticeMsg& msg) {
  const QuorumCert& qc = msg.qc;
  if (qc.type != QcType::kCommit) return;
  if (!verify_qc(qc)) return;
  update_locked(qc);
  // commit_to persists on delivery, but persist the raised lock even when
  // the commit stalls on a fetch — a restart must not rewind the lock.
  persist();
  commit_to(qc.block_hash, from);
}

// Case N2: the leader re-announces the pre-prepared block via its
// pre-prepareQC; replicas vote PREPARE on it.
void MarlinReplica::handle_prepare_notice(ReplicaId from,
                                          const types::QcNoticeMsg& msg) {
  const QuorumCert& qc = msg.qc;
  if (qc.type != QcType::kPrePrepare || qc.view != cview_) return;
  if (!verify_qc(qc)) return;
  if (!types::rank_geq(qc, locked_qc_)) return;

  if (qc.virtual_block) {
    // Validate the (qc, vc) pair: vc certifies the virtual block's parent.
    if (!msg.aux) return;
    const QuorumCert& vc = *msg.aux;
    if (vc.type != QcType::kPrepare || vc.view != qc.pview ||
        vc.height + 1 != qc.height) {
      return;
    }
    if (!verify_qc(vc)) return;
    store_.set_virtual_parent(qc.block_hash, vc.block_hash);
  } else if (msg.aux) {
    return;
  }

  // Anti-forking block-rank guard: the block was proposed in this view, so
  // it outranks lb only when lb is from an older view (a second Case-N2
  // block in the same view never passes — the justify is not a prepareQC).
  if (!(qc.block_view > lb_.view)) return;

  const Hash256 digest = digest_for_qc_fields(QcType::kPrepare, cview_, qc);
  types::VoteMsg vote;
  vote.phase = Phase::kPrepare;
  vote.view = cview_;
  vote.block_hash = qc.block_hash;
  vote.parsig = sign_digest(digest);

  // Write-ahead voting: record the voted block durably before the vote.
  lb_ = BlockRef{qc.block_hash, qc.block_view, qc.height, qc.pview,
                 qc.virtual_block};
  update_high_qc(Justify{qc, msg.aux});
  persist();

  send_to(from, types::make_envelope(MsgKind::kVote, vote));
  trace({.type = obs::EventType::kVoteSent,
         .phase = static_cast<std::uint8_t>(Phase::kPrepare),
         .height = qc.height,
         .block = trace_block_id(qc.block_hash),
         .a = from});
}

// ---------------------------------------------------------------------------
// Votes — leader side
// ---------------------------------------------------------------------------

std::optional<Hash256> MarlinReplica::preverify_vote_digest(
    const types::VoteMsg& msg) const {
  // Mirrors on_vote's digest derivation (same early-outs: votes the
  // handler discards unverified plan no work).
  if (msg.view != cview_ || leader_of(msg.view) != config_.id) {
    return std::nullopt;
  }
  const Block* b = store_.get(msg.block_hash);
  if (!b) return std::nullopt;
  return types::vote_digest(kDomain, qc_type_of(msg.phase), cview_,
                            msg.block_hash, b->view, b->height,
                            b->parent_view, b->virtual_block);
}

std::optional<Hash256> MarlinReplica::preverify_view_change_digest(
    const types::ViewChangeMsg& msg) const {
  if (msg.view < cview_) return std::nullopt;
  const BlockRef& lb = msg.last_voted;
  return types::vote_digest(kDomain, QcType::kPrepare, msg.view, lb.hash,
                            lb.view, lb.height, lb.pview, lb.virtual_block);
}

void MarlinReplica::on_vote(ReplicaId from, types::VoteMsg msg) {
  if (msg.view != cview_ || leader_of(msg.view) != config_.id) return;

  const Block* b = store_.get(msg.block_hash);
  if (!b) return;  // we only count votes for blocks we proposed/stored

  const QcType type = qc_type_of(msg.phase);
  const Hash256 digest =
      types::vote_digest(kDomain, type, cview_, msg.block_hash, b->view,
                         b->height, b->parent_view, b->virtual_block);
  if (!verify_partial(msg.parsig, digest)) return;
  trace({.type = obs::EventType::kVoteReceived,
         .phase = static_cast<std::uint8_t>(msg.phase),
         .height = b->height,
         .block = trace_block_id(msg.block_hash),
         .a = from,
         .b = votes_.count(msg.phase, msg.block_hash) + 1});

  // R2 votes attach the voter's lockedQC — a candidate `vc`.
  if (msg.phase == Phase::kPrePrepare && msg.locked_qc) {
    const QuorumCert& attached = *msg.locked_qc;
    if (attached.type == QcType::kPrepare && verify_qc(attached)) {
      VcState& st = vc_[cview_];
      if (!st.vc_candidate ||
          types::rank_greater(attached, *st.vc_candidate)) {
        st.vc_candidate = attached;
      }
    }
  }

  auto group = votes_.add(msg.phase, msg.block_hash, msg.parsig);
  if (!group) {
    if (msg.phase == Phase::kPrePrepare) leader_check_preprepare_progress();
    return;
  }

  QuorumCert qc = qc_from_block(type, cview_, *b, msg.block_hash,
                                std::move(*group));
  trace({.type = obs::EventType::kQcFormed,
         .phase = static_cast<std::uint8_t>(msg.phase),
         .height = b->height,
         .block = trace_block_id(msg.block_hash)});

  switch (msg.phase) {
    case Phase::kPrepare: {
      finalize_qc(qc);
      update_high_qc(Justify{qc, {}});
      update_locked(qc);
      persist();  // durable before the COMMIT notice leaves
      types::QcNoticeMsg notice{Phase::kCommit, cview_, qc, {}};
      broadcast(types::make_envelope(MsgKind::kQcNotice, notice));
      trace({.type = obs::EventType::kPhaseTransition,
             .phase = static_cast<std::uint8_t>(Phase::kCommit),
             .height = b->height,
             .block = trace_block_id(msg.block_hash)});
      if (config_.pipelined) {
        propose_ready_ = true;
        maybe_propose();
      }
      return;
    }
    case Phase::kCommit: {
      finalize_qc(qc);
      types::QcNoticeMsg notice{Phase::kDecide, cview_, qc, {}};
      broadcast(types::make_envelope(MsgKind::kQcNotice, notice));
      trace({.type = obs::EventType::kPhaseTransition,
             .phase = static_cast<std::uint8_t>(Phase::kDecide),
             .height = b->height,
             .block = trace_block_id(msg.block_hash)});
      if (!config_.pipelined) {
        propose_ready_ = true;
        maybe_propose();
      }
      return;
    }
    case Phase::kPrePrepare: {
      // Stash the raw signature group; the QC is finalized (and, in
      // threshold mode, combined) when the preference decision picks it.
      VcState& st = vc_[cview_];
      st.formed.emplace(msg.block_hash, std::move(qc.sigs));
      leader_check_preprepare_progress();
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// View change
// ---------------------------------------------------------------------------

void MarlinReplica::advance_to_view(ViewNumber v) {
  enter_view(v, /*send_vc=*/true);
}

void MarlinReplica::enter_view(ViewNumber v, bool send_vc) {
  if (v <= cview_) return;
  cview_ = v;
  propose_ready_ = false;
  votes_.clear();
  // Garbage-collect stale view-change state.
  while (!vc_.empty() && vc_.begin()->first < v) vc_.erase(vc_.begin());
  // The entered view is durable state: a restart must never rewind cview_
  // and accept (or vote on) traffic from a view it already left.
  persist();
  env_.entered_view(v);

  if (send_vc && vc_sent_.insert(v).second) {
    trace({.type = obs::EventType::kViewChangeStart});
    types::ViewChangeMsg m;
    m.view = v;
    m.last_voted = lb_;
    m.high_qc = high_qc_;
    m.parsig = sign_digest(types::vote_digest(
        kDomain, QcType::kPrepare, v, lb_.hash, lb_.view, lb_.height,
        lb_.pview, lb_.virtual_block));
    send_to(leader_of(v), types::make_envelope(MsgKind::kViewChange, m));
  }
  if (is_leader()) leader_check_vc_quorum();
}

bool MarlinReplica::validate_justify(const Justify& j) {
  if (!j.qc) return false;
  const QuorumCert& qc = *j.qc;
  if (qc.type != QcType::kPrepare && qc.type != QcType::kPrePrepare) {
    return false;
  }
  if (!verify_qc(qc)) return false;
  if (j.vc) {
    if (qc.type != QcType::kPrePrepare || !qc.virtual_block) return false;
    const QuorumCert& vc = *j.vc;
    if (vc.type != QcType::kPrepare || vc.view != qc.pview ||
        vc.height + 1 != qc.height) {
      return false;
    }
    if (!verify_qc(vc)) return false;
  } else if (qc.type == QcType::kPrePrepare && qc.virtual_block) {
    return false;  // a virtual pre-prepareQC is only meaningful with vc
  }
  return true;
}

void MarlinReplica::on_view_change(ReplicaId from, types::ViewChangeMsg msg) {
  if (msg.view < cview_) return;

  // Authenticate: the parsig signs the happy-path digest of lb at view v.
  const BlockRef& lb = msg.last_voted;
  const Hash256 digest =
      types::vote_digest(kDomain, QcType::kPrepare, msg.view, lb.hash,
                         lb.view, lb.height, lb.pview, lb.virtual_block);
  if (msg.parsig.signer != from) return;
  if (!verify_partial(msg.parsig, digest)) return;
  if (!validate_justify(msg.high_qc)) return;

  VcState& st = vc_[msg.view];
  st.msgs.emplace(from, std::move(msg));
  const ViewNumber view = st.msgs.begin()->second.view;

  // f + 1 distinct VIEW-CHANGEs for a higher view: join it.
  if (view > cview_ &&
      st.msgs.size() >= config_.quorum.f + 1 && vc_sent_.count(view) == 0) {
    enter_view(view, /*send_vc=*/true);
    return;
  }
  if (view == cview_ && leader_of(view) == config_.id) {
    leader_check_vc_quorum();
  }
}

void MarlinReplica::leader_check_vc_quorum() {
  auto it = vc_.find(cview_);
  if (it == vc_.end()) return;
  VcState& st = it->second;
  if (st.acted || st.msgs.size() < quorum()) return;
  leader_act_on_snapshot(st);
}

void MarlinReplica::leader_act_on_snapshot(VcState& st) {
  st.acted = true;
  const ViewNumber v = cview_;

  // ---- Happy path: n−f identical lb → combine into a prepareQC. ----------
  if (!config_.disable_happy_path) {
    std::map<Hash256, std::vector<const types::ViewChangeMsg*>> by_lb;
    for (const auto& [sender, m] : st.msgs) {
      by_lb[m.last_voted.hash].push_back(&m);
    }
    for (const auto& [hash, group] : by_lb) {
      if (group.size() < quorum()) continue;
      std::vector<crypto::PartialSig> sigs;
      sigs.reserve(group.size());
      for (const auto* m : group) sigs.push_back(m->parsig);
      auto combined = crypto::SigGroup::combine(std::move(sigs), quorum());
      if (!combined) continue;
      const BlockRef& lb = group.front()->last_voted;
      QuorumCert qc;
      qc.type = QcType::kPrepare;
      qc.view = v;
      qc.block_hash = lb.hash;
      qc.block_view = lb.view;
      qc.height = lb.height;
      qc.pview = lb.pview;
      qc.virtual_block = lb.virtual_block;
      qc.sigs = std::move(*combined);
      finalize_qc(qc);
      ++happy_vcs_;
      st.prepare_started = true;
      trace({.type = obs::EventType::kViewChangeEnd,
             .height = lb.height,
             .block = trace_block_id(lb.hash),
             .a = 1});
      update_high_qc(Justify{qc, {}});
      update_locked(qc);
      persist();  // durable before the happy-path proposal leaves
      propose_ready_ = true;
      propose_normal(/*force=*/true);
      return;
    }
  }

  // ---- Unhappy path: PRE-PREPARE phase. -----------------------------------
  ++unhappy_vcs_;

  // highQCv: the highest-ranked primary QC(s) among the messages.
  std::vector<const Justify*> candidates;
  for (const auto& [sender, m] : st.msgs) {
    if (!m.high_qc.qc) continue;
    if (candidates.empty()) {
      candidates.push_back(&m.high_qc);
      continue;
    }
    const int cmp = types::compare_rank(*m.high_qc.qc, *candidates[0]->qc);
    if (cmp > 0) {
      candidates.clear();
      candidates.push_back(&m.high_qc);
    } else if (cmp == 0) {
      // Same rank: keep distinct blocks only (Lemma 4: at most two).
      bool duplicate = false;
      for (const Justify* c : candidates) {
        if (c->qc->block_hash == m.high_qc.qc->block_hash) duplicate = true;
      }
      if (!duplicate && candidates.size() < 2) {
        candidates.push_back(&m.high_qc);
      }
    }
  }
  if (candidates.empty()) return;  // cannot happen: every msg validated

  // bv: highest (view, height) among reported last-voted blocks.
  const BlockRef* bv = nullptr;
  for (const auto& [sender, m] : st.msgs) {
    const BlockRef& ref = m.last_voted;
    if (!bv || ref.view > bv->view ||
        (ref.view == bv->view && ref.height > bv->height)) {
      bv = &ref;
    }
  }

  std::vector<types::Operation> batch = make_batch(/*force=*/true);
  types::ProposalMsg msg;
  msg.phase = Phase::kPrePrepare;
  msg.view = v;

  auto add_child = [&](const Justify& j) {
    const QuorumCert& qc = *j.qc;
    Block b;
    b.parent_link = qc.block_hash;
    b.parent_view = qc.block_view;
    b.view = v;
    b.height = qc.height + 1;
    b.virtual_block = false;
    b.ops = batch;
    b.justify = j;
    env_.charge_hash_bytes(types::ops_wire_size(b.ops) + 128);
    const Hash256 h = b.hash();
    store_.insert(b);
    st.proposed.emplace_back(h, false);
    msg.entries.push_back(types::ProposalEntry{std::move(b), j});
  };

  const QuorumCert& top = *candidates[0]->qc;
  if (candidates.size() == 1 && top.type == QcType::kPrepare) {
    const bool someone_voted_higher =
        bv && (bv->view > top.block_view ||
               (bv->view == top.block_view && bv->height > top.height));
    add_child(*candidates[0]);  // the normal block b1
    if (someone_voted_higher) {
      // Case V1: add the virtual grandchild b2 (shadow ops).
      Block b2;
      b2.parent_link = Hash256{};
      b2.parent_view = top.view;  // formation view (see header note)
      b2.view = v;
      b2.height = top.height + 2;
      b2.virtual_block = true;
      b2.ops = batch;
      b2.justify = *candidates[0];
      env_.charge_hash_bytes(128);  // ops already hashed for b1
      const Hash256 h2 = b2.hash();
      store_.insert(b2);
      st.proposed.emplace_back(h2, true);
      msg.entries.push_back(
          types::ProposalEntry{std::move(b2), *candidates[0]});
    }
    // else: Case V2 — the single child suffices.
  } else {
    // Case V2 (single pre-prepareQC) or V3 (two pre-prepareQCs): one child
    // per candidate, shadow-sharing the batch.
    for (const Justify* j : candidates) add_child(*j);
  }

  broadcast(types::make_envelope(MsgKind::kProposal, msg));
  trace({.type = obs::EventType::kProposalSent,
         .phase = static_cast<std::uint8_t>(Phase::kPrePrepare),
         .a = batch.size(),
         .b = msg.entries.size()});
}

void MarlinReplica::handle_preprepare_proposal(ReplicaId from,
                                               const types::ProposalMsg& msg) {
  if (msg.entries.empty() || msg.entries.size() > 2) return;

  for (const types::ProposalEntry& entry : msg.entries) {
    const Block& b = entry.block;
    const Justify& j = entry.justify;
    if (!j.qc) continue;
    const QuorumCert& qc = *j.qc;

    // Justify must be formed before this view, and the block in it.
    if (qc.view >= cview_ || b.view != cview_) continue;
    if (b.justify != j) continue;  // paper: m_i.justify = m_i.block.justify
    if (!validate_justify(j)) continue;

    // Structural validity.
    if (b.virtual_block) {
      if (!b.parent_link.is_zero() || j.vc) continue;
      if (qc.type != QcType::kPrepare) continue;
      if (b.height != qc.height + 2 || b.parent_view != qc.view) continue;
    } else {
      if (b.parent_link != qc.block_hash || b.height != qc.height + 1 ||
          b.parent_view != qc.block_view) {
        continue;
      }
      if (j.vc) {
        // Parent is a virtual block: remember its resolved parent.
        store_.set_virtual_parent(qc.block_hash, j.vc->block_hash);
      }
    }

    // Vote rules R1 / R2 / R3.
    bool vote = false;
    bool attach_locked = false;
    if (types::rank_geq(qc, locked_qc_)) {
      vote = true;  // R1
    } else if (!j.vc && qc.type == QcType::kPrepare &&
               qc.view == locked_qc_.view && b.virtual_block &&
               b.height == locked_qc_.height + 1) {
      vote = true;  // R2
      attach_locked = true;
    } else if (qc.type == QcType::kPrePrepare &&
               qc.block_hash == locked_qc_.block_hash) {
      vote = true;  // R3
    }
    if (!vote) continue;

    env_.charge_hash_bytes(types::ops_wire_size(b.ops) + 128);
    const Hash256 h = b.hash();
    store_.insert(b);
    trace({.type = obs::EventType::kProposalReceived,
           .phase = static_cast<std::uint8_t>(Phase::kPrePrepare),
           .height = b.height,
           .block = trace_block_id(h),
           .a = from});

    types::VoteMsg vm;
    vm.phase = Phase::kPrePrepare;
    vm.view = cview_;
    vm.block_hash = h;
    vm.parsig = sign_digest(
        types::vote_digest(kDomain, QcType::kPrePrepare, cview_, h, b.view,
                           b.height, b.parent_view, b.virtual_block));
    if (attach_locked) vm.locked_qc = locked_qc_;
    send_to(from, types::make_envelope(MsgKind::kVote, vm));
    trace({.type = obs::EventType::kVoteSent,
           .phase = static_cast<std::uint8_t>(Phase::kPrePrepare),
           .height = b.height,
           .block = trace_block_id(h),
           .a = from});
    // Pre-prepare votes update no replica state (lb/highQC/lockedQC).
  }
}

void MarlinReplica::leader_check_preprepare_progress() {
  auto it = vc_.find(cview_);
  if (it == vc_.end()) return;
  VcState& st = it->second;
  if (st.prepare_started || st.formed.empty()) return;

  // Preference: a formed pre-prepareQC for a *normal* block wins; a virtual
  // one needs the validating vc from an R2 attachment.
  const Block* chosen = nullptr;
  Hash256 chosen_hash;
  std::optional<QuorumCert> aux;

  for (const auto& [hash, is_virtual] : st.proposed) {
    auto formed_it = st.formed.find(hash);
    if (formed_it == st.formed.end()) continue;
    if (!is_virtual) {
      chosen = store_.get(hash);
      chosen_hash = hash;
      aux.reset();
      break;
    }
    if (st.vc_candidate) {
      const Block* b = store_.get(hash);
      const QuorumCert& vc = *st.vc_candidate;
      if (b && vc.view == b->parent_view && vc.height + 1 == b->height) {
        chosen = b;
        chosen_hash = hash;
        aux = vc;
        // keep scanning: a normal block formed later still wins
      }
    }
  }
  if (!chosen) return;

  QuorumCert qc = qc_from_block(QcType::kPrePrepare, cview_, *chosen,
                                chosen_hash, st.formed.at(chosen_hash));
  finalize_qc(qc);
  st.prepare_started = true;
  trace({.type = obs::EventType::kViewChangeEnd,
         .height = chosen->height,
         .block = trace_block_id(chosen_hash),
         .a = 0});
  trace({.type = obs::EventType::kPhaseTransition,
         .phase = static_cast<std::uint8_t>(Phase::kPrepare),
         .height = chosen->height,
         .block = trace_block_id(chosen_hash)});
  if (aux) {
    store_.set_virtual_parent(chosen_hash, aux->block_hash);
  }
  update_high_qc(Justify{qc, aux});
  persist();  // durable before the Case-N2 re-announce leaves

  types::QcNoticeMsg notice{Phase::kPrepare, cview_, std::move(qc), aux};
  broadcast(types::make_envelope(MsgKind::kQcNotice, notice));
}

}  // namespace marlin::consensus
