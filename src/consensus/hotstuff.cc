#include "consensus/hotstuff.h"

namespace marlin::consensus {

namespace {
constexpr const char* kDomain = "hotstuff";

QcType qc_type_of(Phase phase) {
  switch (phase) {
    case Phase::kPrepare: return QcType::kPrepare;
    case Phase::kPreCommit: return QcType::kPreCommit;
    case Phase::kCommit: return QcType::kCommit;
    default: return QcType::kCommit;
  }
}

/// prepareQC ordering for NEW-VIEW selection: view first, then height.
bool qc_higher(const QuorumCert& a, const QuorumCert& b) {
  if (a.view != b.view) return a.view > b.view;
  return a.height > b.height;
}
}  // namespace

HotStuffReplica::HotStuffReplica(ReplicaConfig config,
                                 const crypto::SignatureSuite& suite,
                                 ProtocolEnv& env)
    : ReplicaBase(config, suite, env, kDomain),
      votes_(config.quorum.quorum()) {
  prepare_qc_high_ = QuorumCert::genesis(store_.genesis_hash());
  locked_qc_ = prepare_qc_high_;
  locked_qc_.type = QcType::kPreCommit;
}

void HotStuffReplica::start() {
  ReplicaBase::start();
  if (is_leader()) {
    propose_ready_ = true;
    maybe_propose();
  }
}

PersistentState HotStuffReplica::persistent_state() const {
  PersistentState ps = base_persistent_state(PersistedProtocol::kHotStuff);
  // HotStuff's voted watermark is a (view, height) pair, not a block ref;
  // store it in the ref's ordering fields with a zero hash.
  ps.last_voted.view = lb_view_;
  ps.last_voted.height = lb_height_;
  ps.locked_qc = locked_qc_;
  ps.high_qc = Justify{prepare_qc_high_, {}};
  return ps;
}

void HotStuffReplica::restore(const PersistentState& ps) {
  lb_view_ = ps.last_voted.view;
  lb_height_ = ps.last_voted.height;
  locked_qc_ = ps.locked_qc;
  if (ps.high_qc.qc) prepare_qc_high_ = *ps.high_qc.qc;
  ReplicaBase::restore(ps);
}

Hash256 HotStuffReplica::digest_for(QcType type, const Hash256& h,
                                    ViewNumber bview, Height height,
                                    ViewNumber pview) const {
  return types::vote_digest(kDomain, type, cview_, h, bview, height, pview,
                            /*virtual_block=*/false);
}

// ---------------------------------------------------------------------------
// Leader: proposing
// ---------------------------------------------------------------------------

void HotStuffReplica::maybe_propose() {
  if (recovering() || propose_held()) return;
  if (cview_ == 0 || !is_leader() || !propose_ready_) return;
  if (pool_.empty() && !config_.allow_empty_blocks) return;
  propose(false);
}

void HotStuffReplica::adopt_recovery_tip(const Block& tip) {
  // Re-anchor an amnesiac on the snapshot tip: its justify certifies the
  // tip's (committed) parent, so after verification it is the freshest QC
  // a replica with no durable state can trust. Raising the voted
  // watermark to the tip and jumping to its view means we never vote
  // again at a (view, height) our forgotten pre-wipe self may have signed.
  if (!tip.justify.qc || !verify_qc(*tip.justify.qc)) return;
  const QuorumCert& qc = *tip.justify.qc;
  if (qc_higher(qc, prepare_qc_high_)) prepare_qc_high_ = qc;
  if (qc_higher(qc, locked_qc_)) {
    locked_qc_ = qc;
    locked_qc_.type = QcType::kPreCommit;
  }
  lb_view_ = std::max(lb_view_, std::max(tip.view, qc.view));
  lb_height_ = std::max(lb_height_, tip.height);
  enter_view(std::max(tip.view, qc.view), /*send_new_view=*/false);
  persist();
}

void HotStuffReplica::propose(bool force) {
  std::vector<types::Operation> batch = make_batch(force);
  if (batch.empty() && !force && !config_.allow_empty_blocks) return;

  const QuorumCert& qc = prepare_qc_high_;
  Block b;
  b.parent_link = qc.block_hash;
  b.parent_view = qc.block_view;
  b.view = cview_;
  b.height = qc.height + 1;
  b.ops = std::move(batch);
  b.justify = Justify{qc, {}};

  env_.charge_hash_bytes(types::ops_wire_size(b.ops) + 128);
  store_.insert(b);

  const Height proposed_height = b.height;
  const std::size_t proposed_ops = b.ops.size();
  const Hash256 proposed_hash = b.hash();

  types::ProposalMsg msg;
  msg.phase = Phase::kPrepare;
  msg.view = cview_;
  msg.entries.push_back(types::ProposalEntry{std::move(b), Justify{qc, {}}});
  propose_ready_ = false;
  broadcast(types::make_envelope(MsgKind::kProposal, msg));
  if (proposed_ops > 0) {
    trace({.type = obs::EventType::kBatchDequeued,
           .height = proposed_height,
           .block = trace_block_id(proposed_hash),
           .a = proposed_ops,
           .b = static_cast<std::uint64_t>(last_batch_wait_.as_nanos())});
  }
  trace({.type = obs::EventType::kProposalSent,
         .phase = static_cast<std::uint8_t>(Phase::kPrepare),
         .height = proposed_height,
         .block = trace_block_id(proposed_hash),
         .a = proposed_ops});
}

// ---------------------------------------------------------------------------
// Replica: proposals (PREPARE phase)
// ---------------------------------------------------------------------------

void HotStuffReplica::on_proposal(ReplicaId from, types::ProposalMsg msg) {
  if (msg.view < cview_ || msg.entries.size() != 1) return;
  if (from != leader_of(msg.view)) return;
  if (msg.phase != Phase::kPrepare) return;
  const Justify& j = msg.entries[0].justify;
  if (!j.qc || j.vc || j.qc->type != QcType::kPrepare) return;
  if (msg.view > cview_) {
    if (!verify_qc(*j.qc)) return;
    enter_view(msg.view, /*send_new_view=*/false);
  }

  const Block& b = msg.entries[0].block;
  const QuorumCert& qc = *j.qc;
  if (b.view != cview_ || b.virtual_block) return;
  if (b.parent_link != qc.block_hash || b.height != qc.height + 1 ||
      b.parent_view != qc.block_view) {
    return;
  }
  if (b.justify.qc != j.qc) return;
  if (!verify_qc(qc)) return;

  // safeNode: the branch extends the locked block, or the justify ranks
  // above the lock (liveness rule). Rank is (view, height), not view
  // alone: many blocks certify per view here, and same-view prepareQCs
  // form a single chain (honest replicas vote once per (view, height) and
  // quorums intersect in an honest replica), so a same-view justify above
  // the lock's height extends it even when this replica is missing the
  // intermediate bodies and extends() cannot walk the branch.
  const bool live_rule = qc_higher(qc, locked_qc_);
  const bool safe_rule =
      store_.extends(qc.block_hash, locked_qc_.block_hash);
  if (!live_rule && !safe_rule) return;

  // Vote at most once per (view, height), monotonically.
  if (b.view < lb_view_ ||
      (b.view == lb_view_ && b.height <= lb_height_)) {
    return;
  }

  env_.charge_hash_bytes(types::ops_wire_size(b.ops) + 128);
  const Hash256 h = b.hash();
  store_.insert(b);
  trace({.type = obs::EventType::kProposalReceived,
         .phase = static_cast<std::uint8_t>(Phase::kPrepare),
         .height = b.height,
         .block = trace_block_id(h),
         .a = from});

  types::VoteMsg vote;
  vote.phase = Phase::kPrepare;
  vote.view = cview_;
  vote.block_hash = h;
  vote.parsig = sign_digest(
      digest_for(QcType::kPrepare, h, b.view, b.height, b.parent_view));

  // Write-ahead voting: advance the voted watermark durably before the
  // vote leaves, or a crash+restart could vote again at this (view,
  // height) for a conflicting block.
  lb_view_ = b.view;
  lb_height_ = b.height;
  if (qc_higher(qc, prepare_qc_high_)) prepare_qc_high_ = qc;
  persist();

  send_to(from, types::make_envelope(MsgKind::kVote, vote));
  trace({.type = obs::EventType::kVoteSent,
         .phase = static_cast<std::uint8_t>(Phase::kPrepare),
         .height = b.height,
         .block = trace_block_id(h),
         .a = from});
}

// ---------------------------------------------------------------------------
// Leader: vote collection
// ---------------------------------------------------------------------------

std::optional<Hash256> HotStuffReplica::preverify_vote_digest(
    const types::VoteMsg& msg) const {
  // Mirrors on_vote's digest derivation (same early-outs: votes the
  // handler discards unverified plan no work).
  if (msg.view != cview_ || leader_of(msg.view) != config_.id) {
    return std::nullopt;
  }
  const Block* b = store_.get(msg.block_hash);
  if (!b) return std::nullopt;
  return digest_for(qc_type_of(msg.phase), msg.block_hash, b->view,
                    b->height, b->parent_view);
}

std::optional<Hash256> HotStuffReplica::preverify_view_change_digest(
    const types::ViewChangeMsg& msg) const {
  if (msg.view < cview_) return std::nullopt;
  const BlockRef& lb = msg.last_voted;
  return types::vote_digest(kDomain, QcType::kPrepare, msg.view, lb.hash,
                            lb.view, lb.height, lb.pview, false);
}

void HotStuffReplica::on_vote(ReplicaId from, types::VoteMsg msg) {
  if (msg.view != cview_ || leader_of(msg.view) != config_.id) return;
  const Block* b = store_.get(msg.block_hash);
  if (!b) return;

  const QcType type = qc_type_of(msg.phase);
  const Hash256 digest = digest_for(type, msg.block_hash, b->view, b->height,
                                    b->parent_view);
  if (!verify_partial(msg.parsig, digest)) return;
  trace({.type = obs::EventType::kVoteReceived,
         .phase = static_cast<std::uint8_t>(msg.phase),
         .height = b->height,
         .block = trace_block_id(msg.block_hash),
         .a = from,
         .b = votes_.count(msg.phase, msg.block_hash) + 1});

  auto group = votes_.add(msg.phase, msg.block_hash, msg.parsig);
  if (!group) return;

  QuorumCert qc;
  qc.type = type;
  qc.view = cview_;
  qc.block_hash = msg.block_hash;
  qc.block_view = b->view;
  qc.height = b->height;
  qc.pview = b->parent_view;
  qc.sigs = std::move(*group);
  finalize_qc(qc);
  trace({.type = obs::EventType::kQcFormed,
         .phase = static_cast<std::uint8_t>(msg.phase),
         .height = b->height,
         .block = trace_block_id(msg.block_hash)});

  switch (msg.phase) {
    case Phase::kPrepare: {
      if (qc_higher(qc, prepare_qc_high_)) prepare_qc_high_ = qc;
      persist();  // durable before the PRE-COMMIT notice leaves
      types::QcNoticeMsg notice{Phase::kPreCommit, cview_, std::move(qc), {}};
      broadcast(types::make_envelope(MsgKind::kQcNotice, notice));
      trace({.type = obs::EventType::kPhaseTransition,
             .phase = static_cast<std::uint8_t>(Phase::kPreCommit),
             .height = b->height,
             .block = trace_block_id(msg.block_hash)});
      if (config_.pipelined) {
        propose_ready_ = true;
        maybe_propose();
      }
      return;
    }
    case Phase::kPreCommit: {
      types::QcNoticeMsg notice{Phase::kCommit, cview_, std::move(qc), {}};
      broadcast(types::make_envelope(MsgKind::kQcNotice, notice));
      trace({.type = obs::EventType::kPhaseTransition,
             .phase = static_cast<std::uint8_t>(Phase::kCommit),
             .height = b->height,
             .block = trace_block_id(msg.block_hash)});
      return;
    }
    case Phase::kCommit: {
      types::QcNoticeMsg notice{Phase::kDecide, cview_, std::move(qc), {}};
      broadcast(types::make_envelope(MsgKind::kQcNotice, notice));
      trace({.type = obs::EventType::kPhaseTransition,
             .phase = static_cast<std::uint8_t>(Phase::kDecide),
             .height = b->height,
             .block = trace_block_id(msg.block_hash)});
      if (!config_.pipelined) {
        propose_ready_ = true;
        maybe_propose();
      }
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// Replica: QC notices (PRE-COMMIT / COMMIT / DECIDE)
// ---------------------------------------------------------------------------

void HotStuffReplica::on_qc_notice(ReplicaId from, types::QcNoticeMsg msg) {
  if (msg.aux) return;
  if (msg.view < cview_) {
    if (msg.phase == Phase::kDecide && msg.qc.type == QcType::kCommit &&
        verify_qc(msg.qc)) {
      commit_to(msg.qc.block_hash, from);
    }
    return;
  }
  if (from != leader_of(msg.view)) return;
  if (msg.view > cview_) {
    if (!verify_qc(msg.qc)) return;
    enter_view(msg.view, /*send_new_view=*/false);
  }

  const QuorumCert& qc = msg.qc;
  switch (msg.phase) {
    case Phase::kPreCommit: {
      if (qc.type != QcType::kPrepare || qc.view != cview_) return;
      if (!verify_qc(qc)) return;
      if (qc_higher(qc, prepare_qc_high_)) prepare_qc_high_ = qc;
      persist();  // write-ahead voting: durable before the vote leaves
      types::VoteMsg vote;
      vote.phase = Phase::kPreCommit;
      vote.view = cview_;
      vote.block_hash = qc.block_hash;
      vote.parsig = sign_digest(digest_for(QcType::kPreCommit, qc.block_hash,
                                           qc.block_view, qc.height,
                                           qc.pview));
      send_to(from, types::make_envelope(MsgKind::kVote, vote));
      trace({.type = obs::EventType::kVoteSent,
             .phase = static_cast<std::uint8_t>(Phase::kPreCommit),
             .height = qc.height,
             .block = trace_block_id(qc.block_hash),
             .a = from});
      return;
    }
    case Phase::kCommit: {
      if (qc.type != QcType::kPreCommit || qc.view != cview_) return;
      if (!verify_qc(qc)) return;
      if (qc_higher(qc, locked_qc_)) locked_qc_ = qc;  // become locked
      persist();  // write-ahead voting: the lock is durable before the vote
      types::VoteMsg vote;
      vote.phase = Phase::kCommit;
      vote.view = cview_;
      vote.block_hash = qc.block_hash;
      vote.parsig = sign_digest(digest_for(QcType::kCommit, qc.block_hash,
                                           qc.block_view, qc.height,
                                           qc.pview));
      send_to(from, types::make_envelope(MsgKind::kVote, vote));
      trace({.type = obs::EventType::kVoteSent,
             .phase = static_cast<std::uint8_t>(Phase::kCommit),
             .height = qc.height,
             .block = trace_block_id(qc.block_hash),
             .a = from});
      return;
    }
    case Phase::kDecide: {
      if (qc.type != QcType::kCommit) return;
      if (!verify_qc(qc)) return;
      commit_to(qc.block_hash, from);
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// View change (NEW-VIEW)
// ---------------------------------------------------------------------------

void HotStuffReplica::advance_to_view(ViewNumber v) {
  enter_view(v, /*send_new_view=*/true);
}

void HotStuffReplica::enter_view(ViewNumber v, bool send_new_view) {
  if (v <= cview_) return;
  cview_ = v;
  propose_ready_ = false;
  votes_.clear();
  while (!new_views_.empty() && new_views_.begin()->first < v) {
    new_views_.erase(new_views_.begin());
  }
  // The entered view is durable: a restart must never rewind cview_ and
  // re-vote in a view it already left.
  persist();
  env_.entered_view(v);

  if (send_new_view && nv_sent_.insert(v).second) {
    trace({.type = obs::EventType::kViewChangeStart});
    types::ViewChangeMsg m;
    m.view = v;
    m.last_voted = BlockRef{prepare_qc_high_.block_hash,
                            prepare_qc_high_.block_view,
                            prepare_qc_high_.height, prepare_qc_high_.pview,
                            false};
    m.high_qc = Justify{prepare_qc_high_, {}};
    m.parsig = sign_digest(types::vote_digest(
        kDomain, QcType::kPrepare, v, m.last_voted.hash, m.last_voted.view,
        m.last_voted.height, m.last_voted.pview, false));
    send_to(leader_of(v), types::make_envelope(MsgKind::kViewChange, m));
  }
  if (is_leader()) leader_check_new_view_quorum();
}

void HotStuffReplica::on_view_change(ReplicaId from,
                                     types::ViewChangeMsg msg) {
  if (msg.view < cview_) return;
  const BlockRef& lb = msg.last_voted;
  const Hash256 digest =
      types::vote_digest(kDomain, QcType::kPrepare, msg.view, lb.hash,
                         lb.view, lb.height, lb.pview, false);
  if (msg.parsig.signer != from) return;
  if (!verify_partial(msg.parsig, digest)) return;
  if (!msg.high_qc.qc || msg.high_qc.vc) return;
  if (msg.high_qc.qc->type != QcType::kPrepare) return;
  if (!verify_qc(*msg.high_qc.qc)) return;

  NewViewState& st = new_views_[msg.view];
  st.msgs.emplace(from, std::move(msg));
  const ViewNumber view = st.msgs.begin()->second.view;

  if (view > cview_ && st.msgs.size() >= config_.quorum.f + 1 &&
      nv_sent_.count(view) == 0) {
    enter_view(view, /*send_new_view=*/true);
    return;
  }
  if (view == cview_ && leader_of(view) == config_.id) {
    leader_check_new_view_quorum();
  }
}

void HotStuffReplica::leader_check_new_view_quorum() {
  auto it = new_views_.find(cview_);
  if (it == new_views_.end()) return;
  NewViewState& st = it->second;
  if (st.acted || st.msgs.size() < quorum()) return;
  st.acted = true;
  ++vcs_led_;

  for (const auto& [sender, m] : st.msgs) {
    if (qc_higher(*m.high_qc.qc, prepare_qc_high_)) {
      prepare_qc_high_ = *m.high_qc.qc;
    }
  }
  persist();  // durable before the NEW-VIEW re-proposal leaves
  // HotStuff's NEW-VIEW resolution always re-proposes from highQC —
  // there is no happy/unhappy split, so the `a` operand is always 0.
  trace({.type = obs::EventType::kViewChangeEnd,
         .height = prepare_qc_high_.height,
         .block = trace_block_id(prepare_qc_high_.block_hash),
         .a = 0});
  propose_ready_ = true;
  propose(/*force=*/true);
}

}  // namespace marlin::consensus
