// Boundary between a protocol state machine (Marlin / HotStuff) and the
// world it runs in. The protocol is a pure, deterministic event handler:
// messages and timeouts come in through method calls, and every externally
// visible effect goes out through this interface. The simulation runtime
// implements it over simnet (charging virtual CPU for the crypto the
// protocol reports); unit tests implement it with plain vectors.
#pragma once

#include "common/ids.h"
#include "common/scheduler.h"
#include "consensus/persistent_state.h"
#include "obs/trace.h"
#include "types/messages.h"

namespace marlin::consensus {

class ProtocolEnv {
 public:
  virtual ~ProtocolEnv() = default;

  /// Structured event trace the protocol records into, or nullptr when the
  /// host is not tracing (unit-test envs). Protocols must tolerate null.
  virtual obs::TraceSink* trace_sink() { return nullptr; }

  /// The host's scheduler (backend-neutral: global sim clock, shard-local
  /// clock, or the realnet timer wheel), or nullptr in untimed hosts
  /// (unit-test envs). Protocol state machines stay event-driven and never
  /// schedule directly; this exists for host-side plumbing that receives
  /// only a ProtocolEnv&.
  virtual marlin::Scheduler* scheduler() { return nullptr; }

  /// Simulation time of the event being handled; origin outside a timed
  /// host (unit-test envs). Used only for observability (txpool wait
  /// attribution), never for protocol decisions.
  virtual TimePoint now() const { return TimePoint::origin(); }

  /// Point-to-point send to another replica (authenticated channel).
  virtual void send(ReplicaId to, const types::Envelope& env) = 0;
  /// Send to every replica except self.
  virtual void broadcast(const types::Envelope& env) = 0;

  /// A block is committed. Called in chain order, exactly once per block.
  /// `executable` holds the block's operations that have NOT been executed
  /// before (exactly-once SMR semantics: a request that slipped into two
  /// blocks — e.g. re-proposed after a view change or a client retransmit —
  /// executes only the first time). The runtime executes them, persists,
  /// and replies to clients.
  virtual void deliver(const types::Block& block,
                       const std::vector<types::Operation>& executable) = 0;

  /// The replica moved to view `v` (timeout, or view sync). The pacemaker
  /// restarts its view timer.
  virtual void entered_view(ViewNumber v) = 0;

  /// Consensus progress was made in the current view (a block committed);
  /// the pacemaker resets its timeout backoff.
  virtual void progressed() = 0;

  /// Write-ahead-voting hook: the protocol's durable state changed and
  /// must be flushed to stable storage before any message sent later in
  /// this handler leaves the host. The simulation runtime writes it
  /// through the KVStore WAL and charges the storage cost model; unit
  /// test envs may record or ignore it.
  virtual void persist_state(const PersistentState& state) { (void)state; }

  // -- cost accounting hooks (no-ops outside the simulation) --------------
  virtual void charge_signs(std::uint32_t count) { (void)count; }
  virtual void charge_verifies(std::uint32_t count) { (void)count; }
  virtual void charge_hash_bytes(std::size_t bytes) { (void)bytes; }
  // Threshold-signature instantiation costs (pairing-based schemes).
  virtual void charge_pairings(std::uint32_t count) { (void)count; }
  virtual void charge_threshold_signs(std::uint32_t count) { (void)count; }
  virtual void charge_combine_shares(std::uint32_t count) { (void)count; }
};

}  // namespace marlin::consensus
