// Serializable snapshot of the consensus state a replica MUST NOT lose
// across a crash. HotStuff's safety argument (and Marlin's two-phase
// variant of it) requires that a replica never vote twice in a view and
// never forget its lock; both properties live in this struct, which the
// protocols hand to ProtocolEnv::persist_state() *before* the vote or
// view-change message that depends on it is sent (write-ahead voting).
//
// One struct serves both protocols. HotStuff has no BlockRef lb, so it
// maps its (lb_view, lb_height) monotonic vote watermark into
// last_voted.view/.height and leaves the hash zero; Marlin stores its
// full lb BlockRef plus the (qc, vc) Justify pair as high QC.
#pragma once

#include "common/ids.h"
#include "common/serialize.h"
#include "types/block_store.h"
#include "types/quorum_cert.h"

namespace marlin::consensus {

using types::Hash256;

/// Which protocol wrote the state. Restoring under a different protocol
/// is a configuration error, not a recovery path.
enum class PersistedProtocol : std::uint8_t {
  kMarlin = 0,
  kHotStuff = 1,
};

struct PersistentState {
  PersistedProtocol protocol = PersistedProtocol::kMarlin;
  /// Highest view this replica has entered (votes at lower views are
  /// refused after restore).
  ViewNumber view = 0;
  /// Commit frontier at persist time. Restore fast-forwards the commit
  /// index here; the block bodies themselves are re-fetched if needed.
  Height committed_height = 0;
  Hash256 committed_hash;
  /// Highest block voted for (Marlin: full lb ref; HotStuff: view/height
  /// watermark with a zero hash).
  types::BlockRef last_voted;
  /// Lock (Marlin: commit lock; HotStuff: precommitQC lock).
  types::QuorumCert locked_qc;
  /// Highest known QC used to justify proposals/new-views.
  types::Justify high_qc;

  void encode(Writer& w) const;
  static Result<PersistentState> decode(Reader& r);
  bool operator==(const PersistentState&) const = default;
};

}  // namespace marlin::consensus
