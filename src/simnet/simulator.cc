#include "simnet/simulator.h"

#include <cassert>

namespace marlin::sim {

TimerHandle Simulator::schedule(Duration delay, std::function<void()> fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

TimerHandle Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  return TimerHandle(std::move(cancelled));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    assert(ev.when >= now_);
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty()) {
    // Skip cancelled heads without advancing time.
    if (*queue_.top().cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

}  // namespace marlin::sim
