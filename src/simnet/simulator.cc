#include "simnet/simulator.h"

#include <cassert>
#include <utility>

namespace marlin::sim {

// The event queue is a 4-ary min-heap in a flat vector. Relative to the
// binary std::priority_queue it replaces: sift paths are ~half as deep
// (fewer moves per push/pop), the backing store is reused across events
// (no per-event allocation once warm), and — crucially — pop MOVES the
// event out instead of copying it, so a callback that captured a payload
// is never duplicated on its way to execution.
namespace {
constexpr std::size_t kArity = 4;
}  // namespace

void Simulator::push_event(TimePoint when, std::uint32_t slot, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  Event ev{when, next_seq_++, slot, std::move(fn)};
  std::size_t i = heap_.size();
  heap_.push_back(std::move(ev));
  // Sift up with a hole: hold the new event aside and move parents down
  // until its position is found, then place it once.
  Event hole = std::move(heap_.back());
  while (i > 0) {
    std::size_t parent = (i - 1) / kArity;
    if (!earlier(hole, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(hole);
}

Simulator::Event Simulator::pop_event() {
  Event top = std::move(heap_.front());
  Event last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift down with a hole at the root, placing `last` at its final spot.
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      std::size_t end = first_child + kArity < n ? first_child + kArity : n;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], last)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(last);
  }
  return top;
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].pending = true;
    slots_[slot].cancelled = false;
    return slot;
  }
  slots_.push_back(Slot{0, true, false});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.pending = false;
  s.cancelled = false;
  ++s.gen;  // invalidate any outstanding TimerHandle before reuse
  free_slots_.push_back(slot);
}

TimerHandle Simulator::schedule_at(TimePoint when, EventFn fn) {
  std::uint32_t slot = acquire_slot();
  std::uint32_t gen = slots_[slot].gen;
  push_event(when, slot, std::move(fn));
  return make_handle(slot, gen);
}

void Simulator::reserve(std::size_t events, std::size_t timers) {
  if (heap_.capacity() < events) heap_.reserve(events);
  if (slots_.capacity() < timers) {
    slots_.reserve(timers);
    free_slots_.reserve(timers);
  }
}

void Simulator::post_at(TimePoint when, EventFn fn) {
  push_event(when, kNoSlot, std::move(fn));
}

bool Simulator::step() {
  while (!heap_.empty()) {
    Event ev = pop_event();
    if (ev.slot != kNoSlot) {
      bool cancelled = slots_[ev.slot].cancelled;
      release_slot(ev.slot);
      if (cancelled) continue;
    }
    assert(ev.when >= now_);
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint deadline) {
  while (!heap_.empty()) {
    // Skip cancelled heads without advancing time.
    if (slot_cancelled(heap_.front())) {
      Event ev = pop_event();
      release_slot(ev.slot);
      continue;
    }
    if (heap_.front().when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

}  // namespace marlin::sim
