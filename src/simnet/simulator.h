// Deterministic discrete-event simulator: a virtual clock plus an ordered
// event queue. Everything in the testbed (network transmission, CPU
// charging, protocol timers) is an event here, so whole cluster runs replay
// bit-identically from a seed.
//
// The engine is allocation-lean by design (see docs/PERFORMANCE.md):
//  - events live in a 4-ary min-heap over a plain vector, moved (never
//    copied) during sifts, so pooled heap storage is reused across events;
//  - callbacks are stored in a small-buffer-optimized EventFn, so typical
//    captures need no heap allocation;
//  - cancellation state is lazy: post()/post_at() events carry none at all,
//    and schedule()/schedule_at() events borrow a slot from a generation-
//    counted slab that is recycled when the event fires.
// Ordering is the strict (when, seq) total order the golden traces pin;
// post and schedule share one seq counter, so replacing the queue/handle
// machinery cannot reorder anything.
//
// Simulator is the single-queue implementation of marlin::Scheduler
// (common/scheduler.h); hosts written against Scheduler& run unchanged on
// the sharded engine (simnet/sharded.h) and the realnet timer wheel.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/scheduler.h"
#include "common/sim_time.h"
#include "simnet/event_fn.h"

namespace marlin::sim {

/// Scheduled-event handles are the shared generation-counted kind; the
/// alias keeps the historical sim::TimerHandle spelling working.
using TimerHandle = marlin::TimerHandle;

class Simulator final : public marlin::Scheduler {
 public:
  explicit Simulator(std::uint64_t seed) : rng_(seed) {}

  TimePoint now() const override { return now_; }
  Rng& rng() { return rng_; }

  /// schedule()/post() (delay-relative, negative clamps to zero) are
  /// inherited from Scheduler and funnel into the two overrides below.
  TimerHandle schedule_at(TimePoint when, EventFn fn) override;

  /// Fire-and-forget scheduling: no cancellation handle, no slab slot, and
  /// (for inline-storable callbacks) no allocation at all.
  void post_at(TimePoint when, EventFn fn) override;

  /// Pre-sizes the event heap and cancellation slab so steady state never
  /// grows them in the hot loop. Sizing heuristic lives with the caller
  /// (Cluster knows n and fanout); extra calls only ever grow capacity.
  void reserve(std::size_t events, std::size_t timers);

  /// Runs the earliest pending event; returns false when the queue is empty.
  bool step();

  /// Runs events until the clock would pass `deadline` (inclusive); events
  /// scheduled exactly at the deadline do run.
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Drains the queue completely. Guard against livelock with max_events.
  void run(std::uint64_t max_events = ~0ull);

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending_events() const { return heap_.size(); }

 protected:
  void cancel_timer(std::uint32_t slot, std::uint32_t gen) override {
    Slot& s = slots_[slot];
    if (s.gen == gen && s.pending) s.cancelled = true;
  }
  bool timer_active(std::uint32_t slot, std::uint32_t gen) const override {
    const Slot& s = slots_[slot];
    return s.gen == gen && s.pending && !s.cancelled;
  }

 private:
  static constexpr std::uint32_t kNoSlot = ~0u;

  struct Event {
    TimePoint when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;  // kNoSlot for post()ed events
    EventFn fn;
  };

  /// Cancellation slab entry. `gen` bumps every time the slot is recycled,
  /// invalidating stale TimerHandles without any per-handle allocation.
  struct Slot {
    std::uint32_t gen = 0;
    bool pending = false;
    bool cancelled = false;
  };

  /// Strict (when, seq) order — both keys combined are unique, so the heap
  /// pop order is a total order independent of heap internals.
  static bool earlier(const Event& a, const Event& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void push_event(TimePoint when, std::uint32_t slot, EventFn fn);
  Event pop_event();
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  bool slot_cancelled(const Event& ev) const {
    return ev.slot != kNoSlot && slots_[ev.slot].cancelled;
  }

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Event> heap_;  // 4-ary min-heap, see simulator.cc
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Rng rng_;
};

}  // namespace marlin::sim
