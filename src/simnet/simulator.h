// Deterministic discrete-event simulator: a virtual clock plus an ordered
// event queue. Everything in the testbed (network transmission, CPU
// charging, protocol timers) is an event here, so whole cluster runs replay
// bit-identically from a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace marlin::sim {

/// Cancellation handle for a scheduled event. Default-constructed handles
/// are inert. Cancelling an already-fired event is a no-op.
class TimerHandle {
 public:
  TimerHandle() = default;
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  bool active() const { return cancelled_ && !*cancelled_; }

 private:
  friend class Simulator;
  explicit TimerHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed) : rng_(seed) {}

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules `fn` to run `delay` after now. Negative delays clamp to 0.
  TimerHandle schedule(Duration delay, std::function<void()> fn);
  TimerHandle schedule_at(TimePoint when, std::function<void()> fn);

  /// Runs the earliest pending event; returns false when the queue is empty.
  bool step();

  /// Runs events until the clock would pass `deadline` (inclusive); events
  /// scheduled exactly at the deadline do run.
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Drains the queue completely. Guard against livelock with max_events.
  void run(std::uint64_t max_events = ~0ull);

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Rng rng_;
};

}  // namespace marlin::sim
