// Deterministic discrete-event simulator: a virtual clock plus an ordered
// event queue. Everything in the testbed (network transmission, CPU
// charging, protocol timers) is an event here, so whole cluster runs replay
// bit-identically from a seed.
//
// The engine is allocation-lean by design (see docs/PERFORMANCE.md):
//  - events live in a 4-ary min-heap over a plain vector, moved (never
//    copied) during sifts, so pooled heap storage is reused across events;
//  - callbacks are stored in a small-buffer-optimized EventFn, so typical
//    captures need no heap allocation;
//  - cancellation state is lazy: post()/post_at() events carry none at all,
//    and schedule()/schedule_at() events borrow a slot from a generation-
//    counted slab that is recycled when the event fires.
// Ordering is the strict (when, seq) total order the golden traces pin;
// post and schedule share one seq counter, so replacing the queue/handle
// machinery cannot reorder anything.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "simnet/event_fn.h"

namespace marlin::sim {

class Simulator;

/// Cancellation handle for a scheduled event. Default-constructed handles
/// are inert. Cancelling an already-fired event is a no-op; a handle that
/// outlives its event (or whose slot was recycled for a newer event) is
/// detected via the slot's generation counter and also no-ops.
class TimerHandle {
 public:
  TimerHandle() = default;
  inline void cancel();
  inline bool active() const;

 private:
  friend class Simulator;
  TimerHandle(Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}
  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed) : rng_(seed) {}

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules `fn` to run `delay` after now. Negative delays clamp to 0.
  /// Returns a cancellation handle; this path allocates a slab slot, so
  /// prefer post() when the handle would be dropped.
  TimerHandle schedule(Duration delay, EventFn fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    return schedule_at(now_ + delay, std::move(fn));
  }
  TimerHandle schedule_at(TimePoint when, EventFn fn);

  /// Fire-and-forget scheduling: no cancellation handle, no slab slot, and
  /// (for inline-storable callbacks) no allocation at all.
  void post(Duration delay, EventFn fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    post_at(now_ + delay, std::move(fn));
  }
  void post_at(TimePoint when, EventFn fn);

  /// Runs the earliest pending event; returns false when the queue is empty.
  bool step();

  /// Runs events until the clock would pass `deadline` (inclusive); events
  /// scheduled exactly at the deadline do run.
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Drains the queue completely. Guard against livelock with max_events.
  void run(std::uint64_t max_events = ~0ull);

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending_events() const { return heap_.size(); }

 private:
  friend class TimerHandle;

  static constexpr std::uint32_t kNoSlot = ~0u;

  struct Event {
    TimePoint when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;  // kNoSlot for post()ed events
    EventFn fn;
  };

  /// Cancellation slab entry. `gen` bumps every time the slot is recycled,
  /// invalidating stale TimerHandles without any per-handle allocation.
  struct Slot {
    std::uint32_t gen = 0;
    bool pending = false;
    bool cancelled = false;
  };

  /// Strict (when, seq) order — both keys combined are unique, so the heap
  /// pop order is a total order independent of heap internals.
  static bool earlier(const Event& a, const Event& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void push_event(TimePoint when, std::uint32_t slot, EventFn fn);
  Event pop_event();
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  bool slot_cancelled(const Event& ev) const {
    return ev.slot != kNoSlot && slots_[ev.slot].cancelled;
  }

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Event> heap_;  // 4-ary min-heap, see simulator.cc
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Rng rng_;
};

inline void TimerHandle::cancel() {
  if (sim_ == nullptr) return;
  Simulator::Slot& s = sim_->slots_[slot_];
  if (s.gen == gen_ && s.pending) s.cancelled = true;
}

inline bool TimerHandle::active() const {
  if (sim_ == nullptr) return false;
  const Simulator::Slot& s = sim_->slots_[slot_];
  return s.gen == gen_ && s.pending && !s.cancelled;
}

}  // namespace marlin::sim
