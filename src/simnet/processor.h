// Models a node's (single-threaded) message-processing loop: tasks run
// back-to-back, each reporting how much virtual CPU time it consumed. This
// is what makes signature verification and DB writes cost throughput in
// the simulation, reproducing the CPU bottleneck of the paper's servers.
#pragma once

#include <deque>
#include <functional>

#include "common/scheduler.h"

namespace marlin::sim {

class SequentialProcessor {
 public:
  /// A task runs at the moment the CPU becomes free and returns the CPU
  /// time it consumed; the next task starts after that charge elapses.
  using Task = std::function<Duration()>;

  /// Charges against whatever clock its host runs on: the global sim, a
  /// shard-local clock, never a backend named here.
  explicit SequentialProcessor(marlin::Scheduler& sched) : sim_(sched) {}

  void post(Task task) {
    queue_.push_back(std::move(task));
    pump();
  }

  /// Earliest instant the CPU could start new work.
  TimePoint free_at() const { return free_at_; }
  std::size_t backlog() const { return queue_.size(); }

  /// Total CPU time charged so far (utilization accounting).
  Duration total_busy() const { return total_busy_; }

 private:
  void pump() {
    if (running_ || queue_.empty()) return;
    running_ = true;
    const TimePoint start = std::max(sim_.now(), free_at_);
    sim_.post_at(start, [this] { run_head(); });
  }

  void run_head() {
    Task task = std::move(queue_.front());
    queue_.pop_front();
    const Duration cost = task();
    free_at_ = sim_.now() + cost;
    total_busy_ += cost;
    running_ = false;
    if (!queue_.empty()) {
      running_ = true;
      sim_.post_at(free_at_, [this] { run_head(); });
    }
  }

  marlin::Scheduler& sim_;
  std::deque<Task> queue_;
  TimePoint free_at_;
  Duration total_busy_;
  bool running_ = false;
};

}  // namespace marlin::sim
