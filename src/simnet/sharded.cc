#include "simnet/sharded.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "crypto/signer.h"

namespace marlin::sim {

thread_local ShardedSimulator::Shard* ShardedSimulator::tls_shard_ = nullptr;
thread_local NodeScheduler* ShardedSimulator::tls_node_ = nullptr;

// -- NodeScheduler -----------------------------------------------------------

TimePoint NodeScheduler::now() const {
  // "Now" is the calling context's time: inside a window that is the
  // executing shard's clock (so a relative post() onto ANOTHER node's
  // facade is relative to the caller's present, exactly like the global
  // clock it replaces), outside windows every clock sits at the barrier.
  ShardedSimulator::Shard* cur = ShardedSimulator::tls_shard_;
  if (cur != nullptr) return cur->clock_;
  return engine_->shards_[shard_]->clock_;
}

void NodeScheduler::post_at(TimePoint when, EventFn fn) {
  engine_->post_event(this, when, ShardedSimulator::kNoSlot, std::move(fn));
}

TimerHandle NodeScheduler::schedule_at(TimePoint when, EventFn fn) {
  ShardedSimulator::Shard& home = *engine_->shards_[shard_];
  // Timers touch the home slab directly, so they may only be armed from the
  // home shard's own execution or a quiescent phase — which is exactly who
  // arms protocol timers (the node itself, setup, or a control-lane fault).
  assert(ShardedSimulator::tls_shard_ == nullptr || ShardedSimulator::tls_shard_ == &home);
  const std::uint32_t slot = home.acquire_slot();
  ShardedSimulator::Slot& s = home.slots_[slot];
  ++s.gen;  // invalidate any stale handle still pointing at this slot
  s.pending = true;
  s.cancelled = false;
  engine_->post_event(this, when, slot, std::move(fn));
  return make_handle(slot, s.gen);
}

void NodeScheduler::cancel_timer(std::uint32_t slot, std::uint32_t gen) {
  ShardedSimulator::Shard& home = *engine_->shards_[shard_];
  assert(ShardedSimulator::tls_shard_ == nullptr || ShardedSimulator::tls_shard_ == &home);
  ShardedSimulator::Slot& s = home.slots_[slot];
  if (s.gen == gen && s.pending) s.cancelled = true;
}

bool NodeScheduler::timer_active(std::uint32_t slot, std::uint32_t gen) const {
  const ShardedSimulator::Shard& home = *engine_->shards_[shard_];
  const ShardedSimulator::Slot& s = home.slots_[slot];
  return s.gen == gen && s.pending && !s.cancelled;
}

// -- Shard heap / slab (same 4-ary shape as Simulator's) ---------------------

void ShardedSimulator::Shard::push(Event ev) {
  std::size_t hole = heap_.size();
  heap_.emplace_back();
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (!earlier(ev, heap_[parent])) break;
    heap_[hole] = std::move(heap_[parent]);
    hole = parent;
  }
  heap_[hole] = std::move(ev);
}

ShardedSimulator::Event ShardedSimulator::Shard::pop() {
  Event top = std::move(heap_.front());
  Event last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    std::size_t hole = 0;
    const std::size_t size = heap_.size();
    for (;;) {
      const std::size_t first_child = hole * 4 + 1;
      if (first_child >= size) break;
      std::size_t best = first_child;
      const std::size_t limit = std::min(first_child + 4, size);
      for (std::size_t c = first_child + 1; c < limit; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], last)) break;
      heap_[hole] = std::move(heap_[best]);
      hole = best;
    }
    heap_[hole] = std::move(last);
  }
  return top;
}

std::uint32_t ShardedSimulator::Shard::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.push_back(Slot{});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void ShardedSimulator::Shard::release_slot(std::uint32_t slot) {
  slots_[slot].pending = false;
  slots_[slot].cancelled = false;
  free_slots_.push_back(slot);
}

void ShardedSimulator::Shard::drain_inbox() {
  std::lock_guard<std::mutex> guard(inbox_mu_);
  for (Event& ev : inbox_) push(std::move(ev));
  inbox_.clear();
}

// -- engine ------------------------------------------------------------------

ShardedSimulator::ShardedSimulator(const Config& config)
    : control_(config.seed), lookahead_(config.lookahead) {
  assert(config.shards >= 1);
  assert(lookahead_ > Duration::zero());
  shards_.reserve(config.shards);
  for (std::uint32_t s = 0; s < config.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  std::uint32_t workers = config.workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1u : static_cast<std::uint32_t>(hw);
  }
  workers_ = std::min(workers, config.shards);
  if (workers_ > 1) {
    // The process-wide tag memoization must take its locked path while
    // shard workers verify signatures concurrently.
    crypto::set_parallel_crypto(true);
    threads_.reserve(workers_);
    for (std::uint32_t w = 0; w < workers_; ++w) {
      threads_.emplace_back([this] { worker_main(); });
    }
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> guard(pool_mu_);
      shutdown_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

NodeScheduler* ShardedSimulator::node_scheduler(NodeId node) {
  if (node >= facades_.size()) facades_.resize(node + 1);
  if (!facades_[node]) {
    facades_[node].reset(
        new NodeScheduler(this, node % shards(), node));
  }
  return facades_[node].get();
}

void ShardedSimulator::enable_tracing(std::size_t capacity_per_shard) {
  assert(shard_sinks_.empty());
  shard_sinks_.reserve(shards_.size());
  for (auto& shard : shards_) {
    auto sink = std::make_unique<obs::TraceSink>(capacity_per_shard);
    sink->set_clock([s = shard.get()] { return s->clock_; });
    shard_sinks_.push_back(std::move(sink));
  }
  control_sink_ = std::make_unique<obs::TraceSink>(capacity_per_shard);
  control_sink_->set_clock([this] { return control_.now(); });
}

std::vector<obs::TraceEvent> ShardedSimulator::merged_trace() const {
  std::vector<obs::TraceEvent> all;
  std::size_t total = control_sink_ ? control_sink_->size() : 0;
  for (const auto& sink : shard_sinks_) total += sink->size();
  all.reserve(total);
  for (const auto& sink : shard_sinks_) {
    const auto events = sink->events();
    all.insert(all.end(), events.begin(), events.end());
  }
  if (control_sink_) {
    const auto events = control_sink_->events();
    all.insert(all.end(), events.begin(), events.end());
  }
  // (at, node, per-sink seq): a node records into exactly one sink, so the
  // per-sink seq totally orders its same-instant events; across nodes the
  // node id breaks ties deterministically. stable_sort keeps control-lane
  // kNoNode events in their own recorded order.
  std::stable_sort(all.begin(), all.end(),
                   [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.node != b.node) return a.node < b.node;
                     return a.seq < b.seq;
                   });
  // Renumber densely in merge order: per-sink seq values depend on how
  // nodes partition across shards, so leaving them in place would make
  // exports differ across shard counts for the same run.
  for (std::size_t i = 0; i < all.size(); ++i) all[i].seq = i;
  return all;
}

void ShardedSimulator::post_event(NodeScheduler* target, TimePoint when,
                                  std::uint32_t slot, EventFn fn) {
  Event ev;
  ev.when = when;
  ev.slot = slot;
  ev.exec = target;
  ev.fn = std::move(fn);
  if (ShardedSimulator::tls_node_ != nullptr) {
    ev.origin = ShardedSimulator::tls_node_->node_;
    ev.oseq = ShardedSimulator::tls_node_->out_seq_++;
  } else {
    // Setup / control-lane / barrier phases are single-threaded.
    ev.origin = kExternalOrigin;
    ev.oseq = external_seq_++;
  }
  Shard& home = *shards_[target->shard_];
  if (ShardedSimulator::tls_shard_ != nullptr && ShardedSimulator::tls_shard_ != &home) {
    // Cross-shard: the lookahead contract guarantees the event is due no
    // earlier than the window being executed ends, so deferring the heap
    // insert to the next barrier drain cannot miss its deadline.
    assert(when >= window_end_);
    std::lock_guard<std::mutex> guard(home.inbox_mu_);
    home.inbox_.push_back(std::move(ev));
    return;
  }
  assert(when >= home.clock_);
  home.push(std::move(ev));
}

void ShardedSimulator::run_window(Shard& shard, TimePoint end, bool inclusive) {
  shard.drain_inbox();
  ShardedSimulator::tls_shard_ = &shard;
  while (!shard.heap_.empty()) {
    const Event& top = shard.heap_.front();
    if (top.slot != kNoSlot && shard.slots_[top.slot].cancelled) {
      // Skip cancelled heads before the deadline check so a dead timer
      // parked past `end` never stalls the window early.
      const std::uint32_t slot = shard.pop().slot;
      shard.release_slot(slot);
      continue;
    }
    if (inclusive ? top.when > end : top.when >= end) break;
    Event ev = shard.pop();
    if (ev.slot != kNoSlot) shard.release_slot(ev.slot);
    shard.clock_ = ev.when;
    ShardedSimulator::tls_node_ = ev.exec;
    ++shard.executed_;
    ev.fn();
  }
  ShardedSimulator::tls_node_ = nullptr;
  ShardedSimulator::tls_shard_ = nullptr;
  shard.clock_ = end;
}

void ShardedSimulator::execute_windows(TimePoint end, bool inclusive) {
  if (workers_ <= 1 || shards_.size() == 1) {
    window_end_ = end;  // the cross-shard lookahead assert reads this
    for (auto& shard : shards_) run_window(*shard, end, inclusive);
    return;
  }
  std::unique_lock<std::mutex> lock(pool_mu_);
  window_end_ = end;
  window_inclusive_ = inclusive;
  next_shard_.store(0, std::memory_order_relaxed);
  done_count_ = 0;
  ++epoch_;
  pool_cv_.notify_all();
  done_cv_.wait(lock, [this] { return done_count_ == workers_; });
}

void ShardedSimulator::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    TimePoint end;
    bool inclusive;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
      end = window_end_;
      inclusive = window_inclusive_;
    }
    for (;;) {
      const std::uint32_t i = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (i >= shards_.size()) break;
      run_window(*shards_[i], end, inclusive);
    }
    std::lock_guard<std::mutex> guard(pool_mu_);
    if (++done_count_ == workers_) done_cv_.notify_one();
  }
}

void ShardedSimulator::run_until(TimePoint deadline) {
  // Window loop: control lane first (shards quiescent at barrier_), then
  // all shards advance one lookahead window in parallel. Windows are
  // half-open [T, T+W) so a cross-shard arrival at exactly T+W lands in
  // the next window after its inbox drain.
  while (barrier_ < deadline) {
    control_.run_until(barrier_);
    const TimePoint end = std::min(barrier_ + lookahead_, deadline);
    execute_windows(end, /*inclusive=*/false);
    barrier_ = end;
  }
  // Final inclusive pass: Simulator::run_until runs events exactly at the
  // deadline, and callers (experiments, faults at t == horizon) rely on it.
  control_.run_until(deadline);
  execute_windows(deadline, /*inclusive=*/true);
  barrier_ = deadline;
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t total = control_.events_executed();
  for (const auto& shard : shards_) total += shard->executed_;
  return total;
}

std::size_t ShardedSimulator::pending_events() const {
  std::size_t total = control_.pending_events();
  for (const auto& shard : shards_) {
    total += shard->heap_.size() + shard->inbox_.size();
  }
  return total;
}

void ShardedSimulator::reserve(std::size_t events_per_shard,
                               std::size_t timers_per_shard) {
  control_.reserve(events_per_shard, timers_per_shard);
  for (auto& shard : shards_) {
    if (shard->heap_.capacity() < events_per_shard) {
      shard->heap_.reserve(events_per_shard);
    }
    if (shard->slots_.capacity() < timers_per_shard) {
      shard->slots_.reserve(timers_per_shard);
      shard->free_slots_.reserve(timers_per_shard);
    }
    // Inboxes see at most a window's worth of cross-shard traffic.
    if (shard->inbox_.capacity() < events_per_shard / 4) {
      shard->inbox_.reserve(events_per_shard / 4);
    }
  }
}

}  // namespace marlin::sim
