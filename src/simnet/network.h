// Simulated point-to-point network. Reproduces the paper's testbed model:
// a 40 ms injected one-way delay, 200 Mbps provisioned per link, and a
// 1 Gbps NIC per server whose egress serializes (this is what makes the
// leader the bandwidth bottleneck at large n). Supports crash faults,
// message drops, arbitrary directional filters (partitions), and a GST
// switch for partial synchrony: before GST messages suffer unbounded extra
// delay / loss, after GST delivery is bounded.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/scheduler.h"
#include "common/net_stats.h"
#include "common/payload.h"
#include "common/wire_codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "simnet/simulator.h"

namespace marlin::sim {

using NodeId = std::uint32_t;

/// Per-kind traffic accounting is shared with the real transport: the slot
/// table and classification live in common/wire_codec; these aliases keep
/// simnet call sites unchanged.
inline constexpr std::size_t kNetKindSlots = net::kNetKindSlots;

/// Stable label for a kind slot ("proposal", "vote", ...), mirroring
/// types::MsgKind wire values (delegates to wire::kind_slot_name).
inline std::string_view net_kind_name(std::size_t kind) {
  return wire::kind_slot_name(kind);
}

struct NetConfig {
  Duration one_way_delay = Duration::millis(40);
  Duration jitter = Duration::micros(500);  // uniform [0, jitter)
  double link_bandwidth_bps = 200e6;        // per ordered (src,dst) pair
  double nic_bandwidth_bps = 1e9;           // per-source egress
  double drop_probability = 0.0;            // after GST

  // Pre-GST behaviour (partial synchrony): extra delay uniform in
  // [0, pre_gst_extra_delay_max) and an extra drop probability.
  Duration pre_gst_extra_delay_max = Duration::zero();
  double pre_gst_drop_probability = 0.0;
};

/// Shared with the real transport (common/net_stats.h): both backends fill
/// the same wire-level counters, so traffic analysis works on either.
using NodeNetStats = net::NodeNetStats;

/// Receiver interface; implemented by replica/client runtimes. The payload
/// is refcounted and may be shared with other receivers of the same
/// broadcast — treat the bytes as immutable.
class NetworkNode {
 public:
  virtual ~NetworkNode() = default;
  virtual void on_message(NodeId from, Payload payload) = 0;
};

class Network {
 public:
  /// Backend-neutral construction: the scheduler drives deliveries, the rng
  /// feeds drop/jitter draws. Callers own the fork order of `rng` (it is
  /// part of the determinism contract).
  Network(marlin::Scheduler& sched, NetConfig config, Rng rng)
      : sched_(sched), config_(config), rng_(std::move(rng)) {}

  /// Legacy convenience: fork the network's rng stream from the simulator,
  /// exactly as every seeded run has always done (byte-identity contract).
  Network(Simulator& sim, NetConfig config)
      : Network(static_cast<marlin::Scheduler&>(sim), config,
                sim.rng().fork()) {}

  /// Registers a handler (non-owning; must outlive the network). `sched`
  /// optionally binds the node to its own scheduler (its shard's clock on
  /// the partitioned engine); defaults to the network-wide one. Deliveries
  /// to the node are posted on its scheduler, and sends from it read its
  /// clock — on a single-queue engine both are the global clock, so
  /// behaviour is unchanged.
  NodeId add_node(NetworkNode* handler, marlin::Scheduler* sched = nullptr);

  std::size_t node_count() const { return nodes_.size(); }

  /// Queues `payload` from → to through the NIC + link + propagation model.
  /// Self-sends deliver after a minimal local hop. The payload is
  /// refcounted: broadcasting the same Payload to n destinations shares one
  /// buffer across all n in-flight copies (implicit conversion from Bytes
  /// keeps single-destination call sites unchanged).
  void send(NodeId from, NodeId to, Payload payload);

  /// Before GST, pre-GST delay/drop applies; at/after it, bounds hold.
  /// Default GST = origin, i.e. the network starts synchronous.
  void set_gst(TimePoint gst) { gst_ = gst; }

  /// Reconfigures the pre-GST chaos parameters after construction (fault
  /// plans carry them per run; see faults::FaultKind::kGst).
  void set_pre_gst(Duration extra_delay_max, double drop_probability) {
    config_.pre_gst_extra_delay_max = extra_delay_max;
    config_.pre_gst_drop_probability = drop_probability;
  }

  /// Injected fault windows: additional loss probability / one-way delay on
  /// every link while set (drop reason kDropFault). Zero disables; a fault
  /// that was never injected consumes no rng draws, so fault-free runs stay
  /// bit-identical to runs on networks without these hooks.
  void set_extra_drop(double probability) { extra_drop_ = probability; }
  void set_extra_delay(Duration delay) { extra_delay_ = delay; }

  /// A down node neither sends nor receives (crash fault).
  void set_node_down(NodeId node, bool down);
  bool is_down(NodeId node) const;

  /// Directional reachability filter; return false to drop (partitions,
  /// targeted message suppression). Cleared with nullptr.
  void set_filter(std::function<bool(NodeId from, NodeId to)> filter) {
    filter_ = std::move(filter);
  }

  const NodeNetStats& stats(NodeId node) const;
  NodeNetStats total_stats() const;
  void reset_stats();

  /// Records kMsgDropped events for filtered / randomly lost sends
  /// (node = sender, a = destination, b = obs::kDropFilter / kDropRandom)
  /// and kMsgDelivered events at dequeue time (node = receiver, a = sender,
  /// b = NIC/link queueing ns, c = total send-to-arrival transit ns).
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Per-node sink override (sharded runs: each node records into its home
  /// shard's sink, so recording stays single-writer). Falls back to the
  /// global sink when unset. Call after add_node(node).
  void set_node_trace(NodeId node, obs::TraceSink* sink) {
    node_trace_[node] = sink;
  }

  /// Splits drop/jitter randomness into one stream per sender, forked from
  /// the network's stream in node-id order. Required on the partitioned
  /// engine, where senders draw concurrently and a shared stream would make
  /// the draw sequence depend on shard interleaving. Call once, after all
  /// add_node calls. (Legacy single-queue runs keep the shared stream:
  /// its draw order is pinned by the golden traces.)
  void split_rng_per_sender();

  /// Test-only hook: called on every delivery, just before the receiver's
  /// on_message, with the exact Payload instance being handed over. Lets
  /// tests assert buffer identity across receivers (zero-copy broadcast)
  /// without changing delivery behaviour. Cleared with nullptr.
  void set_delivery_probe(
      std::function<void(NodeId from, NodeId to, const Payload&)> probe) {
    delivery_probe_ = std::move(probe);
  }

  /// Exports per-node and per-kind traffic series into `reg`:
  ///   net.messages_sent{node=N}, net.bytes_sent{node=N}, ...
  ///   net.messages_sent{kind=vote}, net.bytes_sent{kind=vote}, ...
  void export_metrics(obs::MetricsRegistry& reg) const;

 private:
  obs::TraceSink* sink_for(NodeId node) const {
    obs::TraceSink* s = node_trace_[node];
    return s != nullptr ? s : trace_;
  }
  Rng& rng_for(NodeId from) {
    return sender_rng_.empty() ? rng_ : sender_rng_[from];
  }

  marlin::Scheduler& sched_;
  NetConfig config_;
  Rng rng_;
  std::vector<Rng> sender_rng_;  // empty = shared stream (legacy)
  TimePoint gst_;  // origin: synchronous from the start
  double extra_drop_ = 0.0;             // injected loss window (faults)
  Duration extra_delay_ = Duration::zero();  // injected slow-link window
  std::vector<NetworkNode*> nodes_;
  std::vector<marlin::Scheduler*> scheds_;  // per-node clock/queue binding
  std::vector<bool> down_;
  std::vector<NodeNetStats> stats_;
  std::vector<TimePoint> nic_free_;
  // Keyed per sender so concurrent shards never touch each other's
  // entries; a sender's sends are serialized on its home scheduler.
  std::vector<std::unordered_map<NodeId, TimePoint>> link_free_;
  std::function<bool(NodeId, NodeId)> filter_;
  std::function<void(NodeId, NodeId, const Payload&)> delivery_probe_;
  obs::TraceSink* trace_ = nullptr;
  std::vector<obs::TraceSink*> node_trace_;  // per-node overrides
};

}  // namespace marlin::sim
