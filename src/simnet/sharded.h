// Partitioned discrete-event engine for large clusters (n = 100..1000).
// Replica/client nodes are assigned round-robin to K shards; each shard
// owns a local event heap, cancellation slab, and clock, and the shards
// advance in lock-step lookahead windows executed by a worker pool:
//
//   barrier T:  run control-lane events due <= T (faults, GST — shards
//               quiescent, so they may mutate global network state), then
//               drain every shard's cross-shard inbox into its heap;
//   window:     shards run their events with T <= when < T + W in
//               parallel, W = the minimum one-way link delay (lookahead);
//   barrier T+W, repeat.
//
// The window rule is conservative PDES synchronization (cf. Berger et
// al.'s phase-accurate BFT simulations): every cross-node message arrives
// at least one link delay after it was sent, so an event executing in
// window [T, T+W) can only schedule onto another shard at times >= T + W —
// never into the window being executed. Cross-shard posts go through a
// mutex-protected inbox merged at the next barrier; intra-shard posts go
// straight into the local heap, allocation-free, exactly like the
// single-queue engine.
//
// Determinism: every event carries a globally deterministic key
// (when, origin node, origin sequence) — the origin counter is advanced
// only by the origin's own execution, which is itself deterministic — and
// shard heaps pop in strict key order. The executed schedule is therefore
// a pure function of the seed: invariant across shard counts K and worker
// counts (the k-invariance the determinism suite pins). It is a DIFFERENT
// deterministic schedule than the legacy single-queue engine's (when, seq)
// order; --shards 1 runs map to sim::Simulator, whose byte-identical
// golden traces stay the contract for the classic configurations.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/scheduler.h"
#include "common/sim_time.h"
#include "obs/trace.h"
#include "simnet/simulator.h"

namespace marlin::sim {

using NodeId = std::uint32_t;

class ShardedSimulator;

/// Per-node Scheduler facade: the handle a replica/client process (and the
/// network, for deliveries to that node) schedules through. Routes to the
/// node's home shard — directly when called from that shard's thread or a
/// quiescent barrier phase, through the inbox when called cross-shard.
class NodeScheduler final : public marlin::Scheduler {
 public:
  TimePoint now() const override;
  void post_at(TimePoint when, EventFn fn) override;
  TimerHandle schedule_at(TimePoint when, EventFn fn) override;

  NodeId node() const { return node_; }
  std::uint32_t shard() const { return shard_; }

 protected:
  void cancel_timer(std::uint32_t slot, std::uint32_t gen) override;
  bool timer_active(std::uint32_t slot, std::uint32_t gen) const override;

 private:
  friend class ShardedSimulator;
  NodeScheduler(ShardedSimulator* engine, std::uint32_t shard, NodeId node)
      : engine_(engine), shard_(shard), node_(node) {}

  ShardedSimulator* engine_;
  std::uint32_t shard_;
  NodeId node_;
  /// Origin sequence for events this node posts; advanced only by the home
  /// shard's thread (or quiescent phases), so no synchronization needed.
  std::uint64_t out_seq_ = 0;
};

class ShardedSimulator {
 public:
  struct Config {
    std::uint64_t seed = 42;
    std::uint32_t shards = 2;
    /// Worker threads executing shard windows; 0 = min(shards, hardware
    /// concurrency). 1 runs windows inline on the driving thread (still
    /// the same schedule: execution order is worker-count-invariant).
    std::uint32_t workers = 0;
    /// Conservative lookahead: must be > 0 and <= the minimum one-way
    /// network delay of the deployment it drives.
    Duration lookahead = Duration::millis(40);
  };

  explicit ShardedSimulator(const Config& config);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Setup-time randomness (forked by Cluster in a fixed order). Shares
  /// the seeding scheme with the legacy engine, so a sharded run issues
  /// the same client workload streams as a legacy run of the same seed.
  Rng& rng() { return control_.rng(); }

  std::uint32_t shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint32_t workers() const { return workers_; }
  Duration lookahead() const { return lookahead_; }

  /// The node's home-shard facade (created on first use; node % shards).
  /// Stable for the engine's lifetime.
  NodeScheduler* node_scheduler(NodeId node);

  /// Control lane: fault plans, and anything else that must run with every
  /// shard quiescent. Events here execute at window barriers (quantized UP
  /// to the next barrier), with their scheduled time on the clock.
  marlin::Scheduler& control() { return control_; }

  // -- tracing ---------------------------------------------------------------
  /// Creates one sink per shard plus a control-lane sink, each bound to
  /// its own clock, so recording stays single-writer under parallel
  /// windows. Call before running.
  void enable_tracing(std::size_t capacity_per_shard);
  bool tracing() const { return !shard_sinks_.empty(); }
  obs::TraceSink* shard_trace(std::uint32_t shard) {
    return shard_sinks_.empty() ? nullptr : shard_sinks_[shard].get();
  }
  obs::TraceSink* node_trace(NodeId node) {
    return shard_sinks_.empty() ? nullptr
                                : shard_sinks_[node % shards()].get();
  }
  obs::TraceSink* control_trace() { return control_sink_.get(); }
  /// Deterministic cross-shard view: all sink contents merged, ordered by
  /// (at, node, per-sink seq) — the same total order for every (K, workers)
  /// combination that produced the same schedule.
  std::vector<obs::TraceEvent> merged_trace() const;

  // -- driving ---------------------------------------------------------------
  /// Barrier time: every shard clock and the control clock have reached
  /// this point; no event before it remains anywhere.
  TimePoint now() const { return barrier_; }
  /// Advances in lookahead windows until `deadline` (inclusive, matching
  /// Simulator::run_until: events exactly at the deadline do run).
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(barrier_ + d); }

  std::uint64_t events_executed() const;
  std::size_t pending_events() const;

  /// Pre-sizes every shard's event heap and cancellation slab (and the
  /// inboxes) so steady state never grows them inside a window.
  void reserve(std::size_t events_per_shard, std::size_t timers_per_shard);

 private:
  friend class NodeScheduler;

  static constexpr std::uint32_t kNoSlot = ~0u;
  /// Origin id for events posted outside any node's execution (setup code,
  /// control-lane callbacks). Highest id: external ties run after node
  /// events at the same instant.
  static constexpr std::uint32_t kExternalOrigin = 0xffffffffu;

  struct Event {
    TimePoint when;
    std::uint32_t origin;  // posting node (kExternalOrigin outside nodes)
    std::uint32_t slot;    // cancellation slab index or kNoSlot
    std::uint64_t oseq;    // per-origin sequence number
    NodeScheduler* exec;   // facade this event was posted through
    EventFn fn;
  };

  struct Slot {
    std::uint32_t gen = 0;
    bool pending = false;
    bool cancelled = false;
  };

  /// Strict (when, origin, oseq) order: unique, globally deterministic,
  /// independent of which shard/worker inserted the event when.
  static bool earlier(const Event& a, const Event& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.origin != b.origin) return a.origin < b.origin;
    return a.oseq < b.oseq;
  }

  struct Shard {
    std::vector<Event> heap_;  // 4-ary min-heap, same shape as Simulator's
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_slots_;
    TimePoint clock_;
    std::uint64_t executed_ = 0;

    std::mutex inbox_mu_;
    std::vector<Event> inbox_;  // cross-shard arrivals, merged at barriers

    void push(Event ev);
    Event pop();
    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t slot);
    void drain_inbox();
  };

  void post_event(NodeScheduler* target, TimePoint when, std::uint32_t slot,
                  EventFn fn);
  /// Runs one shard's window up to `end` (exclusive, or inclusive for the
  /// final deadline pass) and leaves its clock at `end`.
  void run_window(Shard& shard, TimePoint end, bool inclusive);
  /// Dispatches run_window for every shard across the worker pool (or
  /// inline when workers == 1) and joins.
  void execute_windows(TimePoint end, bool inclusive);
  void worker_main();

  /// Execution context of the current thread: which shard's window is
  /// running and which node's event is executing. Null outside windows
  /// (setup, control-lane callbacks, barriers) — those phases are
  /// single-threaded and post with the external origin.
  static thread_local Shard* tls_shard_;
  static thread_local NodeScheduler* tls_node_;

  Simulator control_;  // control lane: single-queue engine at barriers
  Duration lookahead_;
  TimePoint barrier_;
  std::uint64_t external_seq_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<NodeScheduler>> facades_;  // index = node id
  std::vector<std::unique_ptr<obs::TraceSink>> shard_sinks_;
  std::unique_ptr<obs::TraceSink> control_sink_;

  // Worker pool (spawned only when workers_ > 1).
  std::uint32_t workers_ = 1;
  std::vector<std::thread> threads_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  TimePoint window_end_;
  bool window_inclusive_ = false;
  std::atomic<std::uint32_t> next_shard_{0};
  std::uint32_t done_count_ = 0;
  bool shutdown_ = false;
};

}  // namespace marlin::sim
