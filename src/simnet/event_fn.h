// EventFn moved to common/event_fn.h when the Scheduler interface was
// extracted (it is the callable type of marlin::Scheduler, shared by the
// sim engines and the realnet timer wheel). This shim keeps the historical
// sim::EventFn spelling and include path working.
#pragma once

#include "common/event_fn.h"

namespace marlin::sim {
using marlin::EventFn;
}  // namespace marlin::sim
