#include "simnet/network.h"

#include <cassert>
#include <string>

namespace marlin::sim {

namespace {
std::size_t kind_slot(const Payload& payload) {
  // Classification is the shared codec's: one table for both transports.
  return wire::kind_slot(payload.view());
}
}  // namespace

NodeId Network::add_node(NetworkNode* handler, marlin::Scheduler* sched) {
  assert(handler != nullptr);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(handler);
  scheds_.push_back(sched != nullptr ? sched : &sched_);
  down_.push_back(false);
  stats_.emplace_back();
  nic_free_.push_back(TimePoint::origin());
  link_free_.emplace_back();
  node_trace_.push_back(nullptr);
  return id;
}

void Network::split_rng_per_sender() {
  assert(sender_rng_.empty() && "split_rng_per_sender is one-shot");
  sender_rng_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    sender_rng_.push_back(rng_.fork());
  }
}

void Network::set_node_down(NodeId node, bool down) {
  assert(node < nodes_.size());
  down_[node] = down;
}

bool Network::is_down(NodeId node) const {
  assert(node < nodes_.size());
  return down_[node];
}

const NodeNetStats& Network::stats(NodeId node) const {
  assert(node < stats_.size());
  return stats_[node];
}

NodeNetStats Network::total_stats() const {
  NodeNetStats total;
  for (const auto& s : stats_) {
    total.messages_sent += s.messages_sent;
    total.bytes_sent += s.bytes_sent;
    total.messages_delivered += s.messages_delivered;
    total.bytes_delivered += s.bytes_delivered;
    total.messages_dropped += s.messages_dropped;
    for (std::size_t k = 0; k < kNetKindSlots; ++k) {
      total.msgs_sent_by_kind[k] += s.msgs_sent_by_kind[k];
      total.bytes_sent_by_kind[k] += s.bytes_sent_by_kind[k];
      total.msgs_delivered_by_kind[k] += s.msgs_delivered_by_kind[k];
      total.bytes_delivered_by_kind[k] += s.bytes_delivered_by_kind[k];
    }
  }
  return total;
}

void Network::export_metrics(obs::MetricsRegistry& reg) const {
  for (NodeId node = 0; node < stats_.size(); ++node) {
    const NodeNetStats& s = stats_[node];
    const std::string label = "node=" + std::to_string(node);
    reg.counter("net.messages_sent", label) += s.messages_sent;
    reg.counter("net.bytes_sent", label) += s.bytes_sent;
    reg.counter("net.messages_delivered", label) += s.messages_delivered;
    reg.counter("net.bytes_delivered", label) += s.bytes_delivered;
    reg.counter("net.messages_dropped", label) += s.messages_dropped;
  }
  const NodeNetStats total = total_stats();
  for (std::size_t k = 0; k < kNetKindSlots; ++k) {
    if (total.msgs_sent_by_kind[k] == 0 &&
        total.msgs_delivered_by_kind[k] == 0) {
      continue;
    }
    const std::string label = "kind=" + std::string(net_kind_name(k));
    reg.counter("net.messages_sent", label) += total.msgs_sent_by_kind[k];
    reg.counter("net.bytes_sent", label) += total.bytes_sent_by_kind[k];
    reg.counter("net.messages_delivered", label) +=
        total.msgs_delivered_by_kind[k];
    reg.counter("net.bytes_delivered", label) +=
        total.bytes_delivered_by_kind[k];
  }
}

void Network::reset_stats() {
  for (auto& s : stats_) s = NodeNetStats{};
}

void Network::send(NodeId from, NodeId to, Payload payload) {
  assert(from < nodes_.size() && to < nodes_.size());
  const std::size_t size = payload.size();
  const std::size_t kind = kind_slot(payload);
  auto& sender_stats = stats_[from];
  obs::TraceSink* sender_sink = sink_for(from);

  if (down_[from]) return;  // a crashed node emits nothing

  if (filter_ && !filter_(from, to)) {
    ++sender_stats.messages_dropped;
    if (sender_sink) {
      sender_sink->record({.node = from,
                           .type = obs::EventType::kMsgDropped,
                           .kind = static_cast<std::uint8_t>(kind),
                           .a = to,
                           .b = obs::kDropFilter});
    }
    return;
  }

  // Sends are attributed to the sender's clock: the global clock on the
  // single-queue engine, its home shard's on the partitioned one.
  const TimePoint now = scheds_[from]->now();
  const bool before_gst = now < gst_;
  Rng& rng = rng_for(from);

  double drop_p = config_.drop_probability;
  if (before_gst) drop_p += config_.pre_gst_drop_probability;
  if (drop_p > 0 && rng.next_bool(drop_p)) {
    ++sender_stats.messages_dropped;
    if (sender_sink) {
      sender_sink->record({.node = from,
                           .type = obs::EventType::kMsgDropped,
                           .kind = static_cast<std::uint8_t>(kind),
                           .a = to,
                           .b = obs::kDropRandom});
    }
    return;
  }

  // Injected drop-burst windows draw separately (and only while active) so
  // fault-free runs keep the exact rng stream they had before faults existed.
  if (extra_drop_ > 0 && rng.next_bool(extra_drop_)) {
    ++sender_stats.messages_dropped;
    if (sender_sink) {
      sender_sink->record({.node = from,
                           .type = obs::EventType::kMsgDropped,
                           .kind = static_cast<std::uint8_t>(kind),
                           .a = to,
                           .b = obs::kDropFault});
    }
    return;
  }

  ++sender_stats.messages_sent;
  sender_stats.bytes_sent += size;
  ++sender_stats.msgs_sent_by_kind[kind];
  sender_stats.bytes_sent_by_kind[kind] += size;

  if (from == to) {
    // Loopback: skip NIC/link, deliver after a tiny local hop.
    constexpr Duration kLocalHop = Duration::micros(5);
    const auto hop_ns = static_cast<std::uint64_t>(kLocalHop.as_nanos());
    scheds_[to]->post(kLocalHop, [this, from, to, kind, hop_ns,
                                  p = std::move(payload)]() mutable {
      if (down_[to]) return;
      auto& rs = stats_[to];
      ++rs.messages_delivered;
      rs.bytes_delivered += p.size();
      ++rs.msgs_delivered_by_kind[kind];
      rs.bytes_delivered_by_kind[kind] += p.size();
      if (obs::TraceSink* sink = sink_for(to)) {
        sink->record({.node = to,
                      .type = obs::EventType::kMsgDelivered,
                      .kind = static_cast<std::uint8_t>(kind),
                      .a = from,
                      .b = 0,
                      .c = hop_ns});
      }
      if (delivery_probe_) delivery_probe_(from, to, p);
      nodes_[to]->on_message(from, std::move(p));
    });
    return;
  }

  const double bits = static_cast<double>(size) * 8.0;

  // Stage 1: serialize through the sender's NIC (shared across links).
  const TimePoint nic_start = std::max(now, nic_free_[from]);
  const Duration nic_tx =
      Duration::from_seconds_f(bits / config_.nic_bandwidth_bps);
  const TimePoint nic_end = nic_start + nic_tx;
  nic_free_[from] = nic_end;

  // Stage 2: serialize through the provisioned link (per ordered pair;
  // the table is keyed by sender, so only from's scheduler touches it).
  auto [it, inserted] = link_free_[from].try_emplace(to, TimePoint::origin());
  const TimePoint link_start = std::max(nic_end, it->second);
  const Duration link_tx =
      Duration::from_seconds_f(bits / config_.link_bandwidth_bps);
  const TimePoint link_end = link_start + link_tx;
  it->second = link_end;

  // Stage 3: propagation delay (+ jitter, + pre-GST chaos).
  Duration extra = Duration::zero();
  if (config_.jitter > Duration::zero()) {
    extra += Duration::nanos(static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(config_.jitter.as_nanos()))));
  }
  if (before_gst && config_.pre_gst_extra_delay_max > Duration::zero()) {
    extra += Duration::nanos(static_cast<std::int64_t>(rng.next_below(
        static_cast<std::uint64_t>(config_.pre_gst_extra_delay_max.as_nanos()))));
  }
  extra += extra_delay_;  // injected slow-link window (no rng draw)
  const TimePoint arrival = link_end + config_.one_way_delay + extra;

  // Queueing vs transit split for the dequeue-side attribution event:
  // waiting for a busy NIC or link is queueing; serialization + propagation
  // (+ jitter / pre-GST chaos) is wire transit.
  const Duration queue_delay = (nic_start - now) + (link_start - nic_end);
  const Duration transit = arrival - now;

  scheds_[to]->post_at(arrival, [this, from, to, kind, queue_delay, transit,
                                 p = std::move(payload)]() mutable {
    if (down_[to]) return;
    auto& rs = stats_[to];
    ++rs.messages_delivered;
    rs.bytes_delivered += p.size();
    ++rs.msgs_delivered_by_kind[kind];
    rs.bytes_delivered_by_kind[kind] += p.size();
    if (obs::TraceSink* sink = sink_for(to)) {
      sink->record({.node = to,
                    .type = obs::EventType::kMsgDelivered,
                    .kind = static_cast<std::uint8_t>(kind),
                    .a = from,
                    .b = static_cast<std::uint64_t>(queue_delay.as_nanos()),
                    .c = static_cast<std::uint64_t>(transit.as_nanos())});
    }
    if (delivery_probe_) delivery_probe_(from, to, p);
    nodes_[to]->on_message(from, std::move(p));
  });
}

}  // namespace marlin::sim
