#include "simnet/network.h"

#include <cassert>

namespace marlin::sim {

NodeId Network::add_node(NetworkNode* handler) {
  assert(handler != nullptr);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(handler);
  down_.push_back(false);
  stats_.emplace_back();
  nic_free_.push_back(TimePoint::origin());
  return id;
}

void Network::set_node_down(NodeId node, bool down) {
  assert(node < nodes_.size());
  down_[node] = down;
}

bool Network::is_down(NodeId node) const {
  assert(node < nodes_.size());
  return down_[node];
}

const NodeNetStats& Network::stats(NodeId node) const {
  assert(node < stats_.size());
  return stats_[node];
}

NodeNetStats Network::total_stats() const {
  NodeNetStats total;
  for (const auto& s : stats_) {
    total.messages_sent += s.messages_sent;
    total.bytes_sent += s.bytes_sent;
    total.messages_delivered += s.messages_delivered;
    total.bytes_delivered += s.bytes_delivered;
    total.messages_dropped += s.messages_dropped;
  }
  return total;
}

void Network::reset_stats() {
  for (auto& s : stats_) s = NodeNetStats{};
}

void Network::send(NodeId from, NodeId to, Bytes payload) {
  assert(from < nodes_.size() && to < nodes_.size());
  const std::size_t size = payload.size();
  auto& sender_stats = stats_[from];

  if (down_[from]) return;  // a crashed node emits nothing

  if (filter_ && !filter_(from, to)) {
    ++sender_stats.messages_dropped;
    return;
  }

  const TimePoint now = sim_.now();
  const bool before_gst = now < gst_;

  double drop_p = config_.drop_probability;
  if (before_gst) drop_p += config_.pre_gst_drop_probability;
  if (drop_p > 0 && rng_.next_bool(drop_p)) {
    ++sender_stats.messages_dropped;
    return;
  }

  ++sender_stats.messages_sent;
  sender_stats.bytes_sent += size;

  if (from == to) {
    // Loopback: skip NIC/link, deliver after a tiny local hop.
    sim_.schedule(Duration::micros(5), [this, from, to,
                                        p = std::move(payload)]() mutable {
      if (down_[to]) return;
      auto& rs = stats_[to];
      ++rs.messages_delivered;
      rs.bytes_delivered += p.size();
      nodes_[to]->on_message(from, std::move(p));
    });
    return;
  }

  const double bits = static_cast<double>(size) * 8.0;

  // Stage 1: serialize through the sender's NIC (shared across links).
  const TimePoint nic_start = std::max(now, nic_free_[from]);
  const Duration nic_tx =
      Duration::from_seconds_f(bits / config_.nic_bandwidth_bps);
  const TimePoint nic_end = nic_start + nic_tx;
  nic_free_[from] = nic_end;

  // Stage 2: serialize through the provisioned link (per ordered pair).
  const std::uint64_t key = pair_key(from, to);
  auto [it, inserted] = link_free_.try_emplace(key, TimePoint::origin());
  const TimePoint link_start = std::max(nic_end, it->second);
  const Duration link_tx =
      Duration::from_seconds_f(bits / config_.link_bandwidth_bps);
  const TimePoint link_end = link_start + link_tx;
  it->second = link_end;

  // Stage 3: propagation delay (+ jitter, + pre-GST chaos).
  Duration extra = Duration::zero();
  if (config_.jitter > Duration::zero()) {
    extra += Duration::nanos(static_cast<std::int64_t>(
        rng_.next_below(static_cast<std::uint64_t>(config_.jitter.as_nanos()))));
  }
  if (before_gst && config_.pre_gst_extra_delay_max > Duration::zero()) {
    extra += Duration::nanos(static_cast<std::int64_t>(rng_.next_below(
        static_cast<std::uint64_t>(config_.pre_gst_extra_delay_max.as_nanos()))));
  }
  const TimePoint arrival = link_end + config_.one_way_delay + extra;

  sim_.schedule_at(arrival, [this, from, to, p = std::move(payload)]() mutable {
    if (down_[to]) return;
    auto& rs = stats_[to];
    ++rs.messages_delivered;
    rs.bytes_delivered += p.size();
    nodes_[to]->on_message(from, std::move(p));
  });
}

}  // namespace marlin::sim
