// Deterministic PRNG (xoshiro256**). Every simulation component draws from
// a seeded Rng so whole experiments replay bit-identically; never use
// std::random_device or wall-clock inside the simulator.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace marlin {

class Rng {
 public:
  /// Seeds via splitmix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

  /// Fills `n` random bytes.
  Bytes next_bytes(std::size_t n);

  /// Derives an independent child stream (e.g. one per replica).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace marlin
