// Identifier types shared across the consensus stack. Plain integral
// aliases (not strong types) because they cross wire formats constantly;
// naming keeps call sites honest.
#pragma once

#include <cstdint>

namespace marlin {

/// Index of a replica in [0, n).
using ReplicaId = std::uint32_t;

/// Monotonically increasing view number; views start at 1, 0 means "none".
using ViewNumber = std::uint64_t;

/// Height of a block in the tree; genesis has height 0.
using Height = std::uint64_t;

/// Client process identifier.
using ClientId = std::uint32_t;

/// Per-client monotonically increasing request sequence number.
using RequestId = std::uint64_t;

inline constexpr ReplicaId kNoReplica = ~0u;

/// Quorum sizes for n = 3f + 1 deployments.
struct QuorumParams {
  std::uint32_t n = 0;
  std::uint32_t f = 0;

  static constexpr QuorumParams for_f(std::uint32_t f) {
    return QuorumParams{3 * f + 1, f};
  }
  /// n - f: votes needed for a quorum certificate.
  constexpr std::uint32_t quorum() const { return n - f; }
  /// f + 1: matching client replies needed to accept a response.
  constexpr std::uint32_t reply_quorum() const { return f + 1; }
  constexpr bool valid() const { return n >= 3 * f + 1 && n > 0; }
};

}  // namespace marlin
