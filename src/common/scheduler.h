// Backend-neutral scheduling surface. ProtocolEnv implementations, the
// network model, the virtual-CPU processor, and fault/telemetry plumbing
// all need "what time is it" plus "run this later (maybe cancellable)" —
// and nothing else. Scheduler is that contract, implemented by:
//  - sim::Simulator            (legacy single-queue discrete-event engine)
//  - sim::ShardedSimulator     (per-shard clocks, lookahead windows)
//  - realnet::TimerWheel       (hashed wheel driven by an epoll EventLoop)
// Callers hold a Scheduler& and stop naming the backend type, so the same
// host code runs on one global clock, a shard-local clock, or wall time.
//
// Handles use the generation-counted-slab idiom every backend already
// spoke (see simnet/simulator.h): cancel() on a fired/stale handle is a
// no-op, detected via the slot's generation counter. A TimerHandle must
// not outlive its Scheduler.
#pragma once

#include <cstdint>
#include <utility>

#include "common/event_fn.h"
#include "common/sim_time.h"

namespace marlin {

class Scheduler;

/// Cancellation handle for a scheduled event. Default-constructed handles
/// are inert; cancelling an already-fired event (or one whose slot was
/// recycled for a newer event) is a no-op.
class TimerHandle {
 public:
  TimerHandle() = default;
  inline void cancel();
  inline bool active() const;

 private:
  friend class Scheduler;
  TimerHandle(Scheduler* sched, std::uint32_t slot, std::uint32_t gen)
      : sched_(sched), slot_(slot), gen_(gen) {}
  Scheduler* sched_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Current time on this scheduler's clock: virtual sim time for the
  /// simulated backends, the monotonic clock for realnet.
  virtual TimePoint now() const = 0;

  /// Fire-and-forget scheduling: no cancellation handle, no slab slot.
  /// Negative delays clamp to zero. Prefer this when the handle would be
  /// dropped — it is the allocation-free hot path on the sim backends.
  void post(Duration delay, EventFn fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    post_at(now() + delay, std::move(fn));
  }
  virtual void post_at(TimePoint when, EventFn fn) = 0;

  /// Schedules `fn` and returns a cancellation handle (costs a slab slot).
  /// Negative delays clamp to zero.
  TimerHandle schedule(Duration delay, EventFn fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    return schedule_at(now() + delay, std::move(fn));
  }
  virtual TimerHandle schedule_at(TimePoint when, EventFn fn) = 0;

 protected:
  friend class TimerHandle;

  /// Slab hooks backing TimerHandle: same (slot, gen) protocol in every
  /// backend, so the handle type is shared rather than per-engine.
  virtual void cancel_timer(std::uint32_t slot, std::uint32_t gen) = 0;
  virtual bool timer_active(std::uint32_t slot, std::uint32_t gen) const = 0;

  /// Mints a handle owned by this scheduler (TimerHandle's ctor is
  /// private; only Scheduler implementations create live handles).
  TimerHandle make_handle(std::uint32_t slot, std::uint32_t gen) {
    return TimerHandle(this, slot, gen);
  }
};

inline void TimerHandle::cancel() {
  if (sched_ != nullptr) sched_->cancel_timer(slot_, gen_);
}

inline bool TimerHandle::active() const {
  return sched_ != nullptr && sched_->timer_active(slot_, gen_);
}

}  // namespace marlin
