#include "common/sim_time.h"

#include <cstdio>

namespace marlin {

std::string Duration::to_string() const {
  char buf[48];
  const double abs_ns = ns_ < 0 ? -static_cast<double>(ns_) : static_cast<double>(ns_);
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%ldns", static_cast<long>(ns_));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns_) / 1e3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns_) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns_) / 1e9);
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.6fs", as_seconds_f());
  return buf;
}

}  // namespace marlin
