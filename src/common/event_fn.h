// Small-buffer-optimized, move-only callable for scheduler events.
// std::function heap-allocates any capturing lambda beyond ~16 trivially
// copyable bytes, which made every scheduled network delivery (capturing a
// payload plus routing metadata) cost an allocation. EventFn stores
// callables up to kInlineSize bytes inline — enough for every hot-path
// event in this repo — and only falls back to the heap for oversized or
// over-aligned captures. Move-only, so events can also capture move-only
// state.
//
// Lives in common/ because it is the callable type of the backend-neutral
// marlin::Scheduler interface (common/scheduler.h): the simulated engine,
// the sharded engine, and the realnet timer wheel all store EventFns.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace marlin {

class EventFn {
 public:
  /// Fits the fattest hot-path capture (network delivery: this + route +
  /// timing attribution + a refcounted Payload) with headroom.
  static constexpr std::size_t kInlineSize = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  EventFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventFn(F&& f) {  // NOLINT: implicit by design (callable wrapper)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the callable into `dst` and destroys the source.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static Fn* as_inline(void* s) {
    return std::launder(reinterpret_cast<Fn*>(s));
  }
  template <typename Fn>
  static Fn** as_heap(void* s) {
    return std::launder(reinterpret_cast<Fn**>(s));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* s) { (*as_inline<Fn>(s))(); },
      [](void* dst, void* src) {
        Fn* f = as_inline<Fn>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) { as_inline<Fn>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* s) { (**as_heap<Fn>(s))(); },
      [](void* dst, void* src) { ::new (dst) Fn*(*as_heap<Fn>(src)); },
      [](void* s) { delete *as_heap<Fn>(s); },
  };

  void move_from(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace marlin
