#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace marlin {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// The simulator is single-threaded, so a plain function object suffices;
// only the level threshold stays atomic (it predates the sink hook).
LogSink g_sink;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogSink set_log_sink(LogSink sink) {
  LogSink prev = std::move(g_sink);
  g_sink = std::move(sink);
  return prev;
}

void log_message(LogLevel level, const char* file, int line, const char* fmt,
                 ...) {
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof body, fmt, args);
  va_end(args);
  if (g_sink) {
    g_sink(level, file, line, body);
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_tag(level), basename_of(file),
               line, body);
}

ScopedLogCapture::ScopedLogCapture(LogLevel capture_level)
    : prev_level_(log_level()) {
  prev_sink_ = set_log_sink([this](LogLevel level, const char* file, int line,
                                   const char* body) {
    std::string entry = level_tag(level);
    entry += ' ';
    entry += basename_of(file);
    entry += ':';
    entry += std::to_string(line);
    entry += ' ';
    entry += body;
    lines_.push_back(std::move(entry));
  });
  set_log_level(capture_level);
}

ScopedLogCapture::~ScopedLogCapture() {
  set_log_sink(std::move(prev_sink_));
  set_log_level(prev_level_);
}

bool ScopedLogCapture::contains(const std::string& needle) const {
  for (const std::string& line : lines_) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace marlin
