#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace marlin::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Result<Value> parse() {
    auto v = value();
    if (!v.is_ok()) return v;
    skip_ws();
    if (pos_ != s_.size()) {
      return fail("trailing content after JSON document");
    }
    return v;
  }

 private:
  Status fail(const std::string& what) {
    return error(ErrorCode::kInvalidArgument,
                 what + " (at byte " + std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> value() {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s.is_ok()) return s.status();
      return Value{std::move(s).take()};
    }
    if (c == 't' || c == 'f' || c == 'n') return literal();
    return number();
  }

  Result<Value> literal() {
    auto match = [&](std::string_view word) {
      if (s_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) return Value{true};
    if (match("false")) return Value{false};
    if (match("null")) return Value{nullptr};
    return fail("unknown literal");
  }

  Result<Value> number() {
    const char* start = s_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return fail("expected a number");
    pos_ += static_cast<std::size_t>(end - start);
    return Value{v};
  }

  Result<std::string> string() {
    if (!eat('"')) return fail("expected '\"'");
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::strtoul(std::string(s_.substr(pos_, 4)).c_str(),
                             nullptr, 16));
            pos_ += 4;
            // Config strings are ASCII names; map non-ASCII to '?'.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  Result<Value> array() {
    if (!eat('[')) return fail("expected '['");
    Array out;
    if (eat(']')) return Value{std::move(out)};
    while (true) {
      auto v = value();
      if (!v.is_ok()) return v;
      out.push_back(std::move(v).take());
      if (eat(']')) return Value{std::move(out)};
      if (!eat(',')) return fail("expected ',' or ']'");
    }
  }

  Result<Value> object() {
    if (!eat('{')) return fail("expected '{'");
    Object out;
    if (eat('}')) return Value{std::move(out)};
    while (true) {
      skip_ws();
      auto key = string();
      if (!key.is_ok()) return key.status();
      if (!eat(':')) return fail("expected ':'");
      auto v = value();
      if (!v.is_ok()) return v;
      out.emplace(std::move(key).take(), std::move(v).take());
      if (eat('}')) return Value{std::move(out)};
      if (!eat(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).parse(); }

double get_num(const Object& o, const std::string& key, double fallback) {
  auto it = o.find(key);
  if (it == o.end()) return fallback;
  const double* n = it->second.num();
  return n ? *n : fallback;
}

bool get_bool(const Object& o, const std::string& key, bool fallback) {
  auto it = o.find(key);
  if (it == o.end()) return fallback;
  const bool* b = std::get_if<bool>(&it->second.v);
  return b ? *b : fallback;
}

std::string get_str(const Object& o, const std::string& key,
                    const std::string& fallback) {
  auto it = o.find(key);
  if (it == o.end()) return fallback;
  const std::string* s = it->second.str();
  return s ? *s : fallback;
}

const Object* get_object(const Object& o, const std::string& key) {
  auto it = o.find(key);
  return it == o.end() ? nullptr : it->second.object();
}

}  // namespace marlin::json
