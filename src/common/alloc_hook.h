// Heap-allocation instrumentation for benches and tests. Linking the
// `marlin_alloc_hook` library into a binary replaces the global operator
// new/delete with counting versions; marlin::alloc_hook::allocations()
// then reports how many allocations happened since the last reset().
//
// This is how bench_selfperf measures allocations/event on the simulator
// hot path and how simnet_test asserts the event engine allocates nothing
// in steady state. Binaries that do not link the hook must not call these
// functions (they are defined in the same translation unit as the
// replacement operators, so the linker pulls both in together).
#pragma once

#include <cstdint>

namespace marlin::alloc_hook {

/// Number of operator-new calls (all variants) since the last reset().
std::uint64_t allocations();
/// Total bytes requested from operator new since the last reset().
std::uint64_t bytes();
/// Zeroes both counters.
void reset();

}  // namespace marlin::alloc_hook
