// Counting replacements for the global allocation functions. Kept in one
// translation unit with the counter accessors so that referencing
// marlin::alloc_hook::allocations() links the operators in as well.
#include "common/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  // malloc(0) may return nullptr; operator new must not.
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded ? rounded : align);
}

}  // namespace

namespace marlin::alloc_hook {

std::uint64_t allocations() {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t bytes() { return g_bytes.load(std::memory_order_relaxed); }

void reset() {
  g_allocs.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace marlin::alloc_hook

// -- global replacements ------------------------------------------------------

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
