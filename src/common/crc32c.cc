#include "common/crc32c.h"

#include <array>

namespace marlin {

namespace {
constexpr std::uint32_t kPoly = 0x82f63b78;  // reflected CRC-32C polynomial

std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = build_table();
  return t;
}
}  // namespace

std::uint32_t crc32c(BytesView data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  const auto& t = table();
  for (std::uint8_t b : data) {
    crc = (crc >> 8) ^ t[(crc ^ b) & 0xff];
  }
  return ~crc;
}

std::uint32_t crc32c_masked(BytesView data) {
  const std::uint32_t crc = crc32c(data);
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

}  // namespace marlin
