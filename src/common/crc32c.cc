#include "common/crc32c.h"

#include <array>
#include <bit>
#include <cstring>

namespace marlin {

namespace {
constexpr std::uint32_t kPoly = 0x82f63b78;  // reflected CRC-32C polynomial

// Slicing-by-8 tables: table[0] is the classic byte table, table[k] advances
// a byte that is k positions further from the end of the window.
std::array<std::array<std::uint32_t, 256>, 8> build_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    t[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
    }
  }
  return t;
}

const std::array<std::array<std::uint32_t, 256>, 8>& tables() {
  static const auto t = build_tables();
  return t;
}

std::uint32_t crc_update_sw(std::uint32_t crc, const std::uint8_t* p,
                            std::size_t n) {
  const auto& t = tables();
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo, hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= crc;
      crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^
            t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^ t[3][hi & 0xff] ^
            t[2][(hi >> 8) & 0xff] ^ t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n--) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MARLIN_HW_CRC 1
__attribute__((target("sse4.2"))) std::uint32_t crc_update_hw(
    std::uint32_t crc, const std::uint8_t* p, std::size_t n) {
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    n -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  if (n >= 4) {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    c32 = __builtin_ia32_crc32si(c32, v);
    p += 4;
    n -= 4;
  }
  while (n--) {
    c32 = __builtin_ia32_crc32qi(c32, *p++);
  }
  return c32;
}
#endif

std::uint32_t crc_update(std::uint32_t crc, const std::uint8_t* p,
                         std::size_t n) {
#ifdef MARLIN_HW_CRC
  // The SSE4.2 crc32 instruction implements exactly this polynomial; the
  // software path exists for non-x86 builds and machines without SSE4.2.
  static const bool hw = __builtin_cpu_supports("sse4.2");
  if (hw) return crc_update_hw(crc, p, n);
#endif
  return crc_update_sw(crc, p, n);
}

}  // namespace

std::uint32_t crc32c(BytesView data, std::uint32_t seed) {
  return ~crc_update(~seed, data.data(), data.size());
}

std::uint32_t crc32c_masked(BytesView data) {
  const std::uint32_t crc = crc32c(data);
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

}  // namespace marlin
