// Refcounted immutable byte buffer: the unit of zero-copy message passing
// in the simulated network. A broadcast serializes its envelope into one
// Payload and every receiver shares the same underlying buffer; copying a
// Payload bumps a refcount instead of copying bytes. Immutability is what
// makes the sharing safe — anything that needs to tamper with a frame
// (faults::ByzantineBox) must build a new Payload (copy-on-write).
#pragma once

#include <memory>

#include "common/bytes.h"

namespace marlin {

class Payload {
 public:
  /// Empty payload (no buffer attached).
  Payload() = default;

  /// Takes ownership of `bytes` (one allocation for the shared control
  /// block; the byte buffer itself is moved, not copied). Implicit so call
  /// sites can keep passing `Bytes` where a Payload is expected.
  Payload(Bytes bytes)
      : data_(std::make_shared<const Bytes>(std::move(bytes))) {}

  const Bytes& bytes() const { return data_ ? *data_ : empty_bytes(); }
  BytesView view() const { return bytes(); }
  std::size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }
  const std::uint8_t* data() const {
    return data_ ? data_->data() : nullptr;
  }
  std::uint8_t operator[](std::size_t i) const { return (*data_)[i]; }

  /// True when a buffer is attached (even a zero-length one).
  bool has_value() const { return data_ != nullptr; }

  /// True when both payloads alias the same underlying buffer — the
  /// property the zero-copy broadcast tests pin (one serialization, n
  /// receivers).
  bool shares_buffer(const Payload& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

  long use_count() const { return data_.use_count(); }

 private:
  static const Bytes& empty_bytes() {
    static const Bytes kEmpty;
    return kEmpty;
  }

  std::shared_ptr<const Bytes> data_;
};

}  // namespace marlin
