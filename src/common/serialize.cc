#include "common/serialize.h"

namespace marlin {

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::i64(std::int64_t v) {
  u64(static_cast<std::uint64_t>(v));
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void Writer::bytes(BytesView v) {
  varint(v.size());
  raw(v);
}

void Writer::str(std::string_view v) {
  varint(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::raw(BytesView v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

Status Reader::need(std::size_t n) const {
  if (remaining() < n) {
    return error(ErrorCode::kCorruption, "truncated input");
  }
  return Status::ok();
}

Status Reader::u8(std::uint8_t& out) {
  if (Status s = need(1); !s.is_ok()) return s;
  out = data_[pos_++];
  return Status::ok();
}

Status Reader::u16(std::uint16_t& out) {
  if (Status s = need(2); !s.is_ok()) return s;
  out = static_cast<std::uint16_t>(data_[pos_] |
                                   (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return Status::ok();
}

Status Reader::u32(std::uint32_t& out) {
  if (Status s = need(4); !s.is_ok()) return s;
  out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return Status::ok();
}

Status Reader::u64(std::uint64_t& out) {
  if (Status s = need(8); !s.is_ok()) return s;
  out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return Status::ok();
}

Status Reader::i64(std::int64_t& out) {
  std::uint64_t u = 0;
  if (Status s = u64(u); !s.is_ok()) return s;
  out = static_cast<std::int64_t>(u);
  return Status::ok();
}

Status Reader::varint(std::uint64_t& out) {
  out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    std::uint8_t byte = 0;
    if (Status s = u8(byte); !s.is_ok()) return s;
    out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical ("0x80 0x00") and overlong encodings.
      if (byte == 0 && shift != 0) {
        return error(ErrorCode::kCorruption, "non-canonical varint");
      }
      if (shift == 63 && byte > 1) {
        return error(ErrorCode::kCorruption, "varint overflow");
      }
      return Status::ok();
    }
  }
  return error(ErrorCode::kCorruption, "varint too long");
}

Status Reader::boolean(bool& out) {
  std::uint8_t b = 0;
  if (Status s = u8(b); !s.is_ok()) return s;
  if (b > 1) return error(ErrorCode::kCorruption, "bad boolean");
  out = b == 1;
  return Status::ok();
}

Status Reader::bytes(Bytes& out) {
  std::uint64_t len = 0;
  if (Status s = varint(len); !s.is_ok()) return s;
  return raw(static_cast<std::size_t>(len), out);
}

Status Reader::str(std::string& out) {
  Bytes tmp;
  if (Status s = bytes(tmp); !s.is_ok()) return s;
  out.assign(tmp.begin(), tmp.end());
  return Status::ok();
}

Status Reader::raw(std::size_t n, Bytes& out) {
  if (Status s = need(n); !s.is_ok()) return s;
  out.assign(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return Status::ok();
}

Status Reader::expect_exhausted() const {
  if (!exhausted()) {
    return error(ErrorCode::kCorruption, "trailing bytes after message");
  }
  return Status::ok();
}

}  // namespace marlin
