// Byte-buffer utilities shared by every subsystem: the canonical `Bytes`
// type, hex encoding/decoding, and constant-time comparison for secrets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace marlin {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encodes `data` as lowercase hexadecimal ("deadbeef").
std::string to_hex(BytesView data);

/// Decodes a hex string (case-insensitive, no 0x prefix). Returns
/// std::nullopt on odd length or non-hex characters.
std::optional<Bytes> from_hex(std::string_view hex);

/// Converts an ASCII string to bytes (no encoding transformation).
Bytes to_bytes(std::string_view s);

/// Constant-time equality; use for MAC/signature comparison so timing does
/// not leak match prefixes. Returns false on length mismatch.
bool constant_time_equal(BytesView a, BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

}  // namespace marlin
