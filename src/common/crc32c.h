// CRC-32C (Castagnoli), software table implementation. Guards every WAL
// record and SSTable footer in the storage engine.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace marlin {

std::uint32_t crc32c(BytesView data, std::uint32_t seed = 0);

/// Masked CRC (LevelDB-style) so a CRC stored inside CRC'd content does not
/// degenerate.
std::uint32_t crc32c_masked(BytesView data);

}  // namespace marlin
