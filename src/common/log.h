// Minimal leveled logger. Consensus modules log through this so tests can
// silence output and experiments can dial verbosity per run. Formatting is
// printf-style to avoid iostream state bugs across threads.
#pragma once

#include <cstdarg>
#include <string>

namespace marlin {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Core sink; prefer the MLOG_* macros.
void log_message(LogLevel level, const char* file, int line, const char* fmt,
                 ...) __attribute__((format(printf, 4, 5)));

}  // namespace marlin

#define MLOG_AT(level, ...)                                              \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::marlin::log_level())) \
      ::marlin::log_message(level, __FILE__, __LINE__, __VA_ARGS__);     \
  } while (0)

#define MLOG_TRACE(...) MLOG_AT(::marlin::LogLevel::kTrace, __VA_ARGS__)
#define MLOG_DEBUG(...) MLOG_AT(::marlin::LogLevel::kDebug, __VA_ARGS__)
#define MLOG_INFO(...) MLOG_AT(::marlin::LogLevel::kInfo, __VA_ARGS__)
#define MLOG_WARN(...) MLOG_AT(::marlin::LogLevel::kWarn, __VA_ARGS__)
#define MLOG_ERROR(...) MLOG_AT(::marlin::LogLevel::kError, __VA_ARGS__)
