// Minimal leveled logger. Consensus modules log through this so tests can
// silence output and experiments can dial verbosity per run. Formatting is
// printf-style to avoid iostream state bugs across threads.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>
#include <vector>

namespace marlin {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Where formatted messages go. `body` is the formatted text without the
/// "[LEVEL file:line]" prefix. The default (empty) sink prints to stderr.
using LogSink =
    std::function<void(LogLevel level, const char* file, int line,
                       const char* body)>;

/// Replaces the sink; pass an empty function to restore stderr output.
/// Returns the previous sink so callers can nest and restore.
LogSink set_log_sink(LogSink sink);

/// Core entry point; prefer the MLOG_* macros.
void log_message(LogLevel level, const char* file, int line, const char* fmt,
                 ...) __attribute__((format(printf, 4, 5)));

/// RAII capture of MLOG_* output for tests: installs a collecting sink and
/// lowers the level threshold, restoring both on destruction.
class ScopedLogCapture {
 public:
  explicit ScopedLogCapture(LogLevel capture_level = LogLevel::kTrace);
  ~ScopedLogCapture();
  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  /// Captured lines, formatted as "LEVEL file:line body", oldest first.
  const std::vector<std::string>& lines() const { return lines_; }
  /// True when any captured line contains `needle`.
  bool contains(const std::string& needle) const;
  void clear() { lines_.clear(); }

 private:
  std::vector<std::string> lines_;
  LogSink prev_sink_;
  LogLevel prev_level_;
};

}  // namespace marlin

#define MLOG_AT(level, ...)                                              \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::marlin::log_level())) \
      ::marlin::log_message(level, __FILE__, __LINE__, __VA_ARGS__);     \
  } while (0)

#define MLOG_TRACE(...) MLOG_AT(::marlin::LogLevel::kTrace, __VA_ARGS__)
#define MLOG_DEBUG(...) MLOG_AT(::marlin::LogLevel::kDebug, __VA_ARGS__)
#define MLOG_INFO(...) MLOG_AT(::marlin::LogLevel::kInfo, __VA_ARGS__)
#define MLOG_WARN(...) MLOG_AT(::marlin::LogLevel::kWarn, __VA_ARGS__)
#define MLOG_ERROR(...) MLOG_AT(::marlin::LogLevel::kError, __VA_ARGS__)
