// Minimal JSON document model + recursive-descent parser covering the
// schemas this repo reads back (fault plans, cluster configs, pinned bench
// baselines): objects, arrays, strings, numbers, true/false/null. The repo
// intentionally has no general JSON dependency; writers emit JSON by hand
// (obs/export, FaultPlan::to_json) and readers parse with this.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace marlin::json {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v =
      nullptr;

  const Object* object() const { return std::get_if<Object>(&v); }
  const Array* array() const { return std::get_if<Array>(&v); }
  const std::string* str() const { return std::get_if<std::string>(&v); }
  const double* num() const { return std::get_if<double>(&v); }
};

/// Parses a complete JSON document; errors carry the byte offset.
Result<Value> parse(std::string_view text);

// -- typed field accessors ---------------------------------------------------
// Convenience lookups for config-style objects: each returns the fallback
// when the key is absent or holds a different type.

double get_num(const Object& o, const std::string& key, double fallback);
bool get_bool(const Object& o, const std::string& key, bool fallback);
std::string get_str(const Object& o, const std::string& key,
                    const std::string& fallback);
const Object* get_object(const Object& o, const std::string& key);

}  // namespace marlin::json
