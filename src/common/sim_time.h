// Virtual time for the discrete-event simulator. Nanosecond resolution,
// 64-bit signed (≈292 years of simulated time). Strong types keep durations
// and instants from being mixed up.
#pragma once

#include <cstdint>
#include <string>

namespace marlin {

/// A span of virtual time in nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration micros(std::int64_t us) { return Duration(us * 1000); }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1000000); }
  static constexpr Duration seconds(std::int64_t s) { return Duration(s * 1000000000); }
  static constexpr Duration from_seconds_f(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Duration zero() { return Duration(0); }

  constexpr std::int64_t as_nanos() const { return ns_; }
  constexpr double as_micros_f() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double as_millis_f() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double as_seconds_f() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

  std::string to_string() const;  // "12.345ms"

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An instant on the simulator's virtual clock (ns since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_nanos(std::int64_t n) { return TimePoint(n); }
  static constexpr TimePoint origin() { return TimePoint(0); }

  constexpr std::int64_t as_nanos() const { return ns_; }
  constexpr double as_seconds_f() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(ns_ + d.as_nanos());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(ns_ - d.as_nanos());
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::nanos(ns_ - o.ns_);
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string to_string() const;  // "t=1.234567s"

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace marlin
