// Execution seam for deferrable signature/MAC verification work.
//
// Replica ingress (consensus/replica_base.h's ingress()) plans a
// self-contained crypto closure per inbound envelope — work that warms the
// signature suite's verification caches without touching protocol state —
// and hands it to a VerifyExecutor together with a completion that runs
// the normal dispatch path. Two implementations exist:
//
//  * InlineVerifyExecutor (here): deferred() is false, so callers dispatch
//    immediately and the plan step is skipped entirely. The simulator and
//    unit tests use this — behavior (and cost charging) is bit-identical
//    to calling handle_message directly.
//  * realnet::VerifyPool: deferred() is true; the work closure runs on a
//    small worker pool off the event-loop thread and the completion is
//    posted back to the owning loop in submission order.
//
// Contract for `work` closures: they may run on any thread, so they must
// only read immutable state (captured message copies, the const suite /
// verifier) — crypto::set_parallel_crypto(true) must be on before a
// deferred executor runs them. Completions always run on the submitter's
// thread (inline, or via the executor's post-back), in submission order.
#pragma once

#include <functional>

namespace marlin::common {

class VerifyExecutor {
 public:
  virtual ~VerifyExecutor() = default;

  /// False: submit() runs work and done synchronously before returning
  /// (callers may skip planning work entirely). True: work may run on
  /// another thread and done is delivered later, in submission order.
  virtual bool deferred() const { return false; }

  /// Executes `work` (may be null) and then `done`. Per-executor
  /// submission order of `done` callbacks is preserved even when the
  /// corresponding `work` closures finish out of order.
  virtual void submit(std::function<void()> work,
                      std::function<void()> done) = 0;
};

/// Synchronous executor: work and done run in the caller's stack frame.
class InlineVerifyExecutor final : public VerifyExecutor {
 public:
  void submit(std::function<void()> work,
              std::function<void()> done) override {
    if (work) work();
    if (done) done();
  }

  /// Shared process-wide instance (stateless).
  static InlineVerifyExecutor& instance();
};

}  // namespace marlin::common
