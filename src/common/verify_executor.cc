#include "common/verify_executor.h"

namespace marlin::common {

InlineVerifyExecutor& InlineVerifyExecutor::instance() {
  static InlineVerifyExecutor inline_executor;
  return inline_executor;
}

}  // namespace marlin::common
