#include "common/wire_codec.h"

#include <cstring>

namespace marlin::wire {

namespace {
// Mirrors types::MsgKind wire values 1..10; slot 0 = unknown kind byte.
constexpr std::string_view kKindNames[net::kNetKindSlots] = {
    "unknown",      "client_request", "client_reply",
    "proposal",     "vote",           "qc_notice",
    "view_change",  "fetch_request",  "fetch_response",
    "snapshot_request", "snapshot_response",
};
}  // namespace

std::size_t kind_slot(BytesView payload) {
  if (payload.empty()) return 0;
  const std::uint8_t kind = payload[0];
  return kind < net::kNetKindSlots ? kind : 0;
}

std::string_view kind_slot_name(std::size_t slot) {
  return slot < net::kNetKindSlots ? kKindNames[slot] : kKindNames[0];
}

std::array<std::uint8_t, kHeaderSize> encode_header(
    std::uint32_t payload_size) {
  return {static_cast<std::uint8_t>(payload_size),
          static_cast<std::uint8_t>(payload_size >> 8),
          static_cast<std::uint8_t>(payload_size >> 16),
          static_cast<std::uint8_t>(payload_size >> 24)};
}

void append_frame(Bytes& out, BytesView payload) {
  const auto header = encode_header(static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), header.begin(), header.end());
  out.insert(out.end(), payload.begin(), payload.end());
}

Bytes hello_payload(std::uint32_t node_id) {
  Bytes body;
  body.reserve(5);
  body.push_back(kHelloKind);
  const auto id = encode_header(node_id);  // same u32 LE layout
  body.insert(body.end(), id.begin(), id.end());
  return body;
}

bool parse_hello(BytesView payload, std::uint32_t* node_id) {
  if (payload.size() != 5 || payload[0] != kHelloKind) return false;
  *node_id = static_cast<std::uint32_t>(payload[1]) |
             static_cast<std::uint32_t>(payload[2]) << 8 |
             static_cast<std::uint32_t>(payload[3]) << 16 |
             static_cast<std::uint32_t>(payload[4]) << 24;
  return true;
}

Status FrameDecoder::feed(BytesView chunk) {
  if (poisoned_) {
    return error(ErrorCode::kCorruption, "frame decoder poisoned");
  }
  // Compact once the consumed prefix dominates, so long-lived connections
  // do not accrete every frame ever received.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
  // Validate the next header eagerly so an oversize declaration is caught
  // at feed time, before the caller buffers toward an absurd length.
  if (buf_.size() - pos_ >= kHeaderSize) {
    std::uint32_t len = 0;
    std::memcpy(&len, buf_.data() + pos_, kHeaderSize);
    if (len > max_payload_) {
      poisoned_ = true;
      return error(ErrorCode::kCorruption,
                   "frame payload length " + std::to_string(len) +
                       " exceeds limit " + std::to_string(max_payload_));
    }
  }
  return Status::ok();
}

bool FrameDecoder::next(Bytes& frame) {
  if (poisoned_) return false;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderSize) return false;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + pos_, kHeaderSize);
  if (len > max_payload_) {
    poisoned_ = true;
    return false;
  }
  if (avail < kHeaderSize + len) return false;
  const auto* begin = buf_.data() + pos_ + kHeaderSize;
  frame.assign(begin, begin + len);
  pos_ += kHeaderSize + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return true;
}

}  // namespace marlin::wire
