#include "common/status.h"

namespace marlin {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kCorruption: return "Corruption";
    case ErrorCode::kVerifyFailed: return "VerifyFailed";
    case ErrorCode::kStaleView: return "StaleView";
    case ErrorCode::kUnsafe: return "Unsafe";
    case ErrorCode::kDuplicate: return "Duplicate";
    case ErrorCode::kIoError: return "IoError";
    case ErrorCode::kUnavailable: return "Unavailable";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "Ok";
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace marlin
