// Lightweight error handling: Status for fallible void operations and
// Result<T> for fallible value-returning operations. Consensus code paths
// never throw; exceptions are reserved for programmer errors (contract
// violations), which assert in debug builds.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace marlin {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kVerifyFailed,
  kStaleView,
  kUnsafe,        // proposal rejected by the safety rules
  kDuplicate,
  kIoError,
  kUnavailable,
  kInternal,
};

/// Human-readable name of an ErrorCode ("VerifyFailed", ...).
const char* error_code_name(ErrorCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status::ok() for success");
  }

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "VerifyFailed: bad partial signature".
  std::string to_string() const;

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

/// A value or a Status error. `value()` asserts on error; check `is_ok()`
/// (or use `value_or`) first on fallible paths.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}        // NOLINT(implicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(implicit)
    assert(!std::get<Status>(repr_).is_ok() &&
           "cannot construct Result<T> from an OK status");
  }

  bool is_ok() const { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(repr_);
  }
  T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(repr_));
  }
  T value_or(T fallback) const {
    return is_ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(repr_);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace marlin
