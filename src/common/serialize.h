// Deterministic binary wire codec. All consensus messages and storage
// records are encoded with this format:
//   - fixed-width integers: little-endian
//   - varint: LEB128 (unsigned)
//   - bytes/string: varint length prefix + raw payload
// Determinism matters: block hashes and signatures are computed over these
// encodings, so two replicas must always serialize a value identically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace marlin {

/// Append-only encoder. Cheap to create; move the buffer out when done.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);             // zig-zag free: fixed 8-byte LE
  void varint(std::uint64_t v);         // LEB128
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(BytesView v);              // varint length + payload
  void str(std::string_view v);
  void raw(BytesView v);                // no length prefix

  const Bytes& buffer() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Bounds-checked decoder over a non-owned view. Every accessor reports
/// truncation/overflow through Status instead of UB.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  Status u8(std::uint8_t& out);
  Status u16(std::uint16_t& out);
  Status u32(std::uint32_t& out);
  Status u64(std::uint64_t& out);
  Status i64(std::int64_t& out);
  Status varint(std::uint64_t& out);
  Status boolean(bool& out);
  Status bytes(Bytes& out);
  Status str(std::string& out);
  /// Reads exactly `n` raw bytes.
  Status raw(std::size_t n, Bytes& out);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

  /// Fails unless the whole input was consumed — used by message decoders
  /// to reject trailing garbage.
  Status expect_exhausted() const;

 private:
  Status need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

/// Convenience: encode any type that provides `void encode(Writer&) const`.
template <typename T>
Bytes encode_to_bytes(const T& value) {
  Writer w;
  value.encode(w);
  return std::move(w).take();
}

/// Convenience: decode any type that provides
/// `static Result<T> decode(Reader&)`, requiring full consumption.
template <typename T>
Result<T> decode_from_bytes(BytesView data) {
  Reader r(data);
  Result<T> out = T::decode(r);
  if (!out.is_ok()) return out;
  if (Status s = r.expect_exhausted(); !s.is_ok()) return s;
  return out;
}

}  // namespace marlin
