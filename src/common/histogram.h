// Metrology helpers: latency histograms with percentiles and windowed
// throughput counters. Value semantics, no locking (the simulator is
// single-threaded).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace marlin {

/// Collects duration samples; percentile queries sort lazily.
class LatencyHistogram {
 public:
  void record(Duration d) {
    samples_.push_back(d);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  /// Linearly interpolated percentile (p in [0, 100]): rank p/100·(n−1)
  /// falls between two sorted samples and the result blends them, so
  /// p95/p99 are no longer biased low by flooring to the lower rank.
  Duration percentile(double p) const {
    if (samples_.empty()) return Duration::zero();
    ensure_sorted();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const std::size_t lo =
        std::min(static_cast<std::size_t>(rank), samples_.size() - 1);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    const double lo_ns = static_cast<double>(samples_[lo].as_nanos());
    const double hi_ns = static_cast<double>(samples_[hi].as_nanos());
    return Duration::nanos(
        static_cast<std::int64_t>(lo_ns + frac * (hi_ns - lo_ns)));
  }

  Duration median() const { return percentile(50); }
  Duration min() const { return percentile(0); }
  Duration max() const { return percentile(100); }

  Duration mean() const {
    if (samples_.empty()) return Duration::zero();
    std::int64_t total = 0;
    for (Duration d : samples_) total += d.as_nanos();
    return Duration::nanos(total / static_cast<std::int64_t>(samples_.size()));
  }

  void clear() {
    samples_.clear();
    sorted_ = true;
  }

  /// Raw samples (unsorted order not guaranteed) — for merging histograms.
  const std::vector<Duration>& samples() const { return samples_; }

  void merge_from(const LatencyHistogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

 private:
  // Lazy sort is an implementation detail, so percentile queries stay
  // const-callable (exporters take const registries).
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<Duration> samples_;
  mutable bool sorted_ = true;
};

/// Counts events inside a measurement window (e.g. committed operations),
/// excluding warm-up.
class WindowedCounter {
 public:
  void set_window(TimePoint start, TimePoint end) {
    start_ = start;
    end_ = end;
  }

  void record(TimePoint when, std::uint64_t amount = 1) {
    total_ += amount;
    if (when >= start_ && when < end_) in_window_ += amount;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t in_window() const { return in_window_; }

  /// Events per second inside the window.
  double rate_per_second() const {
    const double span = (end_ - start_).as_seconds_f();
    if (span <= 0) return 0;
    return static_cast<double>(in_window_) / span;
  }

 private:
  TimePoint start_;
  TimePoint end_;
  std::uint64_t total_ = 0;
  std::uint64_t in_window_ = 0;
};

}  // namespace marlin
