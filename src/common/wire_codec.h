// Shared wire-framing codec: the one place that knows how a consensus
// envelope travels as bytes. Both transports build on it:
//
//  * simnet delivers whole frames (the simulator has no byte streams), so
//    it uses only the kind classification for its per-kind byte charging;
//  * realnet speaks length-prefixed frames over TCP and uses the full
//    codec — header encode for writev scatter-gather egress and
//    FrameDecoder for partial-read reassembly on ingress.
//
// Frame format on a byte stream:
//   [u32 LE payload length][payload]
// where payload is an Envelope serialization ([u8 MsgKind][body]) or the
// transport's hello frame ([kHelloKind][u32 LE node id]).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "common/net_stats.h"
#include "common/status.h"

namespace marlin::wire {

/// Stream frame header: u32 little-endian payload length.
inline constexpr std::size_t kHeaderSize = 4;

/// Upper bound on a single frame's payload. A snapshot response carrying
/// kSuffixLimit full blocks is the largest legitimate frame; anything
/// bigger is a corrupt or hostile stream and kills the connection.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

/// Transport-private frame kind (outside types::MsgKind's range): the
/// connection hello identifying the dialing node. Body: u32 LE node id.
inline constexpr std::uint8_t kHelloKind = 0xFF;

/// Classifies a payload by its leading MsgKind byte for per-kind traffic
/// accounting: slot = kind for known wire values 1..10, slot 0 otherwise.
/// (Kinds outside the table — hello frames, kTimeoutNotice — share the
/// "unknown" slot; totals are exact either way.)
std::size_t kind_slot(BytesView payload);

/// Stable label for a kind slot ("proposal", "vote", ...), mirroring
/// types::MsgKind wire values; the codec keeps its own table so both
/// transports stay below the types layer.
std::string_view kind_slot_name(std::size_t slot);

/// Encodes the 4-byte header for a payload of `payload_size` bytes. Kept
/// separate from the payload so egress can writev [header][shared payload]
/// without copying the refcounted broadcast buffer.
std::array<std::uint8_t, kHeaderSize> encode_header(std::uint32_t payload_size);

/// Appends header + payload to `out` (single-buffer convenience).
void append_frame(Bytes& out, BytesView payload);

/// Builds the connection hello payload for `node_id`.
Bytes hello_payload(std::uint32_t node_id);

/// Parses a hello payload; false when it is not one.
bool parse_hello(BytesView payload, std::uint32_t* node_id);

/// Incremental frame reassembly over an arbitrary chunking of the stream.
/// Feed whatever recv() returned; pop complete frames with next(). A
/// declared length beyond max_payload poisons the decoder (every later
/// call errors) — the caller must drop the connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends a chunk. Errors (kCorruption) once a frame header declares a
  /// payload larger than max_payload.
  Status feed(BytesView chunk);

  /// Moves the next complete frame payload into `frame`; false when the
  /// buffered bytes do not yet hold a full frame.
  bool next(Bytes& frame);

  /// Bytes buffered but not yet returned as frames.
  std::size_t buffered() const { return buf_.size() - pos_; }

  bool poisoned() const { return poisoned_; }

 private:
  std::size_t max_payload_;
  Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted opportunistically
  bool poisoned_ = false;
};

}  // namespace marlin::wire
