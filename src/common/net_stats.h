// Wire-level per-node traffic counters shared by both transports: the
// simulated network (src/simnet) and the real epoll/TCP runtime
// (src/realnet) fill the same struct, so metrics snapshots, the Table I
// bench, and trace_inspect's traffic analysis work unchanged on either
// backend ("one stack, two transports").
#pragma once

#include <array>
#include <cstdint>

namespace marlin::net {

/// Per-message-type breakdown slots. Envelope wire format starts with the
/// MsgKind byte (values 1..10), which a transport reads without parsing
/// the payload; slot 0 collects frames that don't carry a known kind byte.
inline constexpr std::size_t kNetKindSlots = 11;

struct NodeNetStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t messages_dropped = 0;  // counted at the sender

  // Per-message-type breakdowns, indexed by the payload's leading MsgKind
  // byte (slot 0 = unrecognized). Totals above are the sums of these.
  std::array<std::uint64_t, kNetKindSlots> msgs_sent_by_kind{};
  std::array<std::uint64_t, kNetKindSlots> bytes_sent_by_kind{};
  std::array<std::uint64_t, kNetKindSlots> msgs_delivered_by_kind{};
  std::array<std::uint64_t, kNetKindSlots> bytes_delivered_by_kind{};

  NodeNetStats& operator+=(const NodeNetStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    messages_delivered += o.messages_delivered;
    bytes_delivered += o.bytes_delivered;
    messages_dropped += o.messages_dropped;
    for (std::size_t k = 0; k < kNetKindSlots; ++k) {
      msgs_sent_by_kind[k] += o.msgs_sent_by_kind[k];
      bytes_sent_by_kind[k] += o.bytes_sent_by_kind[k];
      msgs_delivered_by_kind[k] += o.msgs_delivered_by_kind[k];
      bytes_delivered_by_kind[k] += o.bytes_delivered_by_kind[k];
    }
    return *this;
  }
};

}  // namespace marlin::net
