// Metrics registry: named counters, gauges, and labeled latency / size
// histograms. Value-semantic and deterministic — every container is an
// ordered map keyed by (name, label), so snapshots serialize in a stable
// order and two identical runs export identical bytes.
//
// Scoping model: each replica process owns a registry; Cluster aggregates
// them (counters and histograms merge additively, gauges keep the maximum)
// and adds cluster-wide series (client latency, network traffic) under
// per-entity labels like "replica=3" or "kind=proposal".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/histogram.h"

namespace marlin::obs {

/// Histogram over dimensionless values (sizes, counts); the size-domain
/// sibling of common/histogram.h's LatencyHistogram, with the same
/// interpolated-percentile semantics.
class ValueHistogram {
 public:
  void record(std::uint64_t v) {
    samples_.push_back(v);
    sum_ += v;
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  std::uint64_t sum() const { return sum_; }

  double mean() const {
    if (samples_.empty()) return 0;
    return static_cast<double>(sum_) / static_cast<double>(samples_.size());
  }

  /// Linearly interpolated percentile (p in [0, 100]).
  double percentile(double p) const;

  std::uint64_t min() const;
  std::uint64_t max() const;

  void merge_from(const ValueHistogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    sorted_ = false;
  }

  void clear() {
    samples_.clear();
    sum_ = 0;
    sorted_ = true;
  }

 private:
  void ensure_sorted() const;

  mutable std::vector<std::uint64_t> samples_;
  mutable bool sorted_ = true;
  std::uint64_t sum_ = 0;
};

/// A metric series identifier: dotted name plus an optional label set
/// rendered as a single "k=v,k=v" string (kept flat for determinism).
struct MetricKey {
  std::string name;
  std::string label;

  auto operator<=>(const MetricKey&) const = default;

  /// "name" or "name{label}" — the form exporters print.
  std::string to_string() const {
    return label.empty() ? name : name + "{" + label + "}";
  }
};

class MetricsRegistry {
 public:
  /// Monotonic counter; returns a reference you can `+=` into.
  std::uint64_t& counter(std::string_view name, std::string_view label = {});
  /// Point-in-time value (committed height, queue depth, ...).
  double& gauge(std::string_view name, std::string_view label = {});
  /// Duration-valued histogram.
  LatencyHistogram& latency(std::string_view name, std::string_view label = {});
  /// Size/count-valued histogram.
  ValueHistogram& sizes(std::string_view name, std::string_view label = {});

  /// Read accessors; zero / empty when the series does not exist.
  std::uint64_t counter_value(std::string_view name,
                              std::string_view label = {}) const;
  double gauge_value(std::string_view name, std::string_view label = {}) const;

  /// Counters and histograms merge additively; gauges keep the maximum
  /// (aggregating per-replica gauges like committed height across a
  /// cluster wants the frontier, not a sum).
  void merge_from(const MetricsRegistry& other);

  void clear();
  bool empty() const {
    return counters_.empty() && gauges_.empty() && latencies_.empty() &&
           sizes_.empty();
  }

  // Ordered iteration for exporters.
  const std::map<MetricKey, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<MetricKey, double>& gauges() const { return gauges_; }
  const std::map<MetricKey, LatencyHistogram>& latencies() const {
    return latencies_;
  }
  const std::map<MetricKey, ValueHistogram>& size_histograms() const {
    return sizes_;
  }

 private:
  std::map<MetricKey, std::uint64_t> counters_;
  std::map<MetricKey, double> gauges_;
  std::map<MetricKey, LatencyHistogram> latencies_;
  std::map<MetricKey, ValueHistogram> sizes_;
};

}  // namespace marlin::obs
