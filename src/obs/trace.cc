#include "obs/trace.h"

#include <algorithm>

namespace marlin::obs {

namespace {
constexpr const char* kEventNames[kEventTypeCount] = {
    "proposal_sent",  "proposal_received", "vote_sent",
    "vote_received",  "qc_formed",         "phase_transition",
    "commit",         "view_entered",      "view_change_start",
    "view_change_end", "timeout_fired",    "msg_sent",
    "msg_dropped",    "wal_write",         "sstable_write",
    "checkpoint",     "sig_verify",        "msg_delivered",
    "client_submit",  "reply_accepted",    "batch_dequeued",
    "fault_injected", "replica_restart",   "state_transfer",
};

constexpr const char* kPhaseNames[] = {"preprepare", "prepare", "precommit",
                                       "commit", "decide"};
}  // namespace

const char* event_type_name(EventType t) {
  const auto i = static_cast<std::size_t>(t);
  return i < kEventTypeCount ? kEventNames[i] : "unknown";
}

EventType event_type_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    if (name == kEventNames[i]) return static_cast<EventType>(i);
  }
  return EventType::kCount;
}

const char* trace_phase_name(std::uint8_t phase) {
  if (phase == kNoPhase) return "-";
  return phase < 5 ? kPhaseNames[phase] : "unknown";
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void TraceSink::set_enabled(EventType t, bool on) {
  const std::uint64_t bit = 1ull << static_cast<unsigned>(t);
  if (on) {
    disabled_mask_ &= ~bit;
  } else {
    disabled_mask_ |= bit;
  }
}

std::uint64_t TraceSink::record(TraceEvent e) {
  if (!enabled(e.type)) return next_seq_;
  e.seq = next_seq_++;
  if (clock_) e.at = clock_();
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
  }
  return e.seq;
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceSink::clear() {
  ring_.clear();
  head_ = 0;
  next_seq_ = 0;
}

}  // namespace marlin::obs
