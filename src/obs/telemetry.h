// Live-telemetry renderers: the same MetricsRegistry/NodeNetStats data the
// post-mortem exporters (export.h) dump at end of run, rendered for live
// consumption — Prometheus text exposition for /metrics scrapes, one-line
// JSON snapshots for --metrics-series-out JSONL trajectories, and the
// NodeNetStats -> registry bridge that gives the real transport the same
// metric names the simulated network exports (sim/metal parity).
#pragma once

#include <string>
#include <string_view>

#include "common/net_stats.h"
#include "obs/metrics.h"

namespace marlin::obs {

/// Renders the registry as Prometheus text exposition (version 0.0.4):
/// names are prefixed "marlin_" with non-alphanumerics mangled to '_',
/// "k=v,k=v" label strings become {k="v",...}, counters/gauges map
/// directly, and histograms render as summaries (quantile series plus
/// _sum/_count; latency quantiles are in seconds).
std::string metrics_to_prometheus(const MetricsRegistry& reg);

/// Adds a transport's NodeNetStats into `reg` under the exact names the
/// simulated network exports (net.messages_sent, net.bytes_sent, ... with
/// kind= breakdown labels), so sim-side tooling reads realnet metrics
/// unchanged. `node_label` (e.g. "node=2") labels the totals; per-kind
/// series always carry kind= labels. Counters add: pass a fresh snapshot
/// registry, not one that already contains these series.
void net_stats_to_metrics(const net::NodeNetStats& stats, MetricsRegistry& reg,
                          std::string_view node_label = {});

/// One JSONL time-series sample: a single-line JSON object
///   {"t":<seconds>,"counters":{...},"gauges":{...},
///    "latency_ms":{name:{count,mean,p50,p95,p99,max}},
///    "sizes":{name:{count,mean,p50,p99,max}}}
/// Keys are MetricKey::to_string() ("name" or "name{label}"). The schema
/// is backend-agnostic: marlin_sim and marlin_run emit identical shapes.
std::string metrics_series_line(double t_seconds, const MetricsRegistry& reg);

}  // namespace marlin::obs
