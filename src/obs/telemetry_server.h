// Minimal HTTP/1.0 telemetry endpoint served from a node's own epoll
// EventLoop — no extra threads, no external dependencies. Each replica
// host registers one TelemetryServer and wires three callbacks:
//
//   GET /metrics  -> Prometheus text exposition (metrics callback)
//   GET /status   -> JSON replica status (status callback)
//   GET /healthz  -> 200 "ok" / 503 "stalled" (healthy callback)
//   GET /         -> plain-text index of the routes above
//
// Because the server runs on the loop thread, the callbacks read replica
// state (MetricsRegistry, transport stats, protocol view) without locks —
// the same single-threaded discipline as the rest of the host. Responses
// are Connection: close; a scrape is one short-lived connection.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "realnet/event_loop.h"

namespace marlin::obs {

struct TelemetryHandlers {
  std::function<std::string()> metrics;  // /metrics body (text exposition)
  std::function<std::string()> status;   // /status body (JSON)
  std::function<bool()> healthy;         // /healthz: true -> 200, false -> 503
};

class TelemetryServer final : public realnet::FdHandler {
 public:
  TelemetryServer(realnet::EventLoop& loop, TelemetryHandlers handlers);
  ~TelemetryServer() override;

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and registers with the loop.
  /// Call before the loop thread starts, or from the loop thread. Returns
  /// the bound port.
  Result<std::uint16_t> listen(std::uint16_t port = 0);

  /// Closes the listener and every connection; loop thread only (the
  /// destructor calls it too, for hosts torn down after their loop stops).
  void shutdown();

  std::uint16_t port() const { return port_; }
  std::uint64_t requests_served() const { return served_; }

  void on_fd_event(int fd, std::uint32_t events) override;

 private:
  struct Conn {
    std::string in;       // request bytes until the blank line
    std::string out;      // fully rendered response
    std::size_t out_off = 0;
    bool responding = false;
  };

  void accept_ready();
  void conn_event(int fd, std::uint32_t events);
  void respond(int fd, Conn& conn);
  bool flush(int fd, Conn& conn);  // false when the connection was closed
  void close_conn(int fd);

  realnet::EventLoop& loop_;
  TelemetryHandlers handlers_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::unordered_map<int, Conn> conns_;
  std::uint64_t served_ = 0;
};

}  // namespace marlin::obs
