// Causal span stitching: turns the flat TraceEvent stream into per-block
// lifecycle spans (client submit -> txpool wait -> proposal broadcast ->
// per-phase vote collection -> QC formation -> commit -> client reply),
// each tagged with the dominant cost class behind its duration. Spans are
// derived purely from the event stream, so they inherit the golden
// determinism property: same seed, byte-identical span output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace marlin::obs {

/// Dominant cost class behind a span's or edge's duration.
enum class CostKind : std::uint8_t {
  kUnattributed = 0,
  kLink,     // wire transit: serialization + propagation (+ jitter)
  kQueue,    // waiting: txpool residency, busy NIC / link
  kCrypto,   // charged CPU (signature checks, pairings, hashing)
  kStorage,  // WAL / sstable writes on the path
};

/// Stable lowercase name ("link", "queue", ...).
const char* cost_kind_name(CostKind k);

struct Span {
  std::string name;  // "block", "txpool.wait", "votes.prepare", ...
  std::uint32_t node = kNoNode;  // owning node (usually the leader)
  std::uint64_t block = 0;
  ViewNumber view = 0;
  Height height = 0;
  TimePoint begin;
  TimePoint end;
  CostKind dominant = CostKind::kUnattributed;

  Duration duration() const { return end - begin; }
};

/// One proposed block's lifecycle: an umbrella `block` span plus its
/// sub-spans in causal order. Sub-spans present depend on how far the
/// block got (an abandoned proposal has no commit/reply spans).
struct BlockSpans {
  std::uint64_t block = 0;
  ViewNumber view = 0;
  Height height = 0;
  bool committed = false;
  Span umbrella;               // name "block"
  std::vector<Span> children;  // fixed order: txpool.wait,
                               // proposal.broadcast, votes.<phase>...,
                               // commit.spread, reply.delivery
};

/// Stitches events (sequence order) into per-block spans. Blocks are
/// returned in first-touch order; blocks that never reached kProposalSent
/// are skipped (there is no lifecycle to report).
std::vector<BlockSpans> build_spans(const std::vector<TraceEvent>& events);

/// Chrome trace-event JSON ("Trace Event Format"), loadable in Perfetto /
/// chrome://tracing. pid = node, tid = span lane; one JSON object per
/// line so line-oriented checkers can validate it. Deterministic bytes.
std::string spans_to_chrome_json(const std::vector<BlockSpans>& blocks);

}  // namespace marlin::obs
