#include "obs/telemetry_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace marlin::obs {

namespace {

// A scrape request is one line plus a few headers; anything larger is not
// a telemetry client.
constexpr std::size_t kMaxRequestBytes = 8192;

std::string http_response(int code, const char* reason,
                          const char* content_type, std::string body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

TelemetryServer::TelemetryServer(realnet::EventLoop& loop,
                                 TelemetryHandlers handlers)
    : loop_(loop), handlers_(std::move(handlers)) {}

TelemetryServer::~TelemetryServer() { shutdown(); }

Result<std::uint16_t> TelemetryServer::listen(std::uint16_t port) {
  const int fd =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return error(ErrorCode::kIoError, "telemetry: socket failed");

  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close(fd);
    return error(ErrorCode::kUnavailable,
                 "telemetry: bind 127.0.0.1:" + std::to_string(port) +
                     " failed: " + std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    close(fd);
    return error(ErrorCode::kIoError, "telemetry: listen failed");
  }
  socklen_t len = sizeof addr;
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);

  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  loop_.add_fd(listen_fd_, EPOLLIN, this);
  return port_;
}

void TelemetryServer::shutdown() {
  std::vector<int> open;
  open.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) open.push_back(fd);
  for (int fd : open) close_conn(fd);
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryServer::on_fd_event(int fd, std::uint32_t events) {
  if (fd == listen_fd_) {
    accept_ready();
  } else {
    conn_event(fd, events);
  }
}

void TelemetryServer::accept_ready() {
  for (;;) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or transient error: try again next wake
    conns_.emplace(fd, Conn{});
    loop_.add_fd(fd, EPOLLIN, this);
  }
}

void TelemetryServer::conn_event(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;

  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_conn(fd);
    return;
  }
  if (conn.responding) {
    flush(fd, conn);
    return;
  }

  char buf[2048];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      if (conn.in.size() > kMaxRequestBytes) {
        // Drain whatever else already arrived before answering: closing a
        // socket with unread data RSTs the peer, which could destroy the
        // 400 before the client reads it.
        while (recv(fd, buf, sizeof buf, 0) > 0) {
        }
        conn.out = http_response(400, "Bad Request", "text/plain",
                                 "request too large\n");
        conn.responding = true;
        flush(fd, conn);
        return;
      }
      if (conn.in.find("\r\n\r\n") != std::string::npos) {
        respond(fd, conn);
        return;
      }
      continue;
    }
    if (n == 0) {
      close_conn(fd);  // peer went away before sending a full request
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(fd);
    return;
  }
}

void TelemetryServer::respond(int fd, Conn& conn) {
  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t line_end = conn.in.find("\r\n");
  const std::string line = conn.in.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);

  std::string method;
  std::string path;
  if (sp1 != std::string::npos && sp2 != std::string::npos) {
    method = line.substr(0, sp1);
    path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t q = path.find('?');
    if (q != std::string::npos) path.resize(q);  // ignore query strings
  }

  ++served_;
  if (method != "GET") {
    conn.out = http_response(405, "Method Not Allowed", "text/plain",
                             "only GET is supported\n");
  } else if (path == "/metrics" && handlers_.metrics) {
    conn.out = http_response(200, "OK",
                             "text/plain; version=0.0.4; charset=utf-8",
                             handlers_.metrics());
  } else if (path == "/status" && handlers_.status) {
    conn.out =
        http_response(200, "OK", "application/json", handlers_.status());
  } else if (path == "/healthz" && handlers_.healthy) {
    if (handlers_.healthy()) {
      conn.out = http_response(200, "OK", "text/plain", "ok\n");
    } else {
      conn.out =
          http_response(503, "Service Unavailable", "text/plain", "stalled\n");
    }
  } else if (path == "/") {
    conn.out = http_response(
        200, "OK", "text/plain",
        "marlin telemetry\nroutes: /metrics /status /healthz\n");
  } else {
    conn.out = http_response(404, "Not Found", "text/plain", "not found\n");
  }
  conn.responding = true;
  flush(fd, conn);
}

bool TelemetryServer::flush(int fd, Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = send(fd, conn.out.data() + conn.out_off,
                           conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.mod_fd(fd, EPOLLOUT);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn(fd);
    return false;
  }
  close_conn(fd);  // HTTP/1.0, Connection: close
  return false;
}

void TelemetryServer::close_conn(int fd) {
  loop_.del_fd(fd);
  close(fd);
  conns_.erase(fd);
}

}  // namespace marlin::obs
