#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace marlin::obs {

void ValueHistogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double ValueHistogram::percentile(double p) const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  const double rank =
      p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo =
      std::min(static_cast<std::size_t>(rank), samples_.size() - 1);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(samples_[lo]) +
         frac * (static_cast<double>(samples_[hi]) -
                 static_cast<double>(samples_[lo]));
}

std::uint64_t ValueHistogram::min() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.front();
}

std::uint64_t ValueHistogram::max() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.back();
}

namespace {
MetricKey make_key(std::string_view name, std::string_view label) {
  return MetricKey{std::string(name), std::string(label)};
}
}  // namespace

std::uint64_t& MetricsRegistry::counter(std::string_view name,
                                        std::string_view label) {
  return counters_[make_key(name, label)];
}

double& MetricsRegistry::gauge(std::string_view name, std::string_view label) {
  return gauges_[make_key(name, label)];
}

LatencyHistogram& MetricsRegistry::latency(std::string_view name,
                                           std::string_view label) {
  return latencies_[make_key(name, label)];
}

ValueHistogram& MetricsRegistry::sizes(std::string_view name,
                                       std::string_view label) {
  return sizes_[make_key(name, label)];
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name,
                                             std::string_view label) const {
  auto it = counters_.find(make_key(name, label));
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge_value(std::string_view name,
                                    std::string_view label) const {
  auto it = gauges_.find(make_key(name, label));
  return it == gauges_.end() ? 0 : it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, value] : other.counters_) counters_[key] += value;
  for (const auto& [key, value] : other.gauges_) {
    auto [it, inserted] = gauges_.try_emplace(key, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [key, hist] : other.latencies_) {
    latencies_[key].merge_from(hist);
  }
  for (const auto& [key, hist] : other.sizes_) {
    sizes_[key].merge_from(hist);
  }
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  latencies_.clear();
  sizes_.clear();
}

}  // namespace marlin::obs
