#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>

namespace marlin::obs {

namespace {

// Wire MsgKind values for matching kMsgDelivered events (mirrors simnet's
// kind table; obs stays below the types layer).
constexpr std::uint8_t kKindProposal = 3;
constexpr std::uint8_t kKindVote = 4;
constexpr std::uint8_t kKindQcNotice = 5;

// types::Phase wire value for PRECOMMIT — present only in HotStuff's
// three-phase pipeline, which is how the analyzer tells the shapes apart.
constexpr std::uint8_t kPhasePreCommit = 2;

std::string fmt_hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

double ms(Duration d) { return d.as_millis_f(); }
double ns_to_ms(double ns) { return ns / 1e6; }

struct Delivered {
  TimePoint at;
  std::uint32_t to;
  std::uint32_t from;
  std::uint8_t kind;
  std::uint64_t queue_ns;
  std::uint64_t transit_ns;
};

struct VoteRecv {
  std::uint64_t seq;
  TimePoint at;
  std::uint32_t sender;
};

struct BlockAgg {
  std::uint64_t first_seq = 0;
  ViewNumber view = 0;
  Height height = 0;
  bool proposed = false;
  std::uint32_t leader = kNoNode;
  TimePoint prop_at;
  bool batch = false;
  Duration batch_wait;
  // First kVoteSent per (phase, voter).
  std::map<std::pair<std::uint8_t, std::uint32_t>, TimePoint> vote_sent;
  // kVoteReceived per phase, in sequence order.
  std::map<std::uint8_t, std::vector<VoteRecv>> vote_recv;
  struct Qc {
    std::uint8_t phase;
    TimePoint at;
    std::uint32_t node;
    std::uint64_t seq;
  };
  std::vector<Qc> qcs;
  bool committed = false;
  TimePoint commit_at;
  std::uint32_t commit_node = kNoNode;
};

// Latest delivery of a `kind` frame from -> to no later than `end`.
const Delivered* match_delivery(const std::vector<Delivered>& deliveries,
                                std::uint32_t from, std::uint32_t to,
                                std::uint8_t kind, TimePoint end) {
  const auto hi = std::upper_bound(
      deliveries.begin(), deliveries.end(), end,
      [](TimePoint t, const Delivered& d) { return t < d.at; });
  for (auto it = hi; it != deliveries.begin();) {
    --it;
    if (it->to == to && it->from == from && it->kind == kind) return &*it;
  }
  return nullptr;
}

// Decomposes a network edge against its matched delivery of a `kind`
// frame and sets the dominant component. Unmatched edges count entirely
// as wire time.
void attribute_edge(CriticalPathEdge& e,
                    const std::vector<Delivered>& deliveries,
                    std::uint8_t kind) {
  if (!e.network) {
    e.cpu = e.duration();
    e.dominant = CostKind::kCrypto;
    return;
  }
  const Delivered* d = match_delivery(deliveries, e.from, e.to, kind, e.end);
  if (d == nullptr || d->at < e.begin) {
    e.wire = e.duration();
    e.dominant = CostKind::kLink;
    return;
  }
  e.queue = Duration::nanos(static_cast<std::int64_t>(d->queue_ns));
  const Duration transit =
      Duration::nanos(static_cast<std::int64_t>(d->transit_ns));
  e.wire = transit - e.queue;
  // The frame left the sender's protocol task at (delivery - transit);
  // time before that is sender CPU (charged crypto delaying the send),
  // time after delivery until the handler's milestone is receiver CPU.
  const TimePoint sent = d->at - transit;
  Duration cpu = Duration::zero();
  if (sent > e.begin) cpu += sent - e.begin;
  if (e.end > d->at) cpu += e.end - d->at;
  e.cpu = cpu;
  e.dominant = CostKind::kLink;
  if (e.queue > e.wire && e.queue > e.cpu) e.dominant = CostKind::kQueue;
  if (e.cpu > e.wire && e.cpu >= e.queue) e.dominant = CostKind::kCrypto;
}

/// Canonical edge order for tables (extra labels, if any, go after).
const char* const kCanonicalEdges[] = {
    "txpool.wait",           "proposal.out",
    "vote[prepare].back",    "notice[precommit].out",
    "vote[precommit].back",  "notice[commit].out",
    "vote[commit].back",     "decide.out",
};

std::vector<std::string> table_order(
    const std::map<std::string, ValueHistogram>& a,
    const std::map<std::string, ValueHistogram>& b) {
  std::vector<std::string> order;
  for (const char* label : kCanonicalEdges) {
    if (a.count(label) > 0 || b.count(label) > 0) order.push_back(label);
  }
  auto add_extras = [&order](const std::map<std::string, ValueHistogram>& m) {
    for (const auto& [label, hist] : m) {
      if (std::find(order.begin(), order.end(), label) == order.end()) {
        order.push_back(label);
      }
    }
  };
  add_extras(a);
  add_extras(b);
  return order;
}

}  // namespace

std::vector<CriticalPath> critical_paths(
    const std::vector<TraceEvent>& events) {
  std::map<std::uint64_t, BlockAgg> aggs;
  std::vector<std::uint64_t> order;
  std::vector<Delivered> deliveries;

  auto touch = [&](const TraceEvent& e) -> BlockAgg& {
    auto [it, inserted] = aggs.try_emplace(e.block);
    if (inserted) {
      it->second.first_seq = e.seq;
      order.push_back(e.block);
    }
    BlockAgg& agg = it->second;
    if (agg.view == 0) agg.view = e.view;
    if (agg.height == 0) agg.height = e.height;
    return agg;
  };

  for (const TraceEvent& e : events) {
    switch (e.type) {
      case EventType::kProposalSent: {
        if (e.block == 0) break;
        BlockAgg& agg = touch(e);
        if (!agg.proposed) {
          agg.proposed = true;
          agg.leader = e.node;
          agg.prop_at = e.at;
        }
        break;
      }
      case EventType::kBatchDequeued: {
        BlockAgg& agg = touch(e);
        agg.batch = true;
        agg.batch_wait = Duration::nanos(static_cast<std::int64_t>(e.b));
        break;
      }
      case EventType::kVoteSent:
        touch(e).vote_sent.try_emplace({e.phase, e.node}, e.at);
        break;
      case EventType::kVoteReceived:
        touch(e).vote_recv[e.phase].push_back(
            {e.seq, e.at, static_cast<std::uint32_t>(e.a)});
        break;
      case EventType::kQcFormed:
        touch(e).qcs.push_back({e.phase, e.at, e.node, e.seq});
        break;
      case EventType::kCommit: {
        BlockAgg& agg = touch(e);
        if (!agg.committed) {
          agg.committed = true;
          agg.commit_at = e.at;
          agg.commit_node = e.node;
        }
        break;
      }
      case EventType::kMsgDelivered:
        deliveries.push_back({e.at, e.node, static_cast<std::uint32_t>(e.a),
                              e.kind, e.b, e.c});
        break;
      default:
        break;
    }
  }

  std::vector<CriticalPath> out;
  for (const std::uint64_t id : order) {
    const BlockAgg& agg = aggs.at(id);
    if (!agg.proposed || agg.qcs.empty()) continue;

    CriticalPath p;
    p.block = id;
    p.view = agg.view;
    p.height = agg.height;
    for (const BlockAgg::Qc& qc : agg.qcs) {
      if (qc.phase == kPhasePreCommit) p.three_phase = true;
    }

    bool complete = true;
    if (agg.batch && agg.batch_wait > Duration::zero()) {
      CriticalPathEdge e;
      e.label = "txpool.wait";
      e.from = e.to = agg.leader;
      e.begin = agg.prop_at - agg.batch_wait;
      e.end = agg.prop_at;
      e.queue = e.duration();
      e.dominant = CostKind::kQueue;
      p.edges.push_back(std::move(e));
    }

    TimePoint prev_t = agg.prop_at;
    std::uint32_t prev_node = agg.leader;
    bool first_qc = true;
    for (const BlockAgg::Qc& qc : agg.qcs) {
      // The vote that completed the quorum: last one received before the
      // QC formed.
      const VoteRecv* completing = nullptr;
      auto vr_it = agg.vote_recv.find(qc.phase);
      if (vr_it != agg.vote_recv.end()) {
        for (const VoteRecv& vr : vr_it->second) {
          if (vr.seq < qc.seq) completing = &vr;
        }
      }
      auto vs_it = completing == nullptr
                       ? agg.vote_sent.end()
                       : agg.vote_sent.find({qc.phase, completing->sender});
      if (completing == nullptr || vs_it == agg.vote_sent.end() ||
          vs_it->second < prev_t) {
        complete = false;
        break;
      }
      const std::uint32_t voter = completing->sender;
      const char* phase = trace_phase_name(qc.phase);

      CriticalPathEdge out_edge;
      out_edge.label = first_qc ? "proposal.out"
                                : "notice[" + std::string(phase) + "].out";
      out_edge.from = prev_node;
      out_edge.to = voter;
      out_edge.begin = prev_t;
      out_edge.end = vs_it->second;
      out_edge.network = true;
      attribute_edge(out_edge, deliveries,
                     first_qc ? kKindProposal : kKindQcNotice);
      p.edges.push_back(std::move(out_edge));

      CriticalPathEdge back;
      back.label = "vote[" + std::string(phase) + "].back";
      back.from = voter;
      back.to = qc.node;
      back.begin = vs_it->second;
      back.end = completing->at;
      back.network = true;
      back.response = true;
      attribute_edge(back, deliveries, kKindVote);
      p.edges.push_back(std::move(back));

      prev_t = qc.at;
      prev_node = qc.node;
      first_qc = false;
    }

    if (complete && agg.committed && agg.commit_at >= prev_t) {
      CriticalPathEdge e;
      e.label = "decide.out";
      e.from = prev_node;
      e.to = agg.commit_node;
      e.begin = prev_t;
      e.end = agg.commit_at;
      e.network = agg.commit_node != prev_node;
      attribute_edge(e, deliveries, kKindQcNotice);
      p.edges.push_back(std::move(e));
    } else {
      complete = false;
    }

    p.complete = complete;
    if (!p.edges.empty()) {
      p.total = p.edges.back().end - p.edges.front().begin;
    }
    for (const CriticalPathEdge& e : p.edges) {
      if (e.response) ++p.round_trips;
    }
    out.push_back(std::move(p));
  }
  return out;
}

CriticalPathBreakdown aggregate_critical_paths(
    const std::vector<CriticalPath>& paths, bool three_phase) {
  CriticalPathBreakdown b;
  b.three_phase = three_phase;
  for (const CriticalPath& p : paths) {
    if (p.three_phase != three_phase) continue;
    if (!p.complete) {
      ++b.skipped;
      continue;
    }
    if (b.blocks == 0) b.round_trips = p.round_trips;
    ++b.blocks;
    std::uint64_t queue = 0, wire = 0, cpu = 0;
    for (const CriticalPathEdge& e : p.edges) {
      b.edge_ns[e.label].record(
          static_cast<std::uint64_t>(e.duration().as_nanos()));
      queue += static_cast<std::uint64_t>(e.queue.as_nanos());
      wire += static_cast<std::uint64_t>(e.wire.as_nanos());
      cpu += static_cast<std::uint64_t>(e.cpu.as_nanos());
    }
    b.total_ns.record(static_cast<std::uint64_t>(p.total.as_nanos()));
    b.queue_ns.record(queue);
    b.wire_ns.record(wire);
    b.cpu_ns.record(cpu);
  }
  return b;
}

std::string critical_path_to_text(const CriticalPath& p) {
  std::string out = "block " + fmt_hex64(p.block) +
                    " view " + std::to_string(p.view) + " height " +
                    std::to_string(p.height) +
                    (p.three_phase ? "  (three-phase)\n" : "  (two-phase)\n");
  if (!p.complete) out += "  [incomplete: a milestone is missing]\n";
  out +=
      "  edge                     from    to      ms   queue_ms  wire_ms"
      "   cpu_ms  dominant\n";
  for (const CriticalPathEdge& e : p.edges) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-24s %4d  %4d  %8.3f  %8.3f %8.3f %8.3f  %s\n",
                  e.label.c_str(), static_cast<int>(e.from),
                  static_cast<int>(e.to), ms(e.duration()), ms(e.queue),
                  ms(e.wire), ms(e.cpu), cost_kind_name(e.dominant));
    out += line;
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "  total: %.3f ms\n  network round trips: %u\n",
                ms(p.total), p.round_trips);
  out += tail;
  return out;
}

std::string breakdown_to_text(const CriticalPathBreakdown& b) {
  std::string out = "critical path breakdown (";
  out += b.three_phase ? "three-phase" : "two-phase";
  out += ", " + std::to_string(b.blocks) + " blocks";
  if (b.skipped > 0) out += ", " + std::to_string(b.skipped) + " skipped";
  out += "):\n";
  if (b.blocks == 0) {
    out += "  no complete critical paths\n";
    return out;
  }
  out += "  edge                      mean_ms    p50_ms    p99_ms\n";
  const auto order = table_order(b.edge_ns, {});
  auto row = [&out](const std::string& label, const ValueHistogram& h) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-24s %9.3f %9.3f %9.3f\n",
                  label.c_str(), ns_to_ms(h.mean()),
                  ns_to_ms(h.percentile(50)), ns_to_ms(h.percentile(99)));
    out += line;
  };
  for (const std::string& label : order) row(label, b.edge_ns.at(label));
  row("total", b.total_ns);
  char line[160];
  std::snprintf(line, sizeof(line),
                "  components (mean): queue %.3f ms  wire %.3f ms  cpu %.3f"
                " ms\n  network round trips: %u\n",
                ns_to_ms(b.queue_ns.mean()), ns_to_ms(b.wire_ns.mean()),
                ns_to_ms(b.cpu_ns.mean()), b.round_trips);
  out += line;
  return out;
}

std::string breakdown_comparison(const CriticalPathBreakdown& marlin,
                                 const CriticalPathBreakdown& hotstuff) {
  std::string out =
      "critical path: marlin (two-phase) vs hotstuff (three-phase)\n";
  out +=
      "  edge                         marlin mean/p50/p99 ms"
      "      hotstuff mean/p50/p99 ms\n";
  auto cell = [](const ValueHistogram* h) -> std::string {
    if (h == nullptr || h->count() == 0) return "-";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f/%.3f/%.3f", ns_to_ms(h->mean()),
                  ns_to_ms(h->percentile(50)), ns_to_ms(h->percentile(99)));
    return buf;
  };
  auto row = [&out](const std::string& label, const std::string& m,
                    const std::string& h) {
    char line[200];
    std::snprintf(line, sizeof(line), "  %-26s %-28s %s\n", label.c_str(),
                  m.c_str(), h.c_str());
    out += line;
  };
  for (const std::string& label :
       table_order(marlin.edge_ns, hotstuff.edge_ns)) {
    auto mi = marlin.edge_ns.find(label);
    auto hi = hotstuff.edge_ns.find(label);
    row(label, cell(mi == marlin.edge_ns.end() ? nullptr : &mi->second),
        cell(hi == hotstuff.edge_ns.end() ? nullptr : &hi->second));
  }
  row("total", cell(&marlin.total_ns), cell(&hotstuff.total_ns));
  row("network round trips", std::to_string(marlin.round_trips),
      std::to_string(hotstuff.round_trips));
  return out;
}

std::string critical_path_report(const std::vector<TraceEvent>& events) {
  const std::vector<CriticalPath> paths = critical_paths(events);
  if (paths.empty()) {
    return "no critical paths (no proposed blocks with QCs in trace)\n";
  }
  std::string out;
  bool have[2] = {false, false};
  for (int shape = 0; shape < 2; ++shape) {
    const bool three = shape == 1;
    const CriticalPathBreakdown b = aggregate_critical_paths(paths, three);
    if (b.blocks == 0 && b.skipped == 0) continue;
    have[shape] = true;
    out += three ? "== hotstuff (three-phase) ==\n" : "== marlin (two-phase) ==\n";
    for (const CriticalPath& p : paths) {
      if (p.three_phase == three && p.complete) {
        out += critical_path_to_text(p);
        break;
      }
    }
    out += breakdown_to_text(b);
    out += "\n";
  }
  if (have[0] && have[1]) {
    out += breakdown_comparison(aggregate_critical_paths(paths, false),
                                aggregate_critical_paths(paths, true));
  }
  return out;
}

}  // namespace marlin::obs
