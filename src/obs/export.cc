#include "obs/export.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace marlin::obs {

namespace {

// Fixed-precision float formatting so exports are byte-stable across
// runs and platforms (ostream default formatting is locale-sensitive).
std::string fmt_f(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string fmt_hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Metric names and labels are code-controlled identifiers ("a.b{k=v}"),
// but escape the two JSON-breaking characters anyway.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void append_latency_json(std::string& out, const LatencyHistogram& h) {
  out += "{\"count\":" + std::to_string(h.count());
  out += ",\"mean_ms\":" + fmt_f(h.mean().as_millis_f());
  out += ",\"p50_ms\":" + fmt_f(h.percentile(50).as_millis_f());
  out += ",\"p95_ms\":" + fmt_f(h.percentile(95).as_millis_f());
  out += ",\"p99_ms\":" + fmt_f(h.percentile(99).as_millis_f());
  out += ",\"min_ms\":" + fmt_f(h.min().as_millis_f());
  out += ",\"max_ms\":" + fmt_f(h.max().as_millis_f());
  out += "}";
}

void append_sizes_json(std::string& out, const ValueHistogram& h) {
  out += "{\"count\":" + std::to_string(h.count());
  out += ",\"sum\":" + std::to_string(h.sum());
  out += ",\"mean\":" + fmt_f(h.mean());
  out += ",\"p50\":" + fmt_f(h.percentile(50));
  out += ",\"p99\":" + fmt_f(h.percentile(99));
  out += ",\"min\":" + std::to_string(h.min());
  out += ",\"max\":" + std::to_string(h.max());
  out += "}";
}

}  // namespace

std::string event_to_json(const TraceEvent& e) {
  // Every field is always emitted, in a fixed order, so consumers can use
  // the trivial extractor below instead of a full JSON parser.
  std::string out;
  out.reserve(192);
  out += "{\"seq\":" + std::to_string(e.seq);
  out += ",\"t_ns\":" + std::to_string(e.at.as_nanos());
  out += ",\"node\":";
  out += (e.node == kNoNode) ? "-1" : std::to_string(e.node);
  out += ",\"type\":\"";
  out += event_type_name(e.type);
  out += "\",\"view\":" + std::to_string(e.view);
  out += ",\"height\":" + std::to_string(e.height);
  out += ",\"block\":\"" + fmt_hex64(e.block);
  out += "\",\"phase\":\"";
  out += trace_phase_name(e.phase);
  out += "\",\"kind\":" + std::to_string(e.kind);
  out += ",\"a\":" + std::to_string(e.a);
  out += ",\"b\":" + std::to_string(e.b);
  out += ",\"c\":" + std::to_string(e.c);
  out += "}";
  return out;
}

std::string trace_to_jsonl(const TraceSink& sink) {
  return trace_to_jsonl(sink.events());
}

std::string trace_to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& e : events) {
    out += event_to_json(e);
    out += '\n';
  }
  return out;
}

void write_trace_jsonl(const TraceSink& sink, std::ostream& out) {
  out << trace_to_jsonl(sink);
}

bool json_field_u64(const std::string& line, const std::string& key,
                    std::uint64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  // strtoll, not strtoull: "node":-1 must round-trip to kNoNode.
  const long long v = std::strtoll(start, &end, 10);
  if (end == start) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool json_field_str(const std::string& line, const std::string& key,
                    std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto begin = pos + needle.size();
  const auto close = line.find('"', begin);
  if (close == std::string::npos) return false;
  *out = line.substr(begin, close - begin);
  return true;
}

bool event_from_json(const std::string& line, TraceEvent* out) {
  TraceEvent e;
  std::string type_name;
  std::uint64_t seq = 0, t_ns = 0, node = 0, view = 0, height = 0;
  std::uint64_t kind = 0, a = 0, b = 0;
  std::string block_hex, phase_name;
  if (!json_field_u64(line, "seq", &seq) ||
      !json_field_u64(line, "t_ns", &t_ns) ||
      !json_field_u64(line, "node", &node) ||
      !json_field_str(line, "type", &type_name) ||
      !json_field_u64(line, "view", &view) ||
      !json_field_u64(line, "height", &height) ||
      !json_field_str(line, "block", &block_hex) ||
      !json_field_str(line, "phase", &phase_name) ||
      !json_field_u64(line, "kind", &kind) ||
      !json_field_u64(line, "a", &a) || !json_field_u64(line, "b", &b)) {
    return false;
  }
  // `c` was added after the first trace format; default 0 keeps old
  // traces parseable.
  std::uint64_t c = 0;
  json_field_u64(line, "c", &c);
  const EventType type = event_type_from_name(type_name);
  if (type == EventType::kCount) return false;
  e.seq = seq;
  e.at = TimePoint::from_nanos(static_cast<std::int64_t>(t_ns));
  e.node = static_cast<std::uint32_t>(node);
  e.type = type;
  e.view = view;
  e.height = height;
  e.block = std::strtoull(block_hex.c_str(), nullptr, 16);
  e.phase = kNoPhase;
  if (phase_name != "-") {
    for (std::uint8_t p = 0; p < 5; ++p) {
      if (phase_name == trace_phase_name(p)) {
        e.phase = p;
        break;
      }
    }
  }
  e.kind = static_cast<std::uint8_t>(kind);
  e.a = a;
  e.b = b;
  e.c = c;
  *out = e;
  return true;
}

std::string metrics_to_json(const MetricsRegistry& reg) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, value] : reg.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key.to_string()) +
           "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [key, value] : reg.gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key.to_string()) + "\": " + fmt_f(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"latencies\": {";
  first = true;
  for (const auto& [key, hist] : reg.latencies()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key.to_string()) + "\": ";
    append_latency_json(out, hist);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"sizes\": {";
  first = true;
  for (const auto& [key, hist] : reg.size_histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key.to_string()) + "\": ";
    append_sizes_json(out, hist);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string metrics_to_csv(const MetricsRegistry& reg) {
  std::string out = "metric,label,field,value\n";
  auto row = [&out](const std::string& name, const std::string& label,
                    const char* field, const std::string& value) {
    out += name + "," + label + "," + field + "," + value + "\n";
  };
  for (const auto& [key, value] : reg.counters()) {
    row(key.name, key.label, "count", std::to_string(value));
  }
  for (const auto& [key, value] : reg.gauges()) {
    row(key.name, key.label, "value", fmt_f(value));
  }
  for (const auto& [key, hist] : reg.latencies()) {
    row(key.name, key.label, "count", std::to_string(hist.count()));
    row(key.name, key.label, "mean_ms", fmt_f(hist.mean().as_millis_f()));
    row(key.name, key.label, "p50_ms",
        fmt_f(hist.percentile(50).as_millis_f()));
    row(key.name, key.label, "p95_ms",
        fmt_f(hist.percentile(95).as_millis_f()));
    row(key.name, key.label, "p99_ms",
        fmt_f(hist.percentile(99).as_millis_f()));
  }
  for (const auto& [key, hist] : reg.size_histograms()) {
    row(key.name, key.label, "count", std::to_string(hist.count()));
    row(key.name, key.label, "sum", std::to_string(hist.sum()));
    row(key.name, key.label, "mean", fmt_f(hist.mean()));
    row(key.name, key.label, "p99", fmt_f(hist.percentile(99)));
  }
  return out;
}

void print_view_timeline(const std::vector<TraceEvent>& events,
                         std::ostream& out) {
  struct ViewStats {
    TimePoint first = TimePoint::from_nanos(INT64_MAX);
    TimePoint last;
    std::uint64_t proposals = 0;
    std::uint64_t qcs = 0;
    std::uint64_t commits = 0;
    std::uint64_t committed_ops = 0;
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    std::uint64_t timeouts = 0;
    bool view_change = false;
  };
  std::map<ViewNumber, ViewStats> views;
  for (const TraceEvent& e : events) {
    ViewStats& v = views[e.view];
    v.first = std::min(v.first, e.at);
    v.last = std::max(v.last, e.at);
    switch (e.type) {
      case EventType::kProposalSent:
        ++v.proposals;
        break;
      case EventType::kQcFormed:
        ++v.qcs;
        break;
      case EventType::kCommit:
        ++v.commits;
        v.committed_ops += e.a;
        break;
      case EventType::kMsgSent:
        ++v.msgs;
        v.bytes += e.a;
        break;
      case EventType::kTimeoutFired:
        ++v.timeouts;
        break;
      case EventType::kViewChangeStart:
      case EventType::kViewChangeEnd:
        v.view_change = true;
        break;
      default:
        break;
    }
  }
  out << "view        span_ms  proposals  qcs  commits  ops  msgs  kbytes"
         "  notes\n";
  for (const auto& [view, v] : views) {
    const double span_ms =
        v.last >= v.first ? (v.last - v.first).as_millis_f() : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-10llu %8.3f %10llu %4llu %8llu %4llu %5llu %7.1f",
                  static_cast<unsigned long long>(view), span_ms,
                  static_cast<unsigned long long>(v.proposals),
                  static_cast<unsigned long long>(v.qcs),
                  static_cast<unsigned long long>(v.commits),
                  static_cast<unsigned long long>(v.committed_ops),
                  static_cast<unsigned long long>(v.msgs),
                  static_cast<double>(v.bytes) / 1024.0);
    out << line;
    if (v.view_change) out << "  view-change";
    if (v.timeouts > 0) out << "  timeouts=" << v.timeouts;
    out << "\n";
  }
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << content;
  return static_cast<bool>(f.flush());
}

}  // namespace marlin::obs
