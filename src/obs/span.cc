#include "obs/span.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace marlin::obs {

namespace {

// Wire MsgKind values the span builder matches kMsgDelivered events on
// (obs stays below the types layer, so mirror the constants here; simnet's
// kind table is the authority).
constexpr std::uint8_t kKindProposal = 3;

std::string fmt_hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_us(TimePoint t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(t.as_nanos()) / 1000.0);
  return buf;
}

std::string fmt_us(Duration d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(d.as_nanos()) / 1000.0);
  return buf;
}

// Everything the span builder needs about one block, harvested in a
// single pass over the event stream.
struct BlockAgg {
  std::uint64_t first_seq = 0;
  ViewNumber view = 0;
  Height height = 0;

  bool proposed = false;
  std::uint32_t leader = kNoNode;
  TimePoint prop_at;

  bool batch = false;
  Duration batch_wait;

  std::uint64_t proposals_received = 0;
  TimePoint last_proposal_received;

  // First kVoteSent per phase (any voter) — start of that vote round.
  std::map<std::uint8_t, TimePoint> first_vote_sent;

  struct Qc {
    std::uint8_t phase;
    TimePoint at;
    std::uint32_t node;
  };
  std::vector<Qc> qcs;  // in formation (sequence) order

  bool committed = false;
  TimePoint first_commit;
  TimePoint last_commit;

  bool replied = false;
  TimePoint last_reply;
};

// Time-sorted side tables for dominant-cost attribution inside a window.
// Event timestamps are monotone in sequence order (simulation clock), so
// plain append keeps these sorted.
struct SideTables {
  // kMsgDelivered of proposal frames: queueing vs wire split.
  std::vector<TimePoint> prop_at;
  std::vector<std::uint64_t> prop_queue_ns;  // prefix sums
  std::vector<std::uint64_t> prop_wire_ns;

  // kSigVerify charges (at, node, charge ns).
  struct Verify {
    TimePoint at;
    std::uint32_t node;
    std::uint64_t charge_ns;
  };
  std::vector<Verify> verifies;

  // kWalWrite / kSstableWrite / kCheckpoint timestamps.
  std::vector<TimePoint> storage_at;
};

// Sum of prefix-summed values over window [begin, end].
std::uint64_t window_sum(const std::vector<TimePoint>& at,
                         const std::vector<std::uint64_t>& prefix,
                         TimePoint begin, TimePoint end) {
  const auto lo = std::lower_bound(at.begin(), at.end(), begin) - at.begin();
  const auto hi = std::upper_bound(at.begin(), at.end(), end) - at.begin();
  if (hi <= lo) return 0;
  const std::uint64_t upper = prefix[static_cast<std::size_t>(hi) - 1];
  const std::uint64_t lower =
      lo == 0 ? 0 : prefix[static_cast<std::size_t>(lo) - 1];
  return upper - lower;
}

CostKind broadcast_dominant(const SideTables& side, TimePoint begin,
                            TimePoint end) {
  const std::uint64_t queue =
      window_sum(side.prop_at, side.prop_queue_ns, begin, end);
  const std::uint64_t wire =
      window_sum(side.prop_at, side.prop_wire_ns, begin, end);
  if (queue == 0 && wire == 0) return CostKind::kLink;
  return queue > wire ? CostKind::kQueue : CostKind::kLink;
}

CostKind votes_dominant(const SideTables& side, std::uint32_t leader,
                        TimePoint begin, TimePoint end) {
  // The leader serializes quorum-size verification; when its charged
  // crypto CPU covers at least half the round, CPU — not the network —
  // bounds the round.
  std::uint64_t crypto_ns = 0;
  auto lo = std::lower_bound(
      side.verifies.begin(), side.verifies.end(), begin,
      [](const SideTables::Verify& v, TimePoint t) { return v.at < t; });
  for (; lo != side.verifies.end() && lo->at <= end; ++lo) {
    if (lo->node == leader) crypto_ns += lo->charge_ns;
  }
  const auto dur = static_cast<std::uint64_t>((end - begin).as_nanos());
  return crypto_ns * 2 >= dur && crypto_ns > 0 ? CostKind::kCrypto
                                               : CostKind::kLink;
}

CostKind commit_dominant(const SideTables& side, TimePoint begin,
                         TimePoint end) {
  const auto lo =
      std::lower_bound(side.storage_at.begin(), side.storage_at.end(), begin);
  return (lo != side.storage_at.end() && *lo <= end) ? CostKind::kStorage
                                                     : CostKind::kLink;
}

}  // namespace

const char* cost_kind_name(CostKind k) {
  switch (k) {
    case CostKind::kLink:
      return "link";
    case CostKind::kQueue:
      return "queue";
    case CostKind::kCrypto:
      return "crypto";
    case CostKind::kStorage:
      return "storage";
    case CostKind::kUnattributed:
      break;
  }
  return "-";
}

std::vector<BlockSpans> build_spans(const std::vector<TraceEvent>& events) {
  std::map<std::uint64_t, BlockAgg> aggs;
  std::vector<std::uint64_t> order;  // block ids in first-touch order
  SideTables side;

  auto touch = [&](const TraceEvent& e) -> BlockAgg& {
    auto [it, inserted] = aggs.try_emplace(e.block);
    if (inserted) {
      it->second.first_seq = e.seq;
      order.push_back(e.block);
    }
    BlockAgg& agg = it->second;
    if (agg.view == 0) agg.view = e.view;
    if (agg.height == 0) agg.height = e.height;
    return agg;
  };

  for (const TraceEvent& e : events) {
    switch (e.type) {
      case EventType::kProposalSent: {
        if (e.block == 0) break;  // view-change bundles carry no single id
        BlockAgg& agg = touch(e);
        if (!agg.proposed) {
          agg.proposed = true;
          agg.leader = e.node;
          agg.prop_at = e.at;
        }
        break;
      }
      case EventType::kBatchDequeued: {
        BlockAgg& agg = touch(e);
        agg.batch = true;
        agg.batch_wait = Duration::nanos(static_cast<std::int64_t>(e.b));
        break;
      }
      case EventType::kProposalReceived: {
        if (e.block == 0) break;
        BlockAgg& agg = touch(e);
        ++agg.proposals_received;
        agg.last_proposal_received = e.at;
        break;
      }
      case EventType::kVoteSent: {
        BlockAgg& agg = touch(e);
        agg.first_vote_sent.try_emplace(e.phase, e.at);
        break;
      }
      case EventType::kQcFormed: {
        BlockAgg& agg = touch(e);
        agg.qcs.push_back({e.phase, e.at, e.node});
        break;
      }
      case EventType::kCommit: {
        BlockAgg& agg = touch(e);
        if (!agg.committed) {
          agg.committed = true;
          agg.first_commit = e.at;
        }
        agg.last_commit = e.at;
        break;
      }
      case EventType::kReplyAccepted: {
        if (e.block == 0) break;
        BlockAgg& agg = touch(e);
        agg.replied = true;
        agg.last_reply = e.at;
        break;
      }
      case EventType::kMsgDelivered: {
        if (e.kind != kKindProposal) break;
        const std::uint64_t queue = e.b;
        const std::uint64_t wire = e.c >= e.b ? e.c - e.b : 0;
        const std::uint64_t pq =
            side.prop_queue_ns.empty() ? 0 : side.prop_queue_ns.back();
        const std::uint64_t pw =
            side.prop_wire_ns.empty() ? 0 : side.prop_wire_ns.back();
        side.prop_at.push_back(e.at);
        side.prop_queue_ns.push_back(pq + queue);
        side.prop_wire_ns.push_back(pw + wire);
        break;
      }
      case EventType::kSigVerify:
        side.verifies.push_back({e.at, e.node, e.c});
        break;
      case EventType::kWalWrite:
      case EventType::kSstableWrite:
      case EventType::kCheckpoint:
        side.storage_at.push_back(e.at);
        break;
      default:
        break;
    }
  }

  std::vector<BlockSpans> out;
  out.reserve(order.size());
  for (const std::uint64_t id : order) {
    const BlockAgg& agg = aggs.at(id);
    if (!agg.proposed) continue;  // no lifecycle without a proposal

    BlockSpans bs;
    bs.block = id;
    bs.view = agg.view;
    bs.height = agg.height;
    bs.committed = agg.committed;

    auto child = [&](std::string name, TimePoint begin, TimePoint end,
                     CostKind dominant, std::uint32_t node) {
      bs.children.push_back(Span{std::move(name), node, id, agg.view,
                                 agg.height, begin, end, dominant});
    };

    TimePoint begin = agg.prop_at;
    if (agg.batch && agg.batch_wait > Duration::zero()) {
      begin = agg.prop_at - agg.batch_wait;
      child("txpool.wait", begin, agg.prop_at, CostKind::kQueue, agg.leader);
    }
    if (agg.proposals_received > 0 &&
        agg.last_proposal_received >= agg.prop_at) {
      child("proposal.broadcast", agg.prop_at, agg.last_proposal_received,
            broadcast_dominant(side, agg.prop_at, agg.last_proposal_received),
            agg.leader);
    }
    for (const BlockAgg::Qc& qc : agg.qcs) {
      auto it = agg.first_vote_sent.find(qc.phase);
      if (it == agg.first_vote_sent.end() || it->second > qc.at) continue;
      child(std::string("votes.") + trace_phase_name(qc.phase), it->second,
            qc.at, votes_dominant(side, qc.node, it->second, qc.at), qc.node);
    }
    if (agg.committed) {
      child("commit.spread", agg.first_commit, agg.last_commit,
            commit_dominant(side, agg.first_commit, agg.last_commit),
            agg.leader);
      if (agg.replied && agg.last_reply >= agg.first_commit) {
        child("reply.delivery", agg.first_commit, agg.last_reply,
              CostKind::kLink, agg.leader);
      }
    }

    TimePoint end = agg.prop_at;
    for (const Span& s : bs.children) end = std::max(end, s.end);
    // The umbrella inherits the dominant cost of its longest child.
    CostKind dominant = CostKind::kUnattributed;
    Duration longest = Duration::zero();
    for (const Span& s : bs.children) {
      if (s.duration() >= longest) {
        longest = s.duration();
        dominant = s.dominant;
      }
    }
    bs.umbrella = Span{"block",     agg.leader, id,  agg.view,
                       agg.height,  begin,      end, dominant};
    out.push_back(std::move(bs));
  }
  return out;
}

std::string spans_to_chrome_json(const std::vector<BlockSpans>& blocks) {
  // Lane (tid) per span category keeps each node's timeline readable in
  // Perfetto: one row per lifecycle stage.
  auto lane = [](const std::string& name) -> int {
    if (name == "block") return 0;
    if (name == "txpool.wait") return 1;
    if (name == "proposal.broadcast") return 2;
    if (name.rfind("votes.", 0) == 0) return 3;
    if (name == "commit.spread") return 4;
    return 5;  // reply.delivery
  };
  auto lane_name = [](int l) -> const char* {
    switch (l) {
      case 0:
        return "block";
      case 1:
        return "txpool.wait";
      case 2:
        return "proposal.broadcast";
      case 3:
        return "votes";
      case 4:
        return "commit.spread";
      default:
        return "reply.delivery";
    }
  };

  std::map<std::uint32_t, std::set<int>> lanes_by_node;
  for (const BlockSpans& bs : blocks) {
    lanes_by_node[bs.umbrella.node].insert(0);
    for (const Span& s : bs.children) {
      lanes_by_node[s.node].insert(lane(s.name));
    }
  }

  std::vector<std::string> lines;
  for (const auto& [node, lanes] : lanes_by_node) {
    lines.push_back("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                    std::to_string(node) +
                    ",\"tid\":0,\"args\":{\"name\":\"node " +
                    std::to_string(node) + "\"}}");
    for (const int l : lanes) {
      lines.push_back("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
                      std::to_string(node) + ",\"tid\":" + std::to_string(l) +
                      ",\"args\":{\"name\":\"" + lane_name(l) + "\"}}");
    }
  }

  auto emit = [&](const Span& s, bool committed) {
    std::string line = "{\"name\":\"" + s.name + "\",\"ph\":\"X\",\"pid\":" +
                       std::to_string(s.node) +
                       ",\"tid\":" + std::to_string(lane(s.name)) +
                       ",\"ts\":" + fmt_us(s.begin) +
                       ",\"dur\":" + fmt_us(s.duration()) +
                       ",\"args\":{\"block\":\"" + fmt_hex64(s.block) +
                       "\",\"view\":" + std::to_string(s.view) +
                       ",\"height\":" + std::to_string(s.height) +
                       ",\"dominant\":\"" + cost_kind_name(s.dominant) +
                       "\",\"committed\":" + (committed ? "true" : "false") +
                       "}}";
    lines.push_back(std::move(line));
  };
  for (const BlockSpans& bs : blocks) {
    emit(bs.umbrella, bs.committed);
    for (const Span& s : bs.children) emit(s, bs.committed);
  }

  // One JSON object per line (trailing commas between them) so the schema
  // checker can validate line-by-line without a full JSON parser.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

}  // namespace marlin::obs
