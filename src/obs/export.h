// Exporters for the observability subsystem:
//   - JSONL trace dump (one event per line; the trace_inspect input format)
//   - JSON / CSV metrics snapshots
//   - a human-readable per-view timeline printer
// All output is deterministic: fixed field order, fixed float precision,
// ordered-map iteration — identical runs export identical bytes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace marlin::obs {

/// One event as a single-line JSON object (no trailing newline).
std::string event_to_json(const TraceEvent& e);

/// Full buffered trace, one JSON object per line.
std::string trace_to_jsonl(const TraceSink& sink);
/// Same format from an already-materialized event list (e.g. the sharded
/// engine's deterministic cross-shard merge).
std::string trace_to_jsonl(const std::vector<TraceEvent>& events);
void write_trace_jsonl(const TraceSink& sink, std::ostream& out);

/// Minimal field extraction from an event_to_json line — the parser
/// trace_inspect and tests use (we only ever parse our own output).
/// Returns false when the key is absent.
bool json_field_u64(const std::string& line, const std::string& key,
                    std::uint64_t* out);
bool json_field_str(const std::string& line, const std::string& key,
                    std::string* out);
/// Parses one JSONL line back into an event; false on malformed input.
bool event_from_json(const std::string& line, TraceEvent* out);

/// Metrics snapshot as a JSON document (counters / gauges / histograms).
std::string metrics_to_json(const MetricsRegistry& reg);

/// Metrics snapshot as CSV rows: metric,label,field,value.
std::string metrics_to_csv(const MetricsRegistry& reg);

/// Groups events by view and prints a compact human-readable timeline:
/// per view, the span, leader traffic, phase milestones, and commits.
void print_view_timeline(const std::vector<TraceEvent>& events,
                         std::ostream& out);

/// Writes `content` to `path`; returns false (and leaves a best-effort
/// partial file) on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace marlin::obs
