// Structured protocol event tracing. A TraceSink is a fixed-capacity ring
// buffer of typed, fixed-size events stamped with a sequence number and the
// simulation clock. Every layer of the stack (consensus, simnet, storage,
// runtime) records into the same sink, so a trace is a single totally
// ordered story of a run — and, because the simulator is deterministic,
// two runs with the same seed produce byte-identical traces (the golden
// determinism property tests assert on).
//
// The event taxonomy and the meaning of the generic `a`/`b` operands per
// type are documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace marlin::obs {

enum class EventType : std::uint8_t {
  kProposalSent = 0,   // leader broadcast a proposal (a = ops in batch)
  kProposalReceived,   // replica accepted a proposal (a = sender)
  kVoteSent,           // replica voted (a = vote recipient)
  kVoteReceived,       // leader received a vote (a = sender, b = votes so far)
  kQcFormed,           // quorum reached (phase = QC phase)
  kPhaseTransition,    // leader drives the instance into `phase`
  kCommit,             // block delivered (a = executed ops, b = total ops)
  kViewEntered,        // replica entered view `view`
  kViewChangeStart,    // replica actively joined a view change (sent VC/NV)
  kViewChangeEnd,      // new leader resolved the VC (a = 1 happy, 0 unhappy)
  kTimeoutFired,       // pacemaker view timer expired
  kMsgSent,            // wire send (kind set; a = bytes, b = authenticators)
  kMsgDropped,         // network dropped a send (a = dest, b = reason)
  kWalWrite,           // WAL append (a = record bytes)
  kSstableWrite,       // memtable flush / compaction output (a = bytes, b = entries)
  kCheckpoint,         // storage checkpoint ran (a = tables merged)
  kSigVerify,          // signature verification charged (a = count, b = 1 if pairing, c = charge ns)
  kMsgDelivered,       // network dequeued a frame at the receiver (kind set;
                       // a = sender, b = NIC/link queueing ns, c = total transit ns)
  kClientSubmit,       // client issued a new request (a = request id, b = client id)
  kReplyAccepted,      // client reached its reply quorum (block = committed
                       // block id from the reply; a = request id, b = client id)
  kBatchDequeued,      // leader drained a proposal batch from its txpool
                       // (a = ops in batch, b = oldest op's pool wait ns)
  kFaultInjected,      // fault controller executed a plan action (node =
                       // resolved target replica or kNoNode, a = FaultKind,
                       // b = index of the action in its plan)
  kReplicaRestart,     // replica rebuilt itself from disk (a = 1 if the DB
                       // was wiped first, b = WAL records replayed,
                       // height = restored committed height)
  kStateTransfer,      // snapshot state transfer step (a = 0 request sent,
                       // 1 snapshot served, 2 snapshot applied, 3 amnesia
                       // recovery complete; b = suffix blocks; height =
                       // manifest committed height)
  kCount,              // sentinel — number of event types
};

inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::kCount);
// The per-type enable filter is a 64-bit mask; growing the taxonomy past
// that needs a wider representation, not a silent shift overflow.
static_assert(kEventTypeCount <= 64);

/// Stable snake_case name used by the JSONL exporter and trace_inspect.
const char* event_type_name(EventType t);

/// Inverse of event_type_name; returns kCount for unknown names.
EventType event_type_from_name(const std::string& name);

/// Phase names for the `phase` field. Values mirror types::Phase (a wire
/// constant); obs keeps its own table so it depends only on common/.
const char* trace_phase_name(std::uint8_t phase);

inline constexpr std::uint32_t kNoNode = 0xffffffffu;
inline constexpr std::uint8_t kNoPhase = 0xff;

/// kMsgDropped reasons (the `b` operand).
inline constexpr std::uint64_t kDropFilter = 0;  // partition / filter
inline constexpr std::uint64_t kDropRandom = 1;  // loss model
inline constexpr std::uint64_t kDropFault = 2;   // injected drop-burst window
inline constexpr std::uint64_t kDropBackpressure = 3;  // realnet egress cap

struct TraceEvent {
  std::uint64_t seq = 0;        // assigned by the sink, dense and monotonic
  TimePoint at = TimePoint{};   // sink clock at record time
  std::uint32_t node = kNoNode;
  EventType type = EventType::kCount;
  std::uint8_t phase = kNoPhase;  // types::Phase value when applicable
  std::uint8_t kind = 0;          // types::MsgKind byte for message events
  ViewNumber view = 0;
  Height height = 0;
  std::uint64_t block = 0;  // first 8 bytes of the block hash (0 = none)
  std::uint64_t a = 0;      // per-type operand (see taxonomy above)
  std::uint64_t b = 0;      // per-type operand
  std::uint64_t c = 0;      // per-type operand (durations/charges in ns)

  bool operator==(const TraceEvent&) const = default;
};

class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity);

  /// Timestamps come from here (the simulation clock); unset = origin.
  void set_clock(std::function<TimePoint()> clock) {
    clock_ = std::move(clock);
  }

  /// Per-type filter; everything is enabled by default. Recording a
  /// disabled type is a no-op (one branch) and leaves no gap in the
  /// sequence numbering of the events that are kept.
  void set_enabled(EventType t, bool on);
  bool enabled(EventType t) const {
    return (disabled_mask_ & (1ull << static_cast<unsigned>(t))) == 0;
  }

  /// Stamps seq + time and stores the event (evicting the oldest past
  /// capacity). Returns the assigned sequence number.
  std::uint64_t record(TraceEvent e);

  /// Events in sequence order, oldest first (at most `capacity`).
  std::vector<TraceEvent> events() const;

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Total record() calls that were stored (including since-evicted ones).
  std::uint64_t total_recorded() const { return next_seq_; }
  /// Stored events that have been evicted by the ring.
  std::uint64_t evicted() const { return next_seq_ - ring_.size(); }

  /// Drops all buffered events and restarts sequence numbering.
  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  // grows to capacity, then wraps at head_
  std::size_t head_ = 0;          // next overwrite position once full
  std::uint64_t next_seq_ = 0;
  std::uint64_t disabled_mask_ = 0;
  std::function<TimePoint()> clock_;
};

}  // namespace marlin::obs
