// Critical-path extraction: the longest dependency chain behind each
// committed block, reconstructed from the trace. The chain alternates
// leader->replica "out" legs (proposal / QC notices) with the
// quorum-completing replica->leader "back" legs (the vote that formed
// each QC), ending at the first commit. Each network edge is decomposed
// into queueing, wire, and CPU time using the kMsgDelivered attribution
// events, and the per-edge durations aggregate into mean/p50/p99
// breakdown tables — Marlin (two vote round trips) vs HotStuff (three)
// side by side.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace marlin::obs {

struct CriticalPathEdge {
  std::string label;  // "proposal.out", "vote[prepare].back", ...
  std::uint32_t from = kNoNode;
  std::uint32_t to = kNoNode;
  TimePoint begin;
  TimePoint end;
  bool network = false;   // traversed a network hop
  bool response = false;  // replica->leader vote leg (a round-trip return)
  // Decomposition of network edges (zero when unmatched / local):
  Duration queue;  // busy NIC / link at the sender
  Duration wire;   // serialization + propagation (+ jitter)
  Duration cpu;    // charged CPU before departure + after arrival
  CostKind dominant = CostKind::kUnattributed;

  Duration duration() const { return end - begin; }
};

struct CriticalPath {
  std::uint64_t block = 0;
  ViewNumber view = 0;
  Height height = 0;
  /// All milestones present (proposal, every QC's completing vote, commit).
  bool complete = false;
  /// Saw a precommit-phase QC — the HotStuff shape; Marlin has none.
  bool three_phase = false;
  std::vector<CriticalPathEdge> edges;
  Duration total;
  /// Number of response edges: vote legs back to the leader. Two for
  /// Marlin's two-phase commit, three for HotStuff.
  std::uint32_t round_trips = 0;
};

/// Extracts one path per proposed-and-committed block, in first-touch
/// order. Paths missing a milestone come back with complete = false.
std::vector<CriticalPath> critical_paths(const std::vector<TraceEvent>& events);

/// Aggregate over the complete paths of one protocol shape.
struct CriticalPathBreakdown {
  bool three_phase = false;
  std::uint64_t blocks = 0;   // complete paths aggregated
  std::uint64_t skipped = 0;  // incomplete paths excluded (reported, not hidden)
  std::uint32_t round_trips = 0;
  std::map<std::string, ValueHistogram> edge_ns;  // per-label durations
  ValueHistogram total_ns;
  ValueHistogram queue_ns;  // per-path sums of each component
  ValueHistogram wire_ns;
  ValueHistogram cpu_ns;
};

CriticalPathBreakdown aggregate_critical_paths(
    const std::vector<CriticalPath>& paths, bool three_phase);

/// One path as a per-edge table, ending with "network round trips: N".
std::string critical_path_to_text(const CriticalPath& p);

/// One shape's aggregate as a mean/p50/p99 table.
std::string breakdown_to_text(const CriticalPathBreakdown& b);

/// Marlin and HotStuff breakdowns side by side (canonical edge order).
std::string breakdown_comparison(const CriticalPathBreakdown& marlin,
                                 const CriticalPathBreakdown& hotstuff);

/// Full report for a trace: splits paths by protocol shape, shows the
/// first complete path of each shape in detail, each shape's breakdown,
/// and the side-by-side comparison when both shapes are present.
std::string critical_path_report(const std::vector<TraceEvent>& events);

}  // namespace marlin::obs
