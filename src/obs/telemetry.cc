#include "obs/telemetry.h"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "common/wire_codec.h"

namespace marlin::obs {

namespace {

// "replica.committed_ops" -> "marlin_replica_committed_ops". Prometheus
// metric names admit [a-zA-Z0-9_:]; everything else becomes '_'.
std::string prom_name(const std::string& name) {
  std::string out = "marlin_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_escaped_label_value(std::string& out, std::string_view v) {
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
}

// Registry label string "k=v,k2=v2" -> Prometheus 'k="v",k2="v2"'.
// `extra` (e.g. quantile="0.5") is appended when non-empty.
std::string prom_labels(const std::string& label, const std::string& extra) {
  std::string inner;
  std::size_t pos = 0;
  while (pos < label.size()) {
    std::size_t comma = label.find(',', pos);
    if (comma == std::string::npos) comma = label.size();
    const std::string_view pair(label.data() + pos, comma - pos);
    const std::size_t eq = pair.find('=');
    if (!inner.empty()) inner.push_back(',');
    if (eq == std::string_view::npos) {
      // Label without '=': keep it visible rather than dropping data.
      inner += "label=\"";
      append_escaped_label_value(inner, pair);
      inner.push_back('"');
    } else {
      inner.append(pair.substr(0, eq));
      inner += "=\"";
      append_escaped_label_value(inner, pair.substr(eq + 1));
      inner.push_back('"');
    }
    pos = comma + 1;
  }
  if (!extra.empty()) {
    if (!inner.empty()) inner.push_back(',');
    inner += extra;
  }
  if (inner.empty()) return "";
  return "{" + inner + "}";
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

// Emits "# TYPE" once per family; map iteration is ordered by (name,
// label), so a family's series are contiguous.
template <typename Map, typename EmitSeries>
void emit_families(std::string& out, const Map& map, const char* type,
                   EmitSeries&& emit) {
  const std::string* prev_name = nullptr;
  for (const auto& [key, value] : map) {
    if (prev_name == nullptr || *prev_name != key.name) {
      out += "# TYPE " + prom_name(key.name) + " " + type + "\n";
      prev_name = &key.name;
    }
    emit(key, value);
  }
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

double ms(Duration d) { return static_cast<double>(d.as_nanos()) / 1e6; }

}  // namespace

std::string metrics_to_prometheus(const MetricsRegistry& reg) {
  std::string out;
  out.reserve(4096);

  emit_families(out, reg.counters(), "counter",
                [&out](const MetricKey& key, std::uint64_t v) {
                  char buf[32];
                  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
                  out += prom_name(key.name) + prom_labels(key.label, "") +
                         " " + buf + "\n";
                });

  emit_families(out, reg.gauges(), "gauge",
                [&out](const MetricKey& key, double v) {
                  out += prom_name(key.name) + prom_labels(key.label, "") +
                         " " + fmt_double(v) + "\n";
                });

  // Histograms render as Prometheus summaries: quantile series + _sum +
  // _count. Latency values are exported in seconds (the Prometheus base
  // unit); ValueHistograms keep their native unit (bytes, counts).
  static constexpr double kQuantiles[] = {0.5, 0.9, 0.95, 0.99};

  emit_families(
      out, reg.latencies(), "summary",
      [&out](const MetricKey& key, const LatencyHistogram& h) {
        const std::string name = prom_name(key.name);
        for (double q : kQuantiles) {
          const double secs =
              static_cast<double>(h.percentile(q * 100.0).as_nanos()) / 1e9;
          out += name +
                 prom_labels(key.label,
                             "quantile=\"" + fmt_double(q) + "\"") +
                 " " + fmt_double(secs) + "\n";
        }
        const double sum_secs =
            static_cast<double>(h.mean().as_nanos()) / 1e9 *
            static_cast<double>(h.count());
        out += name + "_sum" + prom_labels(key.label, "") + " " +
               fmt_double(sum_secs) + "\n";
        out += name + "_count" + prom_labels(key.label, "") + " " +
               std::to_string(h.count()) + "\n";
      });

  emit_families(
      out, reg.size_histograms(), "summary",
      [&out](const MetricKey& key, const ValueHistogram& h) {
        const std::string name = prom_name(key.name);
        for (double q : kQuantiles) {
          out += name +
                 prom_labels(key.label,
                             "quantile=\"" + fmt_double(q) + "\"") +
                 " " + fmt_double(h.percentile(q * 100.0)) + "\n";
        }
        out += name + "_sum" + prom_labels(key.label, "") + " " +
               std::to_string(h.sum()) + "\n";
        out += name + "_count" + prom_labels(key.label, "") + " " +
               std::to_string(h.count()) + "\n";
      });

  return out;
}

void net_stats_to_metrics(const net::NodeNetStats& stats, MetricsRegistry& reg,
                          std::string_view node_label) {
  reg.counter("net.messages_sent", node_label) += stats.messages_sent;
  reg.counter("net.bytes_sent", node_label) += stats.bytes_sent;
  reg.counter("net.messages_delivered", node_label) +=
      stats.messages_delivered;
  reg.counter("net.bytes_delivered", node_label) += stats.bytes_delivered;
  reg.counter("net.messages_dropped", node_label) += stats.messages_dropped;
  for (std::size_t k = 0; k < net::kNetKindSlots; ++k) {
    if (stats.msgs_sent_by_kind[k] == 0 &&
        stats.msgs_delivered_by_kind[k] == 0) {
      continue;
    }
    const std::string label =
        "kind=" + std::string(wire::kind_slot_name(k));
    reg.counter("net.messages_sent", label) += stats.msgs_sent_by_kind[k];
    reg.counter("net.bytes_sent", label) += stats.bytes_sent_by_kind[k];
    reg.counter("net.messages_delivered", label) +=
        stats.msgs_delivered_by_kind[k];
    reg.counter("net.bytes_delivered", label) +=
        stats.bytes_delivered_by_kind[k];
  }
}

std::string metrics_series_line(double t_seconds, const MetricsRegistry& reg) {
  std::string out;
  out.reserve(1024);
  out += "{\"t\":" + fmt_double(t_seconds);

  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [key, v] : reg.counters()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_json_escaped(out, key.to_string());
    out += "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, v] : reg.gauges()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_json_escaped(out, key.to_string());
    out += "\":" + fmt_double(v);
  }
  out += "},\"latency_ms\":{";
  first = true;
  for (const auto& [key, h] : reg.latencies()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_json_escaped(out, key.to_string());
    out += "\":{\"count\":" + std::to_string(h.count()) +
           ",\"mean\":" + fmt_double(ms(h.mean())) +
           ",\"p50\":" + fmt_double(ms(h.percentile(50))) +
           ",\"p95\":" + fmt_double(ms(h.percentile(95))) +
           ",\"p99\":" + fmt_double(ms(h.percentile(99))) +
           ",\"max\":" + fmt_double(ms(h.max())) + "}";
  }
  out += "},\"sizes\":{";
  first = true;
  for (const auto& [key, h] : reg.size_histograms()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_json_escaped(out, key.to_string());
    out += "\":{\"count\":" + std::to_string(h.count()) +
           ",\"mean\":" + fmt_double(h.mean()) +
           ",\"p50\":" + fmt_double(h.percentile(50)) +
           ",\"p99\":" + fmt_double(h.percentile(99)) +
           ",\"max\":" + std::to_string(h.max()) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace marlin::obs
