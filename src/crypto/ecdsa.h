// ECDSA over secp256k1 with deterministic nonces (RFC 6979 flavour, using
// our HMAC-SHA256). This is the "real" signature scheme exercised by unit
// tests and examples; the simulation testbed swaps in FastSigner with a
// calibrated cost model (see crypto/signer.h and DESIGN.md §1).
#pragma once

#include <optional>

#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

namespace marlin::crypto {

struct EcdsaSignature {
  U256 r;
  U256 s;

  /// 64-byte fixed encoding: r || s, big-endian.
  Bytes encode() const;
  static std::optional<EcdsaSignature> decode(BytesView b);
  bool operator==(const EcdsaSignature&) const = default;
};

class EcdsaPublicKey {
 public:
  explicit EcdsaPublicKey(AffinePoint q) : q_(q) {}

  /// Verifies a signature over the SHA-256 digest of `message`.
  bool verify(BytesView message, const EcdsaSignature& sig) const;
  bool verify_digest(const Hash256& digest, const EcdsaSignature& sig) const;

  Bytes encode() const { return q_.encode(); }
  static std::optional<EcdsaPublicKey> decode(BytesView b);
  const AffinePoint& point() const { return q_; }

 private:
  AffinePoint q_;
};

class EcdsaPrivateKey {
 public:
  /// Derives a key pair deterministically from a seed (tests/simulation);
  /// the seed is hashed and reduced into [1, n-1].
  static EcdsaPrivateKey from_seed(BytesView seed);

  EcdsaSignature sign(BytesView message) const;
  EcdsaSignature sign_digest(const Hash256& digest) const;

  EcdsaPublicKey public_key() const;
  const U256& scalar() const { return d_; }

 private:
  explicit EcdsaPrivateKey(U256 d) : d_(d) {}

  U256 d_;
};

}  // namespace marlin::crypto
