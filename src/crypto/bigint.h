// Fixed-width 256-bit unsigned arithmetic plus modular arithmetic for
// moduli of the form 2^256 - d (both the secp256k1 field prime and group
// order have this shape). This is the arithmetic core under the ECDSA
// implementation; it is correctness-oriented, not constant-time — see
// crypto/README note in DESIGN.md (simulated network, not a production HSM).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace marlin::crypto {

/// 256-bit unsigned integer, little-endian limb order.
struct U256 {
  std::array<std::uint64_t, 4> limb{};

  static U256 zero() { return U256{}; }
  static U256 one() { return from_u64(1); }
  static U256 from_u64(std::uint64_t v);
  /// Parses exactly 32 big-endian bytes.
  static U256 from_be_bytes(BytesView b);
  /// Parses a (≤64 char) hex string, big-endian. Asserts on bad input.
  static U256 from_hex(std::string_view hex);

  Bytes to_be_bytes() const;
  std::string to_hex() const;

  bool is_zero() const;
  bool is_odd() const { return limb[0] & 1; }
  bool bit(int i) const;   // i in [0, 256)
  int bit_length() const;  // index of highest set bit + 1; 0 for zero

  auto operator<=>(const U256& o) const {
    for (int i = 3; i >= 0; --i) {
      if (limb[i] != o.limb[i]) return limb[i] <=> o.limb[i];
    }
    return std::strong_ordering::equal;
  }
  bool operator==(const U256&) const = default;
};

/// 512-bit intermediate for full products.
struct U512 {
  std::array<std::uint64_t, 8> limb{};

  bool high_is_zero() const;  // limbs [4..8) all zero
  U256 low() const;
  U256 high() const;
};

/// out = a + b, returns the carry bit.
std::uint64_t add_with_carry(const U256& a, const U256& b, U256& out);
/// out = a - b, returns the borrow bit.
std::uint64_t sub_with_borrow(const U256& a, const U256& b, U256& out);
/// Full 256x256 -> 512-bit product.
U512 mul_full(const U256& a, const U256& b);
/// 512 + 512 with wrap (carry discarded; callers guarantee no overflow).
U512 add512(const U512& a, const U512& b);

/// Modular arithmetic for m = 2^256 - d. Precomputes d once.
class ModArith {
 public:
  explicit ModArith(const U256& modulus);

  const U256& modulus() const { return m_; }

  U256 add(const U256& a, const U256& b) const;
  U256 sub(const U256& a, const U256& b) const;
  U256 mul(const U256& a, const U256& b) const;
  U256 sqr(const U256& a) const { return mul(a, a); }
  U256 pow(const U256& base, const U256& exp) const;
  /// Multiplicative inverse via Fermat's little theorem (m must be prime).
  U256 inv(const U256& a) const;
  /// Reduces an arbitrary 512-bit value mod m.
  U256 reduce(const U512& x) const;
  /// Reduces a 256-bit value mod m (single conditional subtraction domain).
  U256 reduce(const U256& x) const;

 private:
  U256 m_;
  U256 d_;  // 2^256 - m
};

}  // namespace marlin::crypto
