#include "crypto/signer.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace marlin::crypto {

namespace {
std::atomic<bool> g_parallel_crypto{false};
}  // namespace

void set_parallel_crypto(bool on) {
  g_parallel_crypto.store(on, std::memory_order_relaxed);
}
bool parallel_crypto() {
  return g_parallel_crypto.load(std::memory_order_relaxed);
}

namespace {

// Keyed 64-byte tag registry with memoization. One suite serves every
// simulated replica in the process, so the same (signer, digest) tag is
// derived once by the signer and then re-derived by up to n verifying
// replicas; caching makes each distinct tag cost one HMAC evaluation per
// run instead of n+1. Midstates (HmacKey) drop the per-evaluation cost
// further by paying the ipad/opad compressions once per key. Outputs are
// byte-identical to the uncached path, and the *modeled* crypto charges
// (CryptoCostModel, virtual time) are applied by the consensus layer
// independently of this real-CPU shortcut.
class TagCache {
 public:
  explicit TagCache(const std::vector<Hash256>& secrets) {
    keys_.reserve(secrets.size());
    for (const Hash256& s : secrets) keys_.emplace_back(s.view());
  }

  std::uint32_t n() const { return static_cast<std::uint32_t>(keys_.size()); }

  // 64-byte tag: two chained HMACs so wire sizes match ECDSA exactly —
  // the bandwidth model must see identical message lengths.
  const Bytes& tag(std::uint32_t key_index, BytesView message) const {
    if (message.size() <= CacheKey::kMaxMsg) {
      if (parallel_crypto()) return tag_locked(key_index, message);
      CacheKey k;
      k.key_index = key_index;
      k.len = static_cast<std::uint8_t>(message.size());
      std::memcpy(k.msg.data(), message.data(), message.size());
      auto [it, inserted] = cache_.try_emplace(k);
      if (inserted) {
        it->second = compute(key_index, message);
        // Bound memory on very long runs; a clear only costs recomputation.
        if (cache_.size() > kMaxEntries) {
          Bytes value = std::move(it->second);
          cache_.clear();
          it = cache_.try_emplace(k, std::move(value)).first;
        }
      }
      return it->second;
    }
    // Per-thread scratch: long messages bypass the cache on any engine.
    static thread_local Bytes scratch;
    scratch = compute(key_index, message);
    return scratch;
  }

 private:
  struct CacheKey {
    static constexpr std::size_t kMaxMsg = 48;
    std::uint32_t key_index = 0;
    std::uint8_t len = 0;
    std::array<std::uint8_t, kMaxMsg> msg{};
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      // Messages are nearly always SHA-256 digests: the leading bytes are
      // already uniform, so a load plus key mixing suffices.
      std::uint64_t h;
      std::memcpy(&h, k.msg.data(), sizeof h);
      return h ^ (static_cast<std::uint64_t>(k.key_index) * 0x9e3779b97f4a7c15ULL) ^ k.len;
    }
  };
  static constexpr std::size_t kMaxEntries = 1u << 20;

  Bytes compute(std::uint32_t key_index, BytesView message) const {
    const HmacKey& key = keys_[key_index];
    const Hash256 first = key.mac(message);
    const Hash256 second = key.mac(first.view());
    Bytes out = first.to_bytes();
    append(out, second.view());
    return out;
  }

  /// Parallel-worker path: same memoization under a mutex, with the result
  /// copied into thread-local storage (the concurrent kMaxEntries clear
  /// would otherwise invalidate a reference another worker still holds).
  const Bytes& tag_locked(std::uint32_t key_index, BytesView message) const {
    static thread_local Bytes local;
    CacheKey k;
    k.key_index = key_index;
    k.len = static_cast<std::uint8_t>(message.size());
    std::memcpy(k.msg.data(), message.data(), message.size());
    std::lock_guard<std::mutex> guard(mu_);
    auto [it, inserted] = cache_.try_emplace(k);
    if (inserted) {
      it->second = compute(key_index, message);
      if (cache_.size() > kMaxEntries) {
        Bytes value = std::move(it->second);
        cache_.clear();
        it = cache_.try_emplace(k, std::move(value)).first;
      }
    }
    local = it->second;
    return local;
  }

  std::vector<HmacKey> keys_;
  mutable std::mutex mu_;
  mutable std::unordered_map<CacheKey, Bytes, CacheKeyHash> cache_;
};

// Shared implementation of the simulated threshold-signature combine /
// verify (see SignatureSuite doc): the combined object is a 64-byte
// suite-secret MAC over the message, derivable only after `threshold`
// valid partials are presented.
class ThresholdCore {
 public:
  ThresholdCore(BytesView seed, const Verifier& verifier)
      : verifier_(verifier) {
    Bytes material(seed.begin(), seed.end());
    append(material, to_bytes("threshold-core"));
    secret_ = Sha256::digest(material);
    tags_ = std::make_unique<TagCache>(std::vector<Hash256>{secret_});
  }

  std::optional<Bytes> combine(
      BytesView message, const std::vector<std::pair<ReplicaId, Bytes>>& parts,
      std::uint32_t threshold) const {
    std::uint32_t valid = 0;
    std::vector<bool> seen(verifier_.n(), false);
    for (const auto& [signer, sig] : parts) {
      if (signer >= verifier_.n() || seen[signer]) continue;
      if (!verifier_.verify(signer, message, sig)) continue;
      seen[signer] = true;
      ++valid;
    }
    if (valid < threshold) return std::nullopt;
    return tag(message);
  }

  bool verify(BytesView message, BytesView combined) const {
    return constant_time_equal(tag(message), combined);
  }

 private:
  const Bytes& tag(BytesView message) const { return tags_->tag(0, message); }

  const Verifier& verifier_;
  Hash256 secret_;
  std::unique_ptr<TagCache> tags_;
};

Bytes seed_for(BytesView seed, ReplicaId id, const char* domain) {
  Bytes material(seed.begin(), seed.end());
  append(material, to_bytes(domain));
  material.push_back(static_cast<std::uint8_t>(id));
  material.push_back(static_cast<std::uint8_t>(id >> 8));
  material.push_back(static_cast<std::uint8_t>(id >> 16));
  material.push_back(static_cast<std::uint8_t>(id >> 24));
  return material;
}

// --------------------------------------------------------------------------
// ECDSA suite
// --------------------------------------------------------------------------

class EcdsaSigner final : public Signer {
 public:
  EcdsaSigner(ReplicaId id, EcdsaPrivateKey key) : id_(id), key_(std::move(key)) {}

  ReplicaId id() const override { return id_; }

  Bytes sign(BytesView message) const override {
    return key_.sign(message).encode();
  }

 private:
  ReplicaId id_;
  EcdsaPrivateKey key_;
};

class EcdsaVerifier final : public Verifier {
 public:
  explicit EcdsaVerifier(std::vector<EcdsaPublicKey> keys)
      : keys_(std::move(keys)) {}

  bool verify(ReplicaId signer, BytesView message,
              BytesView signature) const override {
    if (signer >= keys_.size()) return false;
    const auto sig = EcdsaSignature::decode(signature);
    if (!sig) return false;
    return keys_[signer].verify(message, *sig);
  }

  std::uint32_t n() const override {
    return static_cast<std::uint32_t>(keys_.size());
  }

 private:
  std::vector<EcdsaPublicKey> keys_;
};

class EcdsaSuite final : public SignatureSuite {
 public:
  EcdsaSuite(std::uint32_t n, BytesView seed) {
    std::vector<EcdsaPublicKey> pubs;
    pubs.reserve(n);
    keys_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      keys_.push_back(EcdsaPrivateKey::from_seed(seed_for(seed, i, "ecdsa")));
      pubs.push_back(keys_.back().public_key());
    }
    verifier_ = std::make_unique<EcdsaVerifier>(std::move(pubs));
    threshold_ = std::make_unique<ThresholdCore>(seed, *verifier_);
  }

  std::optional<Bytes> threshold_combine(
      BytesView message, const std::vector<std::pair<ReplicaId, Bytes>>& parts,
      std::uint32_t threshold) const override {
    return threshold_->combine(message, parts, threshold);
  }

  bool threshold_verify(BytesView message, BytesView combined) const override {
    return threshold_->verify(message, combined);
  }

  std::unique_ptr<Signer> signer(ReplicaId id) const override {
    assert(id < keys_.size());
    return std::make_unique<EcdsaSigner>(id, keys_[id]);
  }

  const Verifier& verifier() const override { return *verifier_; }
  std::uint32_t n() const override {
    return static_cast<std::uint32_t>(keys_.size());
  }

 private:
  std::vector<EcdsaPrivateKey> keys_;
  std::unique_ptr<EcdsaVerifier> verifier_;
  std::unique_ptr<ThresholdCore> threshold_;
};

// --------------------------------------------------------------------------
// Fast (HMAC) suite
// --------------------------------------------------------------------------

class FastSigner final : public Signer {
 public:
  FastSigner(ReplicaId id, std::shared_ptr<const TagCache> tags)
      : id_(id), tags_(std::move(tags)) {}

  ReplicaId id() const override { return id_; }

  Bytes sign(BytesView message) const override {
    return tags_->tag(id_, message);
  }

 private:
  ReplicaId id_;
  std::shared_ptr<const TagCache> tags_;
};

class FastVerifier final : public Verifier {
 public:
  explicit FastVerifier(std::shared_ptr<const TagCache> tags)
      : tags_(std::move(tags)) {}

  bool verify(ReplicaId signer, BytesView message,
              BytesView signature) const override {
    if (signer >= tags_->n()) return false;
    if (signature.size() != kSignatureSize) return false;
    return constant_time_equal(tags_->tag(signer, message), signature);
  }

  std::uint32_t n() const override { return tags_->n(); }

 private:
  std::shared_ptr<const TagCache> tags_;
};

class FastSuite final : public SignatureSuite {
 public:
  FastSuite(std::uint32_t n, BytesView seed) {
    std::vector<Hash256> secrets;
    secrets.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      secrets.push_back(Sha256::digest(seed_for(seed, i, "fast")));
    }
    tags_ = std::make_shared<TagCache>(secrets);
    verifier_ = std::make_unique<FastVerifier>(tags_);
    threshold_ = std::make_unique<ThresholdCore>(seed, *verifier_);
  }

  std::optional<Bytes> threshold_combine(
      BytesView message, const std::vector<std::pair<ReplicaId, Bytes>>& parts,
      std::uint32_t threshold) const override {
    return threshold_->combine(message, parts, threshold);
  }

  bool threshold_verify(BytesView message, BytesView combined) const override {
    return threshold_->verify(message, combined);
  }

  std::unique_ptr<Signer> signer(ReplicaId id) const override {
    assert(id < tags_->n());
    return std::make_unique<FastSigner>(id, tags_);
  }

  const Verifier& verifier() const override { return *verifier_; }
  std::uint32_t n() const override { return tags_->n(); }

 private:
  std::shared_ptr<TagCache> tags_;
  std::unique_ptr<FastVerifier> verifier_;
  std::unique_ptr<ThresholdCore> threshold_;
};

}  // namespace

std::unique_ptr<SignatureSuite> make_ecdsa_suite(std::uint32_t n,
                                                 BytesView seed) {
  return std::make_unique<EcdsaSuite>(n, seed);
}

std::unique_ptr<SignatureSuite> make_fast_suite(std::uint32_t n,
                                                BytesView seed) {
  return std::make_unique<FastSuite>(n, seed);
}

}  // namespace marlin::crypto
