#include "crypto/signer.h"

#include <cassert>
#include <cstring>

namespace marlin::crypto {

namespace {

// Shared implementation of the simulated threshold-signature combine /
// verify (see SignatureSuite doc): the combined object is a 64-byte
// suite-secret MAC over the message, derivable only after `threshold`
// valid partials are presented.
class ThresholdCore {
 public:
  ThresholdCore(BytesView seed, const Verifier& verifier)
      : verifier_(verifier) {
    Bytes material(seed.begin(), seed.end());
    append(material, to_bytes("threshold-core"));
    secret_ = Sha256::digest(material);
  }

  std::optional<Bytes> combine(
      BytesView message, const std::vector<std::pair<ReplicaId, Bytes>>& parts,
      std::uint32_t threshold) const {
    std::uint32_t valid = 0;
    std::vector<bool> seen(verifier_.n(), false);
    for (const auto& [signer, sig] : parts) {
      if (signer >= verifier_.n() || seen[signer]) continue;
      if (!verifier_.verify(signer, message, sig)) continue;
      seen[signer] = true;
      ++valid;
    }
    if (valid < threshold) return std::nullopt;
    return tag(message);
  }

  bool verify(BytesView message, BytesView combined) const {
    return constant_time_equal(tag(message), combined);
  }

 private:
  Bytes tag(BytesView message) const {
    const Hash256 first = hmac_sha256(secret_.view(), message);
    const Hash256 second = hmac_sha256(secret_.view(), first.view());
    Bytes out = first.to_bytes();
    append(out, second.view());
    return out;
  }

  const Verifier& verifier_;
  Hash256 secret_;
};

Bytes seed_for(BytesView seed, ReplicaId id, const char* domain) {
  Bytes material(seed.begin(), seed.end());
  append(material, to_bytes(domain));
  material.push_back(static_cast<std::uint8_t>(id));
  material.push_back(static_cast<std::uint8_t>(id >> 8));
  material.push_back(static_cast<std::uint8_t>(id >> 16));
  material.push_back(static_cast<std::uint8_t>(id >> 24));
  return material;
}

// --------------------------------------------------------------------------
// ECDSA suite
// --------------------------------------------------------------------------

class EcdsaSigner final : public Signer {
 public:
  EcdsaSigner(ReplicaId id, EcdsaPrivateKey key) : id_(id), key_(std::move(key)) {}

  ReplicaId id() const override { return id_; }

  Bytes sign(BytesView message) const override {
    return key_.sign(message).encode();
  }

 private:
  ReplicaId id_;
  EcdsaPrivateKey key_;
};

class EcdsaVerifier final : public Verifier {
 public:
  explicit EcdsaVerifier(std::vector<EcdsaPublicKey> keys)
      : keys_(std::move(keys)) {}

  bool verify(ReplicaId signer, BytesView message,
              BytesView signature) const override {
    if (signer >= keys_.size()) return false;
    const auto sig = EcdsaSignature::decode(signature);
    if (!sig) return false;
    return keys_[signer].verify(message, *sig);
  }

  std::uint32_t n() const override {
    return static_cast<std::uint32_t>(keys_.size());
  }

 private:
  std::vector<EcdsaPublicKey> keys_;
};

class EcdsaSuite final : public SignatureSuite {
 public:
  EcdsaSuite(std::uint32_t n, BytesView seed) {
    std::vector<EcdsaPublicKey> pubs;
    pubs.reserve(n);
    keys_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      keys_.push_back(EcdsaPrivateKey::from_seed(seed_for(seed, i, "ecdsa")));
      pubs.push_back(keys_.back().public_key());
    }
    verifier_ = std::make_unique<EcdsaVerifier>(std::move(pubs));
    threshold_ = std::make_unique<ThresholdCore>(seed, *verifier_);
  }

  std::optional<Bytes> threshold_combine(
      BytesView message, const std::vector<std::pair<ReplicaId, Bytes>>& parts,
      std::uint32_t threshold) const override {
    return threshold_->combine(message, parts, threshold);
  }

  bool threshold_verify(BytesView message, BytesView combined) const override {
    return threshold_->verify(message, combined);
  }

  std::unique_ptr<Signer> signer(ReplicaId id) const override {
    assert(id < keys_.size());
    return std::make_unique<EcdsaSigner>(id, keys_[id]);
  }

  const Verifier& verifier() const override { return *verifier_; }
  std::uint32_t n() const override {
    return static_cast<std::uint32_t>(keys_.size());
  }

 private:
  std::vector<EcdsaPrivateKey> keys_;
  std::unique_ptr<EcdsaVerifier> verifier_;
  std::unique_ptr<ThresholdCore> threshold_;
};

// --------------------------------------------------------------------------
// Fast (HMAC) suite
// --------------------------------------------------------------------------

Bytes hmac_tag(const Hash256& secret, BytesView message) {
  // 64-byte tag (two chained HMACs) so wire sizes match ECDSA exactly —
  // the bandwidth model must see identical message lengths.
  const Hash256 first = hmac_sha256(secret.view(), message);
  const Hash256 second = hmac_sha256(secret.view(), first.view());
  Bytes out = first.to_bytes();
  append(out, second.view());
  return out;
}

class FastSigner final : public Signer {
 public:
  FastSigner(ReplicaId id, Hash256 secret) : id_(id), secret_(secret) {}

  ReplicaId id() const override { return id_; }

  Bytes sign(BytesView message) const override {
    return hmac_tag(secret_, message);
  }

 private:
  ReplicaId id_;
  Hash256 secret_;
};

class FastVerifier final : public Verifier {
 public:
  explicit FastVerifier(std::vector<Hash256> secrets)
      : secrets_(std::move(secrets)) {}

  bool verify(ReplicaId signer, BytesView message,
              BytesView signature) const override {
    if (signer >= secrets_.size()) return false;
    if (signature.size() != kSignatureSize) return false;
    const Bytes expected = hmac_tag(secrets_[signer], message);
    return constant_time_equal(expected, signature);
  }

  std::uint32_t n() const override {
    return static_cast<std::uint32_t>(secrets_.size());
  }

 private:
  std::vector<Hash256> secrets_;
};

class FastSuite final : public SignatureSuite {
 public:
  FastSuite(std::uint32_t n, BytesView seed) {
    secrets_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      secrets_.push_back(Sha256::digest(seed_for(seed, i, "fast")));
    }
    verifier_ = std::make_unique<FastVerifier>(secrets_);
    threshold_ = std::make_unique<ThresholdCore>(seed, *verifier_);
  }

  std::optional<Bytes> threshold_combine(
      BytesView message, const std::vector<std::pair<ReplicaId, Bytes>>& parts,
      std::uint32_t threshold) const override {
    return threshold_->combine(message, parts, threshold);
  }

  bool threshold_verify(BytesView message, BytesView combined) const override {
    return threshold_->verify(message, combined);
  }

  std::unique_ptr<Signer> signer(ReplicaId id) const override {
    assert(id < secrets_.size());
    return std::make_unique<FastSigner>(id, secrets_[id]);
  }

  const Verifier& verifier() const override { return *verifier_; }
  std::uint32_t n() const override {
    return static_cast<std::uint32_t>(secrets_.size());
  }

 private:
  std::vector<Hash256> secrets_;
  std::unique_ptr<FastVerifier> verifier_;
  std::unique_ptr<ThresholdCore> threshold_;
};

}  // namespace

std::unique_ptr<SignatureSuite> make_ecdsa_suite(std::uint32_t n,
                                                 BytesView seed) {
  return std::make_unique<EcdsaSuite>(n, seed);
}

std::unique_ptr<SignatureSuite> make_fast_suite(std::uint32_t n,
                                                BytesView seed) {
  return std::make_unique<FastSuite>(n, seed);
}

}  // namespace marlin::crypto
