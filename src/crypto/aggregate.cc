#include "crypto/aggregate.h"

#include <algorithm>

namespace marlin::crypto {

void PartialSig::encode(Writer& w) const {
  w.u32(signer);
  w.bytes(sig);
}

Result<PartialSig> PartialSig::decode(Reader& r) {
  PartialSig out;
  if (Status s = r.u32(out.signer); !s.is_ok()) return s;
  if (Status s = r.bytes(out.sig); !s.is_ok()) return s;
  if (out.sig.size() != kSignatureSize) {
    return error(ErrorCode::kCorruption, "bad signature length");
  }
  return out;
}

std::optional<SigGroup> SigGroup::combine(std::vector<PartialSig> partials,
                                          std::uint32_t threshold) {
  std::sort(partials.begin(), partials.end(),
            [](const PartialSig& a, const PartialSig& b) {
              return a.signer < b.signer;
            });
  partials.erase(std::unique(partials.begin(), partials.end(),
                             [](const PartialSig& a, const PartialSig& b) {
                               return a.signer == b.signer;
                             }),
                 partials.end());
  if (partials.size() < threshold) return std::nullopt;
  return SigGroup{std::move(partials)};
}

bool SigGroup::verify(const Verifier& verifier, BytesView message,
                      std::uint32_t threshold) const {
  if (parts.size() < threshold) return false;
  ReplicaId prev = kNoReplica;
  for (const PartialSig& p : parts) {
    if (p.signer >= verifier.n()) return false;
    if (prev != kNoReplica && p.signer <= prev) return false;  // sorted+unique
    prev = p.signer;
    if (!verifier.verify(p.signer, message, p.sig)) return false;
  }
  return true;
}

std::size_t SigGroup::wire_size() const {
  // varint count + per-part (4-byte id + 1-byte len + 64-byte sig).
  return 1 + parts.size() * (4 + 1 + kSignatureSize);
}

void SigGroup::encode(Writer& w) const {
  w.varint(parts.size());
  for (const PartialSig& p : parts) p.encode(w);
}

Result<SigGroup> SigGroup::decode(Reader& r) {
  std::uint64_t count = 0;
  if (Status s = r.varint(count); !s.is_ok()) return s;
  if (count > 4096) return error(ErrorCode::kCorruption, "oversized sig group");
  SigGroup out;
  out.parts.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Result<PartialSig> p = PartialSig::decode(r);
    if (!p.is_ok()) return p.status();
    out.parts.push_back(std::move(p).take());
  }
  return out;
}

VerifyCost sig_group_cost(std::uint32_t k) {
  return VerifyCost{k, 0};
}

VerifyCost sim_threshold_cost() {
  // BLS verification: two pairings.
  return VerifyCost{0, 2};
}

}  // namespace marlin::crypto
