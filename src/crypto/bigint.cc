#include "crypto/bigint.h"

#include <cassert>

namespace marlin::crypto {

using u128 = unsigned __int128;

U256 U256::from_u64(std::uint64_t v) {
  U256 out;
  out.limb[0] = v;
  return out;
}

U256 U256::from_be_bytes(BytesView b) {
  assert(b.size() == 32);
  U256 out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t limb = 0;
    for (int j = 0; j < 8; ++j) {
      limb = limb << 8 | b[static_cast<std::size_t>(8 * (3 - i) + j)];
    }
    out.limb[i] = limb;
  }
  return out;
}

U256 U256::from_hex(std::string_view hex) {
  assert(hex.size() <= 64);
  std::string padded(64 - hex.size(), '0');
  padded += hex;
  auto bytes = ::marlin::from_hex(padded);
  assert(bytes.has_value());
  return from_be_bytes(*bytes);
}

Bytes U256::to_be_bytes() const {
  Bytes out(32);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[static_cast<std::size_t>(8 * (3 - i) + j)] =
          static_cast<std::uint8_t>(limb[i] >> (56 - 8 * j));
    }
  }
  return out;
}

std::string U256::to_hex() const {
  return ::marlin::to_hex(to_be_bytes());
}

bool U256::is_zero() const {
  return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
}

bool U256::bit(int i) const {
  assert(i >= 0 && i < 256);
  return (limb[i / 64] >> (i % 64)) & 1;
}

int U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != 0) return 64 * i + 64 - __builtin_clzll(limb[i]);
  }
  return 0;
}

bool U512::high_is_zero() const {
  return (limb[4] | limb[5] | limb[6] | limb[7]) == 0;
}

U256 U512::low() const {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limb[i] = limb[i];
  return out;
}

U256 U512::high() const {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limb[i] = limb[i + 4];
  return out;
}

std::uint64_t add_with_carry(const U256& a, const U256& b, U256& out) {
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  return carry;
}

std::uint64_t sub_with_borrow(const U256& a, const U256& b, U256& out) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 diff =
        static_cast<u128>(a.limb[i]) - b.limb[i] - borrow;
    out.limb[i] = static_cast<std::uint64_t>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
  return borrow;
}

U512 mul_full(const U256& a, const U256& b) {
  U512 out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 t = static_cast<u128>(a.limb[i]) * b.limb[j] +
                     out.limb[i + j] + carry;
      out.limb[i + j] = static_cast<std::uint64_t>(t);
      carry = static_cast<std::uint64_t>(t >> 64);
    }
    out.limb[i + 4] = carry;
  }
  return out;
}

U512 add512(const U512& a, const U512& b) {
  U512 out;
  std::uint64_t carry = 0;
  for (int i = 0; i < 8; ++i) {
    const u128 sum = static_cast<u128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  return out;
}

ModArith::ModArith(const U256& modulus) : m_(modulus) {
  // d = 2^256 - m, computed as 0 - m with wraparound.
  sub_with_borrow(U256::zero(), m_, d_);
  assert(!m_.is_zero());
  // The fast reduction path requires d to be "small" relative to 2^256 so
  // the hi*d + lo loop converges; both secp256k1 moduli satisfy d < 2^129.
  assert(d_.bit_length() <= 136);
}

U256 ModArith::reduce(const U256& x) const {
  U256 out = x;
  while (out >= m_) {
    sub_with_borrow(out, m_, out);
  }
  return out;
}

U256 ModArith::reduce(const U512& x) const {
  // x = hi * 2^256 + lo ≡ hi * d + lo  (mod m), iterated until hi == 0.
  U512 acc = x;
  while (!acc.high_is_zero()) {
    const U512 folded = mul_full(acc.high(), d_);
    U512 lo_only{};
    for (int i = 0; i < 4; ++i) lo_only.limb[i] = acc.limb[i];
    acc = add512(folded, lo_only);
  }
  return reduce(acc.low());
}

U256 ModArith::add(const U256& a, const U256& b) const {
  U256 sum;
  const std::uint64_t carry = add_with_carry(a, b, sum);
  if (carry) {
    // sum + 2^256 ≡ sum + d (mod m); d + sum cannot carry again because
    // a, b < m ≤ 2^256 - d.
    U256 adjusted;
    add_with_carry(sum, d_, adjusted);
    return reduce(adjusted);
  }
  return reduce(sum);
}

U256 ModArith::sub(const U256& a, const U256& b) const {
  U256 diff;
  if (sub_with_borrow(a, b, diff)) {
    U256 out;
    add_with_carry(diff, m_, out);
    return out;
  }
  return diff;
}

U256 ModArith::mul(const U256& a, const U256& b) const {
  return reduce(mul_full(a, b));
}

U256 ModArith::pow(const U256& base, const U256& exp) const {
  U256 result = U256::one();
  U256 acc = reduce(base);
  const int bits = exp.bit_length();
  for (int i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mul(result, acc);
    acc = sqr(acc);
  }
  return result;
}

U256 ModArith::inv(const U256& a) const {
  // a^(m-2) mod m, valid for prime m.
  U256 exp;
  sub_with_borrow(m_, U256::from_u64(2), exp);
  return pow(a, exp);
}

}  // namespace marlin::crypto
