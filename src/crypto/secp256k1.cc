#include "crypto/secp256k1.h"

#include <cassert>

namespace marlin::crypto {

const Secp256k1& Secp256k1::instance() {
  static const Secp256k1 curve;
  return curve;
}

Secp256k1::Secp256k1()
    : p_(U256::from_hex(
          "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")),
      n_(U256::from_hex(
          "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")),
      gx_(U256::from_hex(
          "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")),
      gy_(U256::from_hex(
          "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8")),
      fp_(p_),
      fn_(n_) {}

Bytes AffinePoint::encode() const {
  if (infinity) return Bytes{0x00};
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  append(out, x.to_be_bytes());
  append(out, y.to_be_bytes());
  return out;
}

std::optional<AffinePoint> AffinePoint::decode(BytesView b) {
  if (b.size() == 1 && b[0] == 0x00) return at_infinity();
  if (b.size() != 65 || b[0] != 0x04) return std::nullopt;
  AffinePoint out;
  out.x = U256::from_be_bytes(b.subspan(1, 32));
  out.y = U256::from_be_bytes(b.subspan(33, 32));
  if (!out.on_curve()) return std::nullopt;
  return out;
}

bool AffinePoint::on_curve() const {
  if (infinity) return true;
  const ModArith& fp = Secp256k1::instance().field();
  const U256 lhs = fp.sqr(y);
  const U256 rhs = fp.add(fp.mul(fp.sqr(x), x), U256::from_u64(7));
  return lhs == rhs;
}

JacobianPoint JacobianPoint::at_infinity() {
  return JacobianPoint{U256::one(), U256::one(), U256::zero()};
}

JacobianPoint JacobianPoint::from_affine(const AffinePoint& a) {
  if (a.infinity) return at_infinity();
  return JacobianPoint{a.x, a.y, U256::one()};
}

AffinePoint JacobianPoint::to_affine() const {
  if (is_infinity()) return AffinePoint::at_infinity();
  const ModArith& fp = Secp256k1::instance().field();
  const U256 z_inv = fp.inv(z);
  const U256 z_inv2 = fp.sqr(z_inv);
  const U256 z_inv3 = fp.mul(z_inv2, z_inv);
  return AffinePoint{fp.mul(x, z_inv2), fp.mul(y, z_inv3), false};
}

JacobianPoint point_double(const JacobianPoint& a) {
  if (a.is_infinity()) return a;
  const ModArith& fp = Secp256k1::instance().field();
  if (a.y.is_zero()) return JacobianPoint::at_infinity();

  // Standard dbl-2007-bl-style formulas for curves with a = 0.
  const U256 ysq = fp.sqr(a.y);
  const U256 s = fp.mul(fp.mul(U256::from_u64(4), a.x), ysq);
  const U256 m = fp.mul(U256::from_u64(3), fp.sqr(a.x));
  const U256 x3 = fp.sub(fp.sqr(m), fp.mul(U256::from_u64(2), s));
  const U256 y3 =
      fp.sub(fp.mul(m, fp.sub(s, x3)), fp.mul(U256::from_u64(8), fp.sqr(ysq)));
  const U256 z3 = fp.mul(fp.mul(U256::from_u64(2), a.y), a.z);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint point_add(const JacobianPoint& a, const JacobianPoint& b) {
  if (a.is_infinity()) return b;
  if (b.is_infinity()) return a;
  const ModArith& fp = Secp256k1::instance().field();

  const U256 z1z1 = fp.sqr(a.z);
  const U256 z2z2 = fp.sqr(b.z);
  const U256 u1 = fp.mul(a.x, z2z2);
  const U256 u2 = fp.mul(b.x, z1z1);
  const U256 s1 = fp.mul(a.y, fp.mul(z2z2, b.z));
  const U256 s2 = fp.mul(b.y, fp.mul(z1z1, a.z));

  if (u1 == u2) {
    if (s1 == s2) return point_double(a);
    return JacobianPoint::at_infinity();
  }

  const U256 h = fp.sub(u2, u1);
  const U256 hh = fp.sqr(h);
  const U256 hhh = fp.mul(hh, h);
  const U256 r = fp.sub(s2, s1);
  const U256 v = fp.mul(u1, hh);

  const U256 x3 = fp.sub(fp.sub(fp.sqr(r), hhh),
                         fp.mul(U256::from_u64(2), v));
  const U256 y3 = fp.sub(fp.mul(r, fp.sub(v, x3)), fp.mul(s1, hhh));
  const U256 z3 = fp.mul(fp.mul(a.z, b.z), h);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint point_add_affine(const JacobianPoint& a, const AffinePoint& b) {
  return point_add(a, JacobianPoint::from_affine(b));
}

JacobianPoint scalar_mult(const U256& k, const AffinePoint& p) {
  JacobianPoint acc = JacobianPoint::at_infinity();
  const int bits = k.bit_length();
  for (int i = bits - 1; i >= 0; --i) {
    acc = point_double(acc);
    if (k.bit(i)) acc = point_add_affine(acc, p);
  }
  return acc;
}

JacobianPoint scalar_mult_base(const U256& k) {
  const Secp256k1& curve = Secp256k1::instance();
  return scalar_mult(k, AffinePoint{curve.gx(), curve.gy(), false});
}

JacobianPoint double_scalar_mult(const U256& u1, const U256& u2,
                                 const AffinePoint& q) {
  const Secp256k1& curve = Secp256k1::instance();
  const AffinePoint g{curve.gx(), curve.gy(), false};
  // Precompute G + Q once; then one doubling per bit and at most one add.
  const AffinePoint gq = point_add(JacobianPoint::from_affine(g),
                                   JacobianPoint::from_affine(q))
                             .to_affine();
  JacobianPoint acc = JacobianPoint::at_infinity();
  const int bits = std::max(u1.bit_length(), u2.bit_length());
  for (int i = bits - 1; i >= 0; --i) {
    acc = point_double(acc);
    const bool b1 = u1.bit(i);
    const bool b2 = u2.bit(i);
    if (b1 && b2) {
      acc = point_add_affine(acc, gq);
    } else if (b1) {
      acc = point_add_affine(acc, g);
    } else if (b2) {
      acc = point_add_affine(acc, q);
    }
  }
  return acc;
}

}  // namespace marlin::crypto
