#include "crypto/ecdsa.h"

#include <cassert>

namespace marlin::crypto {

namespace {

const Secp256k1& curve() { return Secp256k1::instance(); }

/// Hash-to-scalar: interpret a digest as a big-endian integer mod n,
/// mapping zero to one so results are always valid scalars.
U256 digest_to_scalar(const Hash256& digest) {
  const U256 z = U256::from_be_bytes(digest.view());
  U256 reduced = curve().scalar().reduce(z);
  if (reduced.is_zero()) reduced = U256::one();
  return reduced;
}

/// Deterministic nonce derivation in the spirit of RFC 6979: iterate
/// HMAC(d || digest || counter) until the candidate lands in [1, n-1].
U256 derive_nonce(const U256& d, const Hash256& digest) {
  Bytes key = d.to_be_bytes();
  for (std::uint32_t counter = 0;; ++counter) {
    Bytes msg = digest.to_bytes();
    msg.push_back(static_cast<std::uint8_t>(counter));
    msg.push_back(static_cast<std::uint8_t>(counter >> 8));
    msg.push_back(static_cast<std::uint8_t>(counter >> 16));
    msg.push_back(static_cast<std::uint8_t>(counter >> 24));
    const Hash256 h = hmac_sha256(key, msg);
    const U256 k = U256::from_be_bytes(h.view());
    if (!k.is_zero() && k < curve().n()) return k;
  }
}

}  // namespace

Bytes EcdsaSignature::encode() const {
  Bytes out = r.to_be_bytes();
  append(out, s.to_be_bytes());
  return out;
}

std::optional<EcdsaSignature> EcdsaSignature::decode(BytesView b) {
  if (b.size() != 64) return std::nullopt;
  EcdsaSignature sig;
  sig.r = U256::from_be_bytes(b.subspan(0, 32));
  sig.s = U256::from_be_bytes(b.subspan(32, 32));
  return sig;
}

std::optional<EcdsaPublicKey> EcdsaPublicKey::decode(BytesView b) {
  auto point = AffinePoint::decode(b);
  if (!point || point->infinity) return std::nullopt;
  return EcdsaPublicKey(*point);
}

bool EcdsaPublicKey::verify(BytesView message, const EcdsaSignature& sig) const {
  return verify_digest(Sha256::digest(message), sig);
}

bool EcdsaPublicKey::verify_digest(const Hash256& digest,
                                   const EcdsaSignature& sig) const {
  const ModArith& fn = curve().scalar();
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (sig.r >= curve().n() || sig.s >= curve().n()) return false;

  const U256 z = digest_to_scalar(digest);
  const U256 w = fn.inv(sig.s);
  const U256 u1 = fn.mul(z, w);
  const U256 u2 = fn.mul(sig.r, w);

  const JacobianPoint rp = double_scalar_mult(u1, u2, q_);
  if (rp.is_infinity()) return false;
  const AffinePoint r_affine = rp.to_affine();
  return fn.reduce(r_affine.x) == sig.r;
}

EcdsaPrivateKey EcdsaPrivateKey::from_seed(BytesView seed) {
  // Expand the seed until the candidate scalar is in [1, n-1]; the first
  // hash nearly always suffices.
  Bytes material(seed.begin(), seed.end());
  for (;;) {
    const Hash256 h = Sha256::digest(material);
    const U256 d = U256::from_be_bytes(h.view());
    if (!d.is_zero() && d < curve().n()) return EcdsaPrivateKey(d);
    material = h.to_bytes();
  }
}

EcdsaSignature EcdsaPrivateKey::sign(BytesView message) const {
  return sign_digest(Sha256::digest(message));
}

EcdsaSignature EcdsaPrivateKey::sign_digest(const Hash256& digest) const {
  const ModArith& fn = curve().scalar();
  const U256 z = digest_to_scalar(digest);

  for (std::uint32_t attempt = 0;; ++attempt) {
    // Fold the attempt counter into the digest if a retry is ever needed
    // (r == 0 or s == 0 — astronomically unlikely but handled).
    Hash256 d = digest;
    d.data[0] ^= static_cast<std::uint8_t>(attempt);
    const U256 k = derive_nonce(d_, d);

    const AffinePoint rp = scalar_mult_base(k).to_affine();
    const U256 r = fn.reduce(rp.x);
    if (r.is_zero()) continue;

    const U256 k_inv = fn.inv(k);
    const U256 s = fn.mul(k_inv, fn.add(z, fn.mul(r, d_)));
    if (s.is_zero()) continue;

    return EcdsaSignature{r, s};
  }
}

EcdsaPublicKey EcdsaPrivateKey::public_key() const {
  return EcdsaPublicKey(scalar_mult_base(d_).to_affine());
}

}  // namespace marlin::crypto
