// Threshold-signature abstraction in the paper's two instantiations:
//
//  * SigGroup — a quorum certificate is a group of t standard signatures
//    (the paper's "most efficient implementation"; what its evaluation
//    runs). Size = t * 64 bytes + t ids; verification = t signature checks.
//
//  * SimThreshold — a constant-size combined object standing in for a
//    pairing-based (t, n) threshold signature (BLS-style). We simulate the
//    combine as a deterministic digest over the sorted partials; the
//    registry can re-derive and check it. Sizes (one 64-byte object) and
//    the pairing cost model match the paper's complexity accounting
//    (Table I), letting the complexity bench report both instantiations.
#pragma once

#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/serialize.h"
#include "crypto/signer.h"

namespace marlin::crypto {

/// One replica's share of a quorum certificate.
struct PartialSig {
  ReplicaId signer = kNoReplica;
  Bytes sig;  // kSignatureSize bytes

  void encode(Writer& w) const;
  static Result<PartialSig> decode(Reader& r);
  bool operator==(const PartialSig&) const = default;
};

/// Group-of-signatures aggregate: the default QC payload.
struct SigGroup {
  std::vector<PartialSig> parts;  // sorted by signer id, unique

  /// Combines exactly the given partials (sorts + dedups; returns nullopt
  /// if fewer than `threshold` distinct signers remain).
  static std::optional<SigGroup> combine(std::vector<PartialSig> partials,
                                         std::uint32_t threshold);

  /// All partials verify over `message` and there are ≥ threshold distinct
  /// signers with ids < verifier.n().
  bool verify(const Verifier& verifier, BytesView message,
              std::uint32_t threshold) const;

  std::size_t wire_size() const;
  std::size_t signer_count() const { return parts.size(); }

  void encode(Writer& w) const;
  static Result<SigGroup> decode(Reader& r);
  bool operator==(const SigGroup&) const = default;
};

/// Counters the metrology layer uses to price a verification.
struct VerifyCost {
  std::uint32_t signature_checks = 0;  // conventional public-key ops
  std::uint32_t pairings = 0;          // pairing ops (threshold-sig mode)
};

/// Cost (in checks) of verifying a SigGroup of k partials: k conventional
/// signature verifications, zero pairings.
VerifyCost sig_group_cost(std::uint32_t k);

/// Cost of verifying one simulated pairing-based threshold signature.
VerifyCost sim_threshold_cost();

}  // namespace marlin::crypto
