// SHA-256 (FIPS 180-4), implemented from scratch. Used for block parent
// links, message digests signed by ECDSA, and as the PRF core of HMAC.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace marlin::crypto {

inline constexpr std::size_t kHashSize = 32;

/// A 32-byte digest with value semantics; ordered/hashable for map keys.
struct Hash256 {
  std::array<std::uint8_t, kHashSize> data{};

  auto operator<=>(const Hash256&) const = default;

  BytesView view() const { return BytesView(data.data(), data.size()); }
  Bytes to_bytes() const { return Bytes(data.begin(), data.end()); }
  std::string to_hex() const { return ::marlin::to_hex(view()); }
  /// First 8 hex chars — for logs.
  std::string short_hex() const { return to_hex().substr(0, 8); }

  static Hash256 from_bytes(BytesView b);  // asserts b.size() == 32
  bool is_zero() const;
};

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();
  void update(BytesView data);
  Hash256 finish();  // may only be called once

  static Hash256 digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
Hash256 hmac_sha256(BytesView key, BytesView message);

/// Precomputed HMAC-SHA256 key: the ipad/opad block compressions are paid
/// once at construction, so each mac() costs only the message and
/// finalization compressions. Output is byte-identical to hmac_sha256().
class HmacKey {
 public:
  HmacKey() = default;
  explicit HmacKey(BytesView key);

  Hash256 mac(BytesView message) const;

 private:
  Sha256 inner_;  // state after absorbing key ^ ipad
  Sha256 outer_;  // state after absorbing key ^ opad
};

/// std::hash adapter so Hash256 keys work in unordered containers.
struct Hash256Hasher {
  std::size_t operator()(const Hash256& h) const {
    std::size_t out;
    static_assert(sizeof out <= kHashSize);
    __builtin_memcpy(&out, h.data.data(), sizeof out);
    return out;
  }
};

}  // namespace marlin::crypto
