// Virtual-time CPU cost model for cryptographic and data-path operations.
// The simulation charges these durations to a replica's (single-threaded)
// CPU whenever the corresponding operation happens, reproducing the CPU
// bottleneck the paper observes on its 2.3 GHz servers. Defaults are
// calibrated against typical Go crypto/ecdsa + SHA-256 throughput on such
// hardware; the micro-benchmarks (bench_micro_crypto) print our own
// from-scratch implementation's costs for comparison.
#pragma once

#include <cstdint>

#include "common/sim_time.h"

namespace marlin::crypto {

struct CostModel {
  // Conventional public-key signature (ECDSA-class).
  Duration sign = Duration::micros(32);
  Duration verify = Duration::micros(92);

  // Pairing-based threshold signatures (for the Table I accounting mode).
  Duration pairing = Duration::micros(900);
  Duration threshold_sign_share = Duration::micros(280);
  Duration threshold_combine_per_share = Duration::micros(40);

  // Hashing, charged per byte plus a fixed setup term.
  Duration hash_base = Duration::micros(1) / 2;
  Duration hash_per_byte = Duration::nanos(3);

  // Serialization / message handling overhead per byte.
  Duration serialize_per_byte = Duration::nanos(1);

  // Request execution (application) cost per operation.
  Duration execute_op = Duration::micros(1);

  Duration hash_cost(std::size_t bytes) const {
    return hash_base + hash_per_byte * static_cast<std::int64_t>(bytes);
  }
  Duration serialize_cost(std::size_t bytes) const {
    return serialize_per_byte * static_cast<std::int64_t>(bytes);
  }
};

}  // namespace marlin::crypto
