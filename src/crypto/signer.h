// Signature-suite abstraction used by the consensus layer. Two suites:
//
//  * EcdsaSuite — real secp256k1 ECDSA; every partial signature is an
//    actual signature verified against the signer's registered public key.
//    Used by unit tests, integration tests, and the runnable examples.
//
//  * FastSuite — HMAC-SHA256 tags with the same 64-byte wire size as an
//    ECDSA signature. Integrity within the simulation is real (a replica
//    cannot accidentally accept a corrupted message), but tags are only
//    verifiable by the trusted registry; Byzantine behaviour is therefore
//    modeled at the protocol-behaviour level, and CPU cost of public-key
//    crypto is charged in *virtual time* through CryptoCostModel. This is
//    the suite the benchmark testbed runs, mirroring how the paper charges
//    ECDSA cost on real hardware (DESIGN.md §1).
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "crypto/ecdsa.h"
#include "crypto/sha256.h"

namespace marlin::crypto {

inline constexpr std::size_t kSignatureSize = 64;

/// Parallel-execution switch for the process-wide memoization inside the
/// fast suite (the tag cache is shared by every simulated replica). Off —
/// the default — keeps the historical lock-free single-threaded fast path
/// byte-for-byte; on, probes take a mutex and copy results out, which the
/// partitioned engine enables before running shard workers concurrently.
/// Flip only while no suite calls are in flight.
void set_parallel_crypto(bool on);
bool parallel_crypto();

/// Per-replica signing handle.
class Signer {
 public:
  virtual ~Signer() = default;
  virtual ReplicaId id() const = 0;
  /// Signs the digest of a message; output is exactly kSignatureSize bytes.
  virtual Bytes sign(BytesView message) const = 0;
};

/// Verifies any replica's signature. One registry per process/simulation.
class Verifier {
 public:
  virtual ~Verifier() = default;
  virtual bool verify(ReplicaId signer, BytesView message,
                      BytesView signature) const = 0;
  virtual std::uint32_t n() const = 0;
};

/// A suite owns key material for all n replicas of a deployment and hands
/// out per-replica signers plus a shared verifier.
///
/// It also provides the (t, n) *threshold-signature* instantiation of
/// quorum certificates (paper §III): `threshold_combine` turns t valid
/// partial signatures over a message into one constant-size combined
/// signature, and `threshold_verify` checks it. The simulation implements
/// the combined object as a suite-secret MAC (integrity within the run is
/// real; the pairing CPU cost is charged in virtual time by the cost
/// model, see DESIGN.md §1).
class SignatureSuite {
 public:
  virtual ~SignatureSuite() = default;
  virtual std::unique_ptr<Signer> signer(ReplicaId id) const = 0;
  virtual const Verifier& verifier() const = 0;
  virtual std::uint32_t n() const = 0;

  /// Combines partial signatures (already collected for `message`) into a
  /// constant-size threshold signature. Returns std::nullopt when fewer
  /// than `threshold` partials are valid.
  virtual std::optional<Bytes> threshold_combine(
      BytesView message, const std::vector<std::pair<ReplicaId, Bytes>>& parts,
      std::uint32_t threshold) const = 0;

  /// Verifies a combined threshold signature over `message`.
  virtual bool threshold_verify(BytesView message,
                                BytesView combined) const = 0;
};

/// Real ECDSA suite; keys derived deterministically from (seed, replica id).
std::unique_ptr<SignatureSuite> make_ecdsa_suite(std::uint32_t n,
                                                 BytesView seed);

/// HMAC-based simulation suite (same sizes, trusted-registry verification).
std::unique_ptr<SignatureSuite> make_fast_suite(std::uint32_t n,
                                                BytesView seed);

}  // namespace marlin::crypto
