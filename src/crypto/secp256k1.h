// secp256k1 elliptic-curve group operations (y^2 = x^3 + 7 over F_p),
// built on crypto/bigint. Points use Jacobian projective coordinates so the
// scalar-multiplication hot loop needs no modular inversions.
#pragma once

#include <optional>

#include "crypto/bigint.h"

namespace marlin::crypto {

/// Curve constants and arithmetic contexts (field mod p, scalars mod n).
/// Access via Secp256k1::instance(); construction precomputes the contexts.
class Secp256k1 {
 public:
  static const Secp256k1& instance();

  const U256& p() const { return p_; }
  const U256& n() const { return n_; }
  const ModArith& field() const { return fp_; }
  const ModArith& scalar() const { return fn_; }
  const U256& gx() const { return gx_; }
  const U256& gy() const { return gy_; }

 private:
  Secp256k1();

  U256 p_, n_, gx_, gy_;
  ModArith fp_;
  ModArith fn_;
};

/// Affine point; infinity is represented by the flag.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = false;

  static AffinePoint at_infinity() { return AffinePoint{{}, {}, true}; }
  bool operator==(const AffinePoint&) const = default;

  /// 65-byte uncompressed SEC1 encoding (0x04 || X || Y); infinity is a
  /// single 0x00 byte.
  Bytes encode() const;
  static std::optional<AffinePoint> decode(BytesView b);

  /// Checks y^2 = x^3 + 7 (mod p).
  bool on_curve() const;
};

/// Jacobian point (X, Y, Z) representing (X/Z^2, Y/Z^3).
struct JacobianPoint {
  U256 x, y, z;

  static JacobianPoint at_infinity();
  static JacobianPoint from_affine(const AffinePoint& a);
  bool is_infinity() const { return z.is_zero(); }
  AffinePoint to_affine() const;
};

JacobianPoint point_double(const JacobianPoint& a);
JacobianPoint point_add(const JacobianPoint& a, const JacobianPoint& b);
JacobianPoint point_add_affine(const JacobianPoint& a, const AffinePoint& b);

/// k * P via left-to-right double-and-add. Not constant-time (documented
/// trade-off; see DESIGN.md §1).
JacobianPoint scalar_mult(const U256& k, const AffinePoint& p);

/// k * G with the fixed base point.
JacobianPoint scalar_mult_base(const U256& k);

/// u1*G + u2*Q in one pass (Shamir's trick) — the ECDSA verify workhorse.
JacobianPoint double_scalar_mult(const U256& u1, const U256& u2,
                                 const AffinePoint& q);

}  // namespace marlin::crypto
