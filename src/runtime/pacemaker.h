// View-timer policy. Two modes:
//  * stable-leader (default): the timer restarts whenever the view makes
//    progress; it fires a view change only after a quiet timeout, with
//    exponential backoff across consecutive failed views (liveness under
//    partial synchrony).
//  * rotating (the paper's Fig. 10j setup, after HotStuff's rotating mode
//    and Spinning): a fixed-interval timer rotates the leader regardless of
//    progress.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/ids.h"
#include "common/sim_time.h"

namespace marlin::runtime {

struct PacemakerConfig {
  Duration base_timeout = Duration::seconds(2);
  double backoff_factor = 2.0;
  Duration max_timeout = Duration::seconds(30);
  bool rotate_on_timer = false;         // rotating-leader mode
  Duration rotation_interval = Duration::seconds(1);
  // Max fraction of the computed timeout added as deterministic
  // per-(replica, view) skew. Replicas sharing an identical backoff ladder
  // otherwise fire in perfect lockstep, and a cluster that desynchronizes
  // by one view (e.g. after a crash leaves exactly a quorum of correct
  // replicas) stays exactly one view apart forever — every transition lands
  // on the same tick, so no view ever holds a full quorum (the election
  // livelock Raft breaks with randomized timeouts). 0 disables the skew and
  // preserves the exact closed-form backoff.
  double timeout_jitter = 0.0;
  // Per-replica addition to base_timeout, applied as
  // base_timeout + base_timeout_per_replica·n by scaled_for(n) at the host
  // that knows the cluster size. A round's critical path grows with n (the
  // leader pays ~n proposal serializations plus n·(n−1) vote/QC
  // transmissions), so a flat base leaves no headroom at large n: at
  // n=1000 the first round finishes barely inside 2 s, and any extra
  // delay — a fault, a bigger payload, a slow leader — tips it into a
  // spurious view change instead of a commit. The zero default keeps
  // every existing config byte-identical.
  Duration base_timeout_per_replica = Duration::zero();

  /// Copy with the per-replica term folded into base_timeout (and clamped
  /// to max_timeout). Hosts call this where n is known; the returned
  /// config has base_timeout_per_replica zeroed so folding is idempotent.
  PacemakerConfig scaled_for(std::uint32_t n) const;
};

inline PacemakerConfig PacemakerConfig::scaled_for(std::uint32_t n) const {
  PacemakerConfig out = *this;
  if (base_timeout_per_replica > Duration::zero() && n > 0) {
    out.base_timeout = std::min(
        base_timeout + base_timeout_per_replica * static_cast<std::int64_t>(n),
        max_timeout);
  }
  out.base_timeout_per_replica = Duration::zero();
  return out;
}

/// Pure policy: the replica process feeds it events and asks for the next
/// timer duration / what a firing timer means.
class Pacemaker {
 public:
  explicit Pacemaker(PacemakerConfig config) : config_(config) {}

  /// Timer duration for a freshly entered view: closed-form exponential
  /// backoff base·factor^failures, clamped at max_timeout (pow can
  /// overflow to inf for large exponents; the clamp absorbs that too).
  Duration view_timeout() const {
    if (config_.rotate_on_timer) return config_.rotation_interval;
    const double max = config_.max_timeout.as_seconds_f();
    double t = config_.base_timeout.as_seconds_f() *
               std::pow(config_.backoff_factor,
                        static_cast<double>(consecutive_failures_));
    if (!(t < max)) t = max;  // NaN/inf-safe clamp
    return std::min(Duration::from_seconds_f(t), config_.max_timeout);
  }

  /// view_timeout() plus the symmetry-breaking skew for (replica, view):
  /// a hash-derived fraction in [0, timeout_jitter) of the backoff
  /// duration. Pure function of its inputs — runs stay bit-reproducible.
  Duration view_timeout(ReplicaId replica, ViewNumber view) const {
    const Duration d = view_timeout();
    if (config_.timeout_jitter <= 0.0) return d;
    // splitmix64 finalizer over the (replica, view) pair.
    std::uint64_t x = (static_cast<std::uint64_t>(replica) << 48) ^ view;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    const double u = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0, 1)
    return d + Duration::from_seconds_f(d.as_seconds_f() *
                                        config_.timeout_jitter * u);
  }

  void on_view_entered() { progressed_ = false; }

  void on_progress() {
    progressed_ = true;
    consecutive_failures_ = 0;
  }

  /// Called when the view timer fires. Returns true if the replica should
  /// advance the view; false if the timer should simply restart (the view
  /// made progress and we are in stable-leader mode).
  bool should_advance_on_fire() {
    if (config_.rotate_on_timer) return true;
    if (progressed_) {
      progressed_ = false;
      return false;
    }
    ++consecutive_failures_;
    return true;
  }

  std::uint32_t consecutive_failures() const { return consecutive_failures_; }

 private:
  PacemakerConfig config_;
  bool progressed_ = false;
  std::uint32_t consecutive_failures_ = 0;
};

}  // namespace marlin::runtime
