// View-timer policy. Two modes:
//  * stable-leader (default): the timer restarts whenever the view makes
//    progress; it fires a view change only after a quiet timeout, with
//    exponential backoff across consecutive failed views (liveness under
//    partial synchrony).
//  * rotating (the paper's Fig. 10j setup, after HotStuff's rotating mode
//    and Spinning): a fixed-interval timer rotates the leader regardless of
//    progress.
#pragma once

#include "common/sim_time.h"

namespace marlin::runtime {

struct PacemakerConfig {
  Duration base_timeout = Duration::seconds(2);
  double backoff_factor = 2.0;
  Duration max_timeout = Duration::seconds(30);
  bool rotate_on_timer = false;         // rotating-leader mode
  Duration rotation_interval = Duration::seconds(1);
};

/// Pure policy: the replica process feeds it events and asks for the next
/// timer duration / what a firing timer means.
class Pacemaker {
 public:
  explicit Pacemaker(PacemakerConfig config) : config_(config) {}

  /// Timer duration for a freshly entered view.
  Duration view_timeout() const {
    if (config_.rotate_on_timer) return config_.rotation_interval;
    double t = config_.base_timeout.as_seconds_f();
    for (std::uint32_t i = 0; i < consecutive_failures_; ++i) {
      t *= config_.backoff_factor;
      if (t >= config_.max_timeout.as_seconds_f()) break;
    }
    return std::min(Duration::from_seconds_f(t), config_.max_timeout);
  }

  void on_view_entered() { progressed_ = false; }

  void on_progress() {
    progressed_ = true;
    consecutive_failures_ = 0;
  }

  /// Called when the view timer fires. Returns true if the replica should
  /// advance the view; false if the timer should simply restart (the view
  /// made progress and we are in stable-leader mode).
  bool should_advance_on_fire() {
    if (config_.rotate_on_timer) return true;
    if (progressed_) {
      progressed_ = false;
      return false;
    }
    ++consecutive_failures_;
    return true;
  }

  std::uint32_t consecutive_failures() const { return consecutive_failures_; }

 private:
  PacemakerConfig config_;
  bool progressed_ = false;
  std::uint32_t consecutive_failures_ = 0;
};

}  // namespace marlin::runtime
