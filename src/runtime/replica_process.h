// Wires a consensus protocol instance into the simulated world: network
// node, single-threaded CPU with the crypto/storage cost models, KV-store
// persistence with periodic checkpointing, pacemaker timers, client
// replies, and metrology counters. One instance per replica.
#pragma once

#include <array>
#include <memory>

#include "common/histogram.h"
#include "consensus/hotstuff.h"
#include "faults/byzantine.h"
#include "consensus/marlin.h"
#include "crypto/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/pacemaker.h"
#include "simnet/network.h"
#include "simnet/processor.h"
#include "storage/cost_model.h"
#include "storage/kvstore.h"

namespace marlin::runtime {

enum class ProtocolKind { kMarlin, kHotStuff };

struct ReplicaProcessConfig {
  consensus::ReplicaConfig replica;
  ProtocolKind protocol = ProtocolKind::kMarlin;
  crypto::CostModel crypto_costs;
  storage::CostModel storage_costs;
  PacemakerConfig pacemaker;
  /// Checkpoint (compaction / GC) every this many committed blocks — the
  /// paper uses 5000.
  std::uint64_t checkpoint_interval = 5000;
  /// Reply wire bytes charged per committed request (paper: 150).
  std::size_t reply_size = 150;
  /// Node id of client #0; client c lives at node client_base + c.
  sim::NodeId client_base = 0;
  /// Shared event trace (usually the cluster's); nullptr disables tracing.
  obs::TraceSink* trace = nullptr;
  /// TEST ONLY: skip the write-ahead-voting flush. Simulates a broken build
  /// that forgets durability — the cross-restart safety oracle must catch
  /// the resulting double votes. Never enable outside tests.
  bool disable_persistence = false;
};

/// Outgoing-authenticator counter (Table I instrumentation). Per-kind
/// message/byte breakdowns live in sim::NodeNetStats — the network counts
/// every frame once at the wire instead of a parallel path here.
struct TrafficStats {
  std::uint64_t authenticators_sent = 0;

  void reset() { *this = TrafficStats{}; }
};

class ReplicaProcess final : public sim::NetworkNode,
                             public consensus::ProtocolEnv {
 public:
  /// `sched` is the replica's home scheduler: the shared simulator on the
  /// single-queue engine, its shard's clock on the partitioned one.
  ReplicaProcess(marlin::Scheduler& sched, sim::Network& net,
                 const crypto::SignatureSuite& suite,
                 ReplicaProcessConfig config);

  /// Registers with the network; must be called for all replicas (ids in
  /// order) before start().
  sim::NodeId attach();
  void start();

  /// Crash-recovery: destroys the protocol instance (txpool, vote
  /// collectors, QC caches — all volatile state), drops the outbox and
  /// timers, resets the pacemaker, reopens the DB (WAL replay +
  /// checkpoint), and reconstructs the protocol from the persisted
  /// consensus state. With `wipe` the disk is lost too (amnesia): the
  /// replica restarts from genesis state and must catch up via state
  /// transfer. Returns kCorruption et al. if the store fails to reopen,
  /// in which case the replica stays dead.
  Status restart(bool wipe);

  // -- NetworkNode -----------------------------------------------------------
  void on_message(sim::NodeId from, Payload payload) override;

  // -- ProtocolEnv -----------------------------------------------------------
  void send(ReplicaId to, const types::Envelope& env) override;
  void broadcast(const types::Envelope& env) override;
  void deliver(const types::Block& block,
               const std::vector<types::Operation>& executable) override;
  void entered_view(ViewNumber v) override;
  void progressed() override;
  void persist_state(const consensus::PersistentState& state) override;
  obs::TraceSink* trace_sink() override { return config_.trace; }
  marlin::Scheduler* scheduler() override { return &sim_; }
  TimePoint now() const override { return sim_.now(); }
  void charge_signs(std::uint32_t count) override;
  void charge_verifies(std::uint32_t count) override;
  void charge_hash_bytes(std::size_t bytes) override;
  void charge_pairings(std::uint32_t count) override;
  void charge_threshold_signs(std::uint32_t count) override;
  void charge_combine_shares(std::uint32_t count) override;

  // -- accessors / metrology -------------------------------------------------
  consensus::ReplicaBase& protocol() { return *protocol_; }
  const consensus::ReplicaBase& protocol() const { return *protocol_; }
  consensus::MarlinReplica* marlin();
  consensus::HotStuffReplica* hotstuff();

  WindowedCounter& committed_ops() { return committed_ops_; }
  const TrafficStats& traffic() const { return traffic_; }
  void reset_traffic() { traffic_.reset(); }

  /// Per-replica metrics (crypto charge counters, commit counters,
  /// storage gauges). Cluster::export_metrics aggregates these.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// Enable per-authenticator counting (decodes outgoing messages; used by
  /// the Table I bench only).
  void set_count_authenticators(bool on) { count_authenticators_ = on; }

  /// Routes every outgoing envelope through a faults::ByzantineBox from now
  /// on (kHonest reverts). The local state machine stays honest — only the
  /// wire behaviour changes.
  void set_byzantine_mode(faults::ByzantineMode mode) {
    byzantine_.set_mode(mode);
  }
  faults::ByzantineMode byzantine_mode() const { return byzantine_.mode(); }
  const faults::ByzantineBox& byzantine() const { return byzantine_; }

  ViewNumber current_view() const { return protocol_->current_view(); }
  std::uint64_t checkpoints_run() const { return checkpoints_run_; }
  std::uint64_t restarts() const { return restarts_; }
  /// The replica's storage environment. Recovery tests reach through this
  /// to corrupt the on-disk state (torn WAL tails, flipped CRC bytes)
  /// before calling restart().
  storage::Env& db_env() { return *db_env_; }
  Duration cpu_busy() const { return cpu_.total_busy(); }

  /// Last time this replica entered a new view (view-change latency
  /// measurements start here).
  TimePoint last_view_entry() const { return last_view_entry_; }
  TimePoint last_commit_time() const { return last_commit_time_; }
  /// First commit observed since the last view entry (valid iff
  /// committed_in_current_view()).
  TimePoint first_commit_in_view() const { return first_commit_in_view_; }
  bool committed_in_current_view() const { return commit_seen_in_view_; }

 private:
  void make_protocol();
  void run_protocol_task(std::function<void()> body);
  /// Stages (or sends) one frame. When `pre` is set it must hold env's
  /// serialization — broadcast passes the shared buffer so n destinations
  /// reuse one serialization; the modeled serialize charge and kMsgSent
  /// trace stay per-destination either way.
  void send_wire(ReplicaId to, const types::Envelope& env,
                 const Payload* pre = nullptr);
  void flush_outbox(TimePoint at);
  void arm_view_timer();
  std::uint32_t count_authenticators(const types::Envelope& env) const;

  /// Records into the shared sink with this replica's node id stamped.
  void trace(obs::TraceEvent e) {
    if (config_.trace) {
      e.node = config_.replica.id;
      config_.trace->record(e);
    }
  }

  marlin::Scheduler& sim_;
  sim::Network& net_;
  const crypto::SignatureSuite& suite_;  // kept for restart()
  ReplicaProcessConfig config_;
  sim::NodeId node_id_ = 0;
  sim::SequentialProcessor cpu_;

  std::unique_ptr<consensus::ReplicaBase> protocol_;
  std::unique_ptr<storage::Env> db_env_;
  std::unique_ptr<storage::KVStore> db_;

  Pacemaker pacemaker_;
  sim::TimerHandle view_timer_;

  // Charge accumulator for the protocol task currently executing.
  Duration pending_charge_;
  std::vector<std::pair<sim::NodeId, Payload>> outbox_;
  bool in_task_ = false;

  std::uint64_t blocks_since_checkpoint_ = 0;
  std::uint64_t checkpoints_run_ = 0;
  std::uint64_t restarts_ = 0;
  WindowedCounter committed_ops_;
  faults::ByzantineBox byzantine_;
  TrafficStats traffic_;
  obs::MetricsRegistry metrics_;
  bool count_authenticators_ = false;
  TimePoint last_view_entry_;
  TimePoint last_commit_time_;
  TimePoint first_commit_in_view_;
  bool commit_seen_in_view_ = false;

  friend class Cluster;
};

}  // namespace marlin::runtime
