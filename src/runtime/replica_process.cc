#include "runtime/replica_process.h"

#include <cassert>

namespace marlin::runtime {

using types::Envelope;
using types::MsgKind;

namespace {
// Durable consensus state (PersistentState) lives under a fixed key; the
// write-ahead-voting hook overwrites it in place on every vote/lock change.
constexpr const char* kPStateKey = "meta/pstate";
}  // namespace

ReplicaProcess::ReplicaProcess(marlin::Scheduler& sim, sim::Network& net,
                               const crypto::SignatureSuite& suite,
                               ReplicaProcessConfig config)
    : sim_(sim),
      net_(net),
      suite_(suite),
      config_(std::move(config)),
      cpu_(sim),
      pacemaker_(config_.pacemaker.scaled_for(config_.replica.quorum.n)) {
  db_env_ = storage::make_mem_env();
  storage::KVStoreOptions db_options;
  db_options.trace = config_.trace;
  db_options.trace_node = config_.replica.id;
  auto db = storage::KVStore::open(*db_env_, db_options);
  assert(db.is_ok());
  db_ = std::move(db).take();

  make_protocol();
}

void ReplicaProcess::make_protocol() {
  if (config_.protocol == ProtocolKind::kMarlin) {
    protocol_ = std::make_unique<consensus::MarlinReplica>(config_.replica,
                                                           suite_, *this);
  } else {
    protocol_ = std::make_unique<consensus::HotStuffReplica>(config_.replica,
                                                             suite_, *this);
  }
}

sim::NodeId ReplicaProcess::attach() {
  node_id_ = net_.add_node(this, &sim_);
  assert(node_id_ == config_.replica.id &&
         "replicas must occupy node ids [0, n)");
  return node_id_;
}

void ReplicaProcess::start() {
  run_protocol_task([this] { protocol_->start(); });
}

Status ReplicaProcess::restart(bool wipe) {
  // Everything volatile dies with the process: the protocol instance
  // (txpool, vote collectors, cached QCs, fetch bookkeeping), half-built
  // outbound messages, the armed view timer, and the pacemaker's backoff
  // ladder. Only the DB survives — unless this is an amnesia restart.
  view_timer_.cancel();
  protocol_.reset();
  outbox_.clear();
  pending_charge_ = Duration::zero();
  pacemaker_ = Pacemaker(config_.pacemaker.scaled_for(config_.replica.quorum.n));
  blocks_since_checkpoint_ = 0;
  commit_seen_in_view_ = false;

  if (wipe) db_env_ = storage::make_mem_env();  // the disk is gone too
  db_.reset();
  storage::KVStoreOptions db_options;
  db_options.trace = config_.trace;
  db_options.trace_node = config_.replica.id;
  auto db = storage::KVStore::open(*db_env_, db_options);
  if (!db.is_ok()) {
    // Unrecoverable store (e.g. mid-file WAL corruption): surface the
    // error and leave the replica dead rather than rejoin with bad state.
    metrics_.counter("recovery.failures") += 1;
    return db.status();
  }
  db_ = std::move(db).take();
  const std::uint64_t replayed = db_->wal_records_replayed();

  consensus::PersistentState ps;
  bool have_state = false;
  if (auto rec = db_->get(kPStateKey); rec.is_ok()) {
    Reader r(rec.value());
    auto decoded = consensus::PersistentState::decode(r);
    if (decoded.is_ok() && r.expect_exhausted().is_ok()) {
      ps = std::move(decoded).take();
      have_state = true;
    }
  }

  make_protocol();
  if (have_state) protocol_->restore(ps);
  ++restarts_;

  const Height restored_height = have_state ? ps.committed_height : 0;
  run_protocol_task([this, wipe, replayed, restored_height] {
    // Model recovery I/O: one state read plus one read per replayed WAL
    // record. The resulting CPU charge is the modeled recovery duration.
    const Duration recovery_cost = config_.storage_costs.read_base *
                                   static_cast<std::int64_t>(1 + replayed);
    pending_charge_ += recovery_cost;
    metrics_.counter("recovery.restarts") += 1;
    metrics_.counter("recovery.wal_records_replayed") += replayed;
    metrics_.gauge("recovery.duration_ms") =
        recovery_cost.as_seconds_f() * 1e3;
    trace({.type = obs::EventType::kReplicaRestart,
           .view = protocol_->current_view(),
           .height = restored_height,
           .a = wipe ? 1u : 0u,
           .b = replayed});
    // An amnesia restart enters recovery BEFORE start(): with no durable
    // record of past votes, starting normally could re-propose or re-vote
    // in a view the pre-wipe self already signed in (equivocation). The
    // recovery gate holds until peers re-anchor the frontier.
    if (wipe) protocol_->begin_recovery();
    protocol_->start();
  });
  return Status::ok();
}

consensus::MarlinReplica* ReplicaProcess::marlin() {
  return dynamic_cast<consensus::MarlinReplica*>(protocol_.get());
}

consensus::HotStuffReplica* ReplicaProcess::hotstuff() {
  return dynamic_cast<consensus::HotStuffReplica*>(protocol_.get());
}

// ---------------------------------------------------------------------------
// Task execution with CPU charging
// ---------------------------------------------------------------------------

void ReplicaProcess::run_protocol_task(std::function<void()> body) {
  cpu_.post([this, body = std::move(body)]() -> Duration {
    assert(!in_task_);
    in_task_ = true;
    pending_charge_ = Duration::zero();
    outbox_.clear();
    body();
    const Duration cost = pending_charge_;
    // Outputs leave the node when the CPU work completes.
    flush_outbox(sim_.now() + cost);
    in_task_ = false;
    return cost;
  });
}

void ReplicaProcess::flush_outbox(TimePoint at) {
  if (outbox_.empty()) return;
  std::vector<std::pair<sim::NodeId, Payload>> pending;
  pending.swap(outbox_);
  sim_.post_at(at, [this, pending = std::move(pending)]() mutable {
    for (auto& [to, wire] : pending) {
      net_.send(node_id_, to, std::move(wire));
    }
  });
}

void ReplicaProcess::on_message(sim::NodeId from, Payload payload) {
  // Deserialize inside the task so the parse cost is charged.
  run_protocol_task([this, from, payload = std::move(payload)] {
    pending_charge_ +=
        config_.crypto_costs.serialize_cost(payload.size());
    auto env = Envelope::parse(payload.view());
    if (!env.is_ok()) return;
    if (env.value().kind == MsgKind::kSnapshotResponse) {
      metrics_.counter("state_transfer.bytes") += payload.size();
    }
    const ReplicaId sender = static_cast<ReplicaId>(from);
    // Same ingress seam the metal runtime uses; the inline executor runs
    // the handler immediately, so charging and delivery order are
    // byte-identical to a direct handle_message call.
    protocol_->ingress(sender, std::move(env).take(),
                       common::InlineVerifyExecutor::instance());
  });
}

// ---------------------------------------------------------------------------
// ProtocolEnv
// ---------------------------------------------------------------------------

std::uint32_t ReplicaProcess::count_authenticators(
    const types::Envelope& env) const {
  // An authenticator is a signature, partial signature, or threshold
  // signature (paper §III). SigGroup QCs count each contained signature,
  // matching the paper's accounting for the signature instantiation.
  auto justify_count = [](const types::Justify& j) {
    std::uint32_t c = 0;
    if (j.qc) c += std::max<std::size_t>(1, j.qc->sigs.parts.size());
    if (j.vc) c += std::max<std::size_t>(1, j.vc->sigs.parts.size());
    return c;
  };
  switch (env.kind) {
    case MsgKind::kVote: {
      auto m = types::open_envelope<types::VoteMsg>(env);
      if (!m.is_ok()) return 0;
      std::uint32_t c = 1;
      if (m.value().locked_qc) {
        c += std::max<std::size_t>(1, m.value().locked_qc->sigs.parts.size());
      }
      return c;
    }
    case MsgKind::kProposal: {
      auto m = types::open_envelope<types::ProposalMsg>(env);
      if (!m.is_ok()) return 0;
      std::uint32_t c = 0;
      for (const auto& e : m.value().entries) c += justify_count(e.justify);
      return c;
    }
    case MsgKind::kQcNotice: {
      auto m = types::open_envelope<types::QcNoticeMsg>(env);
      if (!m.is_ok()) return 0;
      std::uint32_t c = std::max<std::size_t>(1, m.value().qc.sigs.parts.size());
      if (m.value().aux) {
        c += std::max<std::size_t>(1, m.value().aux->sigs.parts.size());
      }
      return c;
    }
    case MsgKind::kViewChange: {
      auto m = types::open_envelope<types::ViewChangeMsg>(env);
      if (!m.is_ok()) return 0;
      return 1 + justify_count(m.value().high_qc);
    }
    default:
      return 0;
  }
}

void ReplicaProcess::send(ReplicaId to, const Envelope& env) {
  if (byzantine_.active()) {
    // The box may mutate (equivocation, corrupted sigs), replace (stale
    // replay), or suppress (silence) the envelope, per destination.
    auto out = byzantine_.transform(env, config_.replica.id, to);
    if (!out) return;
    send_wire(to, *out);
    return;
  }
  send_wire(to, env);
}

void ReplicaProcess::send_wire(ReplicaId to, const Envelope& env,
                               const Payload* pre) {
  Payload wire = pre != nullptr ? *pre : Payload(env.serialize());
  pending_charge_ += config_.crypto_costs.serialize_cost(wire.size());
  std::uint32_t authenticators = 0;
  if (count_authenticators_) {
    authenticators = count_authenticators(env);
    traffic_.authenticators_sent += authenticators;
  }
  // kMsgSent is recorded here, not in the network, because only the
  // protocol host knows the current view — what per-view leader-egress
  // analysis (trace_inspect) attributes bytes by.
  trace({.type = obs::EventType::kMsgSent,
         .kind = static_cast<std::uint8_t>(env.kind),
         .view = protocol_ ? protocol_->current_view() : 0,
         .a = wire.size(),
         .b = authenticators});
  if (in_task_) {
    outbox_.emplace_back(static_cast<sim::NodeId>(to), std::move(wire));
  } else {
    net_.send(node_id_, static_cast<sim::NodeId>(to), std::move(wire));
  }
}

void ReplicaProcess::broadcast(const Envelope& env) {
  const std::uint32_t n = config_.replica.quorum.n;
  // Serialize once and let every destination share the refcounted buffer.
  // Simulated cost is untouched: send_wire still charges serialize_cost and
  // records kMsgSent per destination, so golden traces replay bit-identical.
  // A Byzantine box gets first refusal per destination; only destinations
  // whose frame it actually tampers with pay for a private serialization
  // (copy-on-write), the rest keep sharing.
  Payload shared;
  for (ReplicaId r = 0; r < n; ++r) {
    if (byzantine_.active()) {
      auto fx = byzantine_.transform_wire(env, config_.replica.id, r);
      if (!fx.out) continue;  // suppressed for this destination
      if (fx.mutated) {
        send_wire(r, *fx.out);
        continue;
      }
    }
    if (!shared.has_value()) shared = Payload(env.serialize());
    send_wire(r, env, &shared);
  }
}

void ReplicaProcess::deliver(const types::Block& block,
                             const std::vector<types::Operation>& executable) {
  last_commit_time_ = sim_.now();
  if (!commit_seen_in_view_) {
    first_commit_in_view_ = sim_.now();
    commit_seen_in_view_ = true;
  }

  // Execute: application cost per op, one DB write for the block.
  const std::size_t block_bytes = types::ops_wire_size(executable) + 160;
  pending_charge_ += config_.crypto_costs.execute_op *
                     static_cast<std::int64_t>(executable.size());
  pending_charge_ += config_.storage_costs.write_cost(block_bytes);

  // Persist a compact block record (real store, virtual cost above).
  char key[32];
  std::snprintf(key, sizeof key, "blk/%012llu",
                static_cast<unsigned long long>(block.height));
  Writer rec;
  rec.u64(block.view);
  rec.u64(block.height);
  rec.varint(executable.size());
  rec.raw(block.hash().view());
  (void)db_->put(key, rec.buffer());

  // Periodic checkpoint (the paper's GC every 5000 blocks).
  if (++blocks_since_checkpoint_ >= config_.checkpoint_interval) {
    pending_charge_ +=
        config_.storage_costs.checkpoint_cost(blocks_since_checkpoint_);
    (void)db_->checkpoint();
    blocks_since_checkpoint_ = 0;
    ++checkpoints_run_;
    metrics_.counter("storage.checkpoints") += 1;
  }

  // Reply to clients: one batched message per client, padded so wire bytes
  // equal |requests| × reply_size.
  std::map<ClientId, std::vector<RequestId>> by_client;
  for (const types::Operation& op : executable) {
    by_client[op.client].push_back(op.request);
  }
  const types::Hash256 block_hash = block.hash();
  for (auto& [client, requests] : by_client) {
    types::ClientReplyMsg reply;
    reply.client = client;
    reply.replica = config_.replica.id;
    reply.view = block.view;
    reply.height = block.height;
    reply.result.assign(block_hash.data.begin(), block_hash.data.begin() + 8);
    const std::size_t body_overhead = 45 + 8 * requests.size();
    const std::size_t target = config_.reply_size * requests.size();
    if (target > body_overhead) {
      reply.padding.assign(target - body_overhead, 0xcd);
    }
    reply.requests = std::move(requests);
    Payload wire(
        types::make_envelope(MsgKind::kClientReply, reply).serialize());
    pending_charge_ += config_.crypto_costs.serialize_cost(wire.size());
    trace({.type = obs::EventType::kMsgSent,
           .kind = static_cast<std::uint8_t>(MsgKind::kClientReply),
           .view = block.view,
           .height = block.height,
           .a = wire.size()});
    const sim::NodeId dest = config_.client_base + client;
    if (in_task_) {
      outbox_.emplace_back(dest, std::move(wire));
    } else {
      net_.send(node_id_, dest, std::move(wire));
    }
  }

  committed_ops_.record(sim_.now(), executable.size());
  metrics_.counter("replica.committed_blocks") += 1;
  metrics_.counter("replica.committed_ops") += executable.size();
  metrics_.gauge("replica.committed_height") =
      static_cast<double>(block.height);
  metrics_.sizes("replica.block_ops").record(executable.size());
}

void ReplicaProcess::entered_view(ViewNumber v) {
  trace({.type = obs::EventType::kViewEntered, .view = v});
  metrics_.gauge("replica.view") = static_cast<double>(v);
  last_view_entry_ = sim_.now();
  commit_seen_in_view_ = false;
  pacemaker_.on_view_entered();
  arm_view_timer();
}

void ReplicaProcess::progressed() {
  pacemaker_.on_progress();
}

void ReplicaProcess::persist_state(const consensus::PersistentState& state) {
  if (config_.disable_persistence) return;  // TEST ONLY (see config comment)
  // Write-ahead voting: the protocol calls this before the vote/new-view
  // message leaves, and the outbox does not flush until the task's full CPU
  // charge (including this write) has elapsed — so the vote is durable
  // before it is visible on the wire.
  Writer w;
  state.encode(w);
  pending_charge_ += config_.storage_costs.write_cost(w.size());
  (void)db_->put(kPStateKey, w.buffer());
  metrics_.counter("storage.pstate_writes") += 1;
}

void ReplicaProcess::arm_view_timer() {
  view_timer_.cancel();
  view_timer_ = sim_.schedule(
      pacemaker_.view_timeout(config_.replica.id, protocol_->current_view()),
      [this] {
    // While amnesia recovery is in progress, the timer retransmits the
    // recovery snapshot request instead of churning views — the replica
    // is not allowed to participate in view changes yet anyway.
    if (protocol_->recovering()) {
      run_protocol_task([this] { protocol_->recovery_tick(); });
      arm_view_timer();
      return;
    }
    // A quiet view with no pending work is healthy, not stuck: don't churn
    // views while idle (rotating mode still rotates unconditionally).
    const bool idle = !config_.pacemaker.rotate_on_timer &&
                      protocol_->pool().empty();
    if (!idle && pacemaker_.should_advance_on_fire()) {
      run_protocol_task([this] { protocol_->on_view_timeout(); });
      // The advance is quorum-gated (see ReplicaBase::on_view_timeout):
      // the fire may only have broadcast a timeout notice. Keep the timer
      // armed either way — if the view did move, entered_view() re-arms
      // with the new view's duration and this arm is superseded.
      arm_view_timer();
    } else {
      arm_view_timer();
    }
  });
}

void ReplicaProcess::charge_signs(std::uint32_t count) {
  pending_charge_ += config_.crypto_costs.sign * count;
  metrics_.counter("crypto.signs") += count;
}

void ReplicaProcess::charge_verifies(std::uint32_t count) {
  pending_charge_ += config_.crypto_costs.verify * count;
  metrics_.counter("crypto.verifies") += count;
  trace({.type = obs::EventType::kSigVerify,
         .view = protocol_ ? protocol_->current_view() : 0,
         .a = count,
         .c = static_cast<std::uint64_t>(
             (config_.crypto_costs.verify * count).as_nanos())});
}

void ReplicaProcess::charge_hash_bytes(std::size_t bytes) {
  pending_charge_ += config_.crypto_costs.hash_cost(bytes);
  metrics_.counter("crypto.hash_bytes") += bytes;
}

void ReplicaProcess::charge_pairings(std::uint32_t count) {
  pending_charge_ += config_.crypto_costs.pairing * count;
  metrics_.counter("crypto.pairings") += count;
  trace({.type = obs::EventType::kSigVerify,
         .view = protocol_ ? protocol_->current_view() : 0,
         .a = count,
         .b = 1,
         .c = static_cast<std::uint64_t>(
             (config_.crypto_costs.pairing * count).as_nanos())});
}

void ReplicaProcess::charge_threshold_signs(std::uint32_t count) {
  pending_charge_ += config_.crypto_costs.threshold_sign_share * count;
  metrics_.counter("crypto.threshold_signs") += count;
}

void ReplicaProcess::charge_combine_shares(std::uint32_t count) {
  pending_charge_ += config_.crypto_costs.threshold_combine_per_share * count;
  metrics_.counter("crypto.combine_shares") += count;
}

}  // namespace marlin::runtime
