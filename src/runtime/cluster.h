// Full simulated deployment: n replicas + m closed-loop clients over one
// simnet Network, sharing a signature suite, with an optional declarative
// fault plan executed by a faults::FaultController. This is the testbed
// every integration test, example, and benchmark drives.
#pragma once

#include <memory>
#include <vector>

#include "faults/fault_controller.h"
#include "runtime/client_process.h"
#include "runtime/replica_process.h"

namespace marlin::runtime {

/// Protocol-level knobs applied uniformly to every replica.
struct ConsensusConfig {
  ProtocolKind protocol = ProtocolKind::kMarlin;
  PacemakerConfig pacemaker;
  std::size_t max_batch_ops = 4000;
  bool pipelined = true;
  bool allow_empty_blocks = false;
  bool disable_happy_path = false;
  bool use_threshold_sigs = false;
  std::uint64_t checkpoint_interval = 5000;
  std::size_t reply_size = 150;
  /// TEST ONLY: disable the write-ahead-voting durability hook on every
  /// replica (simulates a broken build; the cross-restart safety oracle
  /// must catch the resulting double votes).
  bool disable_persistence = false;
};

/// Workload knobs applied uniformly to every closed-loop client.
struct ClientConfig {
  std::uint32_t count = 8;
  std::uint32_t window = 16;
  std::size_t payload_size = 150;
  Duration retransmit_timeout = Duration::seconds(4);
  /// Stop issuing new requests after this many per client (0 = unlimited).
  std::uint64_t max_requests = 0;
};

struct ClusterConfig {
  std::uint32_t f = 1;
  std::uint64_t seed = 42;

  ConsensusConfig consensus;
  ClientConfig clients;
  sim::NetConfig net;
  crypto::CostModel crypto_costs;
  storage::CostModel storage_costs;

  /// Declarative fault timeline, armed at start(). Empty = fault-free run.
  faults::FaultPlan faults;

  /// Shared protocol event trace for all replicas, the network, and
  /// storage. The cluster binds its clock to the simulator. Optional.
  obs::TraceSink* trace = nullptr;
  /// Count outgoing authenticators per replica (decodes every send; used
  /// by the Table I bench and metric snapshots that cross-check it).
  bool count_authenticators = false;
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, ClusterConfig config);

  /// Arms the fault plan, then starts all replicas, then all clients.
  void start();

  std::uint32_t n() const { return config_.f * 3 + 1; }
  std::uint32_t f() const { return config_.f; }
  const ClusterConfig& config() const { return config_; }

  ReplicaProcess& replica(ReplicaId i) { return *replicas_[i]; }
  const ReplicaProcess& replica(ReplicaId i) const { return *replicas_[i]; }
  ClientProcess& client(ClientId i) { return *clients_[i]; }
  sim::Network& network() { return *net_; }
  std::size_t client_count() const { return clients_.size(); }

  /// Crash-stop a replica (it neither sends nor receives from now on).
  /// Prefer expressing faults in the config's FaultPlan; these imperative
  /// hooks remain for interactive exploration.
  void crash_replica(ReplicaId i) { net_->set_node_down(i, true); }
  void recover_replica(ReplicaId i) { net_->set_node_down(i, false); }
  /// Crash-and-revive from disk: rebuilds replica i's protocol instance
  /// from its persisted consensus state (WAL replay + checkpoint) and
  /// reconnects it. With `wipe`, the disk is erased first (amnesia) — the
  /// replica rejoins with empty state and catches up via state transfer.
  /// On a recovery error (e.g. corrupted store) the replica stays down.
  Status restart_replica(ReplicaId i, bool wipe = false);
  /// Switches a replica's outbound wire behaviour (kHonest reverts).
  void set_byzantine(ReplicaId i, faults::ByzantineMode mode) {
    replicas_[i]->set_byzantine_mode(mode);
  }

  /// The controller executing this run's fault plan (always present; a
  /// fault-free cluster simply holds an empty plan).
  const faults::FaultController& faults() const { return *faults_; }

  /// The leader of the highest view any live replica is currently in.
  ReplicaId current_leader() const;
  ViewNumber max_view() const;

  // -- metrology -------------------------------------------------------------
  void set_measurement_window(TimePoint start, TimePoint end);
  /// Completed (f+1-acked) operations per second across all clients.
  double client_throughput() const;
  /// Aggregated client latency percentile (ms).
  double latency_ms(double percentile) const;
  double mean_latency_ms() const;
  std::uint64_t total_completed() const;
  bool any_safety_violation() const;
  /// Cluster-wide metrics snapshot: per-replica registries merged
  /// additively (gauges re-labeled "replica=N"), aggregate client latency
  /// ("client.latency"), and per-node / per-kind network traffic.
  void export_metrics(obs::MetricsRegistry& out) const;
  /// All correct replicas agree on committed prefixes (checked via the
  /// committed hash of the lowest common height — cheap invariant probe).
  bool committed_heights_consistent() const;

 private:
  sim::Simulator& sim_;
  ClusterConfig config_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<crypto::SignatureSuite> suite_;
  std::vector<std::unique_ptr<ReplicaProcess>> replicas_;
  std::vector<std::unique_ptr<ClientProcess>> clients_;
  std::unique_ptr<faults::FaultController> faults_;
};

}  // namespace marlin::runtime
