// Full simulated deployment: n replicas + m closed-loop clients over one
// simnet Network, sharing a signature suite, with an optional declarative
// fault plan executed by a faults::FaultController. This is the testbed
// every integration test, example, and benchmark drives.
#pragma once

#include <memory>
#include <vector>

#include "faults/fault_controller.h"
#include "runtime/client_process.h"
#include "runtime/replica_process.h"
#include "simnet/sharded.h"

namespace marlin::runtime {

/// Protocol-level knobs applied uniformly to every replica.
struct ConsensusConfig {
  ProtocolKind protocol = ProtocolKind::kMarlin;
  PacemakerConfig pacemaker;
  std::size_t max_batch_ops = 4000;
  bool pipelined = true;
  bool allow_empty_blocks = false;
  bool disable_happy_path = false;
  bool use_threshold_sigs = false;
  std::uint64_t checkpoint_interval = 5000;
  std::size_t reply_size = 150;
  /// TEST ONLY: disable the write-ahead-voting durability hook on every
  /// replica (simulates a broken build; the cross-restart safety oracle
  /// must catch the resulting double votes).
  bool disable_persistence = false;
};

/// Workload knobs applied uniformly to every closed-loop client.
struct ClientConfig {
  std::uint32_t count = 8;
  std::uint32_t window = 16;
  std::size_t payload_size = 150;
  Duration retransmit_timeout = Duration::seconds(4);
  /// Stop issuing new requests after this many per client (0 = unlimited).
  std::uint64_t max_requests = 0;
};

struct ClusterConfig {
  std::uint32_t f = 1;
  std::uint64_t seed = 42;

  ConsensusConfig consensus;
  ClientConfig clients;
  sim::NetConfig net;
  crypto::CostModel crypto_costs;
  storage::CostModel storage_costs;

  /// Declarative fault timeline, armed at start(). Empty = fault-free run.
  faults::FaultPlan faults;

  /// Shared protocol event trace for all replicas, the network, and
  /// storage. The cluster binds its clock to the simulator. Optional.
  obs::TraceSink* trace = nullptr;
  /// Count outgoing authenticators per replica (decodes every send; used
  /// by the Table I bench and metric snapshots that cross-check it).
  bool count_authenticators = false;
};

class Cluster {
 public:
  /// How a cluster binds to an event engine. The composition root (the
  /// ctor taking a concrete engine) fills this in; everything downstream —
  /// processes, network, faults — sees only Scheduler&.
  struct EngineBinding {
    /// Control lane: fault actions, trace clock, anything that must not
    /// race shard execution. On the single-queue engine this is the
    /// simulator itself.
    marlin::Scheduler* control = nullptr;
    /// Home scheduler per node id (replicas 0..n-1, clients n..n+m-1).
    std::function<marlin::Scheduler*(sim::NodeId)> node_sched;
    /// Setup-time randomness source; forked in a fixed order (network
    /// first, then clients in id order) that the golden traces pin.
    Rng* setup_rng = nullptr;
    /// Per-node trace sink override (shard-local sinks), or null for the
    /// shared config trace.
    std::function<obs::TraceSink*(sim::NodeId)> node_trace;
    /// Give each network sender its own rng stream (required when senders
    /// run concurrently on the partitioned engine).
    bool per_sender_net_rng = false;
  };

  Cluster(sim::Simulator& sim, ClusterConfig config);
  /// Partitioned-engine composition root: nodes bind to their home-shard
  /// schedulers and trace sinks, the control lane runs faults, network
  /// randomness splits per sender, and the shard heaps are pre-sized from
  /// the cluster's fanout. Requires engine.lookahead() <= net.one_way_delay
  /// (the conservative-window safety condition).
  Cluster(sim::ShardedSimulator& engine, ClusterConfig config);
  Cluster(const EngineBinding& engine, ClusterConfig config);

  /// Arms the fault plan, then starts all replicas, then all clients.
  void start();

  std::uint32_t n() const { return config_.f * 3 + 1; }
  std::uint32_t f() const { return config_.f; }
  const ClusterConfig& config() const { return config_; }

  ReplicaProcess& replica(ReplicaId i) { return *replicas_[i]; }
  const ReplicaProcess& replica(ReplicaId i) const { return *replicas_[i]; }
  ClientProcess& client(ClientId i) { return *clients_[i]; }
  sim::Network& network() { return *net_; }
  std::size_t client_count() const { return clients_.size(); }

  /// Crash-stop a replica (it neither sends nor receives from now on).
  /// Prefer expressing faults in the config's FaultPlan; these imperative
  /// hooks remain for interactive exploration.
  void crash_replica(ReplicaId i) { net_->set_node_down(i, true); }
  void recover_replica(ReplicaId i) { net_->set_node_down(i, false); }
  /// Crash-and-revive from disk: rebuilds replica i's protocol instance
  /// from its persisted consensus state (WAL replay + checkpoint) and
  /// reconnects it. With `wipe`, the disk is erased first (amnesia) — the
  /// replica rejoins with empty state and catches up via state transfer.
  /// On a recovery error (e.g. corrupted store) the replica stays down.
  Status restart_replica(ReplicaId i, bool wipe = false);
  /// Switches a replica's outbound wire behaviour (kHonest reverts).
  void set_byzantine(ReplicaId i, faults::ByzantineMode mode) {
    replicas_[i]->set_byzantine_mode(mode);
  }

  /// The controller executing this run's fault plan (always present; a
  /// fault-free cluster simply holds an empty plan).
  const faults::FaultController& faults() const { return *faults_; }

  /// The leader of the highest view any live replica is currently in.
  ReplicaId current_leader() const;
  ViewNumber max_view() const;

  // -- metrology -------------------------------------------------------------
  void set_measurement_window(TimePoint start, TimePoint end);
  /// Completed (f+1-acked) operations per second across all clients.
  double client_throughput() const;
  /// Aggregated client latency percentile (ms).
  double latency_ms(double percentile) const;
  double mean_latency_ms() const;
  std::uint64_t total_completed() const;
  bool any_safety_violation() const;
  /// Cluster-wide metrics snapshot: per-replica registries merged
  /// additively (gauges re-labeled "replica=N"), aggregate client latency
  /// ("client.latency"), and per-node / per-kind network traffic.
  void export_metrics(obs::MetricsRegistry& out) const;
  /// All correct replicas agree on committed prefixes (checked via the
  /// committed hash of the lowest common height — cheap invariant probe).
  bool committed_heights_consistent() const;

 private:
  void build(const EngineBinding& engine);

  marlin::Scheduler* control_ = nullptr;
  std::function<marlin::Scheduler*(sim::NodeId)> sched_of_;
  ClusterConfig config_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<crypto::SignatureSuite> suite_;
  std::vector<std::unique_ptr<ReplicaProcess>> replicas_;
  std::vector<std::unique_ptr<ClientProcess>> clients_;
  std::unique_ptr<faults::FaultController> faults_;
};

}  // namespace marlin::runtime
