// Canned experiment procedures shared by the benchmark binaries: a
// closed-loop throughput/latency run with warm-up and measurement windows,
// and a leader-crash view-change latency run. Every run is deterministic
// given its config (seed included).
#pragma once

#include "runtime/cluster.h"

namespace marlin::runtime {

struct ThroughputResult {
  double throughput_ops = 0;  // completed ops / second in window
  double mean_latency_ms = 0;
  double p50_latency_ms = 0;
  double p95_latency_ms = 0;
  std::uint64_t total_completed = 0;
  bool safety_ok = true;
  bool consistent = true;
  ViewNumber final_view = 0;
};

/// Runs warmup + measure (+ small drain), returns window metrics. When
/// `metrics` is non-null, the cluster's full metrics snapshot is exported
/// into it after the run (pair with config.trace for the event stream).
ThroughputResult run_throughput_experiment(ClusterConfig config,
                                           Duration warmup, Duration measure,
                                           obs::MetricsRegistry* metrics =
                                               nullptr);

struct ViewChangeResult {
  /// Mean over correct replicas of (first commit after VC − VC start).
  double mean_latency_ms = 0;
  double leader_latency_ms = 0;  // measured at the new leader
  bool resolved = false;         // a block committed in the new view
  ViewNumber new_view = 0;
  bool unhappy_path = false;     // the new leader ran PRE-PREPARE
  bool safety_ok = true;
};

/// Commits a little traffic, crashes the current leader, and measures the
/// view-change latency (paper Fig. 10i methodology). `force_unhappy`
/// disables Marlin's happy path.
ViewChangeResult run_view_change_experiment(ClusterConfig config,
                                            bool force_unhappy,
                                            obs::MetricsRegistry* metrics =
                                                nullptr);

}  // namespace marlin::runtime
