// The one experiment procedure shared by every benchmark binary, test, and
// CLI tool: build a cluster from a ClusterConfig (fault plan included), run
// it, and measure. What used to be two divergent entry points (a
// throughput run and a leader-crash view-change run) is a single
// run_experiment() whose options select which measurements are taken;
// fault scenarios are data (faults::FaultPlan), not bespoke driver code.
// Every run is deterministic given its options (seed included).
#pragma once

#include "runtime/cluster.h"

namespace marlin::runtime {

struct ExperimentOptions {
  /// Deployment under test, including the fault plan to execute.
  ClusterConfig cluster;

  /// Throughput/latency measurement window: [warmup, warmup + measure),
  /// with `drain` of extra run time past the window end.
  Duration warmup = Duration::seconds(2);
  Duration measure = Duration::seconds(10);
  Duration drain = Duration::seconds(2);

  /// Measure view-change latency around the plan's first crash (paper
  /// Fig. 10i methodology): after the crash fires, run until every correct
  /// replica commits in a view above the crash view, up to the deadline.
  /// Requires a crash/crash_leader action in the plan.
  bool measure_view_change = false;
  Duration view_change_deadline = Duration::seconds(30);

  /// Check that commits resume after the plan quiesces (all transient
  /// disruptions over): every correct replica must commit a block it had
  /// not committed at quiesce time, within `liveness_deadline` of it.
  /// Extends the run past the quiesce point as needed.
  bool check_liveness = false;
  Duration liveness_deadline = Duration::seconds(20);

  /// When non-null, the cluster's full metrics snapshot is exported into
  /// it after the run (pair with cluster.trace for the event stream).
  obs::MetricsRegistry* metrics = nullptr;
};

struct ViewChangeReport {
  bool resolved = false;  // every correct replica committed in a new view
  /// Mean over correct replicas of (first commit after VC − VC start).
  double mean_latency_ms = 0;
  double leader_latency_ms = 0;  // measured at the new leader
  ViewNumber new_view = 0;
  bool unhappy_path = false;  // the new leader ran PRE-PREPARE
};

struct LivenessReport {
  bool checked = false;
  bool progressed = false;  // all correct replicas committed post-quiesce
  /// Committed blocks across correct replicas at quiesce / at run end.
  std::uint64_t commits_at_quiesce = 0;
  std::uint64_t commits_at_end = 0;
};

struct ExperimentReport {
  // Measurement-window metrics (closed-loop clients).
  double throughput_ops = 0;  // completed ops / second in window
  double mean_latency_ms = 0;
  double p50_latency_ms = 0;
  double p95_latency_ms = 0;
  std::uint64_t total_completed = 0;

  // Invariants, checked after every run.
  bool safety_ok = true;    // no replica flagged a local safety violation
  bool consistent = true;   // committed prefixes agree across live replicas
  ViewNumber final_view = 0;

  ViewChangeReport view_change;  // populated iff measure_view_change
  LivenessReport liveness;       // populated iff check_liveness

  /// The fault actions that actually fired, with resolved targets.
  std::vector<faults::ExecutedAction> fault_log;

  bool ok() const {
    return safety_ok && consistent &&
           (!liveness.checked || liveness.progressed);
  }
};

/// Builds the cluster, arms the plan, runs, measures. The only way any
/// bench/test/tool in this repo runs a full deployment.
ExperimentReport run_experiment(const ExperimentOptions& options);

/// Options for a plain warmup + measure throughput run.
ExperimentOptions throughput_options(ClusterConfig cluster, Duration warmup,
                                     Duration measure);

/// Options for the Fig. 10i leader-crash view-change run: commits traffic
/// for `crash_at`, crashes the then-current leader via the plan, and
/// measures view-change latency. `force_unhappy` disables Marlin's happy
/// path (and pins a short, predictable pacemaker timeout either way — the
/// paper measures from VC start, so the timeout itself is excluded).
ExperimentOptions view_change_options(ClusterConfig cluster,
                                      bool force_unhappy,
                                      Duration crash_at =
                                          Duration::seconds(3));

}  // namespace marlin::runtime
