#include "runtime/client_process.h"

#include <algorithm>

namespace marlin::runtime {

ClientProcess::ClientProcess(marlin::Scheduler& sched, sim::Network& net,
                             ClientProcessConfig config, Rng rng)
    : sim_(sched), net_(net), config_(config), rng_(std::move(rng)) {}

sim::NodeId ClientProcess::attach() {
  node_id_ = net_.add_node(this, &sim_);
  return node_id_;
}

void ClientProcess::start() {
  for (std::uint32_t i = 0; i < config_.window; ++i) issue_next();
  flush_burst();
}

Bytes ClientProcess::payload_for(RequestId id) {
  (void)id;
  return rng_.next_bytes(config_.payload_size);
}

void ClientProcess::issue_next() {
  if (config_.max_requests != 0 && next_request_ > config_.max_requests) {
    return;
  }
  const RequestId id = next_request_++;
  const Bytes payload = payload_for(id);
  payloads_[id] = payload;
  Pending& p = pending_[id];
  p.first_sent = sim_.now();
  burst_.push_back(types::Operation{config_.id, id, payload});
  if (config_.trace) {
    // First issue only; retransmissions reuse the original submit time.
    config_.trace->record({.node = node_id_,
                           .type = obs::EventType::kClientSubmit,
                           .a = id,
                           .b = config_.id});
  }
  arm_retransmit(id);
}

void ClientProcess::arm_retransmit(RequestId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  it->second.retransmit.cancel();
  it->second.retransmit =
      sim_.schedule(config_.retransmit_timeout, [this, id] {
        auto pit = pending_.find(id);
        if (pit == pending_.end()) return;
        ++retransmissions_;
        burst_.push_back(types::Operation{config_.id, id, payloads_[id]});
        flush_burst();
        arm_retransmit(id);
      });
}

/// Sends every buffered request (issued within the current event) as one
/// frame to each replica.
void ClientProcess::flush_burst() {
  if (burst_.empty()) return;
  types::ClientRequestMsg msg;
  msg.ops = std::move(burst_);
  burst_.clear();
  // Serialize once; every replica's in-flight copy shares the same buffer.
  const Payload wire(
      types::make_envelope(types::MsgKind::kClientRequest, msg).serialize());
  for (ReplicaId r = 0; r < config_.quorum.n; ++r) {
    net_.send(node_id_, r, wire);
  }
}

void ClientProcess::on_message(sim::NodeId from, Payload payload) {
  (void)from;
  auto env = types::Envelope::parse(payload.view());
  if (!env.is_ok() || env.value().kind != types::MsgKind::kClientReply) return;
  auto reply = types::open_envelope<types::ClientReplyMsg>(env.value());
  if (!reply.is_ok()) return;
  const types::ClientReplyMsg& m = reply.value();
  if (m.client != config_.id) return;

  for (RequestId id : m.requests) {
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    auto& acks = it->second.acks_by_result[m.result];
    acks.insert(m.replica);
    if (acks.size() < config_.quorum.reply_quorum()) continue;

    latency_.record(sim_.now() - it->second.first_sent);
    completed_.record(sim_.now());
    if (config_.trace) {
      // The reply result carries the committing block's leading 8 hash
      // bytes — the same compact id replicas stamp on their trace events.
      std::uint64_t block_id = 0;
      const std::size_t n = std::min<std::size_t>(m.result.size(), 8);
      for (std::size_t i = 0; i < n; ++i) {
        block_id = (block_id << 8) | m.result[i];
      }
      config_.trace->record({.node = node_id_,
                             .type = obs::EventType::kReplyAccepted,
                             .view = m.view,
                             .height = m.height,
                             .block = block_id,
                             .a = id,
                             .b = config_.id});
    }
    it->second.retransmit.cancel();
    pending_.erase(it);
    payloads_.erase(id);
    issue_next();
  }
  flush_burst();
}

}  // namespace marlin::runtime
