#include "runtime/cluster.h"

#include <cassert>
#include <cstdio>

namespace marlin::runtime {

Cluster::Cluster(sim::Simulator& sim, ClusterConfig config)
    : config_(std::move(config)) {
  EngineBinding engine;
  engine.control = &sim;
  engine.node_sched = [&sim](sim::NodeId) { return &sim; };
  engine.setup_rng = &sim.rng();
  // Same fanout heuristic as the sharded root, on the single global queue
  // (capacity only; pop order and goldens are unaffected).
  const std::size_t nodes = 3 * config_.f + 1 + config_.clients.count;
  sim.reserve(nodes * 64 + 256, nodes * 4 + 64);
  build(engine);
}

Cluster::Cluster(sim::ShardedSimulator& engine, ClusterConfig config)
    : config_(std::move(config)) {
  // Conservative-window safety: no message may arrive sooner than one
  // lookahead after it was sent.
  assert(engine.lookahead() <= config_.net.one_way_delay);
  EngineBinding binding;
  binding.control = &engine.control();
  binding.node_sched = [&engine](sim::NodeId id) {
    return engine.node_scheduler(id);
  };
  binding.setup_rng = &engine.rng();
  if (engine.tracing()) {
    binding.node_trace = [&engine](sim::NodeId id) {
      return engine.node_trace(id);
    };
    // Control-lane records (fault injections) go to the engine's own
    // barrier-phase sink unless the caller supplied one.
    if (config_.trace == nullptr) config_.trace = engine.control_trace();
  }
  binding.per_sender_net_rng = true;
  // Pre-size shard heaps/slabs from the cluster's fanout: a leader
  // broadcast plus replies keeps O(n) messages in flight per protocol
  // phase, and clients add a window each. 64 events/node absorbs several
  // overlapping phases plus CPU/storage charging events.
  const std::uint32_t n = 3 * config_.f + 1;
  const std::size_t nodes = n + config_.clients.count;
  engine.reserve(/*events_per_shard=*/nodes * 64 / engine.shards() + 256,
                 /*timers_per_shard=*/nodes * 4 / engine.shards() + 64);
  build(binding);
}

Cluster::Cluster(const EngineBinding& engine, ClusterConfig config)
    : config_(std::move(config)) {
  build(engine);
}

void Cluster::build(const EngineBinding& engine) {
  control_ = engine.control;
  sched_of_ = engine.node_sched;
  const std::uint32_t n = 3 * config_.f + 1;
  // Fork order (network stream first, client streams later, in id order)
  // is part of the determinism contract the golden traces pin.
  net_ = std::make_unique<sim::Network>(*control_, config_.net,
                                        engine.setup_rng->fork());
  if (config_.trace) {
    config_.trace->set_clock(
        [sched = control_] { return sched->now(); });
    net_->set_trace(config_.trace);
  }

  Bytes seed_bytes(8);
  for (int i = 0; i < 8; ++i) {
    seed_bytes[i] = static_cast<std::uint8_t>(config_.seed >> (8 * i));
  }
  suite_ = crypto::make_fast_suite(n, seed_bytes);

  const ConsensusConfig& cons = config_.consensus;
  for (ReplicaId r = 0; r < n; ++r) {
    ReplicaProcessConfig rc;
    rc.replica.id = r;
    rc.replica.quorum = QuorumParams::for_f(config_.f);
    rc.replica.max_batch_ops = cons.max_batch_ops;
    rc.replica.pipelined = cons.pipelined;
    rc.replica.allow_empty_blocks = cons.allow_empty_blocks;
    rc.replica.disable_happy_path = cons.disable_happy_path;
    rc.replica.use_threshold_sigs = cons.use_threshold_sigs;
    rc.protocol = cons.protocol;
    rc.crypto_costs = config_.crypto_costs;
    rc.storage_costs = config_.storage_costs;
    rc.pacemaker = cons.pacemaker;
    rc.checkpoint_interval = cons.checkpoint_interval;
    rc.reply_size = cons.reply_size;
    rc.client_base = n;
    rc.trace = engine.node_trace ? engine.node_trace(r) : config_.trace;
    rc.disable_persistence = cons.disable_persistence;
    replicas_.push_back(
        std::make_unique<ReplicaProcess>(*sched_of_(r), *net_, *suite_, rc));
    replicas_.back()->set_count_authenticators(config_.count_authenticators);
    replicas_.back()->attach();
    if (engine.node_trace) net_->set_node_trace(r, engine.node_trace(r));
  }

  for (ClientId c = 0; c < config_.clients.count; ++c) {
    ClientProcessConfig cc;
    cc.id = c;
    cc.quorum = QuorumParams::for_f(config_.f);
    cc.window = config_.clients.window;
    cc.payload_size = config_.clients.payload_size;
    cc.retransmit_timeout = config_.clients.retransmit_timeout;
    cc.max_requests = config_.clients.max_requests;
    const sim::NodeId node = n + c;
    cc.trace = engine.node_trace ? engine.node_trace(node) : config_.trace;
    clients_.push_back(std::make_unique<ClientProcess>(
        *sched_of_(node), *net_, cc, engine.setup_rng->fork()));
    clients_.back()->attach();
    if (engine.node_trace) net_->set_node_trace(node, engine.node_trace(node));
  }

  if (engine.per_sender_net_rng) net_->split_rng_per_sender();

  faults::FaultHooks hooks;
  hooks.current_leader = [this] { return current_leader(); };
  hooks.max_view = [this] { return max_view(); };
  hooks.set_byzantine = [this](ReplicaId r, faults::ByzantineMode m) {
    set_byzantine(r, m);
  };
  hooks.restart_replica = [this](ReplicaId r, bool wipe) {
    return restart_replica(r, wipe);
  };
  faults_ = std::make_unique<faults::FaultController>(
      *control_, *net_, config_.faults, std::move(hooks), n, config_.trace);
}

void Cluster::start() {
  faults_->arm();
  for (auto& r : replicas_) r->start();
  // Clients begin shortly after the replicas have entered view 1, with
  // staggered starts: synchronized closed-loop clients otherwise refill in
  // lockstep "generations" that quantize throughput measurements. Each
  // start is posted on the client's home scheduler so it runs on the
  // client's shard (the global queue, when there is only one).
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    ClientProcess* client = clients_[c].get();
    sched_of_(n() + static_cast<sim::NodeId>(c))
        ->post(Duration::millis(5) +
                   Duration::millis(41) * static_cast<std::int64_t>(c),
               [client] { client->start(); });
  }
}

Status Cluster::restart_replica(ReplicaId i, bool wipe) {
  Status s = replicas_[i]->restart(wipe);
  // Reconnect only on success: a replica that cannot recover its store
  // stays crash-stopped instead of rejoining with partial state.
  if (s.is_ok()) net_->set_node_down(i, false);
  return s;
}

ReplicaId Cluster::current_leader() const {
  return static_cast<ReplicaId>(max_view() % n());
}

ViewNumber Cluster::max_view() const {
  ViewNumber v = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (net_->is_down(static_cast<sim::NodeId>(i))) continue;
    v = std::max(v, replicas_[i]->current_view());
  }
  return v;
}

void Cluster::set_measurement_window(TimePoint start, TimePoint end) {
  for (auto& c : clients_) c->completed().set_window(start, end);
  for (auto& r : replicas_) r->committed_ops().set_window(start, end);
}

double Cluster::client_throughput() const {
  double total = 0;
  for (const auto& c : clients_) total += c->completed().rate_per_second();
  return total;
}

double Cluster::latency_ms(double percentile) const {
  LatencyHistogram merged;
  for (const auto& c : clients_) merged.merge_from(c->latency());
  return merged.percentile(percentile).as_millis_f();
}

double Cluster::mean_latency_ms() const {
  LatencyHistogram merged;
  for (const auto& c : clients_) merged.merge_from(c->latency());
  return merged.mean().as_millis_f();
}

std::uint64_t Cluster::total_completed() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->completed().in_window();
  return total;
}

void Cluster::export_metrics(obs::MetricsRegistry& out) const {
  char label[32];
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    const obs::MetricsRegistry& m = replicas_[r]->metrics();
    // Cluster totals (counters add, histograms pool, gauges keep the max).
    out.merge_from(m);
    // Gauges are meaningless summed across replicas; re-export them with a
    // per-replica label so snapshots keep the distinct values.
    std::snprintf(label, sizeof label, "replica=%zu", r);
    for (const auto& [key, value] : m.gauges()) {
      out.gauge(key.name, label) = value;
    }
    out.counter("replica.authenticators_sent", label) =
        replicas_[r]->traffic().authenticators_sent;
  }
  for (const auto& c : clients_) {
    out.latency("client.latency").merge_from(c->latency());
  }
  net_->export_metrics(out);
}

bool Cluster::any_safety_violation() const {
  for (const auto& r : replicas_) {
    if (r->protocol().safety_violated()) return true;
  }
  return false;
}

bool Cluster::committed_heights_consistent() const {
  // For every pair of live replicas, the one with the lower committed
  // height must have its committed hash on the other's chain.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (net_->is_down(static_cast<sim::NodeId>(i))) continue;
    for (std::size_t j = i + 1; j < replicas_.size(); ++j) {
      if (net_->is_down(static_cast<sim::NodeId>(j))) continue;
      const auto& a = replicas_[i]->protocol();
      const auto& b = replicas_[j]->protocol();
      const auto& lo = a.committed_height() <= b.committed_height() ? a : b;
      const auto& hi = a.committed_height() <= b.committed_height() ? b : a;
      if (lo.committed_height() == 0) continue;
      if (!hi.store().extends(hi.committed_hash(), lo.committed_hash())) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace marlin::runtime
