// Closed-loop BFT client: keeps `window` requests outstanding, broadcasts
// each request to every replica, accepts a result once f+1 matching replies
// arrive (paper §III), records end-to-end latency, and retransmits on
// timeout (covers leader failure / dropped batches).
#pragma once

#include <map>
#include <set>

#include "common/histogram.h"
#include "common/ids.h"
#include "obs/trace.h"
#include "simnet/network.h"
#include "types/messages.h"

namespace marlin::runtime {

/// Per-process client wiring (one instance per client). The cluster-level
/// knobs shared by all clients live in runtime::ClientConfig (cluster.h).
struct ClientProcessConfig {
  ClientId id = 0;
  QuorumParams quorum;
  /// Outstanding requests kept in flight (closed loop).
  std::uint32_t window = 1;
  /// Request payload size in bytes (0 = the paper's no-op mode).
  std::size_t payload_size = 150;
  Duration retransmit_timeout = Duration::seconds(4);
  /// Stop issuing new requests after this many (0 = unlimited).
  std::uint64_t max_requests = 0;
  /// Records kClientSubmit / kReplyAccepted when set (non-owning).
  obs::TraceSink* trace = nullptr;
};

class ClientProcess final : public sim::NetworkNode {
 public:
  /// `sched` is the client's home scheduler; `rng` jitters the paced
  /// request stream. The caller owns the rng fork order — Cluster forks
  /// client streams in id order, which the golden traces pin.
  ClientProcess(marlin::Scheduler& sched, sim::Network& net,
                ClientProcessConfig config, Rng rng);

  sim::NodeId attach();
  void start();

  void on_message(sim::NodeId from, Payload payload) override;

  WindowedCounter& completed() { return completed_; }
  LatencyHistogram& latency() { return latency_; }
  std::uint64_t issued() const { return next_request_ - 1; }
  std::uint64_t in_flight() const { return pending_.size(); }
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct Pending {
    TimePoint first_sent;
    std::map<Bytes, std::set<ReplicaId>> acks_by_result;
    sim::TimerHandle retransmit;
  };

  void issue_next();
  void arm_retransmit(RequestId id);
  void flush_burst();
  Bytes payload_for(RequestId id);

  marlin::Scheduler& sim_;
  sim::Network& net_;
  ClientProcessConfig config_;
  sim::NodeId node_id_ = 0;
  RequestId next_request_ = 1;
  std::map<RequestId, Pending> pending_;
  std::map<RequestId, Bytes> payloads_;  // for retransmission
  std::vector<types::Operation> burst_;  // requests awaiting one flush
  WindowedCounter completed_;
  LatencyHistogram latency_;
  std::uint64_t retransmissions_ = 0;
  Rng rng_;
};

}  // namespace marlin::runtime
