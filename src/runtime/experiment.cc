#include "runtime/experiment.h"

#include <algorithm>

namespace marlin::runtime {

namespace {

/// Earliest crash action in the plan (what measure_view_change anchors on).
const faults::FaultAction* earliest_crash(const faults::FaultPlan& plan) {
  const faults::FaultAction* best = nullptr;
  for (const faults::FaultAction& a : plan.actions) {
    if (a.kind != faults::FaultKind::kCrash &&
        a.kind != faults::FaultKind::kCrashLeader) {
      continue;
    }
    if (!best || a.at < best->at) best = &a;
  }
  return best;
}

/// Replicas that must keep committing: up, and not wire-Byzantine.
std::vector<ReplicaId> correct_replicas(Cluster& cluster) {
  std::vector<ReplicaId> out;
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    if (cluster.network().is_down(r)) continue;
    if (cluster.replica(r).byzantine_mode() != faults::ByzantineMode::kHonest) {
      continue;
    }
    out.push_back(r);
  }
  return out;
}

void measure_view_change(sim::Simulator& sim, Cluster& cluster,
                         const ExperimentOptions& opt,
                         ViewChangeReport& out) {
  const faults::FaultAction* crash = earliest_crash(cluster.config().faults);
  if (!crash) return;  // nothing to anchor on

  // Run up to (and through) the crash; the controller records the resolved
  // target and the view it fired in.
  sim.run_until(TimePoint::origin() + crash->at);
  const faults::ExecutedAction* fired = cluster.faults().first_crash();
  if (!fired) return;
  const ReplicaId old_leader = fired->target;
  const ViewNumber old_view = fired->view;

  // Run until every correct replica commits in a higher view (or deadline).
  const TimePoint deadline = sim.now() + opt.view_change_deadline;
  while (sim.now() < deadline) {
    sim.run_for(Duration::millis(50));
    bool all_committed = true;
    for (ReplicaId r : correct_replicas(cluster)) {
      const auto& rp = cluster.replica(r);
      if (rp.protocol().current_view() <= old_view ||
          !rp.committed_in_current_view()) {
        all_committed = false;
        break;
      }
    }
    if (all_committed) break;
  }

  double total_ms = 0;
  std::uint32_t counted = 0;
  bool resolved = true;
  for (ReplicaId r : correct_replicas(cluster)) {
    const auto& rp = cluster.replica(r);
    if (!rp.committed_in_current_view() ||
        rp.protocol().current_view() <= old_view) {
      resolved = false;
      continue;
    }
    total_ms +=
        (rp.first_commit_in_view() - rp.last_view_entry()).as_millis_f();
    ++counted;
  }
  out.resolved = resolved && counted > 0;
  out.mean_latency_ms = counted ? total_ms / counted : 0;
  out.new_view = cluster.max_view();
  const ReplicaId new_leader = cluster.current_leader();
  if (new_leader != old_leader) {
    auto& lp = cluster.replica(new_leader);
    if (lp.committed_in_current_view()) {
      out.leader_latency_ms =
          (lp.first_commit_in_view() - lp.last_view_entry()).as_millis_f();
    }
    if (auto* m = lp.marlin()) {
      out.unhappy_path = m->unhappy_view_changes() > 0;
    }
  }
}

void check_liveness(sim::Simulator& sim, Cluster& cluster,
                    const ExperimentOptions& opt, LivenessReport& out) {
  out.checked = true;

  // Run to the quiesce point: every transient disruption over, only
  // persistent faults (≤ f crashes / Byzantine modes) remain.
  const TimePoint quiesce = cluster.faults().quiesce_time();
  if (sim.now() < quiesce) sim.run_until(quiesce);

  const std::vector<ReplicaId> correct = correct_replicas(cluster);
  std::vector<Height> base(cluster.n(), 0);
  for (ReplicaId r : correct) {
    base[r] = cluster.replica(r).protocol().committed_height();
    out.commits_at_quiesce += base[r];
  }

  // Liveness resumed iff every correct replica commits a new block in the
  // fault-free tail (recovering replicas catch up via fetch).
  const TimePoint deadline = quiesce + opt.liveness_deadline;
  while (sim.now() < deadline) {
    sim.run_for(Duration::millis(100));
    bool all_advanced = true;
    for (ReplicaId r : correct) {
      if (cluster.replica(r).protocol().committed_height() <= base[r]) {
        all_advanced = false;
        break;
      }
    }
    if (all_advanced) {
      out.progressed = true;
      break;
    }
  }
  for (ReplicaId r : correct) {
    out.commits_at_end += cluster.replica(r).protocol().committed_height();
  }
}

}  // namespace

ExperimentReport run_experiment(const ExperimentOptions& options) {
  sim::Simulator sim(options.cluster.seed);
  Cluster cluster(sim, options.cluster);

  const TimePoint w_start = TimePoint::origin() + options.warmup;
  const TimePoint w_end = w_start + options.measure;
  cluster.set_measurement_window(w_start, w_end);
  cluster.start();

  ExperimentReport rep;
  if (options.measure_view_change) {
    measure_view_change(sim, cluster, options, rep.view_change);
  }
  if (options.check_liveness) {
    check_liveness(sim, cluster, options, rep.liveness);
  }
  const TimePoint run_to = w_end + options.drain;
  if (sim.now() < run_to) sim.run_until(run_to);

  rep.throughput_ops = cluster.client_throughput();
  rep.mean_latency_ms = cluster.mean_latency_ms();
  rep.p50_latency_ms = cluster.latency_ms(50);
  rep.p95_latency_ms = cluster.latency_ms(95);
  rep.total_completed = cluster.total_completed();
  rep.safety_ok = !cluster.any_safety_violation();
  rep.consistent = cluster.committed_heights_consistent();
  rep.final_view = cluster.max_view();
  rep.fault_log = cluster.faults().log();
  if (options.metrics) cluster.export_metrics(*options.metrics);
  return rep;
}

ExperimentOptions throughput_options(ClusterConfig cluster, Duration warmup,
                                     Duration measure) {
  ExperimentOptions opt;
  opt.cluster = std::move(cluster);
  opt.warmup = warmup;
  opt.measure = measure;
  opt.drain = Duration::seconds(2);
  return opt;
}

ExperimentOptions view_change_options(ClusterConfig cluster,
                                      bool force_unhappy, Duration crash_at) {
  ExperimentOptions opt;
  opt.cluster = std::move(cluster);
  opt.cluster.consensus.disable_happy_path = force_unhappy;
  // A short, predictable timeout: the paper measures from VC start (timer
  // firing), so the timeout itself is excluded either way.
  opt.cluster.consensus.pacemaker.base_timeout = Duration::millis(600);
  opt.cluster.consensus.allow_empty_blocks = false;
  opt.cluster.faults.actions.push_back(
      faults::FaultAction::crash_leader(crash_at));
  opt.measure_view_change = true;
  // The pre-crash traffic is the measurement window; drain is unused (the
  // view-change poll runs the clock well past it).
  opt.warmup = Duration::millis(500);
  opt.measure = crash_at - Duration::millis(500);
  opt.drain = Duration::zero();
  return opt;
}

}  // namespace marlin::runtime
