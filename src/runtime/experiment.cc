#include "runtime/experiment.h"

namespace marlin::runtime {

ThroughputResult run_throughput_experiment(ClusterConfig config,
                                           Duration warmup, Duration measure,
                                           obs::MetricsRegistry* metrics) {
  sim::Simulator sim(config.seed);
  Cluster cluster(sim, config);

  const TimePoint w_start = TimePoint::origin() + warmup;
  const TimePoint w_end = w_start + measure;
  cluster.set_measurement_window(w_start, w_end);

  cluster.start();
  sim.run_until(w_end + Duration::seconds(2));

  ThroughputResult res;
  res.throughput_ops = cluster.client_throughput();
  res.mean_latency_ms = cluster.mean_latency_ms();
  res.p50_latency_ms = cluster.latency_ms(50);
  res.p95_latency_ms = cluster.latency_ms(95);
  res.total_completed = cluster.total_completed();
  res.safety_ok = !cluster.any_safety_violation();
  res.consistent = cluster.committed_heights_consistent();
  res.final_view = cluster.max_view();
  if (metrics) cluster.export_metrics(*metrics);
  return res;
}

ViewChangeResult run_view_change_experiment(ClusterConfig config,
                                            bool force_unhappy,
                                            obs::MetricsRegistry* metrics) {
  config.disable_happy_path = force_unhappy;
  // A short, predictable timeout: the paper measures from VC start (timer
  // firing), so the timeout itself is excluded either way.
  config.pacemaker.base_timeout = Duration::millis(600);
  config.allow_empty_blocks = false;

  sim::Simulator sim(config.seed);
  Cluster cluster(sim, config);
  cluster.start();

  // Let a few blocks commit in view 1.
  sim.run_for(Duration::seconds(3));

  const ReplicaId old_leader = cluster.current_leader();
  const ViewNumber old_view = cluster.max_view();
  cluster.crash_replica(old_leader);

  // Run until every correct replica commits in a higher view (or timeout).
  const TimePoint deadline = sim.now() + Duration::seconds(30);
  ViewChangeResult res;
  while (sim.now() < deadline) {
    sim.run_for(Duration::millis(50));
    bool all_committed = true;
    for (ReplicaId r = 0; r < cluster.n(); ++r) {
      if (r == old_leader) continue;
      const auto& rp = cluster.replica(r);
      if (rp.protocol().current_view() <= old_view ||
          !rp.committed_in_current_view()) {
        all_committed = false;
        break;
      }
    }
    if (all_committed) break;
  }

  double total_ms = 0;
  std::uint32_t counted = 0;
  bool resolved = true;
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    if (r == old_leader) continue;
    auto& rp = cluster.replica(r);
    if (!rp.committed_in_current_view() ||
        rp.protocol().current_view() <= old_view) {
      resolved = false;
      continue;
    }
    const double ms =
        (rp.first_commit_in_view() - rp.last_view_entry()).as_millis_f();
    total_ms += ms;
    ++counted;
  }
  res.resolved = resolved && counted > 0;
  res.mean_latency_ms = counted ? total_ms / counted : 0;
  res.new_view = cluster.max_view();
  const ReplicaId new_leader = cluster.current_leader();
  if (new_leader != old_leader) {
    auto& lp = cluster.replica(new_leader);
    if (lp.committed_in_current_view()) {
      res.leader_latency_ms =
          (lp.first_commit_in_view() - lp.last_view_entry()).as_millis_f();
    }
    if (auto* m = lp.marlin()) {
      res.unhappy_path = m->unhappy_view_changes() > 0;
    }
  }
  res.safety_ok = !cluster.any_safety_violation() &&
                  cluster.committed_heights_consistent();
  if (metrics) cluster.export_metrics(*metrics);
  return res;
}

}  // namespace marlin::runtime
