// Byzantine-pressure demo: a leader whose COMMIT notices are selectively
// suppressed (the network-level equivalent of a leader equivocating about
// QC dissemination, the paper's Fig. 2 "hide the latest QC" behaviour),
// followed by its crash. Marlin's view change — virtual blocks and all —
// must recover without ever violating safety.
//
// The faults are declared up front as a FaultPlan (faults/fault_plan.h)
// and executed by the cluster's FaultController; the same scenario can be
// replayed from JSON via `marlin_sim --faults <plan.json>`.
//
//   ./build/examples/byzantine_leader
#include <cstdio>

#include "runtime/cluster.h"

using namespace marlin;
using namespace marlin::runtime;

int main() {
  std::printf("Byzantine-leader pressure demo (Marlin, f=1, n=4)\n\n");

  ClusterConfig cfg;
  cfg.f = 1;
  cfg.consensus.protocol = ProtocolKind::kMarlin;
  cfg.consensus.disable_happy_path = true;  // make the view change do real work
  cfg.clients.count = 4;
  cfg.clients.window = 8;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(600);

  // View 1's leader is replica 1 (leader = view mod n). The plan: at t=2s
  // it turns "half-silent" — its messages reach only replica 0 — and at
  // t=4s the silence heals and whoever leads then crashes for good.
  const ReplicaId leader = 1;
  cfg.faults.name = "qc-hiding-leader-then-crash";
  cfg.faults.actions = {
      faults::FaultAction::silence(Duration::seconds(2), leader, {0}),
      faults::FaultAction::heal(Duration::seconds(4)),
      faults::FaultAction::crash(Duration::seconds(4), leader),
  };
  std::printf("fault plan:\n%s\n", cfg.faults.to_json().c_str());

  sim::Simulator sim(99);
  Cluster cluster(sim, cfg);
  cluster.start();

  sim.run_for(Duration::seconds(2));
  std::printf("t=2.0s  view 1 leader is replica %u; committed height %llu\n",
              cluster.current_leader(),
              static_cast<unsigned long long>(
                  cluster.replica(0).protocol().committed_height()));
  std::printf("t=2.0s  leader %u now reaches ONLY replica 0 "
              "(QC-hiding behaviour)\n", leader);

  // Phase 1: silence active. Replicas 2 and 3 stall; replica 0 may advance
  // further.
  sim.run_for(Duration::seconds(2));
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    std::printf("        replica %u: height %llu, locked view %llu\n", r,
                static_cast<unsigned long long>(
                    cluster.replica(r).protocol().committed_height()),
                static_cast<unsigned long long>(
                    cluster.replica(r).marlin()->locked_qc().view));
  }

  // Phase 2: the leader died at t=4s. The remaining replicas hold
  // different locks/highQCs — the interesting view-change snapshots.
  std::printf("t=4.0s  leader %u crashed; survivors run the view change\n",
              leader);
  sim.run_for(Duration::seconds(8));

  const ReplicaId new_leader = cluster.current_leader();
  std::printf("t=12s   view %llu, new leader replica %u (%s path)\n",
              static_cast<unsigned long long>(cluster.max_view()), new_leader,
              cluster.replica(new_leader).marlin()->unhappy_view_changes() > 0
                  ? "unhappy"
                  : "happy");
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    if (cluster.network().is_down(r)) continue;
    std::printf("        replica %u: committed height %llu\n", r,
                static_cast<unsigned long long>(
                    cluster.replica(r).protocol().committed_height()));
  }

  const bool safe = !cluster.any_safety_violation() &&
                    cluster.committed_heights_consistent();
  std::printf("\nsafety held throughout: %s\n", safe ? "yes" : "NO — BUG");
  return safe ? 0 : 1;
}
