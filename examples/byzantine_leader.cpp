// Byzantine-pressure demo: a leader whose COMMIT notices are selectively
// suppressed (the network-level equivalent of a leader equivocating about
// QC dissemination, the paper's Fig. 2 "hide the latest QC" behaviour),
// followed by its crash. Marlin's view change — virtual blocks and all —
// must recover without ever violating safety.
//
//   ./build/examples/byzantine_leader
#include <cstdio>

#include "runtime/cluster.h"

using namespace marlin;
using namespace marlin::runtime;

int main() {
  std::printf("Byzantine-leader pressure demo (Marlin, f=1, n=4)\n\n");

  sim::Simulator sim(99);
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.protocol = ProtocolKind::kMarlin;
  cfg.disable_happy_path = true;  // make the view change do real work
  cfg.num_clients = 4;
  cfg.client_window = 8;
  cfg.pacemaker.base_timeout = Duration::millis(600);
  Cluster cluster(sim, cfg);
  cluster.start();

  sim.run_for(Duration::seconds(2));
  const ReplicaId leader = cluster.current_leader();
  std::printf("t=2.0s  view 1 leader is replica %u; committed height %llu\n",
              leader,
              static_cast<unsigned long long>(
                  cluster.replica(0).protocol().committed_height()));

  // Phase 1: the leader turns "half-silent": its messages reach only
  // replica 0. Replicas 2 and 3 stall; replica 0 may advance further.
  std::printf("t=2.0s  leader %u now reaches ONLY replica 0 "
              "(QC-hiding behaviour)\n", leader);
  cluster.network().set_filter([leader](sim::NodeId from, sim::NodeId to) {
    if (from == leader) return to == 0u || to == leader;
    return true;
  });
  sim.run_for(Duration::seconds(2));
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    std::printf("        replica %u: height %llu, locked view %llu\n", r,
                static_cast<unsigned long long>(
                    cluster.replica(r).protocol().committed_height()),
                static_cast<unsigned long long>(
                    cluster.replica(r).marlin()->locked_qc().view));
  }

  // Phase 2: the leader dies entirely. The remaining replicas hold
  // different locks/highQCs — the interesting view-change snapshots.
  std::printf("t=4.0s  leader %u crashes; survivors run the view change\n",
              leader);
  cluster.network().set_filter(nullptr);
  cluster.crash_replica(leader);
  sim.run_for(Duration::seconds(8));

  const ReplicaId new_leader = cluster.current_leader();
  std::printf("t=12s   view %llu, new leader replica %u (%s path)\n",
              static_cast<unsigned long long>(cluster.max_view()), new_leader,
              cluster.replica(new_leader).marlin()->unhappy_view_changes() > 0
                  ? "unhappy"
                  : "happy");
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    if (cluster.network().is_down(r)) continue;
    std::printf("        replica %u: committed height %llu\n", r,
                static_cast<unsigned long long>(
                    cluster.replica(r).protocol().committed_height()));
  }

  const bool safe = !cluster.any_safety_violation() &&
                    cluster.committed_heights_consistent();
  std::printf("\nsafety held throughout: %s\n", safe ? "yes" : "NO — BUG");
  return safe ? 0 : 1;
}
