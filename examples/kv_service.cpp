// A replicated key-value service built directly on the consensus library —
// the way a downstream system would embed Marlin.
//
// Four MarlinReplica state machines run in one process, wired through a
// tiny in-memory bus (an implementation of consensus::ProtocolEnv). Each
// replica applies committed operations to its own storage::KVStore (the
// repo's LevelDB-class engine), so at the end all four stores hold
// identical data — state machine replication in ~200 lines.
//
//   ./build/examples/kv_service
#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include "consensus/marlin.h"
#include "storage/kvstore.h"

using namespace marlin;

namespace {

// ---------------------------------------------------------------------------
// Application operations: PUT <key> <value> / DEL <key>, serialized into
// the opaque payload consensus carries.
// ---------------------------------------------------------------------------

types::Operation make_put(ClientId client, RequestId id,
                          const std::string& key, const std::string& value) {
  Writer w;
  w.u8('P');
  w.str(key);
  w.str(value);
  return types::Operation{client, id, std::move(w).take()};
}

types::Operation make_del(ClientId client, RequestId id,
                          const std::string& key) {
  Writer w;
  w.u8('D');
  w.str(key);
  return types::Operation{client, id, std::move(w).take()};
}

void apply(storage::KVStore& store, const types::Operation& op) {
  Reader r(op.payload);
  std::uint8_t tag = 0;
  std::string key, value;
  if (!r.u8(tag).is_ok() || !r.str(key).is_ok()) return;
  if (tag == 'P' && r.str(value).is_ok()) {
    (void)store.put(key, to_bytes(value));
  } else if (tag == 'D') {
    (void)store.del(key);
  }
}

// ---------------------------------------------------------------------------
// In-process bus: the ProtocolEnv a replica needs, backed by one shared
// FIFO queue. (The simulation runtime in src/runtime does the same job
// with latency/bandwidth/CPU models; this is the minimal embedding.)
// ---------------------------------------------------------------------------

struct Node;

struct Bus {
  struct Msg {
    ReplicaId from, to;
    types::Envelope env;
  };
  std::deque<Msg> queue;
  std::vector<Node*> nodes;

  void pump();
};

struct Node : consensus::ProtocolEnv {
  Bus& bus;
  ReplicaId id;
  std::unique_ptr<storage::Env> db_env = storage::make_mem_env();
  std::unique_ptr<storage::KVStore> db;
  std::unique_ptr<consensus::MarlinReplica> replica;
  std::uint64_t applied = 0;

  Node(Bus& bus, ReplicaId id, const crypto::SignatureSuite& suite)
      : bus(bus), id(id) {
    db = storage::KVStore::open(*db_env).take();
    consensus::ReplicaConfig cfg;
    cfg.id = id;
    cfg.quorum = QuorumParams::for_f(1);
    replica = std::make_unique<consensus::MarlinReplica>(cfg, suite, *this);
  }

  // ProtocolEnv: route messages onto the bus, apply commits to the store.
  void send(ReplicaId to, const types::Envelope& env) override {
    bus.queue.push_back({id, to, env});
  }
  void broadcast(const types::Envelope& env) override {
    for (ReplicaId r = 0; r < 4; ++r) bus.queue.push_back({id, r, env});
  }
  void deliver(const types::Block& block,
               const std::vector<types::Operation>& executable) override {
    for (const types::Operation& op : executable) {
      apply(*db, op);
      ++applied;
    }
    (void)block;
  }
  void entered_view(ViewNumber) override {}
  void progressed() override {}
};

void Bus::pump() {
  while (!queue.empty()) {
    Msg m = std::move(queue.front());
    queue.pop_front();
    nodes[m.to]->replica->handle_message(m.from, m.env);
  }
}

std::string get_or(storage::KVStore& store, const std::string& key,
                   const std::string& fallback) {
  auto v = store.get(key);
  if (!v.is_ok()) return fallback;
  return std::string(v.value().begin(), v.value().end());
}

}  // namespace

int main() {
  auto suite = crypto::make_ecdsa_suite(4, to_bytes("kv-service-demo"));
  Bus bus;
  std::vector<std::unique_ptr<Node>> nodes;
  for (ReplicaId r = 0; r < 4; ++r) {
    nodes.push_back(std::make_unique<Node>(bus, r, *suite));
    bus.nodes.push_back(nodes.back().get());
  }
  for (auto& n : nodes) n->replica->start();
  bus.pump();

  // Drive the service: a series of writes agreed through consensus.
  RequestId next = 1;
  auto submit = [&](types::Operation op) {
    for (auto& n : nodes) n->replica->submit(op);
    bus.pump();  // run consensus to completion for this batch
  };

  std::printf("replicated KV service over Marlin (n=4, real ECDSA)\n\n");
  submit(make_put(1, next++, "user:alice", "balance=100"));
  submit(make_put(1, next++, "user:bob", "balance=40"));
  submit(make_put(1, next++, "user:alice", "balance=75"));  // overwrite
  submit(make_put(1, next++, "user:carol", "balance=10"));
  submit(make_del(1, next++, "user:carol"));

  // Every replica's store must now be identical.
  for (ReplicaId r = 0; r < 4; ++r) {
    auto& n = *nodes[r];
    std::printf("replica %u (height %llu, %llu ops applied):\n", r,
                static_cast<unsigned long long>(
                    n.replica->committed_height()),
                static_cast<unsigned long long>(n.applied));
    std::printf("    user:alice = %s\n",
                get_or(*n.db, "user:alice", "<missing>").c_str());
    std::printf("    user:bob   = %s\n",
                get_or(*n.db, "user:bob", "<missing>").c_str());
    std::printf("    user:carol = %s (deleted)\n",
                get_or(*n.db, "user:carol", "<missing>").c_str());
  }

  // Cross-check.
  bool identical = true;
  for (ReplicaId r = 1; r < 4; ++r) {
    for (const char* key : {"user:alice", "user:bob", "user:carol"}) {
      if (get_or(*nodes[r]->db, key, "<missing>") !=
          get_or(*nodes[0]->db, key, "<missing>")) {
        identical = false;
      }
    }
  }
  std::printf("\nall replicas identical: %s\n", identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
