// View-change walkthrough on the simulated testbed: commit traffic in
// view 1, crash the leader, and narrate the recovery — once through
// Marlin's 2-phase happy path and once with the happy path disabled so the
// full PRE-PREPARE machinery (paper §V-C) runs.
//
//   ./build/examples/view_change_demo
#include <cstdio>

#include "runtime/cluster.h"

using namespace marlin;
using namespace marlin::runtime;

namespace {

void run_once(bool force_unhappy) {
  std::printf("---- %s path "
              "-------------------------------------------------\n",
              force_unhappy ? "forced UNHAPPY (3-phase VC)"
                            : "HAPPY (2-phase VC)");

  sim::Simulator sim(7);
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.consensus.protocol = ProtocolKind::kMarlin;
  cfg.consensus.disable_happy_path = force_unhappy;
  cfg.clients.count = 4;
  cfg.clients.window = 8;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(600);
  Cluster cluster(sim, cfg);
  cluster.start();

  sim.run_for(Duration::seconds(3));
  const ReplicaId old_leader = cluster.current_leader();
  const Height before = cluster.replica(0).protocol().committed_height();
  std::printf("t=3.0s   view %llu, leader is replica %u, committed height "
              "%llu\n",
              static_cast<unsigned long long>(cluster.max_view()), old_leader,
              static_cast<unsigned long long>(before));

  cluster.crash_replica(old_leader);
  std::printf("t=3.0s   CRASH replica %u (the leader)\n", old_leader);

  // Watch until every correct replica commits in the new view.
  for (int tick = 0; tick < 200; ++tick) {
    sim.run_for(Duration::millis(100));
    bool done = true;
    for (ReplicaId r = 0; r < cluster.n(); ++r) {
      if (r == old_leader) continue;
      if (cluster.replica(r).protocol().current_view() == 1 ||
          !cluster.replica(r).committed_in_current_view()) {
        done = false;
      }
    }
    if (done) break;
  }

  const ReplicaId new_leader = cluster.current_leader();
  auto& lp = cluster.replica(new_leader);
  std::printf("t=%.1fs   view %llu established, new leader replica %u\n",
              sim.now().as_seconds_f(),
              static_cast<unsigned long long>(cluster.max_view()), new_leader);
  if (auto* m = lp.marlin()) {
    std::printf("         new leader resolved the view change via the %s "
                "path\n",
                m->unhappy_view_changes() > 0 ? "pre-prepare (unhappy)"
                                              : "combined-prepareQC (happy)");
  }
  const double vc_ms =
      (lp.first_commit_in_view() - lp.last_view_entry()).as_millis_f();
  std::printf("         view-change latency at the leader: %.1f ms\n", vc_ms);

  sim.run_for(Duration::seconds(3));
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    if (r == old_leader) continue;
    std::printf("         replica %u: committed height %llu\n", r,
                static_cast<unsigned long long>(
                    cluster.replica(r).protocol().committed_height()));
  }
  std::printf("         safety: %s, chains consistent: %s\n\n",
              cluster.any_safety_violation() ? "VIOLATED" : "ok",
              cluster.committed_heights_consistent() ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf("Marlin view-change demo: leader crash and recovery\n\n");
  run_once(/*force_unhappy=*/false);
  run_once(/*force_unhappy=*/true);
  std::printf("Note: the happy path combines the VIEW-CHANGE partial\n"
              "signatures straight into a prepareQC (2 phases); the unhappy\n"
              "path runs the PRE-PREPARE phase first (3 phases), which is\n"
              "what HotStuff-level view-change latency looks like.\n");
  return 0;
}
