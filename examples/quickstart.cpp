// Quickstart: spin up a 4-replica Marlin cluster on the simulated network,
// submit a handful of client operations, and watch them commit.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This is the smallest end-to-end use of the public API: Simulator +
// Cluster from marlin::runtime drive everything (replicas, clients,
// pacemakers, the storage engine, and the cost-model instrumentation).
#include <cstdio>

#include "runtime/cluster.h"

int main() {
  using namespace marlin;
  using namespace marlin::runtime;

  // 1. A deterministic simulation: same seed → same run, always.
  sim::Simulator sim(/*seed=*/42);

  // 2. Describe the deployment: f = 1 → n = 4 replicas, Marlin protocol,
  //    four closed-loop clients issuing 150-byte requests.
  ClusterConfig config;
  config.f = 1;
  config.consensus.protocol = ProtocolKind::kMarlin;
  config.clients.count = 4;
  config.clients.window = 4;       // 4 outstanding requests per client
  config.clients.payload_size = 150;
  config.clients.max_requests = 25;  // each client stops after 25 ops

  Cluster cluster(sim, config);
  cluster.start();

  // 3. Run ten simulated seconds.
  sim.run_for(Duration::seconds(10));

  // 4. Inspect the outcome.
  std::printf("Marlin quickstart (f=%u, n=%u)\n", cluster.f(), cluster.n());
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    const auto& p = cluster.replica(r).protocol();
    std::printf("  replica %u: view=%llu, committed height=%llu "
                "(%llu blocks)\n",
                r, static_cast<unsigned long long>(p.current_view()),
                static_cast<unsigned long long>(p.committed_height()),
                static_cast<unsigned long long>(p.committed_blocks()));
  }
  std::uint64_t completed = 0;
  double worst_ms = 0;
  for (ClientId c = 0; c < config.clients.count; ++c) {
    completed += cluster.client(c).latency().count();
    worst_ms = std::max(worst_ms,
                        cluster.client(c).latency().max().as_millis_f());
  }
  std::printf("  clients: %llu operations completed (f+1 matching replies), "
              "worst latency %.1f ms\n",
              static_cast<unsigned long long>(completed), worst_ms);
  std::printf("  safety: %s, committed chains consistent: %s\n",
              cluster.any_safety_violation() ? "VIOLATED" : "ok",
              cluster.committed_heights_consistent() ? "yes" : "NO");
  return cluster.any_safety_violation() ? 1 : 0;
}
