// Ablations for the design choices DESIGN.md calls out:
//
//  A. Pipelining (chained mode) on/off — demonstrates WHY the figure
//     benches run the one-instance-at-a-time mode: with full chaining both
//     protocols' block rates converge at saturation, hiding the phase-count
//     advantage the paper measures; without it the 2-vs-3-phase difference
//     shows directly.
//  B. Shadow blocks on/off — wire bytes of the view-change PRE-PREPARE
//     (Cases V1/V3 propose two blocks; sharing the op batch nearly halves
//     the payload, §IV-D).
//  C. Happy-path view change on/off — Marlin's 2-phase vs 3-phase view
//     change latency (the mechanism behind Fig. 10i).
//  D. Batch size — throughput/latency trade-off at a fixed load.
#include "bench_common.h"

#include "types/messages.h"

namespace {

using namespace marlin;
using namespace marlin::bench;

void ablation_pipelining() {
  print_header("Ablation A — pipelining (chained mode) vs one-at-a-time");
  std::printf("%-10s %-14s %-12s %-12s\n", "protocol", "mode", "tput ktx/s",
              "mean ms");
  double tput[2][2] = {};
  int pi = 0;
  for (bool pipelined : {false, true}) {
    int qi = 0;
    for (ProtocolKind protocol :
         {ProtocolKind::kMarlin, ProtocolKind::kHotStuff}) {
      ClusterConfig cfg = paper_config(1, protocol);
      cfg.consensus.pipelined = pipelined;
      cfg.clients.window = 32000 / cfg.clients.count;
      auto res = runtime::run_experiment(runtime::throughput_options(
          cfg, Duration::seconds(3), Duration::seconds(5)));
      tput[pi][qi] = res.throughput_ops / 1000.0;
      std::printf("%-10s %-14s %-12.2f %-12.1f\n", protocol_name(protocol),
                  pipelined ? "chained" : "one-at-a-time",
                  res.throughput_ops / 1000.0, res.mean_latency_ms);
      std::fflush(stdout);
      ++qi;
    }
    ++pi;
  }
  std::printf("-- marlin advantage: one-at-a-time %+.1f%%, chained %+.1f%%\n",
              (tput[0][0] / tput[0][1] - 1) * 100,
              (tput[1][0] / tput[1][1] - 1) * 100);
}

void ablation_shadow_blocks() {
  print_header("Ablation B — shadow blocks (shared op batch on the wire)");
  std::printf("%-12s %-16s %-16s %-10s\n", "batch ops", "shared (bytes)",
              "duplicated", "saving");
  for (std::size_t batch : {100u, 1000u, 8000u, 32000u}) {
    std::vector<types::Operation> ops;
    ops.reserve(batch);
    Rng rng(1);
    for (std::size_t i = 0; i < batch; ++i) {
      ops.push_back(types::Operation{1, i + 1, rng.next_bytes(150)});
    }
    types::Block b1;
    b1.view = 2;
    b1.height = 5;
    b1.ops = ops;
    types::Block b2 = b1;
    b2.height = 6;
    b2.virtual_block = true;
    b2.parent_link = types::Hash256{};

    types::ProposalMsg shared;
    shared.phase = types::Phase::kPrePrepare;
    shared.view = 2;
    shared.entries = {{b1, {}}, {b2, {}}};
    const std::size_t shared_size = shared.wire_size();

    // Without the optimisation the second block would carry its own copy.
    types::ProposalMsg single;
    single.phase = types::Phase::kPrePrepare;
    single.view = 2;
    single.entries = {{b1, {}}};
    const std::size_t dup_size =
        single.wire_size() * 2;  // two independent payload-bearing entries

    std::printf("%-12zu %-16zu %-16zu %.1f%%\n", batch, shared_size, dup_size,
                (1.0 - static_cast<double>(shared_size) / dup_size) * 100.0);
  }
}

void ablation_happy_path() {
  print_header("Ablation C — happy-path view change on/off (f = 1)");
  std::printf("%-24s %-14s\n", "view-change mode", "latency (ms)");
  for (bool force_unhappy : {false, true}) {
    ClusterConfig cfg = paper_config(1, ProtocolKind::kMarlin);
    cfg.clients.count = 8;
    cfg.clients.window = 16;
    cfg.consensus.max_batch_ops = 2000;
    auto res = runtime::run_experiment(
        runtime::view_change_options(cfg, force_unhappy));
    std::printf("%-24s %-14.1f %s\n",
                force_unhappy ? "pre-prepare (3-phase)" : "combined (2-phase)",
                res.view_change.mean_latency_ms,
                res.view_change.resolved ? "" : "(!! unresolved)");
  }
}

void ablation_batch_size() {
  print_header("Ablation D — batch size at fixed load (Marlin, f = 1)");
  std::printf("%-12s %-12s %-12s\n", "max batch", "tput ktx/s", "mean ms");
  for (std::size_t batch : {1000u, 4000u, 16000u, 32000u, 64000u}) {
    ClusterConfig cfg = paper_config(1, ProtocolKind::kMarlin);
    cfg.consensus.max_batch_ops = batch;
    cfg.clients.window = 32000 / cfg.clients.count;
    auto res = runtime::run_experiment(runtime::throughput_options(
        cfg, Duration::seconds(3), Duration::seconds(5)));
    std::printf("%-12zu %-12.2f %-12.1f\n", batch, res.throughput_ops / 1000.0,
                res.mean_latency_ms);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  ablation_pipelining();
  ablation_shadow_blocks();
  ablation_happy_path();
  ablation_batch_size();
  return 0;
}
