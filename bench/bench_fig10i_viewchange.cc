// Figure 10i: view-change latency (from a replica starting the view change
// to the first block committed in the new view) after crashing the leader,
// for f ∈ {1, 10}: Marlin happy path, Marlin forced-unhappy path, HotStuff.
//
// Paper reference: Marlin happy 123/229 ms vs HotStuff 182/384 ms at
// f = 1/10 (≈ 30–40 % lower); Marlin unhappy ≈ HotStuff. Expected
// reproduction: the same ordering — happy clearly below HotStuff, unhappy
// within ~±25 % of HotStuff.
#include "bench_common.h"

int main() {
  using namespace marlin::bench;
  print_header("Figure 10i — View-change latency (leader crash), f ∈ {1,10}");

  std::printf("%-4s %-18s %-12s %-12s %-8s\n", "f", "case", "mean (ms)",
              "leader (ms)", "path");
  for (std::uint32_t f : {1u, 10u}) {
    struct Case {
      const char* name;
      ProtocolKind protocol;
      bool force_unhappy;
    };
    const Case cases[] = {
        {"marlin (happy)", ProtocolKind::kMarlin, false},
        {"marlin (unhappy)", ProtocolKind::kMarlin, true},
        {"hotstuff", ProtocolKind::kHotStuff, false},
    };
    for (const Case& c : cases) {
      ClusterConfig cfg = paper_config(f, c.protocol);
      cfg.clients.count = 8;
      cfg.clients.window = 16;
      cfg.consensus.max_batch_ops = 2000;
      auto res = marlin::runtime::run_experiment(
          marlin::runtime::view_change_options(cfg, c.force_unhappy));
      const auto& vc = res.view_change;
      std::printf("%-4u %-18s %-12.1f %-12.1f %-8s %s\n", f, c.name,
                  vc.mean_latency_ms, vc.leader_latency_ms,
                  vc.unhappy_path ? "unhappy" : "happy",
                  vc.resolved && res.safety_ok ? "" : "(!! unresolved)");
      std::fflush(stdout);
    }
  }
  return 0;
}
