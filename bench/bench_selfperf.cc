// bench_selfperf — measures the harness itself, not the protocol: how fast
// does the deterministic simulator execute events, and how many heap
// allocations does the hot path cost? Every experiment in this repo (the
// Fig. 10 matrices, the chaos sweeps, the n-scaling runs) is gated on these
// numbers, so the repo pins them as a perf trajectory.
//
//   bench_selfperf                         # full run, writes BENCH_selfperf.json
//   bench_selfperf --quick                 # ctest smoke (smaller workloads)
//   bench_selfperf --baseline=PATH         # compare against a captured baseline
//   bench_selfperf --baseline-out=PATH     # capture this run as the baseline
//
// Two workloads:
//   engine    — a pure event-engine storm (64 timer chains), measuring
//               events/sec and allocations/event with the counting
//               allocator from common/alloc_hook.h
//   workload  — an n=40 broadcast-heavy cluster run (fat proposals fan out
//               to 40 replicas), measuring wall-clock, events/sec, and
//               simulated-seconds per wall-second
//
// The JSON report embeds the baseline (bench/selfperf_baseline.json,
// captured before the zero-copy fabric landed) and the speedup against it.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/alloc_hook.h"
#include "runtime/cluster.h"
#include "simnet/simulator.h"

using namespace marlin;

namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct EngineResult {
  std::uint64_t events = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t allocs = 0;
  double events_per_sec() const {
    return wall_ns ? static_cast<double>(events) * 1e9 /
                         static_cast<double>(wall_ns)
                   : 0;
  }
  double allocs_per_event() const {
    return events ? static_cast<double>(allocs) / static_cast<double>(events)
                  : 0;
  }
};

/// 64 independent timer chains: each fired event re-arms itself until the
/// budget is spent. This is the steady-state shape of the simulator hot
/// path (pacemaker timers, NIC/link wakeups) with capture-light callbacks.
EngineResult run_engine(std::uint64_t total_events) {
  sim::Simulator sim(7);
  constexpr int kChains = 64;
  std::uint64_t remaining = total_events;
  std::uint64_t fired = 0;

  struct Chain {
    sim::Simulator* sim;
    std::uint64_t* remaining;
    std::uint64_t* fired;
    Duration period;
    void arm() {
      sim->post(period, [this] {
        ++*fired;
        if (*remaining > 0) {
          --*remaining;
          arm();
        }
      });
    }
  };
  std::vector<Chain> chains(kChains);
  for (int i = 0; i < kChains; ++i) {
    chains[i] = Chain{&sim, &remaining, &fired,
                      Duration::micros(10 + i)};
  }

  // Warm up the queue and any internal pools, then measure.
  for (auto& c : chains) c.arm();
  sim.run(kChains * 4);

  alloc_hook::reset();
  const std::uint64_t t0 = wall_now_ns();
  sim.run();
  const std::uint64_t t1 = wall_now_ns();

  EngineResult r;
  r.events = fired;
  r.wall_ns = t1 - t0;
  r.allocs = alloc_hook::allocations();
  return r;
}

struct WorkloadResult {
  std::uint32_t n = 0;
  double sim_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t allocs = 0;
  std::uint64_t committed_ops = 0;
  double events_per_sec() const {
    return wall_ns ? static_cast<double>(events) * 1e9 /
                         static_cast<double>(wall_ns)
                   : 0;
  }
  double sim_per_wall() const {
    return wall_ns ? sim_seconds * 1e9 / static_cast<double>(wall_ns) : 0;
  }
  double allocs_per_event() const {
    return events ? static_cast<double>(allocs) / static_cast<double>(events)
                  : 0;
  }
};

/// The acceptance workload: n=40 (f=13), 8 closed-loop clients with fat
/// 256-byte requests and deep windows, so each view broadcasts a large
/// proposal to 40 replicas. Broadcast serialization and event-queue churn
/// dominate — exactly what the zero-copy fabric optimizes.
WorkloadResult run_workload(double sim_seconds) {
  sim::Simulator sim(1);
  runtime::ClusterConfig cfg;
  cfg.f = 13;  // n = 40
  cfg.seed = 1;
  cfg.clients.count = 8;
  cfg.clients.window = 32;
  cfg.clients.payload_size = 256;
  runtime::Cluster cluster(sim, cfg);
  cluster.start();

  alloc_hook::reset();
  const std::uint64_t t0 = wall_now_ns();
  sim.run_until(TimePoint::origin() + Duration::from_seconds_f(sim_seconds));
  const std::uint64_t t1 = wall_now_ns();

  WorkloadResult r;
  r.n = cluster.n();
  r.sim_seconds = sim_seconds;
  r.events = sim.events_executed();
  r.wall_ns = t1 - t0;
  r.allocs = alloc_hook::allocations();
  for (ReplicaId i = 0; i < cluster.n(); ++i) {
    r.committed_ops = std::max(
        r.committed_ops,
        cluster.replica(i).metrics().counter("replica.committed_ops"));
  }
  return r;
}

/// Large-n steady state: n=100 (f=33) with a light client load. The event
/// heap, timer slab, and network links are pre-sized from the cluster size
/// (Cluster reserves n-proportional capacity up front), so the run phase
/// should stay allocation-lean no matter how many replicas churn timers —
/// the --max-bigload-allocs-per-event gate pins that.
WorkloadResult run_bigload(double sim_seconds) {
  sim::Simulator sim(1);
  runtime::ClusterConfig cfg;
  cfg.f = 33;  // n = 100
  cfg.seed = 1;
  cfg.clients.count = 8;
  cfg.clients.window = 8;
  cfg.clients.payload_size = 64;
  runtime::Cluster cluster(sim, cfg);
  cluster.start();

  alloc_hook::reset();
  const std::uint64_t t0 = wall_now_ns();
  sim.run_until(TimePoint::origin() + Duration::from_seconds_f(sim_seconds));
  const std::uint64_t t1 = wall_now_ns();

  WorkloadResult r;
  r.n = cluster.n();
  r.sim_seconds = sim_seconds;
  r.events = sim.events_executed();
  r.wall_ns = t1 - t0;
  r.allocs = alloc_hook::allocations();
  for (ReplicaId i = 0; i < cluster.n(); ++i) {
    r.committed_ops = std::max(
        r.committed_ops,
        cluster.replica(i).metrics().counter("replica.committed_ops"));
  }
  return r;
}

/// Minimal flat-JSON number lookup ("\"key\":123.45"), sufficient for the
/// baseline files this bench writes itself.
bool find_number(const std::string& json, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::atof(json.c_str() + pos + needle.size());
  return true;
}

struct Baseline {
  bool loaded = false;
  double engine_wall_ns = 0, engine_events = 0;
  double workload_wall_ns = 0, workload_events = 0, workload_sim_seconds = 0;
};

Baseline load_baseline(const std::string& path) {
  Baseline b;
  std::ifstream in(path);
  if (!in) return b;
  std::ostringstream body;
  body << in.rdbuf();
  const std::string json = body.str();
  b.loaded = find_number(json, "engine_wall_ns", &b.engine_wall_ns) &&
             find_number(json, "engine_events", &b.engine_events) &&
             find_number(json, "workload_wall_ns", &b.workload_wall_ns) &&
             find_number(json, "workload_events", &b.workload_events) &&
             find_number(json, "workload_sim_seconds",
                         &b.workload_sim_seconds);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_selfperf.json";
  std::string baseline_in;
  std::string baseline_out;
  double max_bigload_allocs = 0;  // 0 = no gate
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--baseline=", 11) == 0) {
      baseline_in = arg + 11;
    } else if (std::strncmp(arg, "--baseline-out=", 15) == 0) {
      baseline_out = arg + 15;
    } else if (std::strncmp(arg, "--max-bigload-allocs-per-event=", 31) == 0) {
      max_bigload_allocs = std::atof(arg + 31);
    } else {
      std::fprintf(stderr,
                   "usage: bench_selfperf [--quick] [--out=PATH]\n"
                   "                      [--baseline=PATH] "
                   "[--baseline-out=PATH]\n"
                   "                      "
                   "[--max-bigload-allocs-per-event=X]\n");
      return 2;
    }
  }

  const std::uint64_t engine_events = quick ? 200'000 : 2'000'000;
  const double workload_sim_seconds = quick ? 0.5 : 2.0;

  std::fprintf(stderr, "engine: %llu-event timer storm...\n",
               static_cast<unsigned long long>(engine_events));
  const EngineResult eng = run_engine(engine_events);
  std::fprintf(stderr,
               "engine: %.2fM events/s, %.3f allocs/event (%llu events, "
               "%.1f ms)\n",
               eng.events_per_sec() / 1e6, eng.allocs_per_event(),
               static_cast<unsigned long long>(eng.events),
               static_cast<double>(eng.wall_ns) / 1e6);

  std::fprintf(stderr, "workload: n=40 broadcast-heavy, %.1f sim-seconds...\n",
               workload_sim_seconds);
  const WorkloadResult wl = run_workload(workload_sim_seconds);
  std::fprintf(stderr,
               "workload: %.1f ms wall, %.2fM events/s, %.3f sim-s/wall-s, "
               "%.2f allocs/event, %llu ops committed\n",
               static_cast<double>(wl.wall_ns) / 1e6,
               wl.events_per_sec() / 1e6, wl.sim_per_wall(),
               wl.allocs_per_event(),
               static_cast<unsigned long long>(wl.committed_ops));

  const double bigload_sim_seconds = quick ? 0.5 : 2.0;
  std::fprintf(stderr, "bigload: n=100, %.1f sim-seconds...\n",
               bigload_sim_seconds);
  const WorkloadResult big = run_bigload(bigload_sim_seconds);
  std::fprintf(stderr,
               "bigload: %.1f ms wall, %.2fM events/s, %.2f allocs/event, "
               "%llu ops committed\n",
               static_cast<double>(big.wall_ns) / 1e6,
               big.events_per_sec() / 1e6, big.allocs_per_event(),
               static_cast<unsigned long long>(big.committed_ops));
  if (max_bigload_allocs > 0 && big.allocs_per_event() > max_bigload_allocs) {
    std::fprintf(stderr,
                 "ALLOCS-PER-EVENT REGRESSION: bigload %.3f > limit %.3f "
                 "(is the n-proportional pre-sizing still wired up?)\n",
                 big.allocs_per_event(), max_bigload_allocs);
    return 1;
  }

  Baseline base;
  if (!baseline_in.empty()) {
    base = load_baseline(baseline_in);
    if (!base.loaded) {
      std::fprintf(stderr, "warning: could not load baseline %s\n",
                   baseline_in.c_str());
    }
  }

  // Same config + deterministic sim → identical event streams, so the
  // wall-clock ratio is a clean apples-to-apples speedup.
  double engine_speedup = 0, workload_speedup = 0;
  if (base.loaded && base.engine_events > 0 && eng.events > 0) {
    const double base_ns_per_event = base.engine_wall_ns / base.engine_events;
    const double cur_ns_per_event =
        static_cast<double>(eng.wall_ns) / static_cast<double>(eng.events);
    if (cur_ns_per_event > 0) engine_speedup = base_ns_per_event / cur_ns_per_event;
  }
  if (base.loaded && base.workload_sim_seconds > 0 && wl.sim_seconds > 0) {
    const double base_ns_per_sim_s =
        base.workload_wall_ns / base.workload_sim_seconds;
    const double cur_ns_per_sim_s =
        static_cast<double>(wl.wall_ns) / wl.sim_seconds;
    if (cur_ns_per_sim_s > 0) {
      workload_speedup = base_ns_per_sim_s / cur_ns_per_sim_s;
    }
    std::fprintf(stderr, "speedup vs baseline: engine %.2fx, workload %.2fx\n",
                 engine_speedup, workload_speedup);
  }

  char buf[3072];
  std::snprintf(
      buf, sizeof buf,
      "{\"schema\":\"marlin/selfperf/v1\",\"quick\":%s,\n"
      " \"engine\":{\"events\":%llu,\"wall_ns\":%llu,"
      "\"events_per_sec\":%.0f,\"allocs\":%llu,\"allocs_per_event\":%.4f},\n"
      " \"workload\":{\"n\":%u,\"sim_seconds\":%.3f,\"events\":%llu,"
      "\"wall_ns\":%llu,\"events_per_sec\":%.0f,"
      "\"sim_seconds_per_wall_second\":%.4f,\"allocs\":%llu,"
      "\"allocs_per_event\":%.4f,\"committed_ops\":%llu},\n"
      " \"bigload\":{\"n\":%u,\"sim_seconds\":%.3f,\"events\":%llu,"
      "\"wall_ns\":%llu,\"events_per_sec\":%.0f,\"allocs\":%llu,"
      "\"allocs_per_event\":%.4f,\"committed_ops\":%llu},\n"
      " \"baseline_loaded\":%s,"
      "\"speedup_vs_baseline\":{\"engine\":%.3f,\"workload\":%.3f}}\n",
      quick ? "true" : "false",
      static_cast<unsigned long long>(eng.events),
      static_cast<unsigned long long>(eng.wall_ns), eng.events_per_sec(),
      static_cast<unsigned long long>(eng.allocs), eng.allocs_per_event(),
      wl.n, wl.sim_seconds, static_cast<unsigned long long>(wl.events),
      static_cast<unsigned long long>(wl.wall_ns), wl.events_per_sec(),
      wl.sim_per_wall(), static_cast<unsigned long long>(wl.allocs),
      wl.allocs_per_event(), static_cast<unsigned long long>(wl.committed_ops),
      big.n, big.sim_seconds, static_cast<unsigned long long>(big.events),
      static_cast<unsigned long long>(big.wall_ns), big.events_per_sec(),
      static_cast<unsigned long long>(big.allocs), big.allocs_per_event(),
      static_cast<unsigned long long>(big.committed_ops),
      base.loaded ? "true" : "false", engine_speedup, workload_speedup);

  std::ofstream of(out);
  of << buf;
  if (!of) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 2;
  }
  std::fprintf(stderr, "wrote %s\n", out.c_str());

  if (!baseline_out.empty()) {
    char bb[512];
    std::snprintf(
        bb, sizeof bb,
        "{\"schema\":\"marlin/selfperf-baseline/v1\",\"quick\":%s,\n"
        " \"engine_events\":%llu,\"engine_wall_ns\":%llu,\n"
        " \"workload_n\":%u,\"workload_sim_seconds\":%.3f,"
        "\"workload_events\":%llu,\"workload_wall_ns\":%llu,\n"
        " \"workload_allocs\":%llu,\"engine_allocs\":%llu}\n",
        quick ? "true" : "false",
        static_cast<unsigned long long>(eng.events),
        static_cast<unsigned long long>(eng.wall_ns), wl.n,
        wl.sim_seconds, static_cast<unsigned long long>(wl.events),
        static_cast<unsigned long long>(wl.wall_ns),
        static_cast<unsigned long long>(wl.allocs),
        static_cast<unsigned long long>(eng.allocs));
    std::ofstream bf(baseline_out);
    bf << bb;
    std::fprintf(stderr, "wrote baseline %s\n", baseline_out.c_str());
  }
  return 0;
}
