// Figure 10j: peak throughput of the rotating-leader mode (1 s rotation
// timer, as in HotStuff's implementation and Spinning) under 0/1/3 crash
// failures at f = 3 (n = 13).
//
// Paper reference: with 1 failure Marlin/HotStuff lose ≈ 24.5 %/26.8 % of
// failure-free throughput; with 3 failures ≈ 36.1 %/38.7 %; Marlin stays
// ahead throughout (e.g. +34.8 % at 3 failures). Expected reproduction:
// both degrade with failures, Marlin consistently above HotStuff.
#include "bench_common.h"

namespace {

double rotating_throughput(marlin::bench::ProtocolKind protocol,
                           std::uint32_t crashes) {
  using namespace marlin;
  using namespace marlin::bench;
  ClusterConfig cfg = paper_config(3, protocol);
  cfg.consensus.pacemaker.rotate_on_timer = true;
  cfg.consensus.pacemaker.rotation_interval = Duration::seconds(1);
  cfg.clients.window = 12000 / cfg.clients.count;
  cfg.consensus.max_batch_ops = 12000;
  cfg.clients.retransmit_timeout = Duration::seconds(3);

  // Crash replicas at the start of the run (paper methodology). Avoid the
  // view-1 leader so the run can bootstrap, as the paper's setup implies.
  const ReplicaId victims[] = {3, 6, 9};
  for (std::uint32_t i = 0; i < crashes; ++i) {
    cfg.faults.actions.push_back(
        faults::FaultAction::crash(Duration::zero(), victims[i]));
  }

  auto res = runtime::run_experiment(runtime::throughput_options(
      cfg, Duration::seconds(4), Duration::seconds(26)));  // ~2 rotations
  if (!res.safety_ok || !res.consistent) {
    std::fprintf(stderr, "!! safety check failed\n");
  }
  return res.throughput_ops / 1000.0;
}

}  // namespace

int main() {
  using namespace marlin::bench;
  print_header(
      "Figure 10j — Rotating-leader peak throughput under failures (f = 3)");

  std::printf("%-12s %-16s %-16s %-12s\n", "failures", "marlin (ktx/s)",
              "hotstuff (ktx/s)", "marlin adv");
  double base_m = 0, base_h = 0;
  for (std::uint32_t crashes : {0u, 1u, 3u}) {
    const double m = rotating_throughput(ProtocolKind::kMarlin, crashes);
    const double h = rotating_throughput(ProtocolKind::kHotStuff, crashes);
    if (crashes == 0) {
      base_m = m;
      base_h = h;
    }
    std::printf("%-12u %-16.2f %-16.2f %+.1f%%", crashes, m, h,
                (m / h - 1.0) * 100.0);
    if (crashes > 0) {
      std::printf("   (degradation: marlin %.1f%%, hotstuff %.1f%%)",
                  (1.0 - m / base_m) * 100.0, (1.0 - h / base_h) * 100.0);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
