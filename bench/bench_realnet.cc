// bench_realnet — the "one stack, two transports" cross-validation bench.
//
// Runs the same workload (same ClusterConfig: protocol, f, clients, window,
// payload, pacemaker) on both backends at n = 4, 7, 10, 19:
//
//   sim    the deterministic simulator, with its network model calibrated
//          to localhost-class links (50 us one-way, 10 Gbps) so the two
//          backends model the same deployment;
//   metal  src/realnet — real threads, real epoll, real 127.0.0.1 TCP.
//
// Prints one row per (n, backend) — throughput, latency percentiles, and
// getrusage CPU/context-switch deltas — and writes the comparison as JSON
// (schema marlin/realnet/v2); the repo pins a representative run as
// BENCH_realnet.json. Wall-clock metal numbers are machine-dependent, so
// CI only smoke-runs --quick and checks that the artifact is written.
//
//   bench_realnet                      # full sweep, n = 4, 7, 10, 19
//   bench_realnet --quick              # short windows, n = 4 only
//   bench_realnet --out=PATH           # also write the JSON artifact
#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "realnet/real_cluster.h"
#include "runtime/experiment.h"

using namespace marlin;

namespace {

struct Row {
  std::uint32_t n = 0;
  const char* backend = "";
  double throughput_ops = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double mean_ms = 0;
  std::uint64_t completed = 0;
  bool ok = false;
  // getrusage(RUSAGE_SELF) deltas across the row: CPU burned (user+sys)
  // and scheduler pressure. On a 1-core host involuntary switches are the
  // tell for "more runnable threads than cores".
  double cpu_s = 0;
  std::uint64_t vol_ctx_switches = 0;
  std::uint64_t invol_ctx_switches = 0;
};

struct UsageSnap {
  double cpu_s = 0;
  std::uint64_t nvcsw = 0;
  std::uint64_t nivcsw = 0;
};

UsageSnap usage_now() {
  struct rusage ru;
  UsageSnap s;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return s;
  auto tv_s = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  s.cpu_s = tv_s(ru.ru_utime) + tv_s(ru.ru_stime);
  s.nvcsw = static_cast<std::uint64_t>(ru.ru_nvcsw);
  s.nivcsw = static_cast<std::uint64_t>(ru.ru_nivcsw);
  return s;
}

void fill_usage(Row* row, const UsageSnap& before) {
  const UsageSnap after = usage_now();
  row->cpu_s = after.cpu_s - before.cpu_s;
  row->vol_ctx_switches = after.nvcsw - before.nvcsw;
  row->invol_ctx_switches = after.nivcsw - before.nivcsw;
}

/// The workload both backends run: identical consensus + client settings;
/// only the transport underneath differs.
runtime::ClusterConfig workload(std::uint32_t f) {
  runtime::ClusterConfig cfg;
  cfg.f = f;
  cfg.seed = 20260807;
  cfg.clients.count = 4;
  cfg.clients.window = 16;
  cfg.clients.payload_size = 150;
  cfg.consensus.reply_size = 150;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(500);
  cfg.consensus.pacemaker.timeout_jitter = 0.2;
  // Localhost-class network model for the sim side of the comparison.
  cfg.net.one_way_delay = Duration::micros(50);
  cfg.net.link_bandwidth_bps = 10e9;
  cfg.net.nic_bandwidth_bps = 10e9;
  return cfg;
}

Row run_sim(std::uint32_t f, Duration warmup, Duration measure) {
  const UsageSnap before = usage_now();
  runtime::ExperimentOptions exp =
      runtime::throughput_options(workload(f), warmup, measure);
  const runtime::ExperimentReport rep = runtime::run_experiment(exp);
  Row row;
  fill_usage(&row, before);
  row.n = 3 * f + 1;
  row.backend = "sim";
  row.throughput_ops = rep.throughput_ops;
  row.p50_ms = rep.p50_latency_ms;
  row.p95_ms = rep.p95_latency_ms;
  row.mean_ms = rep.mean_latency_ms;
  row.completed = rep.total_completed;
  row.ok = rep.safety_ok && rep.consistent;
  return row;
}

Row run_metal(std::uint32_t f, Duration warmup, Duration measure) {
  const UsageSnap before = usage_now();
  realnet::RealCluster cluster(workload(f));
  Row row;
  row.n = 3 * f + 1;
  row.backend = "metal";
  if (!cluster.ok().is_ok()) {
    std::fprintf(stderr, "metal n=%u init failed: %s\n", row.n,
                 cluster.ok().message().c_str());
    return row;
  }
  const TimePoint t0 = realnet::mono_now();
  cluster.set_measurement_window(t0 + warmup, t0 + warmup + measure);
  cluster.start();
  std::this_thread::sleep_for(
      std::chrono::nanoseconds((warmup + measure).as_nanos()));
  cluster.stop();
  fill_usage(&row, before);
  row.throughput_ops = cluster.client_throughput();
  row.p50_ms = cluster.latency_ms(50);
  row.p95_ms = cluster.latency_ms(95);
  row.mean_ms = cluster.mean_latency_ms();
  row.completed = cluster.total_completed();
  row.ok = !cluster.any_safety_violation() &&
           cluster.committed_heights_consistent() &&
           cluster.min_committed_height() > 0;
  return row;
}

void print_row(const Row& r) {
  std::printf("%4u  %-6s %12.1f %10.2f %10.2f %10.2f %12llu %8.2f %8llu %8llu  %s\n",
              r.n, r.backend, r.throughput_ops, r.p50_ms, r.p95_ms, r.mean_ms,
              static_cast<unsigned long long>(r.completed), r.cpu_s,
              static_cast<unsigned long long>(r.vol_ctx_switches),
              static_cast<unsigned long long>(r.invol_ctx_switches),
              r.ok ? "ok" : "FAIL");
}

std::string row_json(const Row& r) {
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "  {\"n\":%u,\"backend\":\"%s\",\"throughput_ops\":%.1f,"
                "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"mean_ms\":%.3f,"
                "\"completed\":%llu,\"cpu_s\":%.3f,"
                "\"vol_ctx_switches\":%llu,\"invol_ctx_switches\":%llu,"
                "\"ok\":%s}",
                r.n, r.backend, r.throughput_ops, r.p50_ms, r.p95_ms,
                r.mean_ms, static_cast<unsigned long long>(r.completed),
                r.cpu_s,
                static_cast<unsigned long long>(r.vol_ctx_switches),
                static_cast<unsigned long long>(r.invol_ctx_switches),
                r.ok ? "true" : "false");
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else {
      std::fprintf(stderr, "usage: bench_realnet [--quick] [--out=PATH]\n");
      return 2;
    }
  }

  const Duration warmup = quick ? Duration::millis(500) : Duration::seconds(1);
  const Duration measure = quick ? Duration::seconds(2) : Duration::seconds(5);
  // f = 1, 2, 3, 6 → n = 4, 7, 10, 19: the n=19 row shows how both
  // backends degrade once quadratic vote traffic dominates on one core.
  const std::vector<std::uint32_t> fs =
      quick ? std::vector<std::uint32_t>{1}
            : std::vector<std::uint32_t>{1, 2, 3, 6};

  std::printf(
      "bench_realnet — same workload, two transports (sim vs localhost TCP)\n"
      "clients=4 window=16 payload=150B; sim net: 50us one-way, 10 Gbps\n\n"
      "%4s  %-6s %12s %10s %10s %10s %12s %8s %8s %8s\n", "n", "trans",
      "ops/s", "p50 ms", "p95 ms", "mean ms", "completed", "cpu s", "nvcsw",
      "nivcsw");

  std::vector<Row> rows;
  bool all_ok = true;
  for (std::uint32_t f : fs) {
    const Row sim = run_sim(f, warmup, measure);
    print_row(sim);
    const Row metal = run_metal(f, warmup, measure);
    print_row(metal);
    rows.push_back(sim);
    rows.push_back(metal);
    all_ok = all_ok && sim.ok && metal.ok;
    if (sim.throughput_ops > 0) {
      std::printf("      metal/sim throughput: %.2fx, p50 latency: %.2fx\n",
                  metal.throughput_ops / sim.throughput_ops,
                  sim.p50_ms > 0 ? metal.p50_ms / sim.p50_ms : 0.0);
    }
  }

  if (!out_path.empty()) {
    std::string json = "{\"schema\":\"marlin/realnet/v2\",\"quick\":";
    json += quick ? "true" : "false";
    json +=
        ",\n \"workload\":{\"clients\":4,\"window\":16,\"payload\":150,"
        "\"sim_one_way_us\":50,\"warmup_s\":" +
        std::to_string(warmup.as_seconds_f()) +
        ",\"measure_s\":" + std::to_string(measure.as_seconds_f()) +
        "},\n \"rows\":[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json += row_json(rows[i]);
      json += i + 1 < rows.size() ? ",\n" : "\n";
    }
    json += " ]}\n";
    if (!obs::write_text_file(out_path, json)) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return all_ok ? 0 : 1;
}
