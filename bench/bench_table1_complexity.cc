// Table I: view-change complexity comparison.
//
// Two parts:
//  1. MEASURED — actual wire traffic of our Marlin and HotStuff during a
//     leader-crash view change (from the crash to the first commit of the
//     new view), across f ∈ {1, 2, 5, 10}. Counts consensus messages,
//     bytes, and authenticators under the signature-group instantiation
//     the paper's evaluation uses (every signature inside a QC counts,
//     which is why even HotStuff-style protocols show O(n·q) = O(n²)
//     authenticators in practice — exactly the paper's §I remark). The
//     *per-replica* byte cost staying flat as n grows is the linearity
//     claim; quadratic-VC protocols grow linearly per replica.
//  2. ANALYTIC — Table I's formulas evaluated with the threshold-signature
//     instantiation (λ = 32 B hashes, 64 B signatures/QCs, log u = 8 B)
//     for all five protocols, including Fast-HotStuff/Jolteon and Wendy,
//     which we do not implement (the paper's own comparison is analytic
//     for those too).
#include "bench_common.h"

namespace {

using namespace marlin;
using namespace marlin::bench;

struct Measured {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t authenticators = 0;
  bool resolved = false;
};

Measured measure_view_change(ProtocolKind protocol, std::uint32_t f,
                             bool force_unhappy) {
  ClusterConfig cfg = paper_config(f, protocol);
  cfg.consensus.disable_happy_path = force_unhappy;
  cfg.clients.count = 2;
  cfg.clients.window = 4;
  cfg.consensus.max_batch_ops = 64;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(600);

  sim::Simulator sim(cfg.seed);
  runtime::Cluster cluster(sim, cfg);
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    cluster.replica(r).set_count_authenticators(true);
  }
  cluster.start();
  sim.run_for(Duration::seconds(3));

  const ReplicaId old_leader = cluster.current_leader();
  const ViewNumber old_view = cluster.max_view();
  cluster.crash_replica(old_leader);
  cluster.network().reset_stats();
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    cluster.replica(r).reset_traffic();
  }

  const TimePoint deadline = sim.now() + Duration::seconds(20);
  Measured out;
  while (sim.now() < deadline) {
    sim.run_for(Duration::millis(50));
    bool done = true;
    for (ReplicaId r = 0; r < cluster.n(); ++r) {
      if (r == old_leader) continue;
      if (cluster.replica(r).protocol().current_view() <= old_view ||
          !cluster.replica(r).committed_in_current_view()) {
        done = false;
        break;
      }
    }
    if (done) {
      out.resolved = true;
      break;
    }
  }

  // Consensus traffic only (view-change, proposals, votes, QC notices),
  // counted at the wire by the network's per-kind breakdowns.
  const types::MsgKind kinds[] = {types::MsgKind::kViewChange,
                                  types::MsgKind::kProposal,
                                  types::MsgKind::kVote,
                                  types::MsgKind::kQcNotice};
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    const sim::NodeNetStats& net = cluster.network().stats(r);
    for (auto k : kinds) {
      out.messages += net.msgs_sent_by_kind[static_cast<std::size_t>(k)];
      out.bytes += net.bytes_sent_by_kind[static_cast<std::size_t>(k)];
    }
    out.authenticators += cluster.replica(r).traffic().authenticators_sent;
  }
  return out;
}

// Analytic Table I rows with the threshold-signature instantiation.
constexpr double kLambda = 32;   // hash / security parameter (bytes)
constexpr double kSig = 64;      // signature / threshold signature (bytes)
constexpr double kLogU = 8;      // view-number encoding (bytes)

double hotstuff_comm(double n) { return n * (kSig + kLambda + kLogU) * 2; }
double quad_comm(double n) { return n * n * (kSig + kLogU) + n * kLambda; }
double wendy_comm(double n) {
  return n * kLambda + n * n * kLogU + n * (kSig + kLambda);
}

}  // namespace

int main() {
  print_header("Table I (measured) — view-change traffic, leader crash");
  std::printf("%-10s %-4s %-5s %-9s %-10s %-12s %-14s %-16s\n", "protocol",
              "f", "n", "path", "messages", "bytes", "bytes/replica",
              "authenticators");
  for (std::uint32_t f : {1u, 2u, 5u, 10u}) {
    struct Case {
      const char* name;
      ProtocolKind protocol;
      bool unhappy;
    };
    const Case cases[] = {
        {"marlin", ProtocolKind::kMarlin, false},
        {"marlin", ProtocolKind::kMarlin, true},
        {"hotstuff", ProtocolKind::kHotStuff, false},
    };
    for (const Case& c : cases) {
      Measured m = measure_view_change(c.protocol, f, c.unhappy);
      const std::uint32_t n = 3 * f + 1;
      std::printf("%-10s %-4u %-5u %-9s %-10llu %-12llu %-14.0f %-16llu %s\n",
                  c.name, f, n, c.unhappy ? "unhappy" : "happy",
                  static_cast<unsigned long long>(m.messages),
                  static_cast<unsigned long long>(m.bytes),
                  static_cast<double>(m.bytes) / n,
                  static_cast<unsigned long long>(m.authenticators),
                  m.resolved ? "" : "(!! unresolved)");
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nNote: authenticators are counted under the signature-group\n"
      "instantiation (each signature inside a QC counts), matching how the\n"
      "paper's evaluation actually instantiates threshold signatures. With\n"
      "a pairing-based threshold scheme each QC would count as 1, giving\n"
      "the O(n) column of Table I for HotStuff and Marlin.\n");

  print_header("Table I (analytic) — threshold-signature instantiation");
  std::printf("%-14s %-22s %-34s %-12s %-8s\n", "protocol", "vc communication",
              "vc crypto ops", "vc auth", "phases");
  std::printf("%-14s %-22s %-34s %-12s %-8s\n", "HotStuff",
              "O(n·λ + n·log u)", "O(n²) non-pair | O(n) pairings", "O(n)",
              "3");
  std::printf("%-14s %-22s %-34s %-12s %-8s\n", "Fast-HotStuff",
              "O(n²·λ + n²·log u)", "O(n³) non-pair | O(n²) pairings",
              "O(n²)", "2");
  std::printf("%-14s %-22s %-34s %-12s %-8s\n", "Jolteon",
              "O(n²·λ + n²·log u)", "O(n³) non-pair | O(n²) pairings",
              "O(n²)", "2");
  std::printf("%-14s %-22s %-34s %-12s %-8s\n", "Wendy",
              "O(n·λ + n²·log u)", "O(n²·log c) non-pair + O(n) pairings",
              "O(n²)", "2-3");
  std::printf("%-14s %-22s %-34s %-12s %-8s\n", "Marlin",
              "O(n·λ + n·log u)", "O(n²) non-pair | O(n) pairings", "O(n)",
              "2-3");

  std::printf("\nConcrete view-change bytes at λ=%.0f, sig=%.0f, log u=%.0f:\n",
              kLambda, kSig, kLogU);
  std::printf("%-6s %-12s %-16s %-12s %-12s\n", "n", "hotstuff",
              "fast-hs/jolteon", "wendy", "marlin");
  for (double n : {4.0, 7.0, 16.0, 31.0, 61.0, 91.0}) {
    std::printf("%-6.0f %-12.0f %-16.0f %-12.0f %-12.0f\n", n,
                hotstuff_comm(n), quad_comm(n), wendy_comm(n),
                hotstuff_comm(n) * 1.5 /* marlin: + pre-prepare phase */);
  }
  return 0;
}
