// Figure 10h: peak throughput with no-op requests (empty payloads; the
// message still carries signatures/metadata) for f ∈ {1, 2, 5}.
//
// Paper reference: no-op peaks are higher than 150 B peaks for both
// protocols (Marlin 118.4/104.5/101.1 ktx/s at f = 1/2/5) and degrade far
// less with f. Expected reproduction: no-op > 150 B at each f, much
// flatter decline, Marlin above HotStuff throughout.
#include "bench_common.h"

namespace {

std::vector<std::uint32_t> noop_loads(std::uint32_t) {
  return {16000, 32000, 64000};
}

}  // namespace

int main() {
  using namespace marlin::bench;
  print_header("Figure 10h — Peak throughput, no-op requests, f ∈ {1,2,5}");

  std::printf("%-4s %-10s %-16s %-16s\n", "f", "payload", "marlin (ktx/s)",
              "hotstuff (ktx/s)");
  for (std::uint32_t f : {1u, 2u, 5u}) {
    for (std::size_t payload : {std::size_t{0}, std::size_t{150}}) {
      double best[2] = {0, 0};
      int idx = 0;
      for (ProtocolKind protocol :
           {ProtocolKind::kMarlin, ProtocolKind::kHotStuff}) {
        for (std::uint32_t outstanding : noop_loads(f)) {
          ClusterConfig cfg = paper_config(f, protocol);
          cfg.clients.payload_size = payload;
          cfg.consensus.reply_size = payload == 0 ? 80 : 150;  // sigs only
          cfg.clients.window = std::max(1u, outstanding / cfg.clients.count);
          auto res = marlin::runtime::run_experiment(
              marlin::runtime::throughput_options(
                  cfg, marlin::Duration::seconds(3),
                  marlin::Duration::seconds(4)));
          best[idx] = std::max(best[idx], res.throughput_ops / 1000.0);
        }
        ++idx;
      }
      std::printf("%-4u %-10s %-16.2f %-16.2f\n", f,
                  payload == 0 ? "no-op" : "150B", best[0], best[1]);
      std::fflush(stdout);
    }
  }
  return 0;
}
