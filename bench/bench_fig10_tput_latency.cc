// Figure 10a–10f: throughput vs latency for f ∈ {1, 2, 5, 10, 20, 30},
// 150-byte requests/replies, closed-loop load sweep. Each row is one point
// of the paper's curves; the sweep stops around the latency range the
// paper plots (≤ ~1 s).
//
// Paper reference (peak throughput along these curves): Marlin 4.47 %–34.4 %
// above HotStuff at every f; at f = 1 Marlin peaks at 101 ktx/s vs
// HotStuff 79.6 ktx/s. Expected reproduction: same ordering and relative
// gap; absolute throughput within a small constant factor (see
// EXPERIMENTS.md).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace marlin::bench;
  // Optional: pass a subset of f values (e.g. "1 2" for a quick run).
  std::vector<std::uint32_t> fs = {1, 2, 5, 10, 20, 30};
  if (argc > 1) {
    fs.clear();
    for (int i = 1; i < argc; ++i) {
      fs.push_back(static_cast<std::uint32_t>(std::atoi(argv[i])));
    }
  }

  // Metrics accumulate over every run; the trace ring keeps the newest
  // events. Dumped next to the binary for trace_inspect / plotting.
  ObsArtifacts artifacts;

  const char* fig = "abcdef";
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const std::uint32_t f = fs[i];
    char title[96];
    std::snprintf(title, sizeof title,
                  "Figure 10%c — Throughput vs latency (f = %u, n = %u)",
                  i < 6 ? fig[i] : '?', f, 3 * f + 1);
    print_header(title);
    auto marlin = run_sweep(f, ProtocolKind::kMarlin, 150,
                            marlin::Duration::seconds(3), &artifacts);
    auto hotstuff = run_sweep(f, ProtocolKind::kHotStuff, 150,
                              marlin::Duration::seconds(3), &artifacts);
    const double m = peak_ktx(marlin);
    const double h = peak_ktx(hotstuff);
    std::printf("-- f=%u sweep peaks: marlin=%.2f ktx/s, hotstuff=%.2f ktx/s "
                "(marlin %+.1f%%)\n",
                f, m, h, (m / h - 1.0) * 100.0);
  }

  if (artifacts.write("bench_fig10")) {
    std::printf("\nwrote bench_fig10.metrics.json and bench_fig10.trace.jsonl"
                " (analyze with trace_inspect)\n");
  } else {
    std::fprintf(stderr, "failed to write bench_fig10 artifacts\n");
    return 1;
  }
  return 0;
}
