// Figure 10a–10f: throughput vs latency for f ∈ {1, 2, 5, 10, 20, 30},
// 150-byte requests/replies, closed-loop load sweep. Each row is one point
// of the paper's curves; the sweep stops around the latency range the
// paper plots (≤ ~1 s).
//
// Paper reference (peak throughput along these curves): Marlin 4.47 %–34.4 %
// above HotStuff at every f; at f = 1 Marlin peaks at 101 ktx/s vs
// HotStuff 79.6 ktx/s. Expected reproduction: same ordering and relative
// gap; absolute throughput within a small constant factor (see
// EXPERIMENTS.md).
#include "bench_common.h"

#include "obs/critical_path.h"

namespace {

// One dedicated f = 1 default-seed run per protocol, traced into a fresh
// sink, so the critical-path attribution is over a clean single-run trace
// (the sweep's shared ring interleaves runs and overflows).
std::string critical_path_artifact() {
  using namespace marlin::bench;
  std::string out;
  std::vector<marlin::obs::CriticalPathBreakdown> breakdowns;
  for (ProtocolKind protocol :
       {ProtocolKind::kMarlin, ProtocolKind::kHotStuff}) {
    ClusterConfig cfg = paper_config(1, protocol);
    cfg.clients.window = 4;  // light load: commit latency, not queueing
    marlin::obs::TraceSink sink{1u << 17};
    cfg.trace = &sink;
    marlin::runtime::run_experiment(marlin::runtime::throughput_options(
        cfg, marlin::Duration::seconds(3), marlin::Duration::seconds(5)));
    const auto paths = marlin::obs::critical_paths(sink.events());
    const bool three = protocol == ProtocolKind::kHotStuff;
    for (const auto& p : paths) {
      if (p.complete && p.three_phase == three) {
        out += std::string("== ") + protocol_name(protocol) +
               (three ? " (three-phase) ==\n" : " (two-phase) ==\n");
        out += marlin::obs::critical_path_to_text(p);
        break;
      }
    }
    breakdowns.push_back(marlin::obs::aggregate_critical_paths(paths, three));
    out += marlin::obs::breakdown_to_text(breakdowns.back());
    out += "\n";
  }
  out += marlin::obs::breakdown_comparison(breakdowns[0], breakdowns[1]);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace marlin::bench;
  // Optional: pass a subset of f values (e.g. "1 2" for a quick run).
  std::vector<std::uint32_t> fs = {1, 2, 5, 10, 20, 30};
  if (argc > 1) {
    fs.clear();
    for (int i = 1; i < argc; ++i) {
      fs.push_back(static_cast<std::uint32_t>(std::atoi(argv[i])));
    }
  }

  // Metrics accumulate over every run; the trace ring keeps the newest
  // events. Dumped next to the binary for trace_inspect / plotting.
  ObsArtifacts artifacts;

  const char* fig = "abcdef";
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const std::uint32_t f = fs[i];
    char title[96];
    std::snprintf(title, sizeof title,
                  "Figure 10%c — Throughput vs latency (f = %u, n = %u)",
                  i < 6 ? fig[i] : '?', f, 3 * f + 1);
    print_header(title);
    auto marlin = run_sweep(f, ProtocolKind::kMarlin, 150,
                            marlin::Duration::seconds(3), &artifacts);
    auto hotstuff = run_sweep(f, ProtocolKind::kHotStuff, 150,
                              marlin::Duration::seconds(3), &artifacts);
    const double m = peak_ktx(marlin);
    const double h = peak_ktx(hotstuff);
    std::printf("-- f=%u sweep peaks: marlin=%.2f ktx/s, hotstuff=%.2f ktx/s "
                "(marlin %+.1f%%)\n",
                f, m, h, (m / h - 1.0) * 100.0);
  }

  if (artifacts.write("bench_fig10")) {
    std::printf("\nwrote bench_fig10.metrics.json and bench_fig10.trace.jsonl"
                " (analyze with trace_inspect)\n");
  } else {
    std::fprintf(stderr, "failed to write bench_fig10 artifacts\n");
    return 1;
  }

  // Where does the commit latency go? Two dedicated light-load f = 1 runs
  // feed the per-edge critical-path breakdown — Marlin vs HotStuff side by
  // side, one network round trip apart.
  print_header("Critical-path latency attribution (f = 1, light load)");
  const std::string breakdown = critical_path_artifact();
  std::fputs(breakdown.c_str(), stdout);
  if (marlin::obs::write_text_file("bench_fig10.critical_path.txt",
                                   breakdown)) {
    std::printf("\nwrote bench_fig10.critical_path.txt\n");
  } else {
    std::fprintf(stderr, "failed to write bench_fig10.critical_path.txt\n");
    return 1;
  }
  return 0;
}
