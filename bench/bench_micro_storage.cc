// Micro-benchmarks for the storage engine (google-benchmark): the write
// path (WAL + memtable), reads across SSTables, flush, and the checkpoint
// compaction that the consensus runtime charges every 5000 blocks.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "storage/kvstore.h"

namespace {

using namespace marlin;
using namespace marlin::storage;

std::string key_of(std::uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "key%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

void BM_KVPut(benchmark::State& state) {
  auto env = make_mem_env();
  auto store = KVStore::open(*env);
  Rng rng(1);
  const Bytes value = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.value()->put(key_of(i++), value));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_KVPut)->Arg(64)->Arg(256)->Arg(1024);

void BM_KVGetMemtable(benchmark::State& state) {
  auto env = make_mem_env();
  auto store = KVStore::open(*env);
  Rng rng(2);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    (void)store.value()->put(key_of(i), rng.next_bytes(128));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.value()->get(key_of(i++ % 1000)));
  }
}
BENCHMARK(BM_KVGetMemtable);

void BM_KVGetAcrossSSTables(benchmark::State& state) {
  auto env = make_mem_env();
  auto store = KVStore::open(*env);
  Rng rng(3);
  const auto tables = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t t = 0; t < tables; ++t) {
    for (std::uint64_t i = 0; i < 500; ++i) {
      (void)store.value()->put(key_of(t * 500 + i), rng.next_bytes(128));
    }
    (void)store.value()->flush();
  }
  std::uint64_t i = 0;
  const std::uint64_t total = tables * 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.value()->get(key_of(i++ % total)));
  }
}
BENCHMARK(BM_KVGetAcrossSSTables)->Arg(1)->Arg(4)->Arg(16);

void BM_KVFlush(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto env = make_mem_env();
    auto store = KVStore::open(*env);
    Rng rng(4);
    for (std::uint64_t i = 0; i < 2000; ++i) {
      (void)store.value()->put(key_of(i), rng.next_bytes(128));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.value()->flush());
  }
}
BENCHMARK(BM_KVFlush)->Unit(benchmark::kMicrosecond);

void BM_KVCheckpoint(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto env = make_mem_env();
    auto store = KVStore::open(*env);
    Rng rng(5);
    for (int t = 0; t < 5; ++t) {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        (void)store.value()->put(key_of(rng.next_below(3000)),
                                 rng.next_bytes(128));
      }
      (void)store.value()->flush();
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.value()->checkpoint());
  }
}
BENCHMARK(BM_KVCheckpoint)->Unit(benchmark::kMillisecond);

void BM_WalAppend(benchmark::State& state) {
  auto env = make_mem_env();
  auto wal = WalWriter::create(*env, "bench.log");
  Rng rng(6);
  const Bytes record = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.value().append(record));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WalAppend)->Arg(128)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
