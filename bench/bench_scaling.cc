// bench_scaling — how far does the testbed scale in replica count?
//
// Runs the same light-load cluster workload at n = 40 / 100 / 400 / 1000
// on both event-engine backends — the legacy single-queue simulator
// (--shards=1) and the partitioned lookahead-window engine (docs/
// SCALING.md) — and reports events/s, simulated-seconds per wall-second,
// peak RSS, and commit progress per configuration:
//
//   bench_scaling                      # full sweep, writes BENCH_scaling.json
//   bench_scaling --quick              # n = 40 / 100 only (ctest + CI smoke)
//   bench_scaling --shards=8           # partitioned rows use 8 shards
//
// Each configuration runs in its own child process (the bench re-execs
// itself with --one), so peak RSS (getrusage ru_maxrss) is per-row rather
// than a running max across the sweep, and a pathological row cannot
// corrupt its neighbours' numbers.
//
// Speedup caveat: the partitioned engine only buys wall-clock time when
// worker threads have real cores to land on. The report embeds
// hardware_concurrency so a reader can tell a 1-core CI container's
// numbers (sharding overhead, no parallelism) from a many-core host's.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cluster.h"
#include "simnet/sharded.h"
#include "simnet/simulator.h"

using namespace marlin;

namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Peak resident set of this process in bytes (ru_maxrss is KiB on Linux).
std::uint64_t peak_rss_bytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

struct Row {
  std::uint32_t n = 0;
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
  double sim_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t peak_rss = 0;
  std::uint64_t committed_ops = 0;
  bool safety_ok = false;

  double events_per_sec() const {
    return wall_ns ? static_cast<double>(events) * 1e9 /
                         static_cast<double>(wall_ns)
                   : 0;
  }
  double sim_per_wall() const {
    return wall_ns ? sim_seconds * 1e9 / static_cast<double>(wall_ns) : 0;
  }

  std::string to_json() const {
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "{\"n\":%u,\"shards\":%u,\"workers\":%u,\"sim_seconds\":%.3f,"
        "\"events\":%llu,\"wall_ns\":%llu,\"events_per_sec\":%.0f,"
        "\"sim_seconds_per_wall_second\":%.4f,\"peak_rss_bytes\":%llu,"
        "\"committed_ops\":%llu,\"safety_ok\":%s}",
        n, shards, workers, sim_seconds,
        static_cast<unsigned long long>(events),
        static_cast<unsigned long long>(wall_ns), events_per_sec(),
        sim_per_wall(), static_cast<unsigned long long>(peak_rss),
        static_cast<unsigned long long>(committed_ops),
        safety_ok ? "true" : "false");
    return buf;
  }
};

/// One configuration, in-process. Light client load: at n=1000 the
/// all-to-all vote traffic alone dominates; the point is engine scaling,
/// not batching throughput.
Row run_row(std::uint32_t f, std::uint32_t shards, std::uint32_t workers,
            double sim_seconds) {
  runtime::ClusterConfig cfg;
  cfg.f = f;
  cfg.seed = 1;
  cfg.clients.count = 8;
  cfg.clients.window = 8;
  cfg.clients.payload_size = 64;
  // At n=1000 a modeled round takes ~1.3 s (leader-side crypto plus
  // O(n²) vote/QC traffic), so the first commit lands just inside a flat
  // 2 s view timeout — zero headroom: any extra delay (faults, larger
  // payloads, a slow leader) tips the first round into a spurious view
  // change. Scale the timer with n instead (2 s + 5 ms per replica);
  // the committed_ops column in this short horizon remains bounded by
  // round latency, not by timer churn.
  cfg.consensus.pacemaker.base_timeout_per_replica = Duration::millis(5);

  Row r;
  r.n = 3 * f + 1;
  r.shards = shards;
  r.sim_seconds = sim_seconds;

  const TimePoint end =
      TimePoint::origin() + Duration::from_seconds_f(sim_seconds);
  if (shards <= 1) {
    r.workers = 1;
    sim::Simulator sim(cfg.seed);
    runtime::Cluster cluster(sim, cfg);
    cluster.start();
    const std::uint64_t t0 = wall_now_ns();
    sim.run_until(end);
    r.wall_ns = wall_now_ns() - t0;
    r.events = sim.events_executed();
    r.safety_ok = !cluster.any_safety_violation() &&
                  cluster.committed_heights_consistent();
    for (ReplicaId i = 0; i < cluster.n(); ++i) {
      r.committed_ops = std::max(
          r.committed_ops,
          cluster.replica(i).metrics().counter("replica.committed_ops"));
    }
  } else {
    sim::ShardedSimulator::Config ecfg;
    ecfg.seed = cfg.seed;
    ecfg.shards = shards;
    ecfg.workers = workers;
    ecfg.lookahead = cfg.net.one_way_delay;
    sim::ShardedSimulator engine(ecfg);
    r.workers = engine.workers();
    runtime::Cluster cluster(engine, cfg);
    cluster.start();
    const std::uint64_t t0 = wall_now_ns();
    engine.run_until(end);
    r.wall_ns = wall_now_ns() - t0;
    r.events = engine.events_executed();
    r.safety_ok = !cluster.any_safety_violation() &&
                  cluster.committed_heights_consistent();
    for (ReplicaId i = 0; i < cluster.n(); ++i) {
      r.committed_ops = std::max(
          r.committed_ops,
          cluster.replica(i).metrics().counter("replica.committed_ops"));
    }
  }
  r.peak_rss = peak_rss_bytes();
  return r;
}

/// Re-exec this binary for one row and read its JSON line off stdout.
bool run_row_subprocess(const char* self, std::uint32_t f,
                        std::uint32_t shards, std::uint32_t workers,
                        double sim_seconds, std::string* row_json) {
  char cmd[512];
  std::snprintf(cmd, sizeof cmd,
                "'%s' --one --f=%u --shards=%u --workers=%u --seconds=%.3f",
                self, f, shards, workers, sim_seconds);
  FILE* pipe = popen(cmd, "r");
  if (pipe == nullptr) return false;
  std::string out;
  char buf[1024];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  const int rc = pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  *row_json = out;
  return rc == 0 && !out.empty() && out.front() == '{';
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool one = false;
  std::string out = "BENCH_scaling.json";
  std::uint32_t f = 13;
  std::uint32_t shards = 4;
  std::uint32_t workers = 0;  // 0 = engine default (one per core)
  double seconds = 0;         // 0 = mode default
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--one") == 0) {
      one = true;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--f=", 4) == 0) {
      f = static_cast<std::uint32_t>(std::atoi(arg + 4));
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards = static_cast<std::uint32_t>(std::atoi(arg + 9));
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      workers = static_cast<std::uint32_t>(std::atoi(arg + 10));
    } else if (std::strncmp(arg, "--seconds=", 10) == 0) {
      seconds = std::atof(arg + 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_scaling [--quick] [--out=PATH] "
                   "[--shards=K] [--workers=N] [--seconds=S]\n");
      return 2;
    }
  }

  if (one) {
    // Child mode: one configuration, one JSON row on stdout.
    const Row r = run_row(f, shards, workers, seconds > 0 ? seconds : 1.0);
    std::printf("%s\n", r.to_json().c_str());
    return r.safety_ok ? 0 : 1;
  }

  const double sim_seconds = seconds > 0 ? seconds : (quick ? 0.5 : 2.0);
  // f values give n = 3f+1 = 40, 100, 400, 1000.
  std::vector<std::uint32_t> fs = {13, 33};
  if (!quick) {
    fs.push_back(133);
    fs.push_back(333);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(stderr,
               "scaling sweep: n in {%s}, legacy vs %u shards, %u core%s\n",
               quick ? "40,100" : "40,100,400,1000", shards, hw,
               hw == 1 ? "" : "s");

  std::string rows_json;
  bool all_ok = true;
  for (const std::uint32_t fv : fs) {
    for (const std::uint32_t k : {1u, shards}) {
      std::string row;
      const bool ok =
          run_row_subprocess(argv[0], fv, k, workers, sim_seconds, &row);
      all_ok = all_ok && ok;
      if (!ok) {
        std::fprintf(stderr, "row n=%u shards=%u FAILED: %s\n", 3 * fv + 1,
                     k, row.c_str());
        continue;
      }
      if (!rows_json.empty()) rows_json += ",\n  ";
      rows_json += row;
      std::fprintf(stderr, "  %s\n", row.c_str());
    }
  }

  char head[256];
  std::snprintf(head, sizeof head,
                "{\"schema\":\"marlin/scaling/v1\",\"quick\":%s,"
                "\"hardware_concurrency\":%u,\"shards\":%u,\n \"rows\":[\n  ",
                quick ? "true" : "false", hw, shards);
  std::ofstream of(out);
  of << head << rows_json << "\n]}\n";
  if (!of.flush()) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 2;
  }
  std::fprintf(stderr, "wrote %s\n", out.c_str());
  return all_ok ? 0 : 1;
}
