// Micro-benchmarks for the from-scratch crypto stack (google-benchmark).
// These numbers justify the virtual-time cost model in crypto/cost_model.h:
// the simulation charges calibrated ECDSA-class sign/verify costs, and this
// binary shows what our own implementations cost on the host.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/aggregate.h"
#include "crypto/ecdsa.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"

namespace {

using namespace marlin;
using namespace marlin::crypto;

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(2);
  const Bytes key = rng.next_bytes(32);
  const Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_EcdsaSign(benchmark::State& state) {
  const auto key = EcdsaPrivateKey::from_seed(to_bytes("bench"));
  const Hash256 digest = Sha256::digest(to_bytes("message"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign_digest(digest));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const auto key = EcdsaPrivateKey::from_seed(to_bytes("bench"));
  const auto pub = key.public_key();
  const Hash256 digest = Sha256::digest(to_bytes("message"));
  const auto sig = key.sign_digest(digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pub.verify_digest(digest, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_FastSuiteSign(benchmark::State& state) {
  auto suite = make_fast_suite(4, to_bytes("bench"));
  auto signer = suite->signer(0);
  const Bytes msg = to_bytes("vote digest: 32 bytes of content");
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer->sign(msg));
  }
}
BENCHMARK(BM_FastSuiteSign);

void BM_SigGroupVerify(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t quorum = n - (n - 1) / 3;
  auto suite = make_fast_suite(n, to_bytes("bench"));
  const Bytes msg = to_bytes("qc digest");
  std::vector<PartialSig> parts;
  for (std::uint32_t r = 0; r < quorum; ++r) {
    parts.push_back({r, suite->signer(r)->sign(msg)});
  }
  const auto group = SigGroup::combine(parts, quorum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group->verify(suite->verifier(), msg, quorum));
  }
  state.SetLabel("quorum=" + std::to_string(quorum));
}
BENCHMARK(BM_SigGroupVerify)->Arg(4)->Arg(16)->Arg(31)->Arg(91);

}  // namespace

BENCHMARK_MAIN();
