// Shared configuration and table-printing helpers for the per-figure
// benchmark binaries. Every figure bench builds deterministic simulated
// clusters calibrated to the paper's testbed (DESIGN.md §1): 40 ms one-way
// delay, 200 Mbps provisioned links, 1 Gbps NICs, ECDSA-cost crypto,
// LevelDB-class storage, checkpoint every 5000 blocks, 150 B requests and
// replies.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/export.h"
#include "runtime/experiment.h"

namespace marlin::bench {

using runtime::ClusterConfig;
using runtime::ProtocolKind;

inline const char* protocol_name(ProtocolKind p) {
  return p == ProtocolKind::kMarlin ? "marlin" : "hotstuff";
}

/// Paper-calibrated base configuration for a given f.
inline ClusterConfig paper_config(std::uint32_t f, ProtocolKind protocol) {
  ClusterConfig cfg;
  cfg.f = f;
  cfg.consensus.protocol = protocol;
  cfg.net.one_way_delay = Duration::millis(40);
  cfg.net.link_bandwidth_bps = 200e6;
  cfg.net.nic_bandwidth_bps = 1e9;
  cfg.consensus.max_batch_ops = 32000;
  // One consensus instance at a time (propose after decide). This is the
  // operating mode whose throughput ratios match the paper's measurements;
  // fully-chained pipelining (pipelined = true, the library default)
  // equalizes both protocols' block rates at saturation — shown explicitly
  // by bench_ablations.
  cfg.consensus.pipelined = false;
  cfg.consensus.checkpoint_interval = 5000;
  cfg.clients.payload_size = 150;
  cfg.consensus.reply_size = 150;
  cfg.clients.count = 32;
  cfg.consensus.pacemaker.base_timeout = Duration::seconds(3);
  cfg.seed = 20220701;
  return cfg;
}

/// Load points (total outstanding client requests) per f, spanning light
/// load through the saturation knee while keeping latencies in the
/// paper's plotted range (≤ ~1 s).
inline std::vector<std::uint32_t> load_points(std::uint32_t f) {
  if (f <= 2) return {2000, 8000, 16000, 32000, 48000};
  if (f <= 5) return {2000, 8000, 16000, 32000};
  if (f <= 10) return {1000, 4000, 8000, 16000};
  return {1000, 4000, 8000};
}

/// Measurement window per f: large clusters commit in coarse ~1 s
/// generations, so short windows quantize badly; average over more of them.
inline Duration measure_for(std::uint32_t f) {
  return f >= 10 ? Duration::seconds(15) : Duration::seconds(5);
}

struct SweepPoint {
  std::uint32_t outstanding;
  runtime::ExperimentReport result;
};

/// Observability artifacts a bench can accumulate across runs and dump at
/// exit: a cluster metrics snapshot (merged additively over every run) and
/// the protocol trace of the runs it was wired into (the ring keeps the
/// newest events when a long sweep overflows it).
struct ObsArtifacts {
  obs::MetricsRegistry metrics;
  obs::TraceSink trace{1u << 17};

  /// Writes <prefix>.metrics.json and <prefix>.trace.jsonl; returns false
  /// if either write fails.
  bool write(const std::string& prefix) const {
    bool ok = obs::write_text_file(prefix + ".metrics.json",
                                   obs::metrics_to_json(metrics));
    ok = obs::write_text_file(prefix + ".trace.jsonl",
                              obs::trace_to_jsonl(trace)) &&
         ok;
    return ok;
  }
};

/// Runs a load sweep for one (f, protocol), printing rows as they finish.
/// With `artifacts`, every run traces into its sink and merges its metrics
/// snapshot (authenticator counting included, for the Table I cross-check).
inline std::vector<SweepPoint> run_sweep(std::uint32_t f,
                                         ProtocolKind protocol,
                                         std::size_t payload_size = 150,
                                         Duration warmup = Duration::seconds(3),
                                         ObsArtifacts* artifacts = nullptr) {
  std::vector<SweepPoint> out;
  for (std::uint32_t outstanding : load_points(f)) {
    ClusterConfig cfg = paper_config(f, protocol);
    cfg.clients.payload_size = payload_size;
    cfg.clients.window = std::max(1u, outstanding / cfg.clients.count);
    if (artifacts) {
      cfg.trace = &artifacts->trace;
      cfg.count_authenticators = true;
    }
    auto opt = runtime::throughput_options(cfg, warmup, measure_for(f));
    opt.metrics = artifacts ? &artifacts->metrics : nullptr;
    auto res = runtime::run_experiment(opt);
    std::printf("%-9s f=%-3u out=%-6u  tput=%8.2f ktx/s  mean=%7.1f ms  "
                "p50=%7.1f  p95=%7.1f  safe=%d\n",
                protocol_name(protocol), f, outstanding,
                res.throughput_ops / 1000.0, res.mean_latency_ms,
                res.p50_latency_ms, res.p95_latency_ms,
                res.safety_ok && res.consistent);
    std::fflush(stdout);
    out.push_back({outstanding, res});
  }
  return out;
}

/// Peak throughput over a sweep (the paper reports the max of its sweep).
inline double peak_ktx(const std::vector<SweepPoint>& sweep) {
  double best = 0;
  for (const auto& p : sweep) {
    best = std::max(best, p.result.throughput_ops / 1000.0);
  }
  return best;
}

inline void print_header(const char* title) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", title);
  std::printf("==================================================================\n");
  std::fflush(stdout);
}

}  // namespace marlin::bench
