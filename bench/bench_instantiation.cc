// Instantiation study (paper §I / §III): signature-group quorum
// certificates versus pairing-based threshold signatures.
//
// The paper observes that HotStuff with conventional signatures
// outperforms the threshold-signature instantiation "unless one tests a
// scenario that 1) has a significant network latency, where the
// cryptographic overhead is less visible, and 2) has a low network
// bandwidth and a large n, where n signatures are no longer bandwidth
// negligible". This bench reproduces that trade-off directly: both
// instantiations at small and large n, on the default network and on a
// slow/skinny network.
#include "bench_common.h"

namespace {

using namespace marlin;
using namespace marlin::bench;

double run(std::uint32_t f, bool threshold, bool skinny_network) {
  ClusterConfig cfg = paper_config(f, ProtocolKind::kMarlin);
  cfg.consensus.use_threshold_sigs = threshold;
  cfg.consensus.max_batch_ops = 500;  // small blocks → QC size/cost visible
  cfg.clients.count = 16;
  cfg.clients.window = 3000 / cfg.clients.count;
  if (skinny_network) {
    // WAN-class: the paper's "significant network latency, low bandwidth"
    // regime where n-signature QCs stop being bandwidth-negligible.
    cfg.net.one_way_delay = Duration::millis(200);
    cfg.net.link_bandwidth_bps = 1e6;                // 1 Mbps links
    cfg.net.nic_bandwidth_bps = 20e6;                // 20 Mbps NIC
    cfg.clients.payload_size = 0;                    // no-op requests
    cfg.consensus.reply_size = 80;
    cfg.consensus.max_batch_ops = 100;               // QC bytes dominate
    cfg.clients.window = 400 / cfg.clients.count;
  }
  auto res = runtime::run_experiment(runtime::throughput_options(
      cfg, Duration::seconds(4), Duration::seconds(6)));
  return res.throughput_ops / 1000.0;
}

}  // namespace

int main() {
  print_header(
      "Instantiation study — signature groups vs threshold signatures "
      "(Marlin)");
  std::printf("%-22s %-4s %-5s %-18s %-18s %-10s\n", "network", "f", "n",
              "sig-group (ktx/s)", "threshold (ktx/s)", "winner");
  struct Row {
    const char* net;
    bool skinny;
    std::uint32_t f;
  };
  const Row rows[] = {
      {"datacenter-class", false, 1},
      {"datacenter-class", false, 10},
      {"high-lat/low-bw", true, 1},
      {"high-lat/low-bw", true, 10},
  };
  for (const Row& r : rows) {
    const double group = run(r.f, false, r.skinny);
    const double threshold = run(r.f, true, r.skinny);
    std::printf("%-22s %-4u %-5u %-18.2f %-18.2f %s\n", r.net, r.f,
                3 * r.f + 1, group, threshold,
                group >= threshold ? "sig-group" : "threshold");
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected (paper §I): signature groups win except at large n on a\n"
      "high-latency, low-bandwidth network, where constant-size threshold\n"
      "QCs pay for their pairing costs with bandwidth savings.\n");
  return 0;
}
