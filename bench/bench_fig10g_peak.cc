// Figure 10g: peak throughput for f = 1..10, 150-byte requests.
//
// Paper reference: Marlin 101.3 → 23.2 ktx/s and HotStuff 79.6 → 20.3
// ktx/s as f grows 1 → 10; Marlin 11.6 %–34.4 % above HotStuff at every f.
// Expected reproduction: monotone decline with f, Marlin consistently on
// top by a single-digit-to-~30 % margin.
#include "bench_common.h"

namespace {

// Loads near each f's saturation knee (peak hunting needs fewer points
// than the full curves).
std::vector<std::uint32_t> peak_loads(std::uint32_t f) {
  if (f <= 2) return {16000, 32000, 48000};
  if (f <= 5) return {8000, 16000, 32000};
  return {4000, 8000, 16000};
}

}  // namespace

int main() {
  using namespace marlin::bench;
  print_header("Figure 10g — Peak throughput, f = 1..10 (150 B requests)");

  std::printf("%-4s %-6s %-14s %-14s %-10s\n", "f", "n", "marlin (ktx/s)",
              "hotstuff (ktx/s)", "marlin adv");
  for (std::uint32_t f = 1; f <= 10; ++f) {
    double best[2] = {0, 0};
    int idx = 0;
    for (ProtocolKind protocol :
         {ProtocolKind::kMarlin, ProtocolKind::kHotStuff}) {
      for (std::uint32_t outstanding : peak_loads(f)) {
        ClusterConfig cfg = paper_config(f, protocol);
        cfg.clients.window = std::max(1u, outstanding / cfg.clients.count);
        auto res = marlin::runtime::run_experiment(
            marlin::runtime::throughput_options(
                cfg, marlin::Duration::seconds(3), measure_for(f)));
        best[idx] = std::max(best[idx], res.throughput_ops / 1000.0);
      }
      ++idx;
    }
    std::printf("%-4u %-6u %-14.2f %-14.2f %+.1f%%\n", f, 3 * f + 1, best[0],
                best[1], (best[0] / best[1] - 1.0) * 100.0);
    std::fflush(stdout);
  }
  return 0;
}
