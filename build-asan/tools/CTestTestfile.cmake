# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-asan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_sim_trace_dump "/root/repo/build-asan/tools/marlin_sim" "--f=1" "--clients=2" "--window=4" "--seconds=2" "--trace-out=/root/repo/build-asan/tools/smoke.trace.jsonl" "--metrics-out=/root/repo/build-asan/tools/smoke.metrics.json" "--spans-out=/root/repo/build-asan/tools/smoke.spans.json" "--timeline")
set_tests_properties(tools_sim_trace_dump PROPERTIES  FIXTURES_SETUP "obs_trace" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_trace_inspect "/root/repo/build-asan/tools/trace_inspect" "/root/repo/build-asan/tools/smoke.trace.jsonl")
set_tests_properties(tools_trace_inspect PROPERTIES  FIXTURES_REQUIRED "obs_trace" PASS_REGULAR_EXPRESSION "leader egress per view" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_span_schema "/root/repo/build-asan/tools/trace_schema_check" "/root/repo/build-asan/tools/smoke.spans.json")
set_tests_properties(tools_span_schema PROPERTIES  FIXTURES_REQUIRED "obs_trace" PASS_REGULAR_EXPRESSION "^ok: " _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_critical_path_marlin "/root/repo/build-asan/tools/trace_inspect" "--critical-path" "--report=none" "/root/repo/build-asan/tools/smoke.trace.jsonl")
set_tests_properties(tools_critical_path_marlin PROPERTIES  FIXTURES_REQUIRED "obs_trace" PASS_REGULAR_EXPRESSION "network round trips: 2" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;39;add_test;/root/repo/tools/CMakeLists.txt;0;")
