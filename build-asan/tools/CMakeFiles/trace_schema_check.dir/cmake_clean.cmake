file(REMOVE_RECURSE
  "CMakeFiles/trace_schema_check.dir/trace_schema_check.cc.o"
  "CMakeFiles/trace_schema_check.dir/trace_schema_check.cc.o.d"
  "trace_schema_check"
  "trace_schema_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_schema_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
