# Empty dependencies file for trace_schema_check.
# This may be replaced when dependencies are built.
