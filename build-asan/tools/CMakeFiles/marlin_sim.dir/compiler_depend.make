# Empty compiler generated dependencies file for marlin_sim.
# This may be replaced when dependencies are built.
