file(REMOVE_RECURSE
  "CMakeFiles/marlin_sim.dir/marlin_sim.cc.o"
  "CMakeFiles/marlin_sim.dir/marlin_sim.cc.o.d"
  "marlin_sim"
  "marlin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marlin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
