
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aggregate.cc" "src/crypto/CMakeFiles/marlin_crypto.dir/aggregate.cc.o" "gcc" "src/crypto/CMakeFiles/marlin_crypto.dir/aggregate.cc.o.d"
  "/root/repo/src/crypto/bigint.cc" "src/crypto/CMakeFiles/marlin_crypto.dir/bigint.cc.o" "gcc" "src/crypto/CMakeFiles/marlin_crypto.dir/bigint.cc.o.d"
  "/root/repo/src/crypto/ecdsa.cc" "src/crypto/CMakeFiles/marlin_crypto.dir/ecdsa.cc.o" "gcc" "src/crypto/CMakeFiles/marlin_crypto.dir/ecdsa.cc.o.d"
  "/root/repo/src/crypto/secp256k1.cc" "src/crypto/CMakeFiles/marlin_crypto.dir/secp256k1.cc.o" "gcc" "src/crypto/CMakeFiles/marlin_crypto.dir/secp256k1.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/marlin_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/marlin_crypto.dir/sha256.cc.o.d"
  "/root/repo/src/crypto/signer.cc" "src/crypto/CMakeFiles/marlin_crypto.dir/signer.cc.o" "gcc" "src/crypto/CMakeFiles/marlin_crypto.dir/signer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/marlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
