# Empty dependencies file for marlin_crypto.
# This may be replaced when dependencies are built.
