file(REMOVE_RECURSE
  "libmarlin_crypto.a"
)
