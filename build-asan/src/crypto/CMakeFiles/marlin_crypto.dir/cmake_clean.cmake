file(REMOVE_RECURSE
  "CMakeFiles/marlin_crypto.dir/aggregate.cc.o"
  "CMakeFiles/marlin_crypto.dir/aggregate.cc.o.d"
  "CMakeFiles/marlin_crypto.dir/bigint.cc.o"
  "CMakeFiles/marlin_crypto.dir/bigint.cc.o.d"
  "CMakeFiles/marlin_crypto.dir/ecdsa.cc.o"
  "CMakeFiles/marlin_crypto.dir/ecdsa.cc.o.d"
  "CMakeFiles/marlin_crypto.dir/secp256k1.cc.o"
  "CMakeFiles/marlin_crypto.dir/secp256k1.cc.o.d"
  "CMakeFiles/marlin_crypto.dir/sha256.cc.o"
  "CMakeFiles/marlin_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/marlin_crypto.dir/signer.cc.o"
  "CMakeFiles/marlin_crypto.dir/signer.cc.o.d"
  "libmarlin_crypto.a"
  "libmarlin_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marlin_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
