file(REMOVE_RECURSE
  "CMakeFiles/marlin_simnet.dir/network.cc.o"
  "CMakeFiles/marlin_simnet.dir/network.cc.o.d"
  "CMakeFiles/marlin_simnet.dir/simulator.cc.o"
  "CMakeFiles/marlin_simnet.dir/simulator.cc.o.d"
  "libmarlin_simnet.a"
  "libmarlin_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marlin_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
