# Empty dependencies file for marlin_simnet.
# This may be replaced when dependencies are built.
