
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/network.cc" "src/simnet/CMakeFiles/marlin_simnet.dir/network.cc.o" "gcc" "src/simnet/CMakeFiles/marlin_simnet.dir/network.cc.o.d"
  "/root/repo/src/simnet/simulator.cc" "src/simnet/CMakeFiles/marlin_simnet.dir/simulator.cc.o" "gcc" "src/simnet/CMakeFiles/marlin_simnet.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/marlin_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/marlin_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
