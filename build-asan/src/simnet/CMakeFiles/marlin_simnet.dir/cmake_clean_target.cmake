file(REMOVE_RECURSE
  "libmarlin_simnet.a"
)
