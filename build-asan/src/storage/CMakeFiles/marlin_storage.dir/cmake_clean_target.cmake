file(REMOVE_RECURSE
  "libmarlin_storage.a"
)
