file(REMOVE_RECURSE
  "CMakeFiles/marlin_storage.dir/env.cc.o"
  "CMakeFiles/marlin_storage.dir/env.cc.o.d"
  "CMakeFiles/marlin_storage.dir/kvstore.cc.o"
  "CMakeFiles/marlin_storage.dir/kvstore.cc.o.d"
  "CMakeFiles/marlin_storage.dir/sstable.cc.o"
  "CMakeFiles/marlin_storage.dir/sstable.cc.o.d"
  "CMakeFiles/marlin_storage.dir/wal.cc.o"
  "CMakeFiles/marlin_storage.dir/wal.cc.o.d"
  "libmarlin_storage.a"
  "libmarlin_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marlin_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
