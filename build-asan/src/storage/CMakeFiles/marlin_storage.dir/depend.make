# Empty dependencies file for marlin_storage.
# This may be replaced when dependencies are built.
