
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/critical_path.cc" "src/obs/CMakeFiles/marlin_obs.dir/critical_path.cc.o" "gcc" "src/obs/CMakeFiles/marlin_obs.dir/critical_path.cc.o.d"
  "/root/repo/src/obs/export.cc" "src/obs/CMakeFiles/marlin_obs.dir/export.cc.o" "gcc" "src/obs/CMakeFiles/marlin_obs.dir/export.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/obs/CMakeFiles/marlin_obs.dir/metrics.cc.o" "gcc" "src/obs/CMakeFiles/marlin_obs.dir/metrics.cc.o.d"
  "/root/repo/src/obs/span.cc" "src/obs/CMakeFiles/marlin_obs.dir/span.cc.o" "gcc" "src/obs/CMakeFiles/marlin_obs.dir/span.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/obs/CMakeFiles/marlin_obs.dir/trace.cc.o" "gcc" "src/obs/CMakeFiles/marlin_obs.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/marlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
