file(REMOVE_RECURSE
  "libmarlin_obs.a"
)
