# Empty dependencies file for marlin_obs.
# This may be replaced when dependencies are built.
