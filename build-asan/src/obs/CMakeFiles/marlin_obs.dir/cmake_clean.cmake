file(REMOVE_RECURSE
  "CMakeFiles/marlin_obs.dir/critical_path.cc.o"
  "CMakeFiles/marlin_obs.dir/critical_path.cc.o.d"
  "CMakeFiles/marlin_obs.dir/export.cc.o"
  "CMakeFiles/marlin_obs.dir/export.cc.o.d"
  "CMakeFiles/marlin_obs.dir/metrics.cc.o"
  "CMakeFiles/marlin_obs.dir/metrics.cc.o.d"
  "CMakeFiles/marlin_obs.dir/span.cc.o"
  "CMakeFiles/marlin_obs.dir/span.cc.o.d"
  "CMakeFiles/marlin_obs.dir/trace.cc.o"
  "CMakeFiles/marlin_obs.dir/trace.cc.o.d"
  "libmarlin_obs.a"
  "libmarlin_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marlin_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
