# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("crypto")
subdirs("simnet")
subdirs("storage")
subdirs("types")
subdirs("consensus")
subdirs("runtime")
