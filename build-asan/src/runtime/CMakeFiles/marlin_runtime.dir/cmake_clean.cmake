file(REMOVE_RECURSE
  "CMakeFiles/marlin_runtime.dir/client_process.cc.o"
  "CMakeFiles/marlin_runtime.dir/client_process.cc.o.d"
  "CMakeFiles/marlin_runtime.dir/cluster.cc.o"
  "CMakeFiles/marlin_runtime.dir/cluster.cc.o.d"
  "CMakeFiles/marlin_runtime.dir/experiment.cc.o"
  "CMakeFiles/marlin_runtime.dir/experiment.cc.o.d"
  "CMakeFiles/marlin_runtime.dir/replica_process.cc.o"
  "CMakeFiles/marlin_runtime.dir/replica_process.cc.o.d"
  "libmarlin_runtime.a"
  "libmarlin_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marlin_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
