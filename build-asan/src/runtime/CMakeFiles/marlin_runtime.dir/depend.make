# Empty dependencies file for marlin_runtime.
# This may be replaced when dependencies are built.
