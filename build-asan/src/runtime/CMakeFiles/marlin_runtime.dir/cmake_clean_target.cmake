file(REMOVE_RECURSE
  "libmarlin_runtime.a"
)
