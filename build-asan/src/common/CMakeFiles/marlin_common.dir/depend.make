# Empty dependencies file for marlin_common.
# This may be replaced when dependencies are built.
