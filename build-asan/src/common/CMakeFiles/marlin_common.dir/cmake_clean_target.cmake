file(REMOVE_RECURSE
  "libmarlin_common.a"
)
