file(REMOVE_RECURSE
  "CMakeFiles/marlin_common.dir/bytes.cc.o"
  "CMakeFiles/marlin_common.dir/bytes.cc.o.d"
  "CMakeFiles/marlin_common.dir/crc32c.cc.o"
  "CMakeFiles/marlin_common.dir/crc32c.cc.o.d"
  "CMakeFiles/marlin_common.dir/log.cc.o"
  "CMakeFiles/marlin_common.dir/log.cc.o.d"
  "CMakeFiles/marlin_common.dir/rng.cc.o"
  "CMakeFiles/marlin_common.dir/rng.cc.o.d"
  "CMakeFiles/marlin_common.dir/serialize.cc.o"
  "CMakeFiles/marlin_common.dir/serialize.cc.o.d"
  "CMakeFiles/marlin_common.dir/sim_time.cc.o"
  "CMakeFiles/marlin_common.dir/sim_time.cc.o.d"
  "CMakeFiles/marlin_common.dir/status.cc.o"
  "CMakeFiles/marlin_common.dir/status.cc.o.d"
  "libmarlin_common.a"
  "libmarlin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marlin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
