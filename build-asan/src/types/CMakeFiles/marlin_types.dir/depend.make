# Empty dependencies file for marlin_types.
# This may be replaced when dependencies are built.
