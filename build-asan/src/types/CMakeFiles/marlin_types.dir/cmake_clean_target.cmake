file(REMOVE_RECURSE
  "libmarlin_types.a"
)
