file(REMOVE_RECURSE
  "CMakeFiles/marlin_types.dir/block.cc.o"
  "CMakeFiles/marlin_types.dir/block.cc.o.d"
  "CMakeFiles/marlin_types.dir/block_store.cc.o"
  "CMakeFiles/marlin_types.dir/block_store.cc.o.d"
  "CMakeFiles/marlin_types.dir/messages.cc.o"
  "CMakeFiles/marlin_types.dir/messages.cc.o.d"
  "CMakeFiles/marlin_types.dir/quorum_cert.cc.o"
  "CMakeFiles/marlin_types.dir/quorum_cert.cc.o.d"
  "libmarlin_types.a"
  "libmarlin_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marlin_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
