
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/block.cc" "src/types/CMakeFiles/marlin_types.dir/block.cc.o" "gcc" "src/types/CMakeFiles/marlin_types.dir/block.cc.o.d"
  "/root/repo/src/types/block_store.cc" "src/types/CMakeFiles/marlin_types.dir/block_store.cc.o" "gcc" "src/types/CMakeFiles/marlin_types.dir/block_store.cc.o.d"
  "/root/repo/src/types/messages.cc" "src/types/CMakeFiles/marlin_types.dir/messages.cc.o" "gcc" "src/types/CMakeFiles/marlin_types.dir/messages.cc.o.d"
  "/root/repo/src/types/quorum_cert.cc" "src/types/CMakeFiles/marlin_types.dir/quorum_cert.cc.o" "gcc" "src/types/CMakeFiles/marlin_types.dir/quorum_cert.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/marlin_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/marlin_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
