file(REMOVE_RECURSE
  "CMakeFiles/marlin_consensus.dir/hotstuff.cc.o"
  "CMakeFiles/marlin_consensus.dir/hotstuff.cc.o.d"
  "CMakeFiles/marlin_consensus.dir/marlin.cc.o"
  "CMakeFiles/marlin_consensus.dir/marlin.cc.o.d"
  "CMakeFiles/marlin_consensus.dir/replica_base.cc.o"
  "CMakeFiles/marlin_consensus.dir/replica_base.cc.o.d"
  "libmarlin_consensus.a"
  "libmarlin_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marlin_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
