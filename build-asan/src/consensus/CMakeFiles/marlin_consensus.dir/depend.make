# Empty dependencies file for marlin_consensus.
# This may be replaced when dependencies are built.
