file(REMOVE_RECURSE
  "libmarlin_consensus.a"
)
