file(REMOVE_RECURSE
  "CMakeFiles/view_change_demo.dir/view_change_demo.cpp.o"
  "CMakeFiles/view_change_demo.dir/view_change_demo.cpp.o.d"
  "view_change_demo"
  "view_change_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_change_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
