# Empty compiler generated dependencies file for view_change_demo.
# This may be replaced when dependencies are built.
