# Empty dependencies file for kv_service.
# This may be replaced when dependencies are built.
