file(REMOVE_RECURSE
  "CMakeFiles/kv_service.dir/kv_service.cpp.o"
  "CMakeFiles/kv_service.dir/kv_service.cpp.o.d"
  "kv_service"
  "kv_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
