# Empty compiler generated dependencies file for byzantine_leader.
# This may be replaced when dependencies are built.
