file(REMOVE_RECURSE
  "CMakeFiles/byzantine_leader.dir/byzantine_leader.cpp.o"
  "CMakeFiles/byzantine_leader.dir/byzantine_leader.cpp.o.d"
  "byzantine_leader"
  "byzantine_leader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_leader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
