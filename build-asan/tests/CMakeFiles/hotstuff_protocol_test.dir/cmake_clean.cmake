file(REMOVE_RECURSE
  "CMakeFiles/hotstuff_protocol_test.dir/hotstuff_protocol_test.cc.o"
  "CMakeFiles/hotstuff_protocol_test.dir/hotstuff_protocol_test.cc.o.d"
  "hotstuff_protocol_test"
  "hotstuff_protocol_test.pdb"
  "hotstuff_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotstuff_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
