# Empty compiler generated dependencies file for trace_golden_test.
# This may be replaced when dependencies are built.
