file(REMOVE_RECURSE
  "CMakeFiles/trace_golden_test.dir/trace_golden_test.cc.o"
  "CMakeFiles/trace_golden_test.dir/trace_golden_test.cc.o.d"
  "trace_golden_test"
  "trace_golden_test.pdb"
  "trace_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
