file(REMOVE_RECURSE
  "CMakeFiles/span_test.dir/span_test.cc.o"
  "CMakeFiles/span_test.dir/span_test.cc.o.d"
  "span_test"
  "span_test.pdb"
  "span_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/span_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
