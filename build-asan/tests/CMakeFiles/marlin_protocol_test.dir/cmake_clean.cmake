file(REMOVE_RECURSE
  "CMakeFiles/marlin_protocol_test.dir/marlin_protocol_test.cc.o"
  "CMakeFiles/marlin_protocol_test.dir/marlin_protocol_test.cc.o.d"
  "marlin_protocol_test"
  "marlin_protocol_test.pdb"
  "marlin_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marlin_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
