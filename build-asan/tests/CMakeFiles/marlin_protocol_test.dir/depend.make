# Empty dependencies file for marlin_protocol_test.
# This may be replaced when dependencies are built.
