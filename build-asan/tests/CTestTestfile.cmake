# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/common_test[1]_include.cmake")
include("/root/repo/build-asan/tests/crypto_test[1]_include.cmake")
include("/root/repo/build-asan/tests/simnet_test[1]_include.cmake")
include("/root/repo/build-asan/tests/storage_test[1]_include.cmake")
include("/root/repo/build-asan/tests/types_test[1]_include.cmake")
include("/root/repo/build-asan/tests/marlin_protocol_test[1]_include.cmake")
include("/root/repo/build-asan/tests/hotstuff_protocol_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/property_test[1]_include.cmake")
include("/root/repo/build-asan/tests/runtime_test[1]_include.cmake")
include("/root/repo/build-asan/tests/threshold_test[1]_include.cmake")
include("/root/repo/build-asan/tests/wire_golden_test[1]_include.cmake")
include("/root/repo/build-asan/tests/obs_test[1]_include.cmake")
include("/root/repo/build-asan/tests/span_test[1]_include.cmake")
include("/root/repo/build-asan/tests/trace_golden_test[1]_include.cmake")
add_test(example_quickstart "/root/repo/build-asan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_kv_service "/root/repo/build-asan/examples/kv_service")
set_tests_properties(example_kv_service PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_view_change_demo "/root/repo/build-asan/examples/view_change_demo")
set_tests_properties(example_view_change_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;39;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_byzantine_leader "/root/repo/build-asan/examples/byzantine_leader")
set_tests_properties(example_byzantine_leader PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_marlin_sim "/root/repo/build-asan/tools/marlin_sim" "--f=1" "--seconds=6" "--window=8")
set_tests_properties(tool_marlin_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
