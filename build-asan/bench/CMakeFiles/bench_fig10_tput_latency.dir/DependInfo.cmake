
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_tput_latency.cc" "bench/CMakeFiles/bench_fig10_tput_latency.dir/bench_fig10_tput_latency.cc.o" "gcc" "bench/CMakeFiles/bench_fig10_tput_latency.dir/bench_fig10_tput_latency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/obs/CMakeFiles/marlin_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/runtime/CMakeFiles/marlin_runtime.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/consensus/CMakeFiles/marlin_consensus.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/types/CMakeFiles/marlin_types.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/storage/CMakeFiles/marlin_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simnet/CMakeFiles/marlin_simnet.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/marlin_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/marlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
