# Empty compiler generated dependencies file for bench_fig10_tput_latency.
# This may be replaced when dependencies are built.
