file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_complexity.dir/bench_table1_complexity.cc.o"
  "CMakeFiles/bench_table1_complexity.dir/bench_table1_complexity.cc.o.d"
  "bench_table1_complexity"
  "bench_table1_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
