# Empty dependencies file for bench_fig10g_peak.
# This may be replaced when dependencies are built.
