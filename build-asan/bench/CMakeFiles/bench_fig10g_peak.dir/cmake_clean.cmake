file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10g_peak.dir/bench_fig10g_peak.cc.o"
  "CMakeFiles/bench_fig10g_peak.dir/bench_fig10g_peak.cc.o.d"
  "bench_fig10g_peak"
  "bench_fig10g_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10g_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
