file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10h_noop.dir/bench_fig10h_noop.cc.o"
  "CMakeFiles/bench_fig10h_noop.dir/bench_fig10h_noop.cc.o.d"
  "bench_fig10h_noop"
  "bench_fig10h_noop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10h_noop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
