# Empty dependencies file for bench_fig10h_noop.
# This may be replaced when dependencies are built.
