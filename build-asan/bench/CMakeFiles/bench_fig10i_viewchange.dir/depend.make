# Empty dependencies file for bench_fig10i_viewchange.
# This may be replaced when dependencies are built.
