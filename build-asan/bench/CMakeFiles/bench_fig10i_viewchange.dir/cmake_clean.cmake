file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10i_viewchange.dir/bench_fig10i_viewchange.cc.o"
  "CMakeFiles/bench_fig10i_viewchange.dir/bench_fig10i_viewchange.cc.o.d"
  "bench_fig10i_viewchange"
  "bench_fig10i_viewchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10i_viewchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
