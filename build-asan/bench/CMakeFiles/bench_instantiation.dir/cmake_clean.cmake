file(REMOVE_RECURSE
  "CMakeFiles/bench_instantiation.dir/bench_instantiation.cc.o"
  "CMakeFiles/bench_instantiation.dir/bench_instantiation.cc.o.d"
  "bench_instantiation"
  "bench_instantiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instantiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
