# Empty dependencies file for bench_instantiation.
# This may be replaced when dependencies are built.
