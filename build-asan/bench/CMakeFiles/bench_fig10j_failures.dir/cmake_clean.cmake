file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10j_failures.dir/bench_fig10j_failures.cc.o"
  "CMakeFiles/bench_fig10j_failures.dir/bench_fig10j_failures.cc.o.d"
  "bench_fig10j_failures"
  "bench_fig10j_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10j_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
