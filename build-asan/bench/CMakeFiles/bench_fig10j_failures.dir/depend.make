# Empty dependencies file for bench_fig10j_failures.
# This may be replaced when dependencies are built.
