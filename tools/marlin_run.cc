// marlin_run — launch a real BFT cluster on localhost TCP (src/realnet).
//
// The metal twin of marlin_sim: the same consensus core and the same
// runtime::ClusterConfig vocabulary, but every replica and client is a
// live thread speaking length-prefixed frames over 127.0.0.1 sockets and
// pacing itself off the monotonic clock.
//
//   marlin_run --f=1 --clients=4 --seconds=5
//   marlin_run --config=cluster.json --metrics-out=run.json
//   marlin_run --f=1 --data-dir=/tmp/run1 --kill=2@1.5 --relaunch=2@3
//
// The JSON config mirrors ClusterConfig field names (flags override it):
//
//   {"protocol": "marlin", "f": 1, "seed": 7,
//    "clients": {"count": 4, "window": 16, "payload_size": 150},
//    "pacemaker": {"base_timeout_ms": 500, "timeout_jitter": 0.2},
//    "consensus": {"max_batch_ops": 4000, "checkpoint_interval": 5000}}
//
// Prints a one-line summary plus a per-replica table; exits non-zero on a
// safety violation, inconsistent commit prefixes, or (with --min-commits)
// too little progress — which is what the CI smoke job pins.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_flags.h"
#include "common/json.h"
#include "obs/export.h"
#include "obs/telemetry.h"
#include "realnet/real_cluster.h"

using namespace marlin;

namespace {

using realnet::RealCluster;
using realnet::RealClusterOptions;

struct CrashEvent {
  ReplicaId replica = 0;
  double at_seconds = 0;
  bool relaunch = false;  // false = kill
  bool done = false;
};

struct Options {
  runtime::ClusterConfig cluster;
  RealClusterOptions real;
  double seconds = 5;
  double warmup = 0.5;
  std::uint64_t min_commits = 0;  // exit 1 below this (0 = no gate)
  std::vector<CrashEvent> events;
  std::string config_path;
  std::string metrics_out;
  std::string trace_out;
  std::string metrics_series_out;
  std::string metrics_prom_out;
  double metrics_interval = 0;  // 0 = default 1 s when a series is written
  bool help = false;
};

void usage() {
  std::printf(
      "marlin_run — run a real-socket BFT cluster on localhost TCP\n\n"
      "  --config=PATH       JSON cluster config (field names mirror\n"
      "                      ClusterConfig; explicit flags override it)\n"
      "  --protocol=NAME     marlin | hotstuff (default marlin)\n"
      "  --f=N               fault threshold; n = 3f+1 (default 1)\n"
      "  --clients=N         closed-loop clients (default 4)\n"
      "  --window=N          outstanding requests per client (default 16)\n"
      "  --payload=BYTES     request payload size (default 150)\n"
      "  --seconds=S         wall-clock run duration (default 5)\n"
      "  --warmup=S          throughput window starts here (default 0.5)\n"
      "  --seed=N            cluster seed: keys + client payloads (7)\n"
      "  --timeout-ms=N      pacemaker base timeout (default 500)\n"
      "  --verify-workers=N  off-loop crypto pre-verification threads per\n"
      "                      replica (default 0 = verify inline)\n"
      "  --data-dir=PATH     durable replica stores under PATH/r<i>\n"
      "                      (default in-memory; required for recovery)\n"
      "  --kill=I@S          hard-kill replica I at S seconds\n"
      "  --relaunch=I@S      relaunch replica I at S seconds (restores\n"
      "                      from its data dir and rejoins over TCP)\n"
      "  --min-commits=N     exit 1 unless >= N client ops commit\n"
      "  --metrics-out=PATH  write a JSON metrics snapshot\n"
      "  --trace-out=PATH    dump the merged protocol trace as JSONL\n"
      "  --telemetry         serve live /metrics /status /healthz per\n"
      "                      replica on ephemeral 127.0.0.1 ports\n"
      "  --telemetry-port=P  fixed telemetry ports: replica i on P+i\n"
      "                      (implies --telemetry)\n"
      "  --metrics-series-out=PATH  append JSONL metric snapshots every\n"
      "                      --metrics-interval seconds (live trajectory;\n"
      "                      same schema as marlin_sim's series)\n"
      "  --metrics-interval=S  sampling period for the series (default 1)\n"
      "  --metrics-prom-out=PATH  write the final metrics snapshot as\n"
      "                      Prometheus text exposition\n");
}

bool parse_crash(const std::string& v, bool relaunch, Options* opt) {
  unsigned replica = 0;
  double at = 0;
  if (std::sscanf(v.c_str(), "%u@%lf", &replica, &at) != 2) {
    std::fprintf(stderr, "bad %s spec '%s' (want I@SECONDS)\n",
                 relaunch ? "--relaunch" : "--kill", v.c_str());
    return false;
  }
  opt->events.push_back(CrashEvent{replica, at, relaunch, false});
  return true;
}

bool parse_protocol(const std::string& name, runtime::ProtocolKind* kind) {
  if (name == "marlin") {
    *kind = runtime::ProtocolKind::kMarlin;
    return true;
  }
  if (name == "hotstuff") {
    *kind = runtime::ProtocolKind::kHotStuff;
    return true;
  }
  std::fprintf(stderr, "unknown protocol '%s'\n", name.c_str());
  return false;
}

/// Applies a parsed JSON config document onto `cluster`. Field names mirror
/// the ClusterConfig struct; absent fields keep their current values.
bool apply_config(const json::Object& doc, runtime::ClusterConfig* cluster) {
  cluster->f = static_cast<std::uint32_t>(json::get_num(doc, "f", cluster->f));
  cluster->seed = static_cast<std::uint64_t>(
      json::get_num(doc, "seed", static_cast<double>(cluster->seed)));
  if (const std::string name = json::get_str(doc, "protocol", "");
      !name.empty() && !parse_protocol(name, &cluster->consensus.protocol)) {
    return false;
  }
  if (const json::Object* c = json::get_object(doc, "clients")) {
    auto& cl = cluster->clients;
    cl.count = static_cast<std::uint32_t>(json::get_num(*c, "count", cl.count));
    cl.window =
        static_cast<std::uint32_t>(json::get_num(*c, "window", cl.window));
    cl.payload_size = static_cast<std::size_t>(
        json::get_num(*c, "payload_size", static_cast<double>(cl.payload_size)));
    cl.max_requests = static_cast<std::uint64_t>(json::get_num(
        *c, "max_requests", static_cast<double>(cl.max_requests)));
    cl.retransmit_timeout = Duration::millis(static_cast<std::int64_t>(
        json::get_num(*c, "retransmit_timeout_ms",
                      cl.retransmit_timeout.as_millis_f())));
  }
  if (const json::Object* p = json::get_object(doc, "pacemaker")) {
    auto& pm = cluster->consensus.pacemaker;
    pm.base_timeout = Duration::millis(static_cast<std::int64_t>(json::get_num(
        *p, "base_timeout_ms", pm.base_timeout.as_millis_f())));
    pm.max_timeout = Duration::millis(static_cast<std::int64_t>(json::get_num(
        *p, "max_timeout_ms", pm.max_timeout.as_millis_f())));
    pm.backoff_factor = json::get_num(*p, "backoff_factor", pm.backoff_factor);
    pm.timeout_jitter = json::get_num(*p, "timeout_jitter", pm.timeout_jitter);
    pm.base_timeout_per_replica = Duration::micros(static_cast<std::int64_t>(
        1000.0 * json::get_num(*p, "base_timeout_per_replica_ms",
                               pm.base_timeout_per_replica.as_millis_f())));
  }
  if (const json::Object* c = json::get_object(doc, "consensus")) {
    auto& cons = cluster->consensus;
    cons.max_batch_ops = static_cast<std::size_t>(json::get_num(
        *c, "max_batch_ops", static_cast<double>(cons.max_batch_ops)));
    cons.pipelined = json::get_bool(*c, "pipelined", cons.pipelined);
    cons.allow_empty_blocks =
        json::get_bool(*c, "allow_empty_blocks", cons.allow_empty_blocks);
    cons.checkpoint_interval = static_cast<std::uint64_t>(json::get_num(
        *c, "checkpoint_interval",
        static_cast<double>(cons.checkpoint_interval)));
    cons.reply_size = static_cast<std::size_t>(json::get_num(
        *c, "reply_size", static_cast<double>(cons.reply_size)));
  }
  return true;
}

bool load_config(const std::string& path, runtime::ClusterConfig* cluster) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read config %s\n", path.c_str());
    return false;
  }
  std::ostringstream body;
  body << in.rdbuf();
  Result<json::Value> doc = json::parse(body.str());
  if (!doc.is_ok()) {
    std::fprintf(stderr, "bad config %s: %s\n", path.c_str(),
                 doc.status().message().c_str());
    return false;
  }
  const json::Object* obj = doc.value().object();
  if (obj == nullptr) {
    std::fprintf(stderr, "bad config %s: top level must be an object\n",
                 path.c_str());
    return false;
  }
  return apply_config(*obj, cluster);
}

bool parse_options(int argc, char** argv, Options* opt) {
  // Real-clock defaults: the sim's 2 s pacemaker base would make a 5 s
  // localhost run mostly silence after any hiccup.
  opt->cluster.seed = 7;
  opt->cluster.clients.count = 4;
  opt->cluster.consensus.pacemaker.base_timeout = Duration::millis(500);
  opt->cluster.consensus.pacemaker.timeout_jitter = 0.2;

  // Two passes so "flags override config" regardless of argument order:
  // find --config first, then let every other flag overwrite it.
  {
    cli::ArgCursor scan(argc, argv);
    while (scan.next()) {
      std::string v;
      if (scan.str("--config", &v)) opt->config_path = v;
    }
  }
  if (!opt->config_path.empty() &&
      !load_config(opt->config_path, &opt->cluster)) {
    return false;
  }

  cli::ArgCursor args(argc, argv);
  while (args.next()) {
    std::string v;
    if (args.flag("--help")) {
      opt->help = true;
    } else if (args.str("--config", &v)) {
      // handled above
    } else if (args.str("--protocol", &v)) {
      if (!parse_protocol(v, &opt->cluster.consensus.protocol)) return false;
    } else if (args.u32("--f", &opt->cluster.f)) {
    } else if (args.u32("--clients", &opt->cluster.clients.count)) {
    } else if (args.u32("--window", &opt->cluster.clients.window)) {
    } else if (args.size("--payload", &opt->cluster.clients.payload_size)) {
    } else if (args.f64("--seconds", &opt->seconds)) {
    } else if (args.f64("--warmup", &opt->warmup)) {
    } else if (args.u64("--seed", &opt->cluster.seed)) {
    } else if (args.millis("--timeout-ms",
                           &opt->cluster.consensus.pacemaker.base_timeout)) {
    } else if (args.size("--verify-workers", &opt->real.verify_workers)) {
    } else if (args.str("--data-dir", &v)) {
      opt->real.data_dir = v;
    } else if (args.str("--kill", &v)) {
      if (!parse_crash(v, /*relaunch=*/false, opt)) return false;
    } else if (args.str("--relaunch", &v)) {
      if (!parse_crash(v, /*relaunch=*/true, opt)) return false;
    } else if (args.u64("--min-commits", &opt->min_commits)) {
    } else if (args.str("--metrics-out", &opt->metrics_out)) {
    } else if (args.str("--trace-out", &opt->trace_out)) {
    } else if (args.flag("--telemetry")) {
      opt->real.telemetry = true;
    } else if (args.u16("--telemetry-port", &opt->real.telemetry_base_port)) {
      opt->real.telemetry = true;
    } else if (args.str("--metrics-series-out", &opt->metrics_series_out)) {
    } else if (args.f64("--metrics-interval", &opt->metrics_interval)) {
    } else if (args.str("--metrics-prom-out", &opt->metrics_prom_out)) {
    } else {
      args.fail_unknown();
    }
  }
  if (!args.ok()) return false;

  for (const CrashEvent& e : opt->events) {
    const std::uint32_t n = 3 * opt->cluster.f + 1;
    if (e.replica >= n) {
      std::fprintf(stderr, "--%s replica %u out of range (n=%u)\n",
                   e.relaunch ? "relaunch" : "kill", e.replica, n);
      return false;
    }
    if (e.relaunch && opt->real.data_dir.empty()) {
      std::fprintf(stderr,
                   "--relaunch needs --data-dir (an in-memory replica has "
                   "nothing to recover from)\n");
      return false;
    }
  }
  return true;
}

std::string metrics_json(const RealCluster& cluster, const Options& opt,
                         const net::NodeNetStats& wire, bool relaunch_ok) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\"protocol\":\"%s\",\"n\":%u,\"clients\":%u,\"window\":%u,"
      "\"seconds\":%.3f,\"throughput_ops\":%.1f,\"latency_p50_ms\":%.3f,"
      "\"latency_p99_ms\":%.3f,\"latency_mean_ms\":%.3f,"
      "\"total_completed\":%llu,\"min_committed_height\":%llu,"
      "\"safety_ok\":%s,\"consistent\":%s,\"relaunch_ok\":%s,"
      "\"wire_bytes_sent\":%llu,\"wire_bytes_delivered\":%llu,"
      "\"wire_messages_dropped\":%llu}",
      cluster.config().consensus.protocol == runtime::ProtocolKind::kMarlin
          ? "marlin"
          : "hotstuff",
      cluster.n(), cluster.client_count(), opt.cluster.clients.window,
      opt.seconds, cluster.client_throughput(), cluster.latency_ms(50),
      cluster.latency_ms(99), cluster.mean_latency_ms(),
      static_cast<unsigned long long>(cluster.total_completed()),
      static_cast<unsigned long long>(cluster.min_committed_height()),
      cluster.any_safety_violation() ? "false" : "true",
      cluster.committed_heights_consistent() ? "true" : "false",
      relaunch_ok ? "true" : "false",
      static_cast<unsigned long long>(wire.bytes_sent),
      static_cast<unsigned long long>(wire.bytes_delivered),
      static_cast<unsigned long long>(wire.messages_dropped));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage();
    return 0;
  }

  opt.real.trace = !opt.trace_out.empty();
  RealCluster cluster(opt.cluster, opt.real);
  if (!cluster.ok().is_ok()) {
    std::fprintf(stderr, "cluster init failed: %s\n",
                 cluster.ok().message().c_str());
    return 2;
  }
  if (!opt.trace_out.empty() && !cluster.tracing()) {
    // merged_trace_events() is silently empty without tracing; make the
    // would-be-empty dump loud instead of mysterious.
    std::fprintf(stderr,
                 "warning: --trace-out given but tracing is disabled; the "
                 "trace file will be empty\n");
  }

  std::ofstream series;
  if (!opt.metrics_series_out.empty()) {
    series.open(opt.metrics_series_out, std::ios::trunc);
    if (!series) {
      std::fprintf(stderr, "cannot write %s\n",
                   opt.metrics_series_out.c_str());
      return 2;
    }
    if (opt.metrics_interval <= 0) opt.metrics_interval = 1.0;
  } else if (opt.metrics_interval > 0) {
    std::fprintf(stderr,
                 "warning: --metrics-interval without --metrics-series-out "
                 "has no effect\n");
  }

  const TimePoint t0 = realnet::mono_now();
  cluster.set_measurement_window(t0 + Duration::from_seconds_f(opt.warmup),
                                 t0 + Duration::from_seconds_f(opt.seconds));
  cluster.start();

  if (opt.real.telemetry) {
    std::printf("telemetry:");
    for (std::uint32_t i = 0; i < cluster.n(); ++i) {
      std::printf(" r%u=http://127.0.0.1:%u", i, cluster.telemetry_port(i));
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  // Drive the wall clock: sleep in short slices, firing any scheduled
  // kill/relaunch events as their times pass and appending metric-series
  // samples on their own cadence.
  bool relaunch_ok = true;
  const TimePoint end = t0 + Duration::from_seconds_f(opt.seconds);
  double next_sample = opt.metrics_interval;
  while (realnet::mono_now() < end) {
    const double elapsed = (realnet::mono_now() - t0).as_seconds_f();
    if (series.is_open() && elapsed >= next_sample) {
      obs::MetricsRegistry snap = cluster.sample_metrics();
      series << obs::metrics_series_line(elapsed, snap) << '\n';
      series.flush();
      next_sample += opt.metrics_interval;
    }
    for (CrashEvent& e : opt.events) {
      if (e.done || elapsed < e.at_seconds) continue;
      e.done = true;
      if (e.relaunch) {
        if (Status s = cluster.relaunch_replica(e.replica); !s.is_ok()) {
          std::fprintf(stderr, "relaunch %u failed: %s\n", e.replica,
                       s.message().c_str());
          relaunch_ok = false;
        } else if (!cluster.replica(e.replica).recovered()) {
          std::fprintf(stderr,
                       "relaunch %u came back with no recovered state\n",
                       e.replica);
          relaunch_ok = false;
        } else {
          std::fprintf(stderr, "[%.3fs] relaunched replica %u (recovered)\n",
                       elapsed, e.replica);
        }
      } else {
        cluster.kill_replica(e.replica);
        std::fprintf(stderr, "[%.3fs] killed replica %u\n", elapsed,
                     e.replica);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  cluster.stop();

  net::NodeNetStats wire;
  for (std::uint32_t id = 0; id < cluster.n() + cluster.client_count(); ++id) {
    wire += cluster.node_stats(id);
  }

  const bool safety_ok = !cluster.any_safety_violation();
  const bool consistent = cluster.committed_heights_consistent();
  const std::uint64_t completed = cluster.total_completed();

  std::printf(
      "protocol=%s n=%u clients=%u window=%u seconds=%.1f\n"
      "throughput: %.1f ops/s  latency p50/p99: %.2f/%.2f ms  mean %.2f ms\n"
      "completed: %llu ops  min committed height: %llu  safety: %s  "
      "consistent: %s\n"
      "wire: %.2f MB sent, %.2f MB delivered, %llu dropped\n",
      opt.cluster.consensus.protocol == runtime::ProtocolKind::kMarlin
          ? "marlin"
          : "hotstuff",
      cluster.n(), cluster.client_count(), opt.cluster.clients.window,
      opt.seconds, cluster.client_throughput(), cluster.latency_ms(50),
      cluster.latency_ms(99), cluster.mean_latency_ms(),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(cluster.min_committed_height()),
      safety_ok ? "ok" : "VIOLATED", consistent ? "yes" : "NO",
      wire.bytes_sent / 1e6, wire.bytes_delivered / 1e6,
      static_cast<unsigned long long>(wire.messages_dropped));
  std::printf("%-8s %10s %12s %14s %10s %8s %8s %10s\n", "replica", "height",
              "bytes_out", "bytes_in", "q_hw", "dropped", "redials",
              "recovered");
  for (std::uint32_t i = 0; i < cluster.n(); ++i) {
    const net::NodeNetStats& s = cluster.node_stats(i);
    const realnet::TcpTransport& t = cluster.transport(i);
    std::printf("r%-7u %10llu %12llu %14llu %10llu %8llu %8llu %10s\n", i,
                static_cast<unsigned long long>(
                    cluster.replica(i).protocol().committed_height()),
                static_cast<unsigned long long>(s.bytes_sent),
                static_cast<unsigned long long>(s.bytes_delivered),
                static_cast<unsigned long long>(t.egress_high_water_bytes()),
                static_cast<unsigned long long>(
                    t.frames_dropped_backpressure() +
                    t.frames_dropped_no_peer()),
                static_cast<unsigned long long>(t.redials_scheduled()),
                cluster.replica(i).recovered() ? "yes" : "-");
  }

  if (!opt.metrics_out.empty()) {
    if (!obs::write_text_file(opt.metrics_out,
                              metrics_json(cluster, opt, wire, relaunch_ok))) {
      std::fprintf(stderr, "failed to write %s\n", opt.metrics_out.c_str());
      return 2;
    }
  }
  if (!opt.metrics_prom_out.empty()) {
    obs::MetricsRegistry snap = cluster.sample_metrics();
    if (!obs::write_text_file(opt.metrics_prom_out,
                              obs::metrics_to_prometheus(snap))) {
      std::fprintf(stderr, "failed to write %s\n",
                   opt.metrics_prom_out.c_str());
      return 2;
    }
  }
  if (!opt.trace_out.empty()) {
    std::string jsonl;
    for (const obs::TraceEvent& e : cluster.merged_trace_events()) {
      jsonl += obs::event_to_json(e);
      jsonl += '\n';
    }
    if (!obs::write_text_file(opt.trace_out, jsonl)) {
      std::fprintf(stderr, "failed to write %s\n", opt.trace_out.c_str());
      return 2;
    }
  }

  if (!safety_ok || !consistent || !relaunch_ok) return 1;
  if (opt.min_commits > 0 && completed < opt.min_commits) {
    std::fprintf(stderr, "only %llu ops committed (--min-commits=%llu)\n",
                 static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(opt.min_commits));
    return 1;
  }
  return 0;
}
