// marlin_top — live cluster monitor for a telemetry-enabled realnet run.
//
// Polls every replica's GET /status and GET /metrics endpoints (serve them
// with `marlin_run --telemetry-port=BASE`) and renders a refreshing
// cluster table: view, committed height, tx-pool depth, commit rate,
// per-kind wire traffic, egress queue depth, and reconnect counters.
//
//   marlin_run --f=1 --telemetry-port=9100 --seconds=60 &
//   marlin_top --base-port=9100 --n=4
//   marlin_top --endpoints=127.0.0.1:9100,127.0.0.1:9101 --once --json
//
// --once polls a single round and exits (non-zero when any endpoint is
// unreachable); --json switches that single round to a machine-readable
// JSON document for scripts and CI.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cli_flags.h"
#include "common/json.h"
#include "realnet/http_client.h"

using namespace marlin;

namespace {

struct Options {
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
  std::uint16_t base_port = 0;  // with --n: 127.0.0.1:base+i
  std::uint32_t n = 4;
  double interval = 1.0;
  bool once = false;
  bool json = false;
  bool help = false;
};

void usage() {
  std::printf(
      "marlin_top — live monitor for marlin_run --telemetry clusters\n\n"
      "  --endpoints=H:P,...  telemetry endpoints to poll (host optional,\n"
      "                       ':9100' and '9100' mean 127.0.0.1:9100)\n"
      "  --base-port=P        shorthand: poll 127.0.0.1:P+i for i in 0..n-1\n"
      "  --n=N                replica count for --base-port (default 4)\n"
      "  --interval=S         refresh period in seconds (default 1)\n"
      "  --once               poll one round, print, exit (no refresh);\n"
      "                       exits 1 when any endpoint is unreachable\n"
      "  --json               with --once: emit a JSON document instead of\n"
      "                       the table\n");
}

bool parse_endpoint(const std::string& spec,
                    std::pair<std::string, std::uint16_t>* out) {
  std::string host = "127.0.0.1";
  std::string port = spec;
  if (const std::size_t colon = spec.rfind(':'); colon != std::string::npos) {
    if (colon > 0) host = spec.substr(0, colon);
    port = spec.substr(colon + 1);
  }
  const int p = std::atoi(port.c_str());
  if (p <= 0 || p > 65535) {
    std::fprintf(stderr, "bad endpoint '%s' (want [host:]port)\n",
                 spec.c_str());
    return false;
  }
  *out = {host, static_cast<std::uint16_t>(p)};
  return true;
}

bool parse_options(int argc, char** argv, Options* opt) {
  cli::ArgCursor args(argc, argv);
  while (args.next()) {
    std::string v;
    if (args.flag("--help")) {
      opt->help = true;
    } else if (args.str("--endpoints", &v)) {
      std::size_t pos = 0;
      while (pos <= v.size()) {
        const std::size_t comma = v.find(',', pos);
        const std::string one =
            v.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!one.empty()) {
          std::pair<std::string, std::uint16_t> ep;
          if (!parse_endpoint(one, &ep)) return false;
          opt->endpoints.push_back(std::move(ep));
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (args.u16("--base-port", &opt->base_port)) {
    } else if (args.u32("--n", &opt->n)) {
    } else if (args.f64("--interval", &opt->interval)) {
    } else if (args.flag("--once")) {
      opt->once = true;
    } else if (args.flag("--json")) {
      opt->json = true;
    } else {
      args.fail_unknown();
    }
  }
  if (!args.ok()) return false;
  if (opt->base_port != 0) {
    for (std::uint32_t i = 0; i < opt->n; ++i) {
      opt->endpoints.emplace_back(
          "127.0.0.1", static_cast<std::uint16_t>(opt->base_port + i));
    }
  }
  if (opt->endpoints.empty() && !opt->help) {
    std::fprintf(stderr, "no endpoints (use --endpoints or --base-port)\n");
    return false;
  }
  return true;
}

/// Minimal Prometheus text-exposition reader: one value per
/// `name{labels}` series, comments and TYPE lines skipped.
std::map<std::string, double> parse_prometheus(const std::string& body) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    out[line.substr(0, sp)] = std::atof(line.c_str() + sp + 1);
  }
  return out;
}

double series_value(const std::map<std::string, double>& m,
                    const std::string& key) {
  const auto it = m.find(key);
  return it == m.end() ? 0.0 : it->second;
}

/// Sums every series of `name` whose label set matches `label_prefix`
/// (e.g. all kind= splits of a counter family).
double series_sum(const std::map<std::string, double>& m,
                  const std::string& name_and_brace) {
  double total = 0;
  for (auto it = m.lower_bound(name_and_brace); it != m.end(); ++it) {
    if (it->first.compare(0, name_and_brace.size(), name_and_brace) != 0) {
      break;
    }
    total += it->second;
  }
  return total;
}

struct NodePoll {
  bool reachable = false;
  bool healthy = false;
  // From /status.
  std::uint64_t node = 0;
  std::uint64_t view = 0;
  std::uint64_t height = 0;
  std::uint64_t committed_ops = 0;
  std::uint64_t txpool = 0;
  std::uint64_t queued_bytes = 0;
  std::string status_body;
  // From /metrics.
  double bytes_sent = 0;
  double redials = 0;
  double drops = 0;
  double q_high_water = 0;
  // Hot-path shape: egress coalescing + batched ingress + verify pool.
  double frames_per_flush = 0;  // mean, from the summary's _sum/_count
  double frames_per_wake = 0;
  double verify_queue = 0;  // 0 when the pool is disabled
  std::map<std::string, double> kind_bytes_sent;  // kind -> bytes
};

/// Mean of a Prometheus summary family: _sum / _count (0 when absent).
double series_mean(const std::map<std::string, double>& m,
                   const std::string& family) {
  const double count = series_value(m, family + "_count");
  if (count <= 0) return 0;
  return series_value(m, family + "_sum") / count;
}

NodePoll poll_node(const std::string& host, std::uint16_t port) {
  NodePoll p;
  const Duration timeout = Duration::millis(500);
  auto status = realnet::http_get(host, port, "/status", timeout);
  auto metrics = realnet::http_get(host, port, "/metrics", timeout);
  if (!status.is_ok() || status.value().status_code != 200 ||
      !metrics.is_ok() || metrics.value().status_code != 200) {
    return p;
  }
  auto doc = json::parse(status.value().body);
  const json::Object* obj = doc.is_ok() ? doc.value().object() : nullptr;
  if (obj == nullptr) return p;
  p.reachable = true;
  p.status_body = status.value().body;
  p.healthy = json::get_bool(*obj, "healthy", false);
  p.node = static_cast<std::uint64_t>(json::get_num(*obj, "node", 0));
  p.view = static_cast<std::uint64_t>(json::get_num(*obj, "view", 0));
  p.height =
      static_cast<std::uint64_t>(json::get_num(*obj, "committed_height", 0));
  p.committed_ops =
      static_cast<std::uint64_t>(json::get_num(*obj, "committed_ops", 0));
  p.txpool = static_cast<std::uint64_t>(json::get_num(*obj, "txpool", 0));
  p.queued_bytes =
      static_cast<std::uint64_t>(json::get_num(*obj, "queued_bytes", 0));

  const auto m = parse_prometheus(metrics.value().body);
  p.bytes_sent = series_sum(m, "marlin_net_bytes_sent{node=");
  p.redials = series_value(m, "marlin_transport_redials_scheduled");
  p.drops = series_sum(m, "marlin_transport_frames_dropped{");
  p.q_high_water =
      series_value(m, "marlin_transport_egress_high_water_bytes");
  p.frames_per_flush = series_mean(m, "marlin_transport_frames_per_flush");
  p.frames_per_wake = series_mean(m, "marlin_loop_frames_per_wake");
  p.verify_queue = series_value(m, "marlin_verify_pool_queue_depth");
  // kind-split egress: marlin_net_bytes_sent{kind="proposal"} ...
  const std::string prefix = "marlin_net_bytes_sent{kind=\"";
  for (auto it = m.lower_bound(prefix); it != m.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    const std::size_t end = it->first.find('"', prefix.size());
    if (end == std::string::npos) continue;
    p.kind_bytes_sent[it->first.substr(prefix.size(), end - prefix.size())] =
        it->second;
  }
  return p;
}

void print_table(const Options& opt, const std::vector<NodePoll>& polls,
                 const std::vector<NodePoll>& prev, double dt,
                 bool clear_screen) {
  if (clear_screen) std::printf("\033[H\033[2J");
  std::uint32_t reachable = 0;
  for (const NodePoll& p : polls) reachable += p.reachable ? 1 : 0;
  std::printf("marlin_top — %u/%zu replicas answering\n", reachable,
              polls.size());
  std::printf("%-18s %-7s %7s %9s %7s %9s %10s %10s %8s %7s %6s %6s %5s\n",
              "endpoint", "health", "view", "height", "txpool", "ops/s",
              "sent MB/s", "q_bytes", "q_hw", "redials", "fr/fl", "fr/wk",
              "vq");
  std::map<std::string, double> kinds;
  for (std::size_t i = 0; i < polls.size(); ++i) {
    char ep[64];
    std::snprintf(ep, sizeof ep, "%s:%u", opt.endpoints[i].first.c_str(),
                  opt.endpoints[i].second);
    const NodePoll& p = polls[i];
    if (!p.reachable) {
      std::printf("%-18s %-7s\n", ep, "DOWN");
      continue;
    }
    double ops_rate = 0, mb_rate = 0;
    if (dt > 0 && i < prev.size() && prev[i].reachable) {
      // Signed difference: a relaunched replica restarts its counters.
      ops_rate = (static_cast<double>(p.committed_ops) -
                  static_cast<double>(prev[i].committed_ops)) /
                 dt;
      mb_rate = (p.bytes_sent - prev[i].bytes_sent) / 1e6 / dt;
    }
    std::printf("%-18s %-7s %7llu %9llu %7llu %9.0f %10.2f %10llu %8.0f "
                "%7.0f %6.1f %6.1f %5.0f\n",
                ep, p.healthy ? "ok" : "stall",
                static_cast<unsigned long long>(p.view),
                static_cast<unsigned long long>(p.height),
                static_cast<unsigned long long>(p.txpool), ops_rate, mb_rate,
                static_cast<unsigned long long>(p.queued_bytes),
                p.q_high_water, p.redials, p.frames_per_flush,
                p.frames_per_wake, p.verify_queue);
    for (const auto& [kind, bytes] : p.kind_bytes_sent) {
      kinds[kind] += bytes;
    }
  }
  std::printf("traffic by kind (MB sent):");
  for (const auto& [kind, bytes] : kinds) {
    std::printf(" %s %.2f", kind.c_str(), bytes / 1e6);
  }
  std::printf("\n");
  std::fflush(stdout);
}

void print_json(const Options& opt, const std::vector<NodePoll>& polls) {
  std::string out = "{\"nodes\":[";
  for (std::size_t i = 0; i < polls.size(); ++i) {
    const NodePoll& p = polls[i];
    if (i > 0) out += ",";
    out += "{\"endpoint\":\"" + opt.endpoints[i].first + ":" +
           std::to_string(opt.endpoints[i].second) + "\"";
    out += std::string(",\"reachable\":") + (p.reachable ? "true" : "false");
    if (p.reachable) {
      out += ",\"status\":" + p.status_body;
      char num[64];
      std::snprintf(num, sizeof num, "%.0f", p.bytes_sent);
      out += ",\"bytes_sent\":" + std::string(num);
      std::snprintf(num, sizeof num, "%.0f", p.redials);
      out += ",\"redials\":" + std::string(num);
      std::snprintf(num, sizeof num, "%.0f", p.drops);
      out += ",\"dropped_frames\":" + std::string(num);
      std::snprintf(num, sizeof num, "%.2f", p.frames_per_flush);
      out += ",\"frames_per_flush\":" + std::string(num);
      std::snprintf(num, sizeof num, "%.2f", p.frames_per_wake);
      out += ",\"frames_per_wake\":" + std::string(num);
      std::snprintf(num, sizeof num, "%.0f", p.verify_queue);
      out += ",\"verify_queue_depth\":" + std::string(num);
      out += ",\"bytes_sent_by_kind\":{";
      bool first = true;
      for (const auto& [kind, bytes] : p.kind_bytes_sent) {
        if (!first) out += ",";
        first = false;
        std::snprintf(num, sizeof num, "%.0f", bytes);
        out += "\"" + kind + "\":" + num;
      }
      out += "}";
    }
    out += "}";
  }
  std::uint32_t reachable = 0;
  for (const NodePoll& p : polls) reachable += p.reachable ? 1 : 0;
  out += "],\"reachable\":" + std::to_string(reachable);
  out += ",\"total\":" + std::to_string(polls.size()) + "}";
  std::printf("%s\n", out.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage();
    return 0;
  }

  std::vector<NodePoll> prev;
  while (true) {
    std::vector<NodePoll> polls;
    polls.reserve(opt.endpoints.size());
    for (const auto& [host, port] : opt.endpoints) {
      polls.push_back(poll_node(host, port));
    }
    std::uint32_t reachable = 0;
    for (const NodePoll& p : polls) reachable += p.reachable ? 1 : 0;

    if (opt.once) {
      if (opt.json) {
        print_json(opt, polls);
      } else {
        print_table(opt, polls, prev, 0, /*clear_screen=*/false);
      }
      return reachable == polls.size() ? 0 : 1;
    }
    print_table(opt, polls, prev, prev.empty() ? 0 : opt.interval,
                /*clear_screen=*/true);
    prev = std::move(polls);
    std::this_thread::sleep_for(std::chrono::duration<double>(opt.interval));
  }
}
