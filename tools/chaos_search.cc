// chaos_search — randomized fault-plan sweeps over the simulated testbed.
//
// Draws N fault plans from a seeded rng (faults/chaos.h), runs each one
// against a cluster, and checks the two protocol invariants after every
// run: safety (no local violation, committed prefixes consistent) and
// liveness (commits resume once the plan quiesces). One JSONL verdict per
// (protocol, plan) goes to stdout; the sweep exits non-zero if any verdict
// fails.
//
// Every verdict is replayable: plan index i is generated from seed + i, so
//
//   chaos_search --plans 50 --protocol marlin --seed 1
//   chaos_search --protocol marlin --seed 1 --replay 17
//                --plan-out plan17.json --trace-out run17.trace.jsonl
//
// re-runs schedule 17 bit-identically and dumps its plan + golden trace.
// A dumped plan replays through `marlin_sim --faults plan17.json` or via
// --replay ... --plan plan17.json (which proves the artifact, not the
// generator, drives the run).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_flags.h"
#include "faults/chaos.h"
#include "faults/safety_oracle.h"
#include "obs/export.h"
#include "runtime/experiment.h"

using namespace marlin;

namespace {

struct Options {
  std::uint32_t plans = 20;
  std::uint32_t jobs = 1;
  std::string protocol = "both";  // marlin | hotstuff | both
  std::uint64_t seed = 1;
  std::uint32_t f = 1;
  std::int64_t horizon_ms = 8000;
  std::string out;        // also write the JSONL verdicts here
  std::int64_t replay = -1;   // run only this plan index
  std::string plan_in;    // --replay: load the plan from JSON instead
  std::string plan_out;   // --replay: dump the plan JSON here
  std::string trace_out;  // --replay: dump the golden trace here
  bool determinism_check = false;  // --replay: run twice, compare traces
  bool help = false;
};

void usage() {
  std::printf(
      "chaos_search — randomized fault-plan sweep with invariant checks\n\n"
      "  --plans=N            schedules per protocol (default 20)\n"
      "  --jobs=N             run schedules on N worker threads (default 1).\n"
      "                       Each schedule owns its own simulator, so per-\n"
      "                       plan determinism and the verdict order (sorted\n"
      "                       by protocol, then seed) are unchanged\n"
      "  --protocol=NAME      marlin | hotstuff | both (default both)\n"
      "  --seed=N             base seed; plan i uses seed+i (default 1)\n"
      "  --f=N                fault threshold; n = 3f+1 (default 1)\n"
      "  --horizon-ms=N       all transient faults quiesce by here (8000)\n"
      "  --out=PATH           also append the JSONL verdicts to PATH\n"
      "  --replay=I           run only plan index I (single protocol)\n"
      "  --plan=PATH          with --replay: load this plan JSON instead\n"
      "                       of regenerating from the seed\n"
      "  --plan-out=PATH      with --replay: dump the plan as JSON\n"
      "  --trace-out=PATH     with --replay: dump the golden trace JSONL\n"
      "  --determinism-check  with --replay: run the schedule twice and\n"
      "                       require bit-identical traces\n\n"
      "Every run (sweep and replay) also passes the cross-restart safety\n"
      "oracle: no honest replica may double-vote or commit conflicting\n"
      "blocks across restart/wipe_disk incarnations.\n");
}

bool parse_options(int argc, char** argv, Options* opt) {
  cli::ArgCursor args(argc, argv);
  while (args.next()) {
    if (args.flag("--help")) {
      opt->help = true;
    } else if (args.u32("--plans", &opt->plans)) {
    } else if (args.u32("--jobs", &opt->jobs)) {
      if (opt->jobs == 0) opt->jobs = 1;
    } else if (args.str("--protocol", &opt->protocol)) {
    } else if (args.u64("--seed", &opt->seed)) {
    } else if (args.u32("--f", &opt->f)) {
    } else if (args.i64("--horizon-ms", &opt->horizon_ms)) {
    } else if (args.str("--out", &opt->out)) {
    } else if (args.i64("--replay", &opt->replay)) {
    } else if (args.str("--plan-out", &opt->plan_out)) {
    } else if (args.str("--plan", &opt->plan_in)) {
    } else if (args.str("--trace-out", &opt->trace_out)) {
    } else if (args.flag("--determinism-check")) {
      opt->determinism_check = true;
    } else {
      args.fail_unknown();
    }
  }
  if (!args.ok()) return false;
  if (opt->protocol != "marlin" && opt->protocol != "hotstuff" &&
      opt->protocol != "both") {
    std::fprintf(stderr, "unknown protocol '%s'\n", opt->protocol.c_str());
    return false;
  }
  if (opt->replay >= 0 && opt->protocol == "both") {
    std::fprintf(stderr, "--replay needs a single --protocol\n");
    return false;
  }
  // Replay-only flags must not be silently ignored: a sweep that "ran" a
  // hand-edited plan which never loaded is a false all-clear.
  if (opt->replay < 0) {
    const char* stray = nullptr;
    if (!opt->plan_in.empty()) stray = "--plan";
    else if (!opt->plan_out.empty()) stray = "--plan-out";
    else if (!opt->trace_out.empty()) stray = "--trace-out";
    else if (opt->determinism_check) stray = "--determinism-check";
    if (stray != nullptr) {
      std::fprintf(stderr,
                   "%s only applies to replay mode; add --replay=I "
                   "(sweep mode would ignore it)\n",
                   stray);
      return false;
    }
  }
  return true;
}

/// The plan for schedule index i: a pure function of (seed, i, f, horizon).
faults::FaultPlan plan_for(const Options& opt, std::uint32_t index) {
  Rng rng(opt.seed + index);
  faults::ChaosOptions copt;
  copt.f = opt.f;
  copt.horizon = Duration::millis(opt.horizon_ms);
  faults::FaultPlan plan = faults::random_plan(rng, copt);
  char name[64];
  std::snprintf(name, sizeof name, "chaos-s%llu-%u",
                static_cast<unsigned long long>(opt.seed), index);
  plan.name = name;
  return plan;
}

/// Replicas the plan makes Byzantine — excluded from the safety oracle
/// (an equivocator double-votes by design).
std::vector<std::uint32_t> byzantine_nodes(const faults::FaultPlan& plan) {
  std::vector<std::uint32_t> out;
  for (const faults::FaultAction& a : plan.actions) {
    if (a.kind == faults::FaultKind::kByzantine &&
        a.mode != faults::ByzantineMode::kHonest) {
      out.push_back(a.replica);
    }
  }
  return out;
}

/// Sweep-mode sink: only the event types the safety oracle consumes, so a
/// long schedule cannot evict the early votes the cross-restart check
/// needs.
void enable_oracle_events_only(obs::TraceSink& sink) {
  for (std::size_t t = 0; t < obs::kEventTypeCount; ++t) {
    const auto type = static_cast<obs::EventType>(t);
    sink.set_enabled(type, type == obs::EventType::kVoteSent ||
                               type == obs::EventType::kCommit);
  }
}

runtime::ExperimentReport run_one(const Options& opt, runtime::ProtocolKind protocol,
                                  std::uint32_t index,
                                  const faults::FaultPlan& plan,
                                  obs::TraceSink* trace) {
  runtime::ClusterConfig cfg;
  cfg.f = opt.f;
  cfg.seed = opt.seed + index;
  cfg.consensus.protocol = protocol;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(600);
  // Symmetry-breaking timeout skew: without it, crash plans that leave
  // exactly a quorum of correct replicas can pin the survivors one view
  // apart in deterministic lockstep forever (see PacemakerConfig). The
  // backoff cap stays commensurate with the short horizon so a desynced
  // cluster gets several (jittered) re-election attempts before the run
  // ends instead of one 30-second view.
  cfg.consensus.pacemaker.timeout_jitter = 0.25;
  cfg.consensus.pacemaker.max_timeout = Duration::millis(1500);
  cfg.clients.count = 4;
  cfg.clients.window = 8;
  cfg.faults = plan;
  cfg.trace = trace;

  runtime::ExperimentOptions exp = runtime::throughput_options(
      cfg, Duration::millis(500),
      Duration::millis(opt.horizon_ms) - Duration::millis(500));
  exp.check_liveness = true;
  return runtime::run_experiment(exp);
}

/// Runs the cross-restart safety oracle over a finished run's trace.
/// Violation descriptions are appended to *errs (the caller decides when to
/// emit them — sweep workers buffer so parallel jobs don't interleave).
/// Returns true when the trace is clean.
bool oracle_clean(const obs::TraceSink& trace, const faults::FaultPlan& plan,
                  const char* protocol, std::uint32_t index,
                  std::string* errs) {
  const auto violations =
      faults::check_cross_restart_safety(trace.events(), byzantine_nodes(plan));
  for (const faults::SafetyViolation& v : violations) {
    char buf[512];
    std::snprintf(buf, sizeof buf, "ORACLE %s plan %u: %s\n", protocol, index,
                  v.describe().c_str());
    *errs += buf;
  }
  return violations.empty();
}

std::string verdict_line(const Options& opt, const char* protocol,
                         std::uint32_t index, const faults::FaultPlan& plan,
                         const runtime::ExperimentReport& rep,
                         bool oracle_ok) {
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"index\":%u,\"protocol\":\"%s\",\"seed\":%llu,\"plan\":\"%s\","
      "\"actions\":%zu,\"safety_ok\":%s,\"consistent\":%s,\"oracle_ok\":%s,"
      "\"liveness_ok\":%s,\"commits_at_quiesce\":%llu,"
      "\"commits_at_end\":%llu,\"final_view\":%llu,\"ok\":%s}",
      index, protocol, static_cast<unsigned long long>(opt.seed + index),
      plan.name.c_str(), plan.actions.size(), rep.safety_ok ? "true" : "false",
      rep.consistent ? "true" : "false", oracle_ok ? "true" : "false",
      rep.liveness.progressed ? "true" : "false",
      static_cast<unsigned long long>(rep.liveness.commits_at_quiesce),
      static_cast<unsigned long long>(rep.liveness.commits_at_end),
      static_cast<unsigned long long>(rep.final_view),
      rep.ok() && oracle_ok ? "true" : "false");
  return buf;
}

/// One (protocol, plan-index) schedule of the sweep.
struct SweepItem {
  runtime::ProtocolKind protocol;
  const char* pname;
  std::uint32_t index;
};

struct SweepResult {
  std::string line;   // verdict JSONL
  std::string errs;   // buffered stderr (oracle violations, replay hint)
  bool ok = false;
  std::size_t restart_actions = 0;
  std::size_t wipe_actions = 0;
};

/// Runs one schedule end-to-end. Self-contained: its own plan, Simulator,
/// and TraceSink, with all diagnostics buffered — safe to call from worker
/// threads.
SweepResult run_sweep_item(const Options& opt, const SweepItem& item) {
  SweepResult res;
  const faults::FaultPlan plan = plan_for(opt, item.index);
  for (const faults::FaultAction& a : plan.actions) {
    if (a.kind == faults::FaultKind::kRestart) ++res.restart_actions;
    if (a.kind == faults::FaultKind::kWipeDisk) ++res.wipe_actions;
  }
  obs::TraceSink trace{1 << 18};
  enable_oracle_events_only(trace);
  const auto rep = run_one(opt, item.protocol, item.index, plan, &trace);
  const bool oracle_ok =
      oracle_clean(trace, plan, item.pname, item.index, &res.errs);
  res.line = verdict_line(opt, item.pname, item.index, plan, rep, oracle_ok);
  res.ok = rep.ok() && oracle_ok;
  if (!res.ok) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "FAIL %s plan %u — replay with: chaos_search "
                  "--protocol=%s --seed=%llu --f=%u --horizon-ms=%lld "
                  "--replay=%u\n",
                  item.pname, item.index, item.pname,
                  static_cast<unsigned long long>(opt.seed), opt.f,
                  static_cast<long long>(opt.horizon_ms), item.index);
    res.errs += buf;
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage();
    return 0;
  }

  std::ofstream out;
  if (!opt.out.empty()) {
    out.open(opt.out, std::ios::app);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
      return 2;
    }
  }

  std::vector<runtime::ProtocolKind> protocols;
  if (opt.protocol != "hotstuff") protocols.push_back(runtime::ProtocolKind::kMarlin);
  if (opt.protocol != "marlin") protocols.push_back(runtime::ProtocolKind::kHotStuff);

  // -- replay mode: one schedule, full artifacts --------------------------
  if (opt.replay >= 0) {
    const auto index = static_cast<std::uint32_t>(opt.replay);
    faults::FaultPlan plan;
    if (!opt.plan_in.empty()) {
      std::ifstream in(opt.plan_in);
      if (!in) {
        std::fprintf(stderr, "cannot read fault plan %s\n",
                     opt.plan_in.c_str());
        return 2;
      }
      std::ostringstream body;
      body << in.rdbuf();
      auto parsed = faults::FaultPlan::from_json(body.str());
      if (!parsed.is_ok()) {
        std::fprintf(stderr, "bad fault plan %s: %s\n", opt.plan_in.c_str(),
                     parsed.status().message().c_str());
        return 2;
      }
      plan = std::move(parsed).take();
    } else {
      plan = plan_for(opt, index);
    }
    obs::TraceSink trace{1 << 18};
    const auto rep = run_one(opt, protocols[0], index, plan, &trace);
    std::string oracle_errs;
    const bool oracle_ok =
        oracle_clean(trace, plan, opt.protocol.c_str(), index, &oracle_errs);
    std::fputs(oracle_errs.c_str(), stderr);
    if (opt.determinism_check) {
      // Same seed + same plan must drive a byte-identical event stream —
      // restart/wipe_disk revivals included. CI pins this for a schedule
      // that contains both.
      obs::TraceSink again{1 << 18};
      (void)run_one(opt, protocols[0], index, plan, &again);
      const std::string a = obs::trace_to_jsonl(trace);
      const std::string b = obs::trace_to_jsonl(again);
      if (a != b) {
        std::fprintf(stderr, "determinism check FAILED: %zu vs %zu trace bytes\n",
                     a.size(), b.size());
        return 1;
      }
      std::fprintf(stderr, "determinism ok: %zu events, %zu trace bytes\n",
                   trace.events().size(), a.size());
    }
    const std::string line =
        verdict_line(opt, opt.protocol.c_str(), index, plan, rep, oracle_ok);
    std::printf("%s\n", line.c_str());
    if (out) out << line << "\n";
    if (!opt.plan_out.empty() &&
        !obs::write_text_file(opt.plan_out, plan.to_json())) {
      std::fprintf(stderr, "failed to write %s\n", opt.plan_out.c_str());
      return 2;
    }
    if (!opt.trace_out.empty()) {
      if (!obs::write_text_file(opt.trace_out, obs::trace_to_jsonl(trace))) {
        std::fprintf(stderr, "failed to write %s\n", opt.trace_out.c_str());
        return 2;
      }
    }
    return rep.ok() && oracle_ok ? 0 : 1;
  }

  // -- sweep mode ---------------------------------------------------------
  // The item list fixes the verdict order (protocol-major, then plan index
  // == ascending seed); workers may finish out of order but results are
  // emitted by item position, so --jobs N output is identical to --jobs 1.
  std::vector<SweepItem> items;
  for (runtime::ProtocolKind protocol : protocols) {
    const char* pname =
        protocol == runtime::ProtocolKind::kMarlin ? "marlin" : "hotstuff";
    for (std::uint32_t i = 0; i < opt.plans; ++i) {
      items.push_back(SweepItem{protocol, pname, i});
    }
  }

  std::vector<SweepResult> results(items.size());
  const std::uint32_t jobs =
      std::min<std::uint32_t>(opt.jobs, static_cast<std::uint32_t>(items.size()));

  // Progress heartbeat: long sweeps print a stderr line every couple of
  // seconds (plans done/total, rate, verdict counts) so a CI log or a
  // terminal shows the sweep is alive. stderr only — stdout and --out stay
  // byte-identical across --jobs values and heartbeat timing.
  const auto sweep_start = std::chrono::steady_clock::now();
  auto emit_heartbeat = [&](std::size_t done_count, std::uint32_t fail_count) {
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    std::fprintf(stderr, "progress: %zu/%zu plans (%.1f plans/s, ok=%zu "
                         "fail=%u)\n",
                 done_count, items.size(), secs > 0 ? done_count / secs : 0.0,
                 done_count - fail_count, fail_count);
  };
  constexpr auto kHeartbeatPeriod = std::chrono::seconds(2);

  if (jobs <= 1) {
    // Sequential: stream each verdict as it lands.
    auto last_beat = sweep_start;
    std::uint32_t fail_count = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      results[i] = run_sweep_item(opt, items[i]);
      if (!results[i].ok) ++fail_count;
      std::printf("%s\n", results[i].line.c_str());
      std::fflush(stdout);
      std::fputs(results[i].errs.c_str(), stderr);
      if (out) out << results[i].line << "\n";
      if (const auto now = std::chrono::steady_clock::now();
          now - last_beat >= kHeartbeatPeriod && i + 1 < items.size()) {
        emit_heartbeat(i + 1, fail_count);
        last_beat = now;
      }
    }
  } else {
    // Parallel: every schedule owns its Simulator, cluster, and TraceSink;
    // shared crypto memos are thread_local or per-suite, so jobs never
    // share mutable state. Claim items off an atomic cursor, then emit in
    // item order after the join. The main thread doubles as the heartbeat
    // monitor while workers run.
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::uint32_t> failed{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (std::uint32_t w = 0; w < jobs; ++w) {
      workers.emplace_back([&]() {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= items.size()) return;
          results[i] = run_sweep_item(opt, items[i]);
          if (!results[i].ok) failed.fetch_add(1);
          done.fetch_add(1);
        }
      });
    }
    auto last_beat = sweep_start;
    while (done.load() < items.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (const auto now = std::chrono::steady_clock::now();
          now - last_beat >= kHeartbeatPeriod) {
        emit_heartbeat(done.load(), failed.load());
        last_beat = now;
      }
    }
    for (std::thread& w : workers) w.join();
    for (const SweepResult& r : results) {
      std::printf("%s\n", r.line.c_str());
      std::fputs(r.errs.c_str(), stderr);
      if (out) out << r.line << "\n";
    }
    std::fflush(stdout);
  }

  std::uint32_t failures = 0;
  std::size_t plans_with_restart = 0, plans_with_wipe = 0;
  for (const SweepResult& r : results) {
    if (!r.ok) ++failures;
    plans_with_restart += r.restart_actions;
    plans_with_wipe += r.wipe_actions;
  }
  if (failures > 0) {
    std::fprintf(stderr, "%u/%zu schedules failed\n", failures,
                 static_cast<std::size_t>(opt.plans) * protocols.size());
    return 1;
  }
  // Coverage footer (action counts over both protocol passes): CI pins
  // that a smoke sweep actually exercised restart and wipe_disk revivals.
  std::fprintf(stderr, "action coverage: restart=%zu wipe_disk=%zu\n",
               plans_with_restart, plans_with_wipe);
  std::fprintf(stderr, "all %zu schedules ok\n",
               static_cast<std::size_t>(opt.plans) * protocols.size());
  return 0;
}
