#include "cli_flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace marlin::cli {

namespace {

/// Name-prefix match: "--f" must not claim "--faults". Returns the
/// remainder after the name: "" (bare), or "=..." (inline value);
/// nullptr when the token is a different flag.
const char* after_name(const char* arg, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return nullptr;
  if (arg[len] != '\0' && arg[len] != '=') return nullptr;
  return arg + len;
}

bool parse_i64(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool parse_f64(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

bool ArgCursor::flag(const char* name) {
  const char* rest = after_name(argv_[i_], name);
  return rest != nullptr;
}

bool ArgCursor::take_value(const char* name, std::string* out) {
  const char* rest = after_name(argv_[i_], name);
  if (rest == nullptr) return false;
  if (rest[0] == '=') {
    *out = rest + 1;
    return true;
  }
  // The next token is the value — unless it is itself a flag, in which
  // case the value is missing ("--trace-out --timeline" is an error, not
  // a file named "--timeline"). Negative numbers ("-1") are still values.
  if (i_ + 1 < argc_ && std::strncmp(argv_[i_ + 1], "--", 2) != 0) {
    *out = argv_[++i_];
    return true;
  }
  std::fprintf(stderr, "missing value for %s (try --help)\n", name);
  ok_ = false;
  out->clear();
  return true;
}

bool ArgCursor::str(const char* name, std::string* out) {
  return take_value(name, out);
}

bool ArgCursor::i64(const char* name, std::int64_t* out) {
  std::string text;
  if (!take_value(name, &text)) return false;
  if (!ok_) return true;
  if (!parse_i64(text, out)) fail_value(name, text, "integer");
  return true;
}

bool ArgCursor::u64(const char* name, std::uint64_t* out) {
  std::int64_t v = 0;
  if (!i64(name, &v)) return false;
  if (ok_ && v < 0) {
    fail_value(name, std::to_string(v), "non-negative integer");
    return true;
  }
  if (ok_) *out = static_cast<std::uint64_t>(v);
  return true;
}

bool ArgCursor::u32(const char* name, std::uint32_t* out) {
  std::uint64_t v = 0;
  if (!u64(name, &v)) return false;
  if (ok_ && v > std::numeric_limits<std::uint32_t>::max()) {
    fail_value(name, std::to_string(v), "32-bit integer");
    return true;
  }
  if (ok_) *out = static_cast<std::uint32_t>(v);
  return true;
}

bool ArgCursor::u16(const char* name, std::uint16_t* out) {
  std::uint64_t v = 0;
  if (!u64(name, &v)) return false;
  if (ok_ && v > std::numeric_limits<std::uint16_t>::max()) {
    fail_value(name, std::to_string(v), "16-bit integer");
    return true;
  }
  if (ok_) *out = static_cast<std::uint16_t>(v);
  return true;
}

bool ArgCursor::size(const char* name, std::size_t* out) {
  std::uint64_t v = 0;
  if (!u64(name, &v)) return false;
  if (ok_) *out = static_cast<std::size_t>(v);
  return true;
}

bool ArgCursor::f64(const char* name, double* out) {
  std::string text;
  if (!take_value(name, &text)) return false;
  if (!ok_) return true;
  if (!parse_f64(text, out)) fail_value(name, text, "number");
  return true;
}

bool ArgCursor::millis(const char* name, Duration* out) {
  std::int64_t ms = 0;
  if (!i64(name, &ms)) return false;
  if (ok_) *out = Duration::millis(ms);
  return true;
}

void ArgCursor::fail_unknown() {
  std::fprintf(stderr, "unknown flag: %s (try --help)\n", argv_[i_]);
  ok_ = false;
}

void ArgCursor::fail_value(const char* name, const std::string& text,
                           const char* expected) {
  std::fprintf(stderr, "invalid value for %s: '%s' (expected %s)\n", name,
               text.c_str(), expected);
  ok_ = false;
}

}  // namespace marlin::cli
