# Asserts that a CLI invocation fails loudly: non-zero exit status AND a
# diagnostic matching an expected regex. CTest's PASS_REGULAR_EXPRESSION
# alone can't express this (once set, the exit code is ignored), and these
# regressions exist precisely because a bad --faults/--plan/--config must
# never look like a successful run.
#
# Usage:
#   cmake -DCMD="<prog> <args...>" -DEXPECT=<regex> -P check_cli_error.cmake
separate_arguments(cmd_list UNIX_COMMAND "${CMD}")
execute_process(COMMAND ${cmd_list}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "expected non-zero exit from: ${CMD}\n"
                      "stdout+stderr:\n${out}${err}")
endif()
string(APPEND out "${err}")
if(NOT out MATCHES "${EXPECT}")
  message(FATAL_ERROR "exit ${rc} ok, but output did not match '${EXPECT}'.\n"
                      "command: ${CMD}\nstdout+stderr:\n${out}")
endif()
