// trace_schema_check — validates observability artifacts for CI.
//
// Default mode checks a Chrome trace-event JSON file (the --spans-out
// output of marlin_sim / trace_inspect) against the minimal schema
// Perfetto needs: the wrapper object, and per event the name/ph/pid/tid
// fields, a known phase type, and non-negative ts/dur on complete events.
// The exporter writes one JSON object per line precisely so this checker
// (and CI) can validate without a full JSON parser.
//
// --trace mode checks a protocol event trace (the --trace-out JSONL of
// marlin_sim / chaos_search): every line must parse back into a TraceEvent
// with a known event type — which is how CI catches an exporter emitting a
// type (e.g. replica_restart, state_transfer) the taxonomy doesn't name,
// and monotone non-decreasing sequence numbers.
//
//   trace_schema_check spans.json          # "ok: N events" or exit 1
//   trace_schema_check --trace run.jsonl   # "ok: N trace events" or exit 1
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/export.h"
#include "obs/trace.h"

namespace {

bool field_str(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto begin = pos + needle.size();
  const auto close = line.find('"', begin);
  if (close == std::string::npos) return false;
  *out = line.substr(begin, close - begin);
  return true;
}

bool field_num(const std::string& line, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  *out = std::strtod(start, &end);
  return end != start;
}

int fail(std::size_t lineno, const char* what, const std::string& line) {
  std::fprintf(stderr, "line %zu: %s\n  %s\n", lineno, what, line.c_str());
  return 1;
}

/// Protocol-trace JSONL mode: every line must round-trip through the obs
/// event parser (fixed field order, known event-type name).
int check_protocol_trace(std::ifstream& in) {
  std::string line;
  std::size_t lineno = 0, events = 0;
  std::uint64_t last_seq = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    marlin::obs::TraceEvent e;
    if (!marlin::obs::event_from_json(line, &e)) {
      return fail(lineno, "unparseable trace event (unknown type?)", line);
    }
    if (events > 0 && e.seq < last_seq) {
      return fail(lineno, "sequence number went backwards", line);
    }
    last_seq = e.seq;
    ++events;
  }
  if (events == 0) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }
  std::printf("ok: %zu trace events\n", events);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool trace_mode = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      path = nullptr;
      break;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_mode = true;
    } else {
      path = argv[i];
    }
  }
  if (!path) {
    std::printf("trace_schema_check — validate observability artifacts\n\n"
                "  trace_schema_check spans.json          Chrome trace-event\n"
                "  trace_schema_check --trace run.jsonl   protocol trace\n");
    return argc >= 2 ? 0 : 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  if (trace_mode) return check_protocol_trace(in);

  std::string line;
  std::size_t lineno = 0;
  std::size_t events = 0, metadata = 0, spans = 0;
  bool saw_header = false, saw_footer = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[") {
        return fail(lineno, "bad header (expected trace-event wrapper)", line);
      }
      saw_header = true;
      continue;
    }
    if (line == "]}") {
      saw_footer = true;
      continue;
    }
    if (saw_footer) return fail(lineno, "content after closing ]}", line);

    std::string body = line;
    if (!body.empty() && body.back() == ',') body.pop_back();
    if (body.empty() || body.front() != '{' || body.back() != '}') {
      return fail(lineno, "event is not a one-line JSON object", line);
    }

    std::string name, ph;
    double pid = 0, tid = 0;
    if (!field_str(body, "name", &name) || name.empty()) {
      return fail(lineno, "missing \"name\"", line);
    }
    if (!field_str(body, "ph", &ph)) {
      return fail(lineno, "missing \"ph\"", line);
    }
    if (ph != "X" && ph != "i" && ph != "M") {
      return fail(lineno, "unsupported \"ph\" (want X, i, or M)", line);
    }
    if (!field_num(body, "pid", &pid) || pid < 0) {
      return fail(lineno, "missing or negative \"pid\"", line);
    }
    if (!field_num(body, "tid", &tid) || tid < 0) {
      return fail(lineno, "missing or negative \"tid\"", line);
    }
    if (ph == "M") {
      ++metadata;
    } else {
      double ts = 0;
      if (!field_num(body, "ts", &ts) || ts < 0) {
        return fail(lineno, "missing or negative \"ts\"", line);
      }
      if (ph == "X") {
        double dur = 0;
        if (!field_num(body, "dur", &dur) || dur < 0) {
          return fail(lineno, "complete event missing or negative \"dur\"",
                      line);
        }
        ++spans;
      }
    }
    ++events;
  }
  if (!saw_header) {
    std::fprintf(stderr, "empty file (no trace-event wrapper)\n");
    return 1;
  }
  if (!saw_footer) {
    std::fprintf(stderr, "missing closing ]}\n");
    return 1;
  }
  std::printf("ok: %zu events (%zu metadata, %zu spans)\n", events, metadata,
              spans);
  return 0;
}
