// metrics_schema_check — schema validator for the telemetry plane's three
// output formats, used by CI to pin what scrapers and dashboards consume:
//
//   metrics_schema_check FILE            Prometheus text exposition
//                                        (GET /metrics, --metrics-prom-out)
//   metrics_schema_check --status FILE   /status JSON document
//   metrics_schema_check --series FILE   JSONL metric series
//                                        (--metrics-series-out, both
//                                        marlin_sim and marlin_run)
//
// Prints one "ok: ..." line and exits 0 on success; prints a pinned
// "invalid ..." diagnostic and exits 1 on a malformed document (exit 2 for
// unreadable files / bad usage).
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/json.h"

using namespace marlin;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream body;
  body << in.rdbuf();
  *out = body.str();
  return true;
}

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' &&
      s[0] != ':') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') {
      return false;
    }
  }
  return true;
}

int fail_exposition(std::size_t lineno, const char* why) {
  std::fprintf(stderr, "invalid exposition: line %zu: %s\n", lineno, why);
  return 1;
}

/// Validates Prometheus text exposition: every line is a comment or a
/// `name{labels} value` sample; label blocks are well-formed; every sample
/// belongs to a `# TYPE`-declared family (directly, via its _sum/_count
/// suffix, or via a quantile label).
int check_exposition(const std::string& body) {
  std::set<std::string> typed;
  std::size_t samples = 0, lineno = 0;
  std::size_t pos = 0;
  while (pos < body.size()) {
    ++lineno;
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      char keyword[16] = {0};
      char name[256] = {0};
      char kind[16] = {0};
      if (std::sscanf(line.c_str(), "# %15s %255s %15s", keyword, name,
                      kind) == 3 &&
          std::strcmp(keyword, "TYPE") == 0) {
        if (std::strcmp(kind, "counter") != 0 &&
            std::strcmp(kind, "gauge") != 0 &&
            std::strcmp(kind, "summary") != 0 &&
            std::strcmp(kind, "histogram") != 0 &&
            std::strcmp(kind, "untyped") != 0) {
          return fail_exposition(lineno, "unknown TYPE kind");
        }
        typed.insert(name);
      }
      continue;
    }
    // Sample: name[{labels}] value
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      return fail_exposition(lineno, "sample has no value");
    }
    const std::string name = line.substr(0, name_end);
    if (!valid_metric_name(name)) {
      return fail_exposition(lineno, "bad metric name");
    }
    std::size_t value_start = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string::npos) {
        return fail_exposition(lineno, "unterminated label block");
      }
      // Labels: k="v" pairs, comma-separated, values quoted.
      std::size_t lp = name_end + 1;
      while (lp < close) {
        const std::size_t eq = line.find('=', lp);
        if (eq == std::string::npos || eq >= close) {
          return fail_exposition(lineno, "label without '='");
        }
        if (!valid_metric_name(line.substr(lp, eq - lp))) {
          return fail_exposition(lineno, "bad label name");
        }
        if (eq + 1 >= close || line[eq + 1] != '"') {
          return fail_exposition(lineno, "label value not quoted");
        }
        std::size_t vend = eq + 2;
        while (vend < close && line[vend] != '"') {
          if (line[vend] == '\\') ++vend;
          ++vend;
        }
        if (vend >= close) {
          return fail_exposition(lineno, "unterminated label value");
        }
        lp = vend + 1;
        if (lp < close) {
          if (line[lp] != ',') {
            return fail_exposition(lineno, "label pairs not comma-separated");
          }
          ++lp;
        }
      }
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      return fail_exposition(lineno, "sample has no value");
    }
    const char* vtext = line.c_str() + value_start + 1;
    char* vend = nullptr;
    std::strtod(vtext, &vend);
    if (vend == vtext || *vend != '\0') {
      return fail_exposition(lineno, "value is not a number");
    }
    // Family membership: exact, or via summary/histogram suffix.
    std::string family = name;
    for (const char* suffix : {"_sum", "_count", "_bucket"}) {
      const std::size_t slen = std::strlen(suffix);
      if (family.size() > slen &&
          family.compare(family.size() - slen, slen, suffix) == 0 &&
          typed.count(family.substr(0, family.size() - slen)) > 0) {
        family = family.substr(0, family.size() - slen);
        break;
      }
    }
    if (typed.count(family) == 0) {
      return fail_exposition(lineno, "sample precedes its # TYPE line");
    }
    ++samples;
  }
  if (samples == 0) {
    std::fprintf(stderr, "invalid exposition: no samples\n");
    return 1;
  }
  std::printf("ok: exposition with %zu samples, %zu families\n", samples,
              typed.size());
  return 0;
}

int fail_status(const char* why) {
  std::fprintf(stderr, "invalid status: %s\n", why);
  return 1;
}

/// Validates a GET /status document against the fields marlin_top and the
/// CI scrape consume.
int check_status(const std::string& body) {
  auto doc = json::parse(body);
  if (!doc.is_ok()) return fail_status("not valid JSON");
  const json::Object* obj = doc.value().object();
  if (obj == nullptr) return fail_status("top level must be an object");
  for (const char* field :
       {"node", "view", "committed_height", "committed_ops", "txpool",
        "queued_bytes"}) {
    const auto it = obj->find(field);
    if (it == obj->end() || it->second.num() == nullptr) {
      return fail_status(
          (std::string("missing numeric field '") + field + "'").c_str());
    }
  }
  for (const char* field : {"healthy", "recovered", "recovering"}) {
    const auto it = obj->find(field);
    if (it == obj->end() ||
        std::get_if<bool>(&it->second.v) == nullptr) {
      return fail_status(
          (std::string("missing boolean field '") + field + "'").c_str());
    }
  }
  const std::string protocol = json::get_str(*obj, "protocol", "");
  if (protocol != "marlin" && protocol != "hotstuff") {
    return fail_status("protocol must be marlin or hotstuff");
  }
  const auto peers_it = obj->find("peers");
  if (peers_it == obj->end() || peers_it->second.array() == nullptr) {
    return fail_status("missing peers array");
  }
  for (const json::Value& peer : *peers_it->second.array()) {
    const json::Object* p = peer.object();
    if (p == nullptr) return fail_status("peer entry must be an object");
    for (const char* field :
         {"id", "queued_bytes", "high_water_bytes", "backoff_ms"}) {
      const auto it = p->find(field);
      if (it == p->end() || it->second.num() == nullptr) {
        return fail_status(
            (std::string("peer missing numeric field '") + field + "'")
                .c_str());
      }
    }
    const auto c = p->find("connected");
    if (c == p->end() || std::get_if<bool>(&c->second.v) == nullptr) {
      return fail_status("peer missing boolean field 'connected'");
    }
  }
  std::printf("ok: status for node %.0f (%zu peers)\n",
              json::get_num(*obj, "node", -1),
              peers_it->second.array()->size());
  return 0;
}

int fail_series(std::size_t lineno, const char* why) {
  std::fprintf(stderr, "invalid series: line %zu: %s\n", lineno, why);
  return 1;
}

/// Validates a metric-series JSONL file: every line is an object with a
/// numeric "t" and the four snapshot sections; histogram summaries carry
/// their full stat set. The schema is shared by marlin_sim and marlin_run.
int check_series(const std::string& body) {
  std::size_t snapshots = 0, lineno = 0;
  std::size_t pos = 0;
  double last_t = -1;
  while (pos < body.size()) {
    ++lineno;
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    auto doc = json::parse(line);
    if (!doc.is_ok()) return fail_series(lineno, "not valid JSON");
    const json::Object* obj = doc.value().object();
    if (obj == nullptr) return fail_series(lineno, "snapshot must be object");
    const auto t = obj->find("t");
    if (t == obj->end() || t->second.num() == nullptr) {
      return fail_series(lineno, "missing numeric 't'");
    }
    if (*t->second.num() <= last_t) {
      return fail_series(lineno, "'t' not strictly increasing");
    }
    last_t = *t->second.num();
    for (const char* section : {"counters", "gauges"}) {
      const json::Object* s = json::get_object(*obj, section);
      if (s == nullptr) return fail_series(lineno, "missing section");
      for (const auto& [key, v] : *s) {
        if (v.num() == nullptr) {
          return fail_series(lineno, "non-numeric metric value");
        }
      }
    }
    const struct {
      const char* section;
      const char* stats[6];
    } hists[] = {
        {"latency_ms", {"count", "mean", "p50", "p95", "p99", "max"}},
        {"sizes", {"count", "mean", "p50", "p99", "max", nullptr}},
    };
    for (const auto& h : hists) {
      const json::Object* s = json::get_object(*obj, h.section);
      if (s == nullptr) return fail_series(lineno, "missing section");
      for (const auto& [key, v] : *s) {
        const json::Object* stats = v.object();
        if (stats == nullptr) {
          return fail_series(lineno, "histogram entry must be object");
        }
        for (const char* stat : h.stats) {
          if (stat == nullptr) break;
          const auto it = stats->find(stat);
          if (it == stats->end() || it->second.num() == nullptr) {
            return fail_series(lineno, "histogram entry missing stat");
          }
        }
      }
    }
    ++snapshots;
  }
  if (snapshots == 0) {
    std::fprintf(stderr, "invalid series: no snapshots\n");
    return 1;
  }
  std::printf("ok: series with %zu snapshots\n", snapshots);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "exposition";
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--status") == 0) {
      mode = "status";
    } else if (std::strcmp(argv[i], "--series") == 0) {
      mode = "series";
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "more than one input file\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: metrics_schema_check [--status|--series] FILE\n");
    return 2;
  }
  std::string body;
  if (!read_file(path, &body)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  if (mode == "status") return check_status(body);
  if (mode == "series") return check_series(body);
  return check_exposition(body);
}
