// Shared argv parsing for the command-line tools (marlin_sim, marlin_run,
// chaos_search, marlin_top). One cursor walks the argument list; typed
// matchers consume "--name=value" or "--name value" forms and emit uniform
// diagnostics — a malformed number is an error with the offending flag and
// text, never a silent atoi(0) — so every tool rejects bad input the same
// way (pinned by the cli_* error tests in tools/CMakeLists.txt).
//
// Usage pattern (keeps the tools' chained-matcher style):
//
//   cli::ArgCursor args(argc, argv);
//   while (args.next()) {
//     if (args.flag("--help")) opt.help = true;
//     else if (args.u32("--f", &opt.f)) {}
//     else if (args.millis("--timeout-ms", &opt.timeout)) {}
//     else args.fail_unknown();
//   }
//   if (!args.ok()) return 2;
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.h"

namespace marlin::cli {

class ArgCursor {
 public:
  ArgCursor(int argc, char** argv) : argc_(argc), argv_(argv) {}

  /// Advances to the next unconsumed argument; false when exhausted.
  bool next() { return ++i_ < argc_; }
  const char* current() const { return argv_[i_]; }

  // -- matchers for the current argument -------------------------------------
  // Each returns true when the flag NAME matched (value consumed); a
  // matched flag with a malformed value still returns true but prints a
  // diagnostic and marks the parse failed — the caller's chain moves on
  // and the tool exits through !ok().

  /// Bare boolean flag ("--once"). A "=value" suffix is accepted and
  /// ignored, matching the tools' historical behaviour.
  bool flag(const char* name);

  /// String value: "--out=path" or "--out path".
  bool str(const char* name, std::string* out);

  /// Integers (decimal, full token must parse).
  bool u16(const char* name, std::uint16_t* out);
  bool u32(const char* name, std::uint32_t* out);
  bool u64(const char* name, std::uint64_t* out);
  bool i64(const char* name, std::int64_t* out);
  bool size(const char* name, std::size_t* out);

  /// Floating point.
  bool f64(const char* name, double* out);

  /// Duration in integer milliseconds ("--timeout-ms=2000").
  bool millis(const char* name, Duration* out);

  // -- diagnostics -----------------------------------------------------------
  /// Call when no matcher claimed the current argument.
  void fail_unknown();
  /// Report a bad value for an already-matched flag (custom validation in
  /// the caller, e.g. an unknown --protocol name).
  void fail_value(const char* name, const std::string& text,
                  const char* expected);
  bool ok() const { return ok_; }

 private:
  /// Matches NAME and extracts its value from "=..." or the next token;
  /// false when the current arg is a different flag. A matched flag with
  /// no value present fails the parse.
  bool take_value(const char* name, std::string* out);

  int argc_;
  char** argv_;
  int i_ = 0;
  bool ok_ = true;
};

}  // namespace marlin::cli
