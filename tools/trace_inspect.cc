// trace_inspect — offline analyzer for JSONL protocol traces produced by
// marlin_sim / the benches (obs::trace_to_jsonl format).
//
//   trace_inspect trace.jsonl                 # all reports
//   trace_inspect --report=phases trace.jsonl # per-phase latency only
//   trace_inspect --report=egress --n=4 ...   # per-view leader egress
//
// Reports:
//   summary  — event counts by type, time span, nodes, views
//   phases   — per-block latency from proposal to each QC and to commit
//   egress   — per-view leader egress: messages, bytes, authenticators
//   kinds    — per-kind traffic with authenticators/message (Table I check)
//   timeline — the per-view activity timeline (same as marlin_sim --timeline)
//
// Extra outputs:
//   --critical-path      per-block critical-path report (round-trip count,
//                        per-edge queue/wire/cpu attribution)
//   --spans-out=PATH     per-block lifecycle spans as Chrome trace-event
//                        JSON, loadable in Perfetto
//
// Filters (applied before any report):
//   --block=HEXPREFIX    only events whose block id starts with the prefix
//   --view=N             only events of view N
//
// Memory: the input is consumed one line at a time and the summary /
// phases / egress / kinds reports fold each event into O(blocks + views)
// accumulators as it streams past — a multi-gigabyte chaos trace never
// lives in RSS. Only timeline, --critical-path, and --spans-out need the
// whole event vector (they walk it repeatedly), so only those buffer.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "simnet/network.h"

using namespace marlin;
using obs::EventType;
using obs::TraceEvent;

namespace {

double ms(std::uint64_t nanos) { return static_cast<double>(nanos) / 1e6; }

/// Streaming replica-count inference: protocol events only — kMsgDropped
/// may carry client node ids, which would overestimate the replica count.
struct ReplicaCountAcc {
  std::uint32_t max_node = 0;
  bool any = false;

  void add(const TraceEvent& e) {
    if (e.node == obs::kNoNode) return;
    if (e.type == EventType::kViewEntered || e.type == EventType::kVoteSent ||
        e.type == EventType::kProposalSent) {
      max_node = std::max(max_node, e.node);
      any = true;
    }
  }
  std::uint32_t n() const { return any ? max_node + 1 : 0; }
};

struct SummaryAcc {
  std::uint64_t by_type[obs::kEventTypeCount] = {};
  std::uint64_t min_ns = ~0ull, max_ns = 0;
  ViewNumber max_view = 0;
  std::size_t events = 0;

  void add(const TraceEvent& e) {
    ++events;
    const auto t = static_cast<std::size_t>(e.type);
    if (t < obs::kEventTypeCount) ++by_type[t];
    const std::uint64_t ns = static_cast<std::uint64_t>(e.at.as_nanos());
    min_ns = std::min(min_ns, ns);
    max_ns = std::max(max_ns, ns);
    max_view = std::max(max_view, e.view);
  }

  void print(std::uint32_t n) const {
    std::printf("summary\n");
    std::printf("  events: %zu   span: %.3f ms .. %.3f ms   max view: %llu   "
                "replicas: %u\n",
                events, ms(min_ns), ms(max_ns),
                static_cast<unsigned long long>(max_view), n);
    for (std::size_t t = 0; t < obs::kEventTypeCount; ++t) {
      if (by_type[t] == 0) continue;
      std::printf("  %-20s %10llu\n",
                  obs::event_type_name(static_cast<EventType>(t)),
                  static_cast<unsigned long long>(by_type[t]));
    }
  }
};

/// Per-block milestones: proposal broadcast, each phase's QC, first commit.
/// All milestones fold as time-minimums, so accumulation is order-robust
/// (concatenated or unsorted trace files included).
struct BlockTiming {
  std::uint64_t propose_ns = 0;
  bool proposed = false;
  std::map<std::uint8_t, std::uint64_t> qc_ns;  // phase -> first QC time
  std::uint64_t commit_ns = 0;
  bool committed = false;
};

struct PhasesAcc {
  std::map<std::uint64_t, BlockTiming> blocks;

  void add(const TraceEvent& e) {
    if (e.block == 0) return;
    const std::uint64_t ns = static_cast<std::uint64_t>(e.at.as_nanos());
    switch (e.type) {
      case EventType::kProposalSent: {
        BlockTiming& bt = blocks[e.block];
        if (!bt.proposed || ns < bt.propose_ns) bt.propose_ns = ns;
        bt.proposed = true;
        break;
      }
      case EventType::kQcFormed: {
        BlockTiming& bt = blocks[e.block];
        auto [it, inserted] = bt.qc_ns.try_emplace(e.phase, ns);
        if (!inserted) it->second = std::min(it->second, ns);
        break;
      }
      case EventType::kCommit: {
        BlockTiming& bt = blocks[e.block];
        if (!bt.committed || ns < bt.commit_ns) bt.commit_ns = ns;
        bt.committed = true;
        break;
      }
      default:
        break;
    }
  }

  void print() const {
    // Latency distributions from the proposal broadcast to each milestone.
    std::map<std::uint8_t, obs::ValueHistogram> to_qc;
    obs::ValueHistogram to_commit;
    for (const auto& [block, bt] : blocks) {
      if (!bt.proposed) continue;
      for (const auto& [phase, qc_at] : bt.qc_ns) {
        if (qc_at >= bt.propose_ns) to_qc[phase].record(qc_at - bt.propose_ns);
      }
      if (bt.committed && bt.commit_ns >= bt.propose_ns) {
        to_commit.record(bt.commit_ns - bt.propose_ns);
      }
    }

    std::printf("phase latency (proposal broadcast -> milestone, per block)\n");
    std::printf("  %-22s %7s %9s %9s %9s\n", "milestone", "blocks", "mean_ms",
                "p50_ms", "p95_ms");
    for (const auto& [phase, h] : to_qc) {
      char label[40];
      std::snprintf(label, sizeof label, "qc[%s]",
                    obs::trace_phase_name(phase));
      std::printf("  %-22s %7zu %9.3f %9.3f %9.3f\n", label, h.count(),
                  ms(static_cast<std::uint64_t>(h.mean())),
                  ms(static_cast<std::uint64_t>(h.percentile(50))),
                  ms(static_cast<std::uint64_t>(h.percentile(95))));
    }
    std::printf("  %-22s %7zu %9.3f %9.3f %9.3f\n", "commit",
                to_commit.count(),
                ms(static_cast<std::uint64_t>(to_commit.mean())),
                ms(static_cast<std::uint64_t>(to_commit.percentile(50))),
                ms(static_cast<std::uint64_t>(to_commit.percentile(95))));
  }
};

struct ViewEgress {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t authenticators = 0;
};

/// Leader attribution needs n, which may itself be inferred from the
/// stream — so accumulate per (view, sender) and pick each view's leader
/// row at print time.
struct EgressAcc {
  std::map<std::pair<ViewNumber, std::uint32_t>, ViewEgress> by_view_node;

  void add(const TraceEvent& e) {
    if (e.type != EventType::kMsgSent) return;
    if (e.node == obs::kNoNode) return;
    ViewEgress& v = by_view_node[{e.view, e.node}];
    ++v.msgs;
    v.bytes += e.a;
    v.authenticators += e.b;
  }

  void print(std::uint32_t n) const {
    if (n == 0) {
      std::printf("leader egress: no replica events in trace\n");
      return;
    }
    std::printf("leader egress per view (n=%u, leader = view %% n)\n", n);
    std::printf("  %-8s %-7s %8s %12s %8s\n", "view", "leader", "msgs",
                "bytes", "auths");
    ViewEgress total;
    for (const auto& [key, v] : by_view_node) {
      const auto& [view, node] = key;
      if (node != view % n) continue;  // leader of that view only
      std::printf("  %-8llu %-7llu %8llu %12llu %8llu\n",
                  static_cast<unsigned long long>(view),
                  static_cast<unsigned long long>(view % n),
                  static_cast<unsigned long long>(v.msgs),
                  static_cast<unsigned long long>(v.bytes),
                  static_cast<unsigned long long>(v.authenticators));
      total.msgs += v.msgs;
      total.bytes += v.bytes;
      total.authenticators += v.authenticators;
    }
    std::printf("  %-8s %-7s %8llu %12llu %8llu\n", "total", "",
                static_cast<unsigned long long>(total.msgs),
                static_cast<unsigned long long>(total.bytes),
                static_cast<unsigned long long>(total.authenticators));
  }
};

struct KindsAcc {
  ViewEgress by_kind[sim::kNetKindSlots] = {};

  void add(const TraceEvent& e) {
    if (e.type != EventType::kMsgSent) return;
    const std::size_t slot = e.kind < sim::kNetKindSlots ? e.kind : 0;
    ++by_kind[slot].msgs;
    by_kind[slot].bytes += e.a;
    by_kind[slot].authenticators += e.b;
  }

  void print() const {
    std::printf("traffic by message kind (authenticators: Table I check)\n");
    std::printf("  %-15s %8s %12s %8s %9s\n", "kind", "msgs", "bytes",
                "auths", "auth/msg");
    for (std::size_t k = 0; k < sim::kNetKindSlots; ++k) {
      const ViewEgress& v = by_kind[k];
      if (v.msgs == 0) continue;
      std::printf("  %-15s %8llu %12llu %8llu %9.2f\n",
                  std::string(sim::net_kind_name(k)).c_str(),
                  static_cast<unsigned long long>(v.msgs),
                  static_cast<unsigned long long>(v.bytes),
                  static_cast<unsigned long long>(v.authenticators),
                  static_cast<double>(v.authenticators) /
                      static_cast<double>(v.msgs));
    }
  }
};

void usage() {
  std::printf(
      "trace_inspect — analyze a JSONL protocol trace\n\n"
      "  trace_inspect [--report=summary|phases|egress|kinds|timeline|all]\n"
      "                [--n=N] [--block=HEXPREFIX] [--view=N]\n"
      "                [--critical-path] [--spans-out=PATH] trace.jsonl\n\n"
      "  --report=R        which report to print (default all)\n"
      "  --n=N             replica count for leader attribution (default:"
      " infer)\n"
      "  --block=HEX       keep only events whose 16-hex block id starts"
      " with HEX\n"
      "  --view=N          keep only events of view N\n"
      "  --critical-path   print the per-block critical-path report\n"
      "  --spans-out=PATH  write lifecycle spans as Chrome trace-event JSON\n"
      "\nsummary/phases/egress/kinds stream the input (constant memory in\n"
      "the trace length); timeline, --critical-path, and --spans-out buffer\n"
      "the events they need to walk.\n");
}

std::string block_hex(std::uint64_t block) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(block));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report = "all";
  std::string path;
  std::string block_prefix;
  std::string spans_out;
  bool critical_path = false;
  bool have_view_filter = false;
  ViewNumber view_filter = 0;
  std::uint32_t n = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0) {
      usage();
      return 0;
    } else if (std::strncmp(arg, "--report=", 9) == 0) {
      report = arg + 9;
    } else if (std::strncmp(arg, "--n=", 4) == 0) {
      n = static_cast<std::uint32_t>(std::atoi(arg + 4));
    } else if (std::strncmp(arg, "--block=", 8) == 0) {
      block_prefix = arg + 8;
      for (char& ch : block_prefix) ch = static_cast<char>(std::tolower(ch));
    } else if (std::strncmp(arg, "--view=", 7) == 0) {
      have_view_filter = true;
      view_filter = static_cast<ViewNumber>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--spans-out=", 12) == 0) {
      spans_out = arg + 12;
    } else if (std::strcmp(arg, "--critical-path") == 0) {
      critical_path = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  const bool all = report == "all";
  const bool want_summary = all || report == "summary";
  const bool want_phases = all || report == "phases";
  const bool want_egress = all || report == "egress";
  const bool want_kinds = all || report == "kinds";
  const bool want_timeline = all || report == "timeline";
  // Only the reports that walk the event list repeatedly force buffering.
  const bool need_buffer = want_timeline || critical_path || !spans_out.empty();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }

  ReplicaCountAcc n_acc;
  SummaryAcc summary;
  PhasesAcc phases;
  EgressAcc egress;
  KindsAcc kinds;
  std::vector<TraceEvent> events;  // only filled when need_buffer

  std::string line;
  std::size_t lineno = 0, bad = 0, kept = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    TraceEvent e;
    if (!obs::event_from_json(line, &e)) {
      ++bad;
      continue;
    }
    if (!block_prefix.empty() &&
        block_hex(e.block).rfind(block_prefix, 0) != 0) {
      continue;
    }
    if (have_view_filter && e.view != view_filter) continue;
    ++kept;
    n_acc.add(e);
    if (want_summary) summary.add(e);
    if (want_phases) phases.add(e);
    if (want_egress) egress.add(e);
    if (want_kinds) kinds.add(e);
    if (need_buffer) events.push_back(e);
  }
  if (bad > 0) {
    std::fprintf(stderr, "warning: %zu of %zu lines unparseable\n", bad,
                 lineno);
  }
  if (kept == 0) {
    if (!block_prefix.empty() || have_view_filter) {
      std::fprintf(stderr, "no events match the filters\n");
    } else {
      std::fprintf(stderr, "no events in %s\n", path.c_str());
    }
    return 1;
  }
  if (need_buffer) {
    // Traces are written in seq order, but be robust to concatenated files.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.seq < b.seq;
                     });
  }

  if (n == 0) n = n_acc.n();

  bool matched = false;
  if (want_summary) {
    summary.print(n);
    matched = true;
  }
  if (want_phases) {
    if (matched) std::printf("\n");
    phases.print();
    matched = true;
  }
  if (want_egress) {
    if (matched) std::printf("\n");
    egress.print(n);
    matched = true;
  }
  if (want_kinds) {
    if (matched) std::printf("\n");
    kinds.print();
    matched = true;
  }
  if (want_timeline) {
    if (matched) std::printf("\n");
    obs::print_view_timeline(events, std::cout);
    matched = true;
  }
  if (critical_path) {
    if (matched) std::printf("\n");
    std::printf("%s", obs::critical_path_report(events).c_str());
    matched = true;
  }
  if (!spans_out.empty()) {
    const auto spans = obs::build_spans(events);
    if (!obs::write_text_file(spans_out, obs::spans_to_chrome_json(spans))) {
      std::fprintf(stderr, "failed to write %s\n", spans_out.c_str());
      return 2;
    }
    std::printf("%sspans: %zu blocks -> %s\n", matched ? "\n" : "",
                spans.size(), spans_out.c_str());
    matched = true;
  }
  if (!matched) {
    std::fprintf(stderr, "unknown report '%s' (try --help)\n",
                 report.c_str());
    return 2;
  }
  return 0;
}
