// trace_inspect — offline analyzer for JSONL protocol traces produced by
// marlin_sim / the benches (obs::trace_to_jsonl format).
//
//   trace_inspect trace.jsonl                 # all reports
//   trace_inspect --report=phases trace.jsonl # per-phase latency only
//   trace_inspect --report=egress --n=4 ...   # per-view leader egress
//
// Reports:
//   summary  — event counts by type, time span, nodes, views
//   phases   — per-block latency from proposal to each QC and to commit
//   egress   — per-view leader egress: messages, bytes, authenticators
//   kinds    — per-kind traffic with authenticators/message (Table I check)
//   timeline — the per-view activity timeline (same as marlin_sim --timeline)
//
// Extra outputs:
//   --critical-path      per-block critical-path report (round-trip count,
//                        per-edge queue/wire/cpu attribution)
//   --spans-out=PATH     per-block lifecycle spans as Chrome trace-event
//                        JSON, loadable in Perfetto
//
// Filters (applied before any report):
//   --block=HEXPREFIX    only events whose block id starts with the prefix
//   --view=N             only events of view N
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "simnet/network.h"

using namespace marlin;
using obs::EventType;
using obs::TraceEvent;

namespace {

double ms(std::uint64_t nanos) { return static_cast<double>(nanos) / 1e6; }

/// n inferred from the protocol events only — kMsgDropped may carry client
/// node ids, which would overestimate the replica count.
std::uint32_t infer_n(const std::vector<TraceEvent>& events) {
  std::uint32_t max_node = 0;
  bool any = false;
  for (const TraceEvent& e : events) {
    if (e.node == obs::kNoNode) continue;
    if (e.type == EventType::kViewEntered || e.type == EventType::kVoteSent ||
        e.type == EventType::kProposalSent) {
      max_node = std::max(max_node, e.node);
      any = true;
    }
  }
  return any ? max_node + 1 : 0;
}

void print_summary(const std::vector<TraceEvent>& events) {
  std::uint64_t by_type[obs::kEventTypeCount] = {};
  std::uint64_t min_ns = ~0ull, max_ns = 0;
  ViewNumber max_view = 0;
  for (const TraceEvent& e : events) {
    const auto t = static_cast<std::size_t>(e.type);
    if (t < obs::kEventTypeCount) ++by_type[t];
    const std::uint64_t ns = static_cast<std::uint64_t>(e.at.as_nanos());
    min_ns = std::min(min_ns, ns);
    max_ns = std::max(max_ns, ns);
    max_view = std::max(max_view, e.view);
  }
  std::printf("summary\n");
  std::printf("  events: %zu   span: %.3f ms .. %.3f ms   max view: %llu   "
              "replicas: %u\n",
              events.size(), ms(min_ns), ms(max_ns),
              static_cast<unsigned long long>(max_view), infer_n(events));
  for (std::size_t t = 0; t < obs::kEventTypeCount; ++t) {
    if (by_type[t] == 0) continue;
    std::printf("  %-20s %10llu\n",
                obs::event_type_name(static_cast<EventType>(t)),
                static_cast<unsigned long long>(by_type[t]));
  }
}

/// Per-block milestones: proposal broadcast, each phase's QC, first commit.
struct BlockTiming {
  std::uint64_t propose_ns = 0;
  bool proposed = false;
  std::map<std::uint8_t, std::uint64_t> qc_ns;  // phase -> first QC time
  std::uint64_t commit_ns = 0;
  bool committed = false;
};

void print_phase_latency(const std::vector<TraceEvent>& events) {
  std::map<std::uint64_t, BlockTiming> blocks;
  for (const TraceEvent& e : events) {
    if (e.block == 0) continue;
    const std::uint64_t ns = static_cast<std::uint64_t>(e.at.as_nanos());
    BlockTiming& bt = blocks[e.block];
    switch (e.type) {
      case EventType::kProposalSent:
        if (!bt.proposed || ns < bt.propose_ns) bt.propose_ns = ns;
        bt.proposed = true;
        break;
      case EventType::kQcFormed:
        if (!bt.qc_ns.count(e.phase)) bt.qc_ns[e.phase] = ns;
        break;
      case EventType::kCommit:
        if (!bt.committed || ns < bt.commit_ns) bt.commit_ns = ns;
        bt.committed = true;
        break;
      default:
        break;
    }
  }

  // Latency distributions from the proposal broadcast to each milestone.
  std::map<std::uint8_t, obs::ValueHistogram> to_qc;
  obs::ValueHistogram to_commit;
  for (const auto& [block, bt] : blocks) {
    if (!bt.proposed) continue;
    for (const auto& [phase, qc_at] : bt.qc_ns) {
      if (qc_at >= bt.propose_ns) to_qc[phase].record(qc_at - bt.propose_ns);
    }
    if (bt.committed && bt.commit_ns >= bt.propose_ns) {
      to_commit.record(bt.commit_ns - bt.propose_ns);
    }
  }

  std::printf("phase latency (proposal broadcast -> milestone, per block)\n");
  std::printf("  %-22s %7s %9s %9s %9s\n", "milestone", "blocks", "mean_ms",
              "p50_ms", "p95_ms");
  for (const auto& [phase, h] : to_qc) {
    char label[40];
    std::snprintf(label, sizeof label, "qc[%s]",
                  obs::trace_phase_name(phase));
    std::printf("  %-22s %7zu %9.3f %9.3f %9.3f\n", label, h.count(),
                ms(static_cast<std::uint64_t>(h.mean())),
                ms(static_cast<std::uint64_t>(h.percentile(50))),
                ms(static_cast<std::uint64_t>(h.percentile(95))));
  }
  std::printf("  %-22s %7zu %9.3f %9.3f %9.3f\n", "commit", to_commit.count(),
              ms(static_cast<std::uint64_t>(to_commit.mean())),
              ms(static_cast<std::uint64_t>(to_commit.percentile(50))),
              ms(static_cast<std::uint64_t>(to_commit.percentile(95))));
}

struct ViewEgress {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t authenticators = 0;
};

void print_leader_egress(const std::vector<TraceEvent>& events,
                         std::uint32_t n) {
  if (n == 0) n = infer_n(events);
  if (n == 0) {
    std::printf("leader egress: no replica events in trace\n");
    return;
  }
  std::map<ViewNumber, ViewEgress> by_view;
  for (const TraceEvent& e : events) {
    if (e.type != EventType::kMsgSent) continue;
    if (e.node != e.view % n) continue;  // leader of that view only
    ViewEgress& v = by_view[e.view];
    ++v.msgs;
    v.bytes += e.a;
    v.authenticators += e.b;
  }
  std::printf("leader egress per view (n=%u, leader = view %% n)\n", n);
  std::printf("  %-8s %-7s %8s %12s %8s\n", "view", "leader", "msgs",
              "bytes", "auths");
  ViewEgress total;
  for (const auto& [view, v] : by_view) {
    std::printf("  %-8llu %-7llu %8llu %12llu %8llu\n",
                static_cast<unsigned long long>(view),
                static_cast<unsigned long long>(view % n),
                static_cast<unsigned long long>(v.msgs),
                static_cast<unsigned long long>(v.bytes),
                static_cast<unsigned long long>(v.authenticators));
    total.msgs += v.msgs;
    total.bytes += v.bytes;
    total.authenticators += v.authenticators;
  }
  std::printf("  %-8s %-7s %8llu %12llu %8llu\n", "total", "",
              static_cast<unsigned long long>(total.msgs),
              static_cast<unsigned long long>(total.bytes),
              static_cast<unsigned long long>(total.authenticators));
}

void print_kind_breakdown(const std::vector<TraceEvent>& events) {
  ViewEgress by_kind[sim::kNetKindSlots] = {};
  for (const TraceEvent& e : events) {
    if (e.type != EventType::kMsgSent) continue;
    const std::size_t slot = e.kind < sim::kNetKindSlots ? e.kind : 0;
    ++by_kind[slot].msgs;
    by_kind[slot].bytes += e.a;
    by_kind[slot].authenticators += e.b;
  }
  std::printf("traffic by message kind (authenticators: Table I check)\n");
  std::printf("  %-15s %8s %12s %8s %9s\n", "kind", "msgs", "bytes", "auths",
              "auth/msg");
  for (std::size_t k = 0; k < sim::kNetKindSlots; ++k) {
    const ViewEgress& v = by_kind[k];
    if (v.msgs == 0) continue;
    std::printf("  %-15s %8llu %12llu %8llu %9.2f\n",
                std::string(sim::net_kind_name(k)).c_str(),
                static_cast<unsigned long long>(v.msgs),
                static_cast<unsigned long long>(v.bytes),
                static_cast<unsigned long long>(v.authenticators),
                static_cast<double>(v.authenticators) /
                    static_cast<double>(v.msgs));
  }
}

void usage() {
  std::printf(
      "trace_inspect — analyze a JSONL protocol trace\n\n"
      "  trace_inspect [--report=summary|phases|egress|kinds|timeline|all]\n"
      "                [--n=N] [--block=HEXPREFIX] [--view=N]\n"
      "                [--critical-path] [--spans-out=PATH] trace.jsonl\n\n"
      "  --report=R        which report to print (default all)\n"
      "  --n=N             replica count for leader attribution (default:"
      " infer)\n"
      "  --block=HEX       keep only events whose 16-hex block id starts"
      " with HEX\n"
      "  --view=N          keep only events of view N\n"
      "  --critical-path   print the per-block critical-path report\n"
      "  --spans-out=PATH  write lifecycle spans as Chrome trace-event JSON\n");
}

std::string block_hex(std::uint64_t block) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(block));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report = "all";
  std::string path;
  std::string block_prefix;
  std::string spans_out;
  bool critical_path = false;
  bool have_view_filter = false;
  ViewNumber view_filter = 0;
  std::uint32_t n = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0) {
      usage();
      return 0;
    } else if (std::strncmp(arg, "--report=", 9) == 0) {
      report = arg + 9;
    } else if (std::strncmp(arg, "--n=", 4) == 0) {
      n = static_cast<std::uint32_t>(std::atoi(arg + 4));
    } else if (std::strncmp(arg, "--block=", 8) == 0) {
      block_prefix = arg + 8;
      for (char& ch : block_prefix) ch = static_cast<char>(std::tolower(ch));
    } else if (std::strncmp(arg, "--view=", 7) == 0) {
      have_view_filter = true;
      view_filter = static_cast<ViewNumber>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--spans-out=", 12) == 0) {
      spans_out = arg + 12;
    } else if (std::strcmp(arg, "--critical-path") == 0) {
      critical_path = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t lineno = 0, bad = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    TraceEvent e;
    if (!obs::event_from_json(line, &e)) {
      ++bad;
      continue;
    }
    events.push_back(e);
  }
  if (bad > 0) {
    std::fprintf(stderr, "warning: %zu of %zu lines unparseable\n", bad,
                 lineno);
  }
  if (events.empty()) {
    std::fprintf(stderr, "no events in %s\n", path.c_str());
    return 1;
  }
  // Traces are written in seq order, but be robust to concatenated files.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.seq < b.seq;
                   });

  if (!block_prefix.empty() || have_view_filter) {
    std::erase_if(events, [&](const TraceEvent& e) {
      if (!block_prefix.empty() &&
          block_hex(e.block).rfind(block_prefix, 0) != 0) {
        return true;
      }
      return have_view_filter && e.view != view_filter;
    });
    if (events.empty()) {
      std::fprintf(stderr, "no events match the filters\n");
      return 1;
    }
  }

  const bool all = report == "all";
  bool matched = false;
  if (all || report == "summary") {
    print_summary(events);
    matched = true;
  }
  if (all || report == "phases") {
    if (matched) std::printf("\n");
    print_phase_latency(events);
    matched = true;
  }
  if (all || report == "egress") {
    if (matched) std::printf("\n");
    print_leader_egress(events, n);
    matched = true;
  }
  if (all || report == "kinds") {
    if (matched) std::printf("\n");
    print_kind_breakdown(events);
    matched = true;
  }
  if (all || report == "timeline") {
    if (matched) std::printf("\n");
    obs::print_view_timeline(events, std::cout);
    matched = true;
  }
  if (critical_path) {
    if (matched) std::printf("\n");
    std::printf("%s", obs::critical_path_report(events).c_str());
    matched = true;
  }
  if (!spans_out.empty()) {
    const auto spans = obs::build_spans(events);
    if (!obs::write_text_file(spans_out, obs::spans_to_chrome_json(spans))) {
      std::fprintf(stderr, "failed to write %s\n", spans_out.c_str());
      return 2;
    }
    std::printf("%sspans: %zu blocks -> %s\n", matched ? "\n" : "",
                spans.size(), spans_out.c_str());
    matched = true;
  }
  if (!matched) {
    std::fprintf(stderr, "unknown report '%s' (try --help)\n",
                 report.c_str());
    return 2;
  }
  return 0;
}
