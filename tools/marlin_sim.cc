// marlin_sim — command-line experiment runner for the simulated testbed.
//
// Lets users explore the protocol space without writing code:
//
//   marlin_sim --protocol=marlin --f=2 --clients=32 --window=200
//              --seconds=20 --payload=150
//   marlin_sim --protocol=hotstuff --f=1 --crash-leader-at=5 --seconds=30
//   marlin_sim --protocol=marlin --rotate=1000 --crashes=2 --f=3
//   marlin_sim --protocol=marlin --threshold-sigs --unhappy-vc
//   marlin_sim --protocol=marlin --faults=plan.json --seconds=30
//   marlin_sim --f=33 --clients=64 --shards=8 --seconds=10
//
// Fault flags (--crashes, --crash-leader-at, --faults) all compile down to
// one declarative FaultPlan executed by the cluster's FaultController, so
// every faulty run is replayable from its (seed, plan) pair.
//
// --shards=K (K > 1) runs on the partitioned event engine (lookahead-window
// synchronization, docs/SCALING.md): results are deterministic and
// invariant across K and --workers, but follow the sharded schedule, not
// the single-queue one. --shards=1 (the default) is the legacy engine with
// its byte-identical golden traces.
//
// Prints a one-line summary plus a per-replica table; exits non-zero on
// any safety violation.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "cli_flags.h"
#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "runtime/cluster.h"
#include "simnet/sharded.h"

using namespace marlin;
using namespace marlin::runtime;

namespace {

struct Options {
  ClusterConfig cluster;
  double seconds = 20;
  std::uint32_t shards = 1;     // 1 = legacy single-queue engine
  std::uint32_t workers = 0;    // sharded engine: 0 = one per core
  double crash_leader_at = -1;  // seconds; <0 = never
  std::uint32_t crashes = 0;    // random-ish replicas crashed at start
  std::string faults_path;      // JSON FaultPlan to execute
  std::string trace_out;        // JSONL protocol trace path
  std::string metrics_out;      // JSON metrics snapshot path
  std::string metrics_csv;      // CSV metrics snapshot path
  std::string metrics_series_out;  // JSONL time-series of metric snapshots
  double metrics_interval = 0;  // 0 = default 1 s when a series is written
  std::string spans_out;        // Chrome trace-event JSON (Perfetto) path
  bool critical_path = false;   // print the critical-path report
  bool timeline = false;        // print per-view timeline
  bool help = false;
};

void usage() {
  std::printf(
      "marlin_sim — run a simulated BFT cluster experiment\n\n"
      "  --protocol=marlin|hotstuff   consensus protocol (default marlin)\n"
      "  --f=N                        fault threshold; n = 3f+1 (default 1)\n"
      "  --clients=N                  closed-loop clients (default 8)\n"
      "  --window=N                   outstanding requests per client (16)\n"
      "  --payload=BYTES              request payload size (150; 0 = no-op)\n"
      "  --batch=N                    max ops per block (4000)\n"
      "  --seconds=S                  simulated duration (20)\n"
      "  --seed=N                     deterministic seed (42)\n"
      "  --shards=K                   partitioned event engine with K shards\n"
      "                               (default 1 = legacy single queue; see\n"
      "                               docs/SCALING.md)\n"
      "  --workers=N                  worker threads for --shards>1\n"
      "                               (default: one per core, capped at K)\n"
      "  --delay-ms=N                 one-way network delay (40)\n"
      "  --link-mbps=N                per-link bandwidth (200)\n"
      "  --nic-mbps=N                 per-NIC bandwidth (1000)\n"
      "  --drop=P                     message drop probability (0)\n"
      "  --pipelined=0|1              chained pipelining (1)\n"
      "  --threshold-sigs             constant-size threshold QCs\n"
      "  --unhappy-vc                 disable Marlin's happy-path VC\n"
      "  --rotate=MS                  rotating-leader mode, interval in ms\n"
      "  --timeout-ms=N               view-change timeout (2000)\n"
      "  --timeout-per-replica-ms=N   add N ms per replica to the view\n"
      "                               timeout (0; keeps large n live)\n"
      "  --crash-leader-at=S          crash the current leader at time S\n"
      "  --crashes=N                  crash N replicas at start\n"
      "  --faults=PATH                execute a JSON fault plan (see\n"
      "                               docs/FAULTS.md for the schema)\n"
      "  --trace-out=PATH             dump the protocol trace as JSONL\n"
      "  --metrics-out=PATH           dump a metrics snapshot as JSON\n"
      "  --metrics-csv=PATH           dump a metrics snapshot as CSV\n"
      "  --metrics-series-out=PATH    append JSONL metric snapshots every\n"
      "                               --metrics-interval simulated seconds\n"
      "                               (same schema as marlin_run's series)\n"
      "  --metrics-interval=S         series sampling period (default 1)\n"
      "  --spans-out=PATH             dump per-block lifecycle spans as\n"
      "                               Chrome trace-event JSON (Perfetto)\n"
      "  --critical-path              print per-block critical-path report\n"
      "  --timeline                   print a per-view activity timeline\n");
}

bool parse_options(int argc, char** argv, Options* opt) {
  cli::ArgCursor args(argc, argv);
  while (args.next()) {
    std::string v;
    Duration ms;
    double mbps = 0;
    if (args.flag("--help")) {
      opt->help = true;
    } else if (args.str("--protocol", &v)) {
      if (v == "marlin") {
        opt->cluster.consensus.protocol = ProtocolKind::kMarlin;
      } else if (v == "hotstuff") {
        opt->cluster.consensus.protocol = ProtocolKind::kHotStuff;
      } else {
        args.fail_value("--protocol", v, "marlin|hotstuff");
      }
    } else if (args.u32("--f", &opt->cluster.f)) {
    } else if (args.u32("--clients", &opt->cluster.clients.count)) {
    } else if (args.u32("--window", &opt->cluster.clients.window)) {
    } else if (args.size("--payload", &opt->cluster.clients.payload_size)) {
    } else if (args.size("--batch", &opt->cluster.consensus.max_batch_ops)) {
    } else if (args.f64("--seconds", &opt->seconds)) {
    } else if (args.u64("--seed", &opt->cluster.seed)) {
    } else if (args.u32("--shards", &opt->shards)) {
    } else if (args.u32("--workers", &opt->workers)) {
    } else if (args.millis("--delay-ms", &opt->cluster.net.one_way_delay)) {
    } else if (args.f64("--link-mbps", &mbps)) {
      opt->cluster.net.link_bandwidth_bps = mbps * 1e6;
    } else if (args.f64("--nic-mbps", &mbps)) {
      opt->cluster.net.nic_bandwidth_bps = mbps * 1e6;
    } else if (args.f64("--drop", &opt->cluster.net.drop_probability)) {
    } else if (args.str("--pipelined", &v)) {
      opt->cluster.consensus.pipelined = v != "0";
    } else if (args.flag("--threshold-sigs")) {
      opt->cluster.consensus.use_threshold_sigs = true;
    } else if (args.flag("--unhappy-vc")) {
      opt->cluster.consensus.disable_happy_path = true;
    } else if (args.millis("--rotate", &ms)) {
      opt->cluster.consensus.pacemaker.rotate_on_timer = true;
      opt->cluster.consensus.pacemaker.rotation_interval = ms;
    } else if (args.millis("--timeout-ms",
                           &opt->cluster.consensus.pacemaker.base_timeout)) {
    } else if (args.millis(
                   "--timeout-per-replica-ms",
                   &opt->cluster.consensus.pacemaker.base_timeout_per_replica)) {
    } else if (args.f64("--crash-leader-at", &opt->crash_leader_at)) {
    } else if (args.u32("--crashes", &opt->crashes)) {
    } else if (args.str("--faults", &opt->faults_path)) {
    } else if (args.str("--trace-out", &opt->trace_out)) {
    } else if (args.str("--metrics-out", &opt->metrics_out)) {
    } else if (args.str("--metrics-csv", &opt->metrics_csv)) {
    } else if (args.str("--metrics-series-out", &opt->metrics_series_out)) {
    } else if (args.f64("--metrics-interval", &opt->metrics_interval)) {
    } else if (args.str("--spans-out", &opt->spans_out)) {
    } else if (args.flag("--critical-path")) {
      opt->critical_path = true;
    } else if (args.flag("--timeline")) {
      opt->timeline = true;
    } else {
      args.fail_unknown();
    }
  }
  if (args.ok() && opt->shards > 1 &&
      opt->cluster.net.one_way_delay <= Duration::zero()) {
    std::fprintf(stderr,
                 "--shards=%u requires a positive --delay-ms (the one-way "
                 "delay is the engine's lookahead window)\n",
                 opt->shards);
    return false;
  }
  return args.ok();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage();
    return 0;
  }

  // Every fault flag compiles into the cluster's one FaultPlan.
  if (!opt.faults_path.empty()) {
    std::ifstream in(opt.faults_path);
    if (!in) {
      std::fprintf(stderr, "cannot read fault plan %s\n",
                   opt.faults_path.c_str());
      return 2;
    }
    std::ostringstream body;
    body << in.rdbuf();
    auto plan = faults::FaultPlan::from_json(body.str());
    if (!plan.is_ok()) {
      std::fprintf(stderr, "bad fault plan %s: %s\n", opt.faults_path.c_str(),
                   plan.status().message().c_str());
      return 2;
    }
    opt.cluster.faults = std::move(plan).take();
  }
  const std::uint32_t n = 3 * opt.cluster.f + 1;
  for (std::uint32_t i = 0; i < opt.crashes && i < n; ++i) {
    // Spread victims; skip the view-1 leader so the run bootstraps.
    opt.cluster.faults.actions.push_back(
        faults::FaultAction::crash(Duration::zero(), (2 + 3 * i) % n));
  }
  if (opt.crash_leader_at >= 0) {
    opt.cluster.faults.actions.push_back(faults::FaultAction::crash_leader(
        Duration::from_seconds_f(opt.crash_leader_at)));
  }

  obs::TraceSink trace{1 << 18};
  const bool want_obs = !opt.trace_out.empty() || opt.timeline ||
                        !opt.spans_out.empty() || opt.critical_path;
  if (want_obs) {
    // Authenticator counting only reads outgoing messages — it never
    // changes simulated behavior — so traced runs get it for free.
    opt.cluster.count_authenticators = true;
  }

  // Engine selection: one of the two backends drives the one cluster.
  // --shards=1 is the legacy single-queue engine (byte-identical golden
  // schedule); --shards>1 is the partitioned engine.
  std::optional<sim::Simulator> sim;
  std::optional<sim::ShardedSimulator> sharded;
  std::optional<Cluster> cluster;
  if (opt.shards > 1) {
    sim::ShardedSimulator::Config ecfg;
    ecfg.seed = opt.cluster.seed;
    ecfg.shards = opt.shards;
    ecfg.workers = opt.workers;
    ecfg.lookahead = opt.cluster.net.one_way_delay;
    sharded.emplace(ecfg);
    if (want_obs) sharded->enable_tracing(1 << 18);
    cluster.emplace(*sharded, opt.cluster);
  } else {
    if (want_obs) opt.cluster.trace = &trace;
    sim.emplace(opt.cluster.seed);
    cluster.emplace(*sim, opt.cluster);
  }
  const auto run_to = [&](TimePoint t) {
    if (sim) {
      sim->run_until(t);
    } else {
      sharded->run_until(t);
    }
  };
  const auto trace_events = [&] {
    return sim ? trace.events() : sharded->merged_trace();
  };

  // Measurement window: skip the first 20 % as warm-up.
  const TimePoint start =
      TimePoint::origin() + Duration::from_seconds_f(opt.seconds * 0.2);
  const TimePoint end =
      TimePoint::origin() + Duration::from_seconds_f(opt.seconds);
  cluster->set_measurement_window(start, end);
  cluster->start();

  // The series sampler interleaves run_until slices with metric snapshots:
  // same schema as marlin_run's live sampler, but on the virtual clock, so
  // the trajectory is bit-deterministic from the seed. (On the sharded
  // engine snapshots land at window barriers — the cluster is quiescent.)
  if (!opt.metrics_series_out.empty()) {
    std::ofstream series(opt.metrics_series_out, std::ios::trunc);
    if (!series) {
      std::fprintf(stderr, "cannot write %s\n",
                   opt.metrics_series_out.c_str());
      return 2;
    }
    const double step =
        opt.metrics_interval > 0 ? opt.metrics_interval : 1.0;
    for (double t = step; t < opt.seconds; t += step) {
      const TimePoint at = TimePoint::origin() + Duration::from_seconds_f(t);
      run_to(at);
      obs::MetricsRegistry snap;
      cluster->export_metrics(snap);
      series << obs::metrics_series_line(at.as_seconds_f(), snap) << '\n';
    }
  } else if (opt.metrics_interval > 0) {
    std::fprintf(stderr,
                 "warning: --metrics-interval without --metrics-series-out "
                 "has no effect\n");
  }
  run_to(end + Duration::seconds(1));

  for (const auto& a : cluster->faults().log()) {
    std::printf("[t=%.1fs] fault: %s", a.at.as_seconds_f(),
                faults::fault_kind_name(a.kind));
    if (a.target != kNoReplica) std::printf(" replica %u", a.target);
    std::printf(" (view %llu)\n", static_cast<unsigned long long>(a.view));
  }

  std::printf("\n%s  f=%u (n=%u)  %s%s%s\n",
              opt.cluster.consensus.protocol == ProtocolKind::kMarlin ? "MARLIN"
                                                            : "HOTSTUFF",
              cluster->f(), cluster->n(),
              opt.cluster.consensus.pacemaker.rotate_on_timer ? "rotating " : "",
              opt.cluster.consensus.use_threshold_sigs ? "threshold-sigs " : "",
              opt.cluster.consensus.disable_happy_path ? "unhappy-vc" : "");
  if (sharded) {
    std::printf("  engine:      %u shards x %u workers (lookahead %s)\n",
                sharded->shards(), sharded->workers(),
                sharded->lookahead().to_string().c_str());
  }
  std::printf("  throughput:  %.2f ktx/s (window %.1fs-%.1fs)\n",
              cluster->client_throughput() / 1000.0, start.as_seconds_f(),
              end.as_seconds_f());
  std::printf("  latency:     mean %.1f ms, p50 %.1f, p95 %.1f\n",
              cluster->mean_latency_ms(), cluster->latency_ms(50),
              cluster->latency_ms(95));
  std::printf("  view:        %llu (leader %u)\n",
              static_cast<unsigned long long>(cluster->max_view()),
              cluster->current_leader());

  std::printf("  %-8s %-8s %-10s %-10s\n", "replica", "view", "height",
              "cpu-busy");
  for (ReplicaId r = 0; r < cluster->n(); ++r) {
    if (cluster->network().is_down(r)) {
      std::printf("  %-8u (crashed)\n", r);
      continue;
    }
    const auto& rp = cluster->replica(r);
    std::printf("  %-8u %-8llu %-10llu %s\n", r,
                static_cast<unsigned long long>(rp.protocol().current_view()),
                static_cast<unsigned long long>(
                    rp.protocol().committed_height()),
                rp.cpu_busy().to_string().c_str());
  }

  const bool safe = !cluster->any_safety_violation() &&
                    cluster->committed_heights_consistent();
  std::printf("  safety: %s\n", safe ? "ok" : "VIOLATED");

  if (opt.timeline) {
    std::printf("\n");
    obs::print_view_timeline(trace_events(), std::cout);
  }
  if (!opt.spans_out.empty()) {
    const auto spans = obs::build_spans(trace_events());
    if (!obs::write_text_file(opt.spans_out,
                              obs::spans_to_chrome_json(spans))) {
      std::fprintf(stderr, "failed to write %s\n", opt.spans_out.c_str());
      return 2;
    }
    std::printf("  spans:   %zu blocks -> %s\n", spans.size(),
                opt.spans_out.c_str());
  }
  if (opt.critical_path) {
    std::printf("\n%s", obs::critical_path_report(trace_events()).c_str());
  }
  if (!opt.trace_out.empty()) {
    std::uint64_t evicted = trace.evicted();
    if (sharded) {
      evicted = 0;
      for (std::uint32_t s = 0; s < sharded->shards(); ++s) {
        evicted += sharded->shard_trace(s)->evicted();
      }
    }
    if (evicted > 0) {
      std::fprintf(stderr,
                   "warning: trace ring overflowed; oldest %llu events lost\n",
                   static_cast<unsigned long long>(evicted));
    }
    const auto events = trace_events();
    if (!obs::write_text_file(opt.trace_out, obs::trace_to_jsonl(events))) {
      std::fprintf(stderr, "failed to write %s\n", opt.trace_out.c_str());
      return 2;
    }
    std::printf("  trace:   %zu events -> %s\n", events.size(),
                opt.trace_out.c_str());
  }
  if (!opt.metrics_out.empty() || !opt.metrics_csv.empty()) {
    obs::MetricsRegistry metrics;
    cluster->export_metrics(metrics);
    if (!opt.metrics_out.empty()) {
      if (!obs::write_text_file(opt.metrics_out,
                                obs::metrics_to_json(metrics))) {
        std::fprintf(stderr, "failed to write %s\n", opt.metrics_out.c_str());
        return 2;
      }
      std::printf("  metrics: %s\n", opt.metrics_out.c_str());
    }
    if (!opt.metrics_csv.empty()) {
      if (!obs::write_text_file(opt.metrics_csv,
                                obs::metrics_to_csv(metrics))) {
        std::fprintf(stderr, "failed to write %s\n", opt.metrics_csv.c_str());
        return 2;
      }
      std::printf("  metrics: %s\n", opt.metrics_csv.c_str());
    }
  }
  return safe ? 0 : 1;
}
