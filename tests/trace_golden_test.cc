// Golden protocol traces: the exact consensus event sequence for a
// 4-replica happy-path commit is pinned for Marlin and HotStuff, and the
// full trace is byte-identical across same-seed runs (the determinism
// property the observability layer is designed around).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/trace.h"
#include "runtime/cluster.h"

namespace marlin {
namespace {

using obs::EventType;
using obs::TraceEvent;
using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::ProtocolKind;

ClusterConfig tiny_config(ProtocolKind protocol) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.consensus.protocol = protocol;
  cfg.clients.count = 1;
  cfg.clients.window = 4;
  cfg.clients.max_requests = 4;  // one block's worth, then quiesce
  cfg.consensus.pipelined = false;
  cfg.seed = 7;
  return cfg;
}

/// Runs the cluster for `secs` simulated seconds with a trace attached and
/// returns the full JSONL dump.
std::string run_traced(ClusterConfig cfg, int secs, obs::TraceSink* sink) {
  sim::Simulator sim(cfg.seed);
  cfg.trace = sink;
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(secs));
  EXPECT_FALSE(cluster.any_safety_violation());
  return obs::trace_to_jsonl(*sink);
}

bool is_consensus_event(EventType t) {
  switch (t) {
    case EventType::kProposalSent:
    case EventType::kProposalReceived:
    case EventType::kVoteSent:
    case EventType::kQcFormed:
    case EventType::kPhaseTransition:
    case EventType::kCommit:
      return true;
    default:
      return false;
  }
}

/// "type@node" labels of the consensus events up to and including the 4th
/// kCommit (every replica delivering the first block), in trace order.
std::vector<std::string> happy_path_sequence(
    const std::vector<TraceEvent>& events) {
  std::vector<std::string> out;
  int commits = 0;
  for (const TraceEvent& e : events) {
    if (!is_consensus_event(e.type)) continue;
    out.push_back(std::string(obs::event_type_name(e.type)) + "@" +
                  std::to_string(e.node));
    if (e.type == EventType::kCommit && ++commits == 4) break;
  }
  return out;
}

TEST(GoldenTrace, MarlinHappyPathCommitSequence) {
  obs::TraceSink sink;
  run_traced(tiny_config(ProtocolKind::kMarlin), 2, &sink);

  // Two-phase happy path, leader of view 1 is replica 1:
  //   proposal broadcast -> all accept + vote (prepare) -> leader forms the
  //   prepare QC and enters commit -> QC notice triggers commit votes ->
  //   commit QC -> decide -> every replica delivers the block. The node
  //   interleaving is fixed by the seed's network jitter.
  const std::vector<std::string> expected = {
      "proposal_sent@1",     "proposal_received@1", "vote_sent@1",
      "proposal_received@3", "vote_sent@3",         "proposal_received@0",
      "vote_sent@0",         "proposal_received@2", "vote_sent@2",
      "qc_formed@1",         "phase_transition@1",  "vote_sent@1",
      "vote_sent@2",         "vote_sent@0",         "vote_sent@3",
      "qc_formed@1",         "phase_transition@1",  "commit@1",
      "commit@0",            "commit@3",            "commit@2",
  };
  EXPECT_EQ(happy_path_sequence(sink.events()), expected);

  // The two QCs of the first block are a prepare QC then a commit QC.
  std::vector<std::uint8_t> qc_phases;
  for (const TraceEvent& e : sink.events()) {
    if (e.type == EventType::kQcFormed && qc_phases.size() < 2) {
      qc_phases.push_back(e.phase);
    }
  }
  ASSERT_EQ(qc_phases.size(), 2u);
  EXPECT_STREQ(obs::trace_phase_name(qc_phases[0]), "prepare");
  EXPECT_STREQ(obs::trace_phase_name(qc_phases[1]), "commit");
}

TEST(GoldenTrace, HotStuffHappyPathCommitSequence) {
  obs::TraceSink sink;
  run_traced(tiny_config(ProtocolKind::kHotStuff), 2, &sink);

  // Three-phase happy path: prepare -> pre-commit -> commit -> decide, one
  // vote round per phase before any replica delivers. The node interleaving
  // is fixed by the seed's network jitter.
  const std::vector<std::string> expected = {
      "proposal_sent@1",     "proposal_received@1", "vote_sent@1",
      "proposal_received@3", "vote_sent@3",         "proposal_received@0",
      "vote_sent@0",         "proposal_received@2", "vote_sent@2",
      "qc_formed@1",         "phase_transition@1",  "vote_sent@1",
      "vote_sent@2",         "vote_sent@0",         "vote_sent@3",
      "qc_formed@1",         "phase_transition@1",  "vote_sent@1",
      "vote_sent@0",         "vote_sent@3",         "vote_sent@2",
      "qc_formed@1",         "phase_transition@1",  "commit@1",
      "commit@0",            "commit@3",            "commit@2",
  };
  EXPECT_EQ(happy_path_sequence(sink.events()), expected);

  std::vector<std::uint8_t> qc_phases;
  for (const TraceEvent& e : sink.events()) {
    if (e.type == EventType::kQcFormed && qc_phases.size() < 3) {
      qc_phases.push_back(e.phase);
    }
  }
  ASSERT_EQ(qc_phases.size(), 3u);
  EXPECT_STREQ(obs::trace_phase_name(qc_phases[0]), "prepare");
  EXPECT_STREQ(obs::trace_phase_name(qc_phases[1]), "precommit");
  EXPECT_STREQ(obs::trace_phase_name(qc_phases[2]), "commit");
}

TEST(GoldenTrace, SameSeedTracesAreByteIdentical) {
  for (ProtocolKind protocol :
       {ProtocolKind::kMarlin, ProtocolKind::kHotStuff}) {
    obs::TraceSink a_sink, b_sink;
    const std::string a =
        run_traced(tiny_config(protocol), 3, &a_sink);
    const std::string b =
        run_traced(tiny_config(protocol), 3, &b_sink);
    EXPECT_GT(a_sink.size(), 0u);
    EXPECT_EQ(a, b) << "protocol " << static_cast<int>(protocol);
  }
}

TEST(GoldenTrace, DifferentSeedsDiverge) {
  obs::TraceSink a_sink, b_sink;
  ClusterConfig cfg = tiny_config(ProtocolKind::kMarlin);
  // Full load (no request cap) so seed-dependent client timing shows up.
  cfg.clients.max_requests = 0;
  const std::string a = run_traced(cfg, 3, &a_sink);
  cfg.seed = 8;
  const std::string b = run_traced(cfg, 3, &b_sink);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace marlin
