// Tests for the consensus data model: block hashing/serialization, the
// rank partial order (including the paper's Fig. 5 worked example), block
// rank, the block store (extension/chain/virtual parents), and every wire
// message round-trip including the shadow-block proposal encoding.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "types/block_store.h"
#include "types/messages.h"

namespace marlin::types {
namespace {

Block make_block(ViewNumber view, Height height, Hash256 parent,
                 ViewNumber pview, std::vector<Operation> ops = {}) {
  Block b;
  b.parent_link = parent;
  b.parent_view = pview;
  b.view = view;
  b.height = height;
  b.ops = std::move(ops);
  return b;
}

QuorumCert make_qc(QcType type, ViewNumber view, Height height,
                   Hash256 block_hash = {}, ViewNumber block_view = 0,
                   ViewNumber pview = 0, bool virt = false) {
  QuorumCert qc;
  qc.type = type;
  qc.view = view;
  qc.height = height;
  qc.block_hash = block_hash;
  qc.block_view = block_view == 0 ? view : block_view;
  qc.pview = pview;
  qc.virtual_block = virt;
  return qc;
}

Operation make_op(ClientId c, RequestId r, std::size_t size = 8) {
  return Operation{c, r, Bytes(size, static_cast<std::uint8_t>(r))};
}

// ---------------------------------------------------------------------------
// Blocks
// ---------------------------------------------------------------------------

TEST(Block, HashIsDeterministic) {
  const Block b = make_block(1, 1, Hash256{}, 0, {make_op(1, 1)});
  EXPECT_EQ(b.hash(), b.hash());
}

TEST(Block, HashCoversEveryField) {
  const Block base = make_block(2, 5, Hash256{}, 1, {make_op(1, 1)});
  Block changed = base;
  changed.view = 3;
  EXPECT_NE(base.hash(), changed.hash());
  changed = base;
  changed.height = 6;
  EXPECT_NE(base.hash(), changed.hash());
  changed = base;
  changed.virtual_block = true;
  EXPECT_NE(base.hash(), changed.hash());
  changed = base;
  changed.ops[0].payload[0] ^= 1;
  EXPECT_NE(base.hash(), changed.hash());
  changed = base;
  changed.parent_view = 2;
  EXPECT_NE(base.hash(), changed.hash());
}

TEST(Block, ShadowBlocksHashDifferently) {
  // Same ops, different metadata (the paper's shadow blocks) must have
  // distinct identities.
  const std::vector<Operation> ops = {make_op(1, 1), make_op(1, 2)};
  const Block b1 =
      make_block(3, 7, crypto::Sha256::digest(to_bytes("parent")), 2, ops);
  Block b2 = b1;
  b2.height = 8;
  b2.virtual_block = true;
  b2.parent_link = Hash256{};
  EXPECT_NE(b1.hash(), b2.hash());
}

TEST(Block, WireRoundTrip) {
  Block b = make_block(4, 9, crypto::Sha256::digest(to_bytes("p")), 3,
                       {make_op(1, 1, 100), make_op(2, 7, 50)});
  b.justify.qc = make_qc(QcType::kPrepare, 3, 8);
  auto back = decode_from_bytes<Block>(encode_to_bytes(b));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), b);
  EXPECT_EQ(back.value().hash(), b.hash());
}

TEST(Block, GenesisProperties) {
  const Block g = Block::genesis();
  EXPECT_TRUE(g.is_genesis());
  EXPECT_EQ(g.height, 0u);
  EXPECT_TRUE(g.parent_link.is_zero());
  EXPECT_TRUE(g.justify.empty());
}

TEST(Block, OpsWireSize) {
  EXPECT_EQ(ops_wire_size({}), 0u);
  EXPECT_EQ(ops_wire_size({make_op(1, 1, 150)}), 4 + 8 + 2 + 150u);
}

TEST(Block, DecodeRejectsOversizedBatch) {
  Writer w;
  w.raw(Hash256{}.view());
  w.u64(0);
  w.u64(1);
  w.u64(1);
  w.boolean(false);
  w.varint(1u << 23);  // absurd op count
  auto r = decode_from_bytes<Block>(w.buffer());
  EXPECT_FALSE(r.is_ok());
}

// ---------------------------------------------------------------------------
// Rank rules (paper Fig. 4 and Fig. 5)
// ---------------------------------------------------------------------------

TEST(Rank, RuleA_HigherViewWins) {
  const auto lo = make_qc(QcType::kCommit, 3, 100);
  const auto hi = make_qc(QcType::kPrePrepare, 4, 1);
  EXPECT_TRUE(rank_greater(hi, lo));
  EXPECT_FALSE(rank_greater(lo, hi));
}

TEST(Rank, RuleB_PrepareBeatsPrePrepareSameView) {
  const auto pp = make_qc(QcType::kPrePrepare, 5, 10);
  const auto p = make_qc(QcType::kPrepare, 5, 3);
  const auto c = make_qc(QcType::kCommit, 5, 3);
  EXPECT_TRUE(rank_greater(p, pp));
  EXPECT_TRUE(rank_greater(c, pp));
  EXPECT_FALSE(rank_greater(pp, p));
}

TEST(Rank, RuleC_HeightBreaksTiesInHighClass) {
  const auto lo = make_qc(QcType::kPrepare, 5, 3);
  const auto hi = make_qc(QcType::kCommit, 5, 4);
  EXPECT_TRUE(rank_greater(hi, lo));
  EXPECT_FALSE(rank_greater(lo, hi));
}

TEST(Rank, PrepareAndCommitSameViewHeightAreEqual) {
  const auto p = make_qc(QcType::kPrepare, 5, 3);
  const auto c = make_qc(QcType::kCommit, 5, 3);
  EXPECT_TRUE(rank_equal(p, c));
  EXPECT_TRUE(rank_geq(p, c));
  EXPECT_TRUE(rank_geq(c, p));
}

TEST(Rank, PrePreparesSameViewEqualRegardlessOfHeight) {
  // Paper Fig. 5: qc3 and qc3' have the same rank although heights differ.
  const auto a = make_qc(QcType::kPrePrepare, 3, 7);
  const auto b = make_qc(QcType::kPrePrepare, 3, 8);
  EXPECT_TRUE(rank_equal(a, b));
}

TEST(Rank, Figure5WorkedExample) {
  // qc1: prepareQC view 2 height 1; qc2: prepareQC view 2 height 2;
  // qc3/qc3': pre-prepareQCs view 3 heights 3/4; qc4: prepareQC view 3.
  const auto qc1 = make_qc(QcType::kPrepare, 2, 1);
  const auto qc2 = make_qc(QcType::kPrepare, 2, 2);
  const auto qc3 = make_qc(QcType::kPrePrepare, 3, 3);
  const auto qc3p = make_qc(QcType::kPrePrepare, 3, 4);
  const auto qc4 = make_qc(QcType::kPrepare, 3, 3);
  EXPECT_TRUE(rank_greater(qc3p, qc2));   // rule (a)
  EXPECT_TRUE(rank_greater(qc4, qc3));    // rule (b)
  EXPECT_TRUE(rank_greater(qc4, qc3p));   // rule (b)
  EXPECT_TRUE(rank_greater(qc2, qc1));    // rule (c)
  EXPECT_TRUE(rank_equal(qc3, qc3p));
}

TEST(Rank, GenesisRanksLowest) {
  const auto genesis = QuorumCert::genesis(Hash256{});
  const auto any = make_qc(QcType::kPrePrepare, 1, 1);
  EXPECT_TRUE(rank_greater(any, genesis));
}

TEST(Rank, TotalOnRandomPairsIsAntisymmetric) {
  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    const auto a = make_qc(static_cast<QcType>(rng.next_below(4)),
                           rng.next_below(5), rng.next_below(5));
    const auto b = make_qc(static_cast<QcType>(rng.next_below(4)),
                           rng.next_below(5), rng.next_below(5));
    const int ab = compare_rank(a, b);
    const int ba = compare_rank(b, a);
    EXPECT_EQ(ab, -ba);
  }
}

TEST(Rank, TransitiveOnRandomTriples) {
  Rng rng(56);
  for (int i = 0; i < 500; ++i) {
    const auto a = make_qc(static_cast<QcType>(rng.next_below(4)),
                           rng.next_below(4), rng.next_below(4));
    const auto b = make_qc(static_cast<QcType>(rng.next_below(4)),
                           rng.next_below(4), rng.next_below(4));
    const auto c = make_qc(static_cast<QcType>(rng.next_below(4)),
                           rng.next_below(4), rng.next_below(4));
    if (compare_rank(a, b) >= 0 && compare_rank(b, c) >= 0) {
      EXPECT_GE(compare_rank(a, c), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Block rank
// ---------------------------------------------------------------------------

TEST(BlockRank, HigherViewDominates) {
  const Block b1 = make_block(3, 2, {}, 2);
  const Block b2 = make_block(2, 9, {}, 1);
  EXPECT_TRUE(block_rank_greater(b1, b2));
  EXPECT_FALSE(block_rank_greater(b2, b1));
}

TEST(BlockRank, SameViewNeedsPrepareJustifyOfOwnView) {
  Block parent_qc_block = make_block(4, 5, {}, 4);
  Block higher = make_block(4, 6, {}, 4);
  const Block lower = make_block(4, 5, {}, 4);

  // Without a same-view prepareQC justify, height does not dominate.
  EXPECT_FALSE(block_rank_greater(higher, lower));

  higher.justify.qc = make_qc(QcType::kPrepare, 4, 5);
  EXPECT_TRUE(block_rank_greater(higher, lower));

  // A pre-prepareQC justify does not qualify (the anti-forking clause).
  higher.justify.qc = make_qc(QcType::kPrePrepare, 4, 5);
  EXPECT_FALSE(block_rank_greater(higher, lower));

  // Nor does a prepareQC from an older view.
  higher.justify.qc = make_qc(QcType::kPrepare, 3, 5);
  EXPECT_FALSE(block_rank_greater(higher, lower));
}

// ---------------------------------------------------------------------------
// QuorumCert wire format / digests
// ---------------------------------------------------------------------------

TEST(QuorumCert, WireRoundTrip) {
  QuorumCert qc = make_qc(QcType::kPrePrepare, 9, 12,
                          crypto::Sha256::digest(to_bytes("b")), 9, 7, true);
  qc.sigs.parts.push_back({2, Bytes(crypto::kSignatureSize, 0xaa)});
  qc.sigs.parts.push_back({5, Bytes(crypto::kSignatureSize, 0xbb)});
  auto back = decode_from_bytes<QuorumCert>(encode_to_bytes(qc));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), qc);
}

TEST(QuorumCert, SignedDigestCoversFields) {
  const auto a = make_qc(QcType::kPrepare, 3, 4);
  auto b = a;
  b.height = 5;
  EXPECT_NE(a.signed_digest("marlin"), b.signed_digest("marlin"));
  EXPECT_NE(a.signed_digest("marlin"), a.signed_digest("hotstuff"));
  auto c = a;
  c.type = QcType::kCommit;
  EXPECT_NE(a.signed_digest("marlin"), c.signed_digest("marlin"));
}

TEST(Justify, RoundTripAllShapes) {
  Justify empty;
  auto back = decode_from_bytes<Justify>(encode_to_bytes(empty));
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back.value().empty());

  Justify one;
  one.qc = make_qc(QcType::kPrepare, 2, 3);
  back = decode_from_bytes<Justify>(encode_to_bytes(one));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), one);

  Justify two;
  two.qc = make_qc(QcType::kPrePrepare, 4, 6, {}, 4, 3, true);
  two.vc = make_qc(QcType::kPrepare, 3, 5);
  back = decode_from_bytes<Justify>(encode_to_bytes(two));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), two);
}

TEST(Justify, VcWithoutQcRejected) {
  const Bytes bad = {0x02};
  auto r = decode_from_bytes<Justify>(bad);
  EXPECT_FALSE(r.is_ok());
}

// ---------------------------------------------------------------------------
// BlockStore
// ---------------------------------------------------------------------------

class BlockStoreTest : public ::testing::Test {
 protected:
  /// Appends a child of `parent` and returns its hash.
  Hash256 add_child(const Hash256& parent, ViewNumber view,
                    std::vector<Operation> ops = {}) {
    const Block* p = store_.get(parent);
    EXPECT_NE(p, nullptr);
    Block b = make_block(view, p->height + 1, parent, p->view, std::move(ops));
    const Hash256 h = b.hash();
    store_.insert(std::move(b));
    return h;
  }

  BlockStore store_;
};

TEST_F(BlockStoreTest, GenesisPresent) {
  EXPECT_TRUE(store_.contains(store_.genesis_hash()));
  EXPECT_EQ(store_.size(), 1u);
}

TEST_F(BlockStoreTest, InsertAndLookup) {
  const Hash256 h = add_child(store_.genesis_hash(), 1);
  ASSERT_TRUE(store_.contains(h));
  EXPECT_EQ(store_.get(h)->height, 1u);
  EXPECT_EQ(store_.parent_of(h), store_.genesis_hash());
}

TEST_F(BlockStoreTest, ExtendsAlongChain) {
  const Hash256 a = add_child(store_.genesis_hash(), 1);
  const Hash256 b = add_child(a, 1);
  const Hash256 c = add_child(b, 2);
  EXPECT_TRUE(store_.extends(c, a));
  EXPECT_TRUE(store_.extends(c, c));
  EXPECT_TRUE(store_.extends(c, store_.genesis_hash()));
  EXPECT_FALSE(store_.extends(a, c));
}

TEST_F(BlockStoreTest, ConflictingBranchesDoNotExtend) {
  const Hash256 a = add_child(store_.genesis_hash(), 1);
  const Hash256 b1 = add_child(a, 1, {make_op(1, 1)});
  const Hash256 b2 = add_child(a, 2, {make_op(2, 2)});
  EXPECT_FALSE(store_.extends(b1, b2));
  EXPECT_FALSE(store_.extends(b2, b1));
}

TEST_F(BlockStoreTest, ChainReturnsCommitOrder) {
  const Hash256 a = add_child(store_.genesis_hash(), 1);
  const Hash256 b = add_child(a, 1);
  const Hash256 c = add_child(b, 1);
  const auto path = store_.chain(c, store_.genesis_hash());
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], a);
  EXPECT_EQ(path[1], b);
  EXPECT_EQ(path[2], c);
  EXPECT_TRUE(store_.chain(c, c).empty());
}

TEST_F(BlockStoreTest, ChainFailsAcrossGap) {
  const Hash256 a = add_child(store_.genesis_hash(), 1);
  Block orphan = make_block(2, 5, crypto::Sha256::digest(to_bytes("??")), 1);
  const Hash256 o = orphan.hash();
  store_.insert(std::move(orphan));
  EXPECT_TRUE(store_.chain(o, a).empty());
  EXPECT_FALSE(store_.extends(o, a));
}

TEST_F(BlockStoreTest, VirtualParentResolution) {
  const Hash256 a = add_child(store_.genesis_hash(), 1);
  const Hash256 b = add_child(a, 1);
  Block virt;
  virt.view = 2;
  virt.height = 3;
  virt.virtual_block = true;
  virt.parent_view = 1;
  const Hash256 v = virt.hash();
  store_.insert(std::move(virt));

  // Unresolved: no parent, chain fails.
  EXPECT_TRUE(store_.parent_of(v).is_zero());
  EXPECT_TRUE(store_.chain(v, store_.genesis_hash()).empty());

  store_.set_virtual_parent(v, b);
  EXPECT_EQ(store_.parent_of(v), b);
  const auto path = store_.chain(v, store_.genesis_hash());
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[2], v);
  EXPECT_TRUE(store_.extends(v, a));
}

TEST_F(BlockStoreTest, InsertIsIdempotent) {
  const Hash256 a = add_child(store_.genesis_hash(), 1);
  const std::size_t size = store_.size();
  Block again = *store_.get(a);
  store_.insert(std::move(again));
  EXPECT_EQ(store_.size(), size);
}

TEST_F(BlockStoreTest, ReleaseOps) {
  const Hash256 a =
      add_child(store_.genesis_hash(), 1, {make_op(1, 1, 100)});
  EXPECT_FALSE(store_.ops_released(a));
  store_.release_ops(a);
  EXPECT_TRUE(store_.ops_released(a));
  EXPECT_TRUE(store_.get(a)->ops.empty());
  // Metadata queries still work.
  EXPECT_TRUE(store_.extends(a, store_.genesis_hash()));
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

TEST(Messages, ClientRequestRoundTrip) {
  ClientRequestMsg m;
  m.ops = {make_op(3, 9, 150), make_op(3, 10, 150)};
  auto env = make_envelope(MsgKind::kClientRequest, m);
  auto parsed = Envelope::parse(env.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().kind, MsgKind::kClientRequest);
  auto back = open_envelope<ClientRequestMsg>(parsed.value());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().ops, m.ops);
}

TEST(Messages, ClientReplyRoundTrip) {
  ClientReplyMsg m;
  m.client = 7;
  m.replica = 2;
  m.view = 4;
  m.height = 77;
  m.requests = {8, 9, 12};
  m.result = to_bytes("digest64");
  m.padding = Bytes(100, 0xcd);
  auto back = decode_from_bytes<ClientReplyMsg>(encode_to_bytes(m));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().requests, m.requests);
  EXPECT_EQ(back.value().padding.size(), 100u);
}

TEST(Messages, ProposalSingleEntryRoundTrip) {
  ProposalMsg m;
  m.phase = Phase::kPrepare;
  m.view = 3;
  ProposalEntry e;
  e.block = make_block(3, 4, crypto::Sha256::digest(to_bytes("p")), 2,
                       {make_op(1, 1, 150)});
  e.justify.qc = make_qc(QcType::kPrepare, 3, 3);
  e.block.justify = e.justify;
  m.entries.push_back(e);
  auto back = decode_from_bytes<ProposalMsg>(encode_to_bytes(m));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().entries[0].block, e.block);
}

TEST(Messages, ShadowProposalSharesOpsOnWire) {
  // Two blocks with identical op batches: the wire carries the batch once.
  const std::vector<Operation> ops = {make_op(1, 1, 2000), make_op(1, 2, 2000)};
  ProposalMsg shadow;
  shadow.phase = Phase::kPrePrepare;
  shadow.view = 5;
  ProposalEntry e1, e2;
  e1.block = make_block(5, 4, crypto::Sha256::digest(to_bytes("p")), 3, ops);
  e2.block = make_block(5, 5, Hash256{}, 3, ops);
  e2.block.virtual_block = true;
  shadow.entries = {e1, e2};

  ProposalMsg distinct = shadow;
  distinct.entries[1].block.ops = {make_op(9, 9, 2000), make_op(9, 10, 2000)};

  const std::size_t shadow_size = encode_to_bytes(shadow).size();
  const std::size_t distinct_size = encode_to_bytes(distinct).size();
  EXPECT_LT(shadow_size + 3500, distinct_size);

  // And the decode reconstructs the shared batch.
  auto back = decode_from_bytes<ProposalMsg>(encode_to_bytes(shadow));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().entries[1].block.ops, ops);
  EXPECT_EQ(back.value().entries[1].block.hash(), e2.block.hash());
}

TEST(Messages, ProposalRejectsZeroOrThreeEntries) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Phase::kPrepare));
  w.u64(1);
  w.varint(0);
  EXPECT_FALSE(decode_from_bytes<ProposalMsg>(w.buffer()).is_ok());
}

TEST(Messages, VoteRoundTripWithLockedQc) {
  VoteMsg m;
  m.phase = Phase::kPrePrepare;
  m.view = 6;
  m.block_hash = crypto::Sha256::digest(to_bytes("b"));
  m.parsig = {3, Bytes(crypto::kSignatureSize, 0x11)};
  m.locked_qc = make_qc(QcType::kPrepare, 5, 9);
  auto back = decode_from_bytes<VoteMsg>(encode_to_bytes(m));
  ASSERT_TRUE(back.is_ok());
  ASSERT_TRUE(back.value().locked_qc.has_value());
  EXPECT_EQ(*back.value().locked_qc, *m.locked_qc);
}

TEST(Messages, QcNoticeRoundTripWithAux) {
  QcNoticeMsg m;
  m.phase = Phase::kPrepare;
  m.view = 7;
  m.qc = make_qc(QcType::kPrePrepare, 7, 11, {}, 7, 6, true);
  m.aux = make_qc(QcType::kPrepare, 6, 10);
  auto back = decode_from_bytes<QcNoticeMsg>(encode_to_bytes(m));
  ASSERT_TRUE(back.is_ok());
  ASSERT_TRUE(back.value().aux.has_value());
  EXPECT_EQ(back.value().qc, m.qc);
}

TEST(Messages, ViewChangeRoundTrip) {
  ViewChangeMsg m;
  m.view = 9;
  m.last_voted = BlockRef{crypto::Sha256::digest(to_bytes("lb")), 8, 20, 7,
                          false};
  m.high_qc.qc = make_qc(QcType::kPrepare, 8, 19);
  m.parsig = {1, Bytes(crypto::kSignatureSize, 0x77)};
  auto back = decode_from_bytes<ViewChangeMsg>(encode_to_bytes(m));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().last_voted, m.last_voted);
  EXPECT_EQ(back.value().high_qc, m.high_qc);
}

TEST(Messages, FetchRoundTrip) {
  FetchRequestMsg req{crypto::Sha256::digest(to_bytes("want"))};
  auto back = decode_from_bytes<FetchRequestMsg>(encode_to_bytes(req));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().block_hash, req.block_hash);

  FetchResponseMsg resp{make_block(2, 3, Hash256{}, 1, {make_op(1, 1)})};
  auto back2 = decode_from_bytes<FetchResponseMsg>(encode_to_bytes(resp));
  ASSERT_TRUE(back2.is_ok());
  EXPECT_EQ(back2.value().block, resp.block);
}

TEST(Messages, TimeoutNoticeRoundTrip) {
  TimeoutNoticeMsg m{42};
  auto back = decode_from_bytes<TimeoutNoticeMsg>(encode_to_bytes(m));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().view, m.view);

  Envelope env = make_envelope(MsgKind::kTimeoutNotice, m);
  auto reparsed = Envelope::parse(env.serialize());
  ASSERT_TRUE(reparsed.is_ok());
  auto opened = open_envelope<TimeoutNoticeMsg>(reparsed.value());
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ(opened.value().view, 42u);
}

TEST(Messages, EnvelopeRejectsGarbage) {
  EXPECT_FALSE(Envelope::parse(Bytes{}).is_ok());
  EXPECT_FALSE(Envelope::parse(Bytes{0x00}).is_ok());
  EXPECT_FALSE(Envelope::parse(Bytes{0xff, 0x01}).is_ok());
}

TEST(Messages, TrailingGarbageRejected) {
  FetchRequestMsg req{Hash256{}};
  Bytes enc = encode_to_bytes(req);
  enc.push_back(0x00);
  EXPECT_FALSE(decode_from_bytes<FetchRequestMsg>(enc).is_ok());
}

}  // namespace
}  // namespace marlin::types

namespace marlin::types {
namespace {

// ---------------------------------------------------------------------------
// Decoder robustness (fuzz-style): arbitrary corruption must produce a
// clean error or a valid value — never a crash or UB.
// ---------------------------------------------------------------------------

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, MutatedEnvelopesNeverCrash) {
  Rng rng(GetParam());

  // A corpus of every message kind, valid on the wire.
  std::vector<Bytes> corpus;
  {
    ClientRequestMsg req;
    req.ops = {make_op(1, 1, 150), make_op(2, 9, 10)};
    corpus.push_back(make_envelope(MsgKind::kClientRequest, req).serialize());

    ClientReplyMsg rep;
    rep.client = 3;
    rep.requests = {1, 2, 3};
    rep.result = to_bytes("12345678");
    rep.padding = Bytes(64, 0xcd);
    corpus.push_back(make_envelope(MsgKind::kClientReply, rep).serialize());

    ProposalMsg prop;
    prop.phase = Phase::kPrePrepare;
    prop.view = 4;
    ProposalEntry e1, e2;
    e1.block = make_block(4, 3, crypto::Sha256::digest(to_bytes("p")), 2,
                          {make_op(1, 1, 40)});
    e1.justify.qc = make_qc(QcType::kPrepare, 3, 2);
    e2.block = e1.block;
    e2.block.height = 4;
    e2.block.virtual_block = true;
    e2.block.parent_link = Hash256{};
    e2.justify = e1.justify;
    prop.entries = {e1, e2};
    corpus.push_back(make_envelope(MsgKind::kProposal, prop).serialize());

    VoteMsg vote;
    vote.phase = Phase::kPrepare;
    vote.view = 4;
    vote.parsig = {1, Bytes(crypto::kSignatureSize, 0x33)};
    vote.locked_qc = make_qc(QcType::kPrepare, 3, 2);
    corpus.push_back(make_envelope(MsgKind::kVote, vote).serialize());

    QcNoticeMsg notice;
    notice.qc = make_qc(QcType::kPrePrepare, 4, 5, {}, 4, 3, true);
    notice.aux = make_qc(QcType::kPrepare, 3, 4);
    corpus.push_back(make_envelope(MsgKind::kQcNotice, notice).serialize());

    ViewChangeMsg vc;
    vc.view = 5;
    vc.last_voted = BlockRef{crypto::Sha256::digest(to_bytes("lb")), 4, 7, 3,
                             false};
    vc.high_qc.qc = make_qc(QcType::kPrepare, 4, 6);
    vc.parsig = {2, Bytes(crypto::kSignatureSize, 0x44)};
    corpus.push_back(make_envelope(MsgKind::kViewChange, vc).serialize());
  }

  auto try_decode = [](const Bytes& wire) {
    auto env = Envelope::parse(wire);
    if (!env.is_ok()) return;
    switch (env.value().kind) {
      case MsgKind::kClientRequest:
        (void)open_envelope<ClientRequestMsg>(env.value());
        break;
      case MsgKind::kClientReply:
        (void)open_envelope<ClientReplyMsg>(env.value());
        break;
      case MsgKind::kProposal:
        (void)open_envelope<ProposalMsg>(env.value());
        break;
      case MsgKind::kVote:
        (void)open_envelope<VoteMsg>(env.value());
        break;
      case MsgKind::kQcNotice:
        (void)open_envelope<QcNoticeMsg>(env.value());
        break;
      case MsgKind::kViewChange:
        (void)open_envelope<ViewChangeMsg>(env.value());
        break;
      case MsgKind::kFetchRequest:
        (void)open_envelope<FetchRequestMsg>(env.value());
        break;
      case MsgKind::kFetchResponse:
        (void)open_envelope<FetchResponseMsg>(env.value());
        break;
      case MsgKind::kSnapshotRequest:
        (void)open_envelope<SnapshotRequestMsg>(env.value());
        break;
      case MsgKind::kSnapshotResponse:
        (void)open_envelope<SnapshotResponseMsg>(env.value());
        break;
      case MsgKind::kTimeoutNotice:
        (void)open_envelope<TimeoutNoticeMsg>(env.value());
        break;
    }
  };

  for (int trial = 0; trial < 3000; ++trial) {
    Bytes wire = corpus[rng.next_below(corpus.size())];
    const auto mutation = rng.next_below(4);
    if (mutation == 0 && !wire.empty()) {
      // Flip random bytes.
      for (int k = 0; k < 3; ++k) {
        wire[rng.next_below(wire.size())] ^=
            static_cast<std::uint8_t>(1 + rng.next_below(255));
      }
    } else if (mutation == 1 && wire.size() > 2) {
      wire.resize(1 + rng.next_below(wire.size() - 1));  // truncate
    } else if (mutation == 2) {
      append(wire, rng.next_bytes(1 + rng.next_below(32)));  // extend
    } else {
      wire = rng.next_bytes(1 + rng.next_below(200));  // pure garbage
    }
    try_decode(wire);  // must not crash; outcome irrelevant
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz,
                         ::testing::Values(1000, 2000, 3000, 4000));

}  // namespace
}  // namespace marlin::types
